"""A guided tour of the compiler pipeline (paper Figure 1, live).

Run:  python examples/compiler_walkthrough.py

Takes the k-means-style program below through every stage the paper
describes and prints what the compiler sees:

  1. the lifted driver IR (the holistic program view);
  2. the driver IR after inlining + caching analysis;
  3. each dataflow site's comprehension view after resugaring,
     normalization, and fold-group fusion (Grust notation);
  4. the lowered combinator dataflow plans;
  5. the executed result with the engine's cost metrics.
"""

from dataclasses import dataclass

from repro.api import DataBag, EmmaConfig, SparkLikeEngine, parallelize
from repro.frontend.driver_ir import pretty_program


@dataclass(frozen=True)
class Reading:
    station: int
    value: float


@parallelize
def anomaly_stations(readings: DataBag, rounds):
    """Iteratively tighten a threshold and report station stats."""
    threshold = 0.0
    i = 0
    while i < rounds:
        loud = (r for r in readings if r.value > threshold)
        stats = (
            (g.key, g.values.map(lambda r: r.value).sum(), g.values.count())
            for g in loud.group_by(lambda r: r.station)
        )
        total = stats.map(lambda t: t[1]).sum()
        count = stats.map(lambda t: t[2]).sum()
        threshold = total / count / 2
        i = i + 1
    return threshold


def main() -> None:
    print("=" * 64)
    print("1. lifted driver IR (what @parallelize captured)")
    print("=" * 64)
    print(pretty_program(anomaly_stations.lifted.program))

    compiled = anomaly_stations.compiled(EmmaConfig.all())

    print()
    print("=" * 64)
    print("2. optimized driver program (inlined, cache site inserted,")
    print("   dataflow sites compiled to plans)")
    print("=" * 64)
    print(pretty_program(compiled.program))

    print()
    print("=" * 64)
    print("3+4. per-site comprehension views and combinator plans")
    print("=" * 64)
    print(compiled.explain(comprehensions=True))

    print()
    print("=" * 64)
    print("5. execution on the Spark-like engine")
    print("=" * 64)
    engine = SparkLikeEngine()
    readings = DataBag(
        Reading(station=i % 7, value=float((i * 13) % 50))
        for i in range(700)
    )
    result = anomaly_stations.run(
        engine, readings=readings, rounds=3
    )
    print(f"final threshold: {result:.3f}")
    print(f"engine metrics:  {engine.metrics.summary()}")
    report = anomaly_stations.report()
    print(f"optimizations:   {report.table1_row()}")
    print(
        f"fused folds: {report.fused_folds}, "
        f"generator unnests: {report.generator_unnests}, "
        f"inlined defs: {report.inlined_definitions}"
    )


if __name__ == "__main__":
    main()

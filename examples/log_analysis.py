"""Web-log analytics — a fresh program written against the public API.

Run:  python examples/log_analysis.py

A scenario the paper's introduction motivates: mixed driver control
flow + dataflows with a correlated existential.  We look for suspicious
sessions: for each country, count the requests from clients that also
appear on an abuse list — written with a declarative ``exists`` that
the compiler unnests into a semi-join (no broadcast hand-tuning), and a
``group_by`` + ``count`` that fuses into an ``agg_by``.
"""

import random
from dataclasses import dataclass

from repro.api import (
    DataBag,
    EmmaConfig,
    FlinkLikeEngine,
    LocalEngine,
    SparkLikeEngine,
    parallelize,
)


@dataclass(frozen=True)
class Request:
    client: int
    country: str
    path: str
    bytes_sent: int


@dataclass(frozen=True)
class AbuseReport:
    client: int
    reason: str


@parallelize
def abuse_by_country(requests: DataBag, reports: DataBag, min_bytes):
    """Requests per country from clients with at least one abuse report."""
    heavy = (r for r in requests if r.bytes_sent >= min_bytes)
    flagged = (
        r
        for r in heavy
        if reports.exists(lambda a: a.client == r.client)
    )
    per_country = (
        (g.key, g.values.count(), g.values.map(lambda r: r.bytes_sent).sum())
        for g in flagged.group_by(lambda r: r.country)
    )
    return per_country


def synthesize(seed: int = 9) -> tuple[DataBag, DataBag]:
    rng = random.Random(seed)
    countries = ("de", "fr", "us", "jp", "br")
    requests = DataBag(
        Request(
            client=rng.randrange(400),
            country=rng.choice(countries),
            path=f"/item/{rng.randrange(50)}",
            bytes_sent=rng.randrange(100, 20_000),
        )
        for _ in range(5000)
    )
    reports = DataBag(
        AbuseReport(client=c, reason="scraping")
        for c in rng.sample(range(400), 40)
    )
    return requests, reports


def main() -> None:
    requests, reports = synthesize()

    oracle = abuse_by_country.run(
        LocalEngine(), requests=requests, reports=reports, min_bytes=1000
    )
    print("abuse traffic by country (local oracle):")
    for country, count, volume in sorted(oracle.fetch()):
        print(f"  {country}: {count:4d} requests, {volume:9d} bytes")

    # The report shows both logical optimizations fired.
    report = abuse_by_country.report()
    print("\nexists unnested into a semi-join:", report.unnesting_applied)
    print("group folds fused:", report.fold_group_fusion_applied)

    # Identical answers on the parallel engines — with and without the
    # unnesting (the baseline falls back to broadcasting the reports).
    for engine in (SparkLikeEngine(), FlinkLikeEngine()):
        optimized = abuse_by_country.run(
            engine, requests=requests, reports=reports, min_bytes=1000
        )
        assert optimized == oracle
        print(f"{engine.name:6} optimized: {engine.metrics.summary()}")
    baseline_engine = SparkLikeEngine()
    baseline = abuse_by_country.run(
        baseline_engine,
        config=EmmaConfig.none(),
        requests=requests,
        reports=reports,
        min_bytes=1000,
    )
    assert baseline == oracle
    print(f"spark  baseline:  {baseline_engine.metrics.summary()}")


if __name__ == "__main__":
    main()

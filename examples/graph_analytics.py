"""Graph analytics with stateful bags (paper Appendix A.1).

Run:  python examples/graph_analytics.py

PageRank and Connected Components over a synthetic follower graph —
both expressed with the domain-agnostic ``StatefulBag`` abstraction
(point-wise updates with keyed messages) instead of a vertex-centric
framework, and both running unchanged on the local oracle and the
simulated parallel engines.
"""

from collections import Counter

from repro.api import FlinkLikeEngine, LocalEngine, SparkLikeEngine
from repro.engines.dfs import SimulatedDFS
from repro.workloads import graphs
from repro.workloads.connected_components import connected_components
from repro.workloads.pagerank import pagerank


def main() -> None:
    dfs = SimulatedDFS()
    follower_path = graphs.stage_follower_graph(
        dfs, num_vertices=500, edges_per_vertex=4, seed=3
    )
    cc_path = "data/components"
    dfs.put(
        cc_path,
        graphs.generate_component_graph(
            300, num_components=4, seed=19
        ),
    )

    # PageRank: top influencers of the follower graph.
    local = LocalEngine()
    local.dfs = dfs
    ranks = pagerank.run(
        local, graph_path=follower_path, num_pages=500, max_iterations=10
    )
    top = sorted(ranks, key=lambda r: -r.rank)[:5]
    print("top-5 vertices by PageRank (local oracle):")
    for r in top:
        print(f"  vertex {r.id:4d}  rank {r.rank:.5f}")

    spark = SparkLikeEngine(dfs=dfs)
    spark_ranks = pagerank.run(
        spark, graph_path=follower_path, num_pages=500, max_iterations=10
    )
    spark_top = sorted(spark_ranks, key=lambda r: -r.rank)[:5]
    assert [r.id for r in spark_top] == [r.id for r in top]
    print(f"spark agrees — {spark.metrics.summary()}")

    # Connected components: semi-naive iteration until the delta dries.
    flink = FlinkLikeEngine(dfs=dfs)
    states = connected_components.run(flink, graph_path=cc_path)
    sizes = Counter(s.component for s in states)
    print(
        f"\nconnected components (flink): {len(sizes)} components, "
        f"sizes {sorted(sizes.values(), reverse=True)}"
    )
    oracle_states = connected_components.run(
        local, graph_path=cc_path
    )
    assert Counter(s.component for s in oracle_states) == sizes
    print("local oracle agrees")
    print(
        "\npagerank optimizations:",
        pagerank.report().table1_row(),
    )


if __name__ == "__main__":
    main()

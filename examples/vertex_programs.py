"""Domain APIs on DataBag — the paper's future work, implemented.

Run:  python examples/vertex_programs.py

Section 7 of the paper promises "linear algebra and graph processing
APIs on top of the DataBag API".  This example exercises both
extensions:

* a custom Pregel-style vertex program (single-source shortest paths)
  whose superstep aggregation goes through fold-group fusion like any
  hand-written dataflow;
* power iteration over a sparse matrix, whose matvec compiles to a
  join + `agg_by` plan.
"""

from repro.api import DataBag, LocalEngine, SparkLikeEngine
from repro.engines.dfs import SimulatedDFS
from repro.extensions.graph import (
    VertexProgram,
    _superstep_loop,
    run_vertex_program,
)
from repro.extensions.linalg import (
    MatrixEntry,
    matvec,
    power_iteration,
)
from repro.workloads import graphs

INFINITY = 1 << 30


def sssp_program(source: int) -> VertexProgram:
    """Single-source shortest paths (unit edge weights), semi-naive."""
    return VertexProgram(
        init=lambda v: 0 if v.id == source else INFINITY,
        send=lambda s, _degree: s.value + 1,
        combine_zero=INFINITY,
        combine_lift=lambda m: m,
        combine_merge=min,
        apply=lambda s, dist: dist if dist < s.value else None,
        semi_naive=True,
    )


def main() -> None:
    dfs = SimulatedDFS()
    path = "graphs/components"
    dfs.put(
        path,
        graphs.generate_component_graph(
            40, num_components=2, extra_edges=1, seed=27
        ),
    )

    engine = SparkLikeEngine(dfs=dfs)
    distances = run_vertex_program(
        sssp_program(source=0), path, engine=engine, max_supersteps=50
    )
    reachable = sorted(
        (s.value, s.id) for s in distances if s.value < INFINITY
    )
    print("shortest paths from vertex 0 (distance, vertex):")
    for dist, vid in reachable[:10]:
        print(f"  {dist:2d}  -> {vid}")
    unreachable = sum(1 for s in distances if s.value >= INFINITY)
    print(f"unreachable vertices (other component): {unreachable}")
    print(
        "superstep aggregation fused:",
        _superstep_loop.report().fold_group_fusion_applied,
    )

    # --- linear algebra: dominant eigenvector of a ring-ish matrix ---
    n = 6
    entries = DataBag(
        [MatrixEntry(i, i, 2.0) for i in range(n)]
        + [MatrixEntry(i, (i + 1) % n, 1.0) for i in range(n)]
        + [MatrixEntry((i + 1) % n, i, 1.0) for i in range(n)]
    )
    x = power_iteration(
        entries, dimension=n, iterations=40, engine=LocalEngine()
    )
    print("\ndominant eigenvector (circulant matrix — uniform):")
    for e in sorted(x, key=lambda e: e.index):
        print(f"  x[{e.index}] = {e.value:.4f}")

    y = matvec(entries, x, engine=SparkLikeEngine())
    ratios = sorted(
        (a.index, a.value / b.value)
        for a in y
        for b in x
        if a.index == b.index
    )
    print("A@x / x (should all equal the dominant eigenvalue 4):")
    print("  ", [round(r, 4) for _i, r in ratios])


if __name__ == "__main__":
    main()

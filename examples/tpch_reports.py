"""TPC-H reporting queries (paper Appendix A.2).

Run:  python examples/tpch_reports.py

Q1 (pricing summary) and Q4 (order priority checking) written in the
declarative Emma style — Q1's nine aggregates as plain folds over group
values, Q4's correlated EXISTS as a one-line ``exists`` — with the
compiled plans printed so you can see the ``agg_by`` fusion and the
semi-join that the rewrites produce.
"""

from repro.api import LocalEngine, SparkLikeEngine
from repro.engines.dfs import SimulatedDFS
from repro.workloads.tpch import stage_tpch, tpch_q1, tpch_q4


def main() -> None:
    dfs = SimulatedDFS()
    orders_path, lineitem_path = stage_tpch(dfs, sf=0.5)

    engine = SparkLikeEngine(dfs=dfs)
    q1 = tpch_q1.run(
        engine, lineitem_path=lineitem_path, ship_date_max="1996-12-01"
    )
    print("TPC-H Q1 — pricing summary report:")
    header = (
        f"{'flag':>4} {'status':>6} {'sum_qty':>10} "
        f"{'sum_base':>14} {'avg_qty':>8} {'orders':>7}"
    )
    print(header)
    for row in sorted(
        q1, key=lambda r: (r.return_flag, r.line_status)
    ):
        print(
            f"{row.return_flag:>4} {row.line_status:>6} "
            f"{row.sum_qty:10.1f} {row.sum_base_price:14.2f} "
            f"{row.avg_qty:8.2f} {row.count_order:7d}"
        )
    print(f"[{engine.metrics.summary()}]")

    engine = SparkLikeEngine(dfs=dfs)
    q4 = tpch_q4.run(
        engine,
        orders_path=orders_path,
        lineitem_path=lineitem_path,
        date_min="1994-01-01",
        date_max="1994-07-01",
    )
    print("\nTPC-H Q4 — late orders per priority:")
    for priority, count in sorted(q4.fetch()):
        print(f"  {priority:16} {count:6d}")

    # The local oracle agrees with the parallel run.
    local = LocalEngine()
    local.dfs = dfs
    assert (
        tpch_q1.run(
            local,
            lineitem_path=lineitem_path,
            ship_date_max="1996-12-01",
        ).count()
        == q1.count()
    )

    print("\ncompiled Q4 plan (note the semi-join and the agg_by):")
    print(tpch_q4.explain())


if __name__ == "__main__":
    main()

"""Quickstart — the Emma programming model in five minutes.

Run:  python examples/quickstart.py

Demonstrates the core promise of the paper: you write a plain Python
function over DataBags — generator expressions, ``group_by`` + folds, a
``while`` loop — with *nothing* in it that mentions parallelism, and
the ``@parallelize`` decorator compiles it for local, Spark-like, and
Flink-like execution, applying fold-group fusion and friends behind
your back.
"""

from dataclasses import dataclass

from repro.api import (
    DataBag,
    FlinkLikeEngine,
    LocalEngine,
    SparkLikeEngine,
    parallelize,
)


@dataclass(frozen=True)
class Measurement:
    sensor: int
    day: int
    value: float


@parallelize
def daily_extremes(readings: DataBag, threshold):
    """Per-day min/max/count of the readings above a quality threshold.

    The group values are consumed only by folds, so the compiler fuses
    the three aggregates into one ``agg_by`` pass (a ``reduceByKey``) —
    the rewrite you would otherwise hand-code per the Spark/Flink
    programming guides.
    """
    good = (r for r in readings if r.value > threshold)
    summary = (
        (
            g.key,
            g.values.map(lambda r: r.value).min(),
            g.values.map(lambda r: r.value).max(),
            g.values.count(),
        )
        for g in good.group_by(lambda r: r.day)
    )
    return summary


def main() -> None:
    readings = DataBag(
        Measurement(sensor=i % 5, day=i % 7, value=float((i * 37) % 100))
        for i in range(1000)
    )

    # 1. Develop and debug locally — plain host-language execution.
    local = daily_extremes.run(
        LocalEngine(), readings=readings, threshold=10.0
    )
    print("local result (7 days):")
    for row in sorted(local.fetch()):
        print("  ", row)

    # 2. The same Algorithm object runs on the simulated engines.
    for engine in (SparkLikeEngine(), FlinkLikeEngine()):
        result = daily_extremes.run(
            engine, readings=readings, threshold=10.0
        )
        assert result == local
        print(
            f"{engine.name:6} result identical — "
            f"{engine.metrics.summary()}"
        )

    # 3. Look under the hood: which optimizations fired, and the plan.
    report = daily_extremes.report()
    print("\noptimizations applied:", report.table1_row())
    print("fused folds:", report.fused_folds)
    print("\ncompiled dataflow plans:")
    print(daily_extremes.explain())


if __name__ == "__main__":
    main()

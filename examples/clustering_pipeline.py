"""K-means clustering end to end (the paper's Listing 4 scenario).

Run:  python examples/clustering_pipeline.py

Stages synthetic clustered points into a simulated DFS, runs Lloyd's
algorithm on the Spark-like engine with and without fold-group fusion +
caching, and compares the engine metrics — a small-scale rendition of
the paper's Section 5.2 experiment.
"""

from repro.api import EmmaConfig, LocalEngine, SparkLikeEngine
from repro.engines.dfs import SimulatedDFS
from repro.workloads import datagen
from repro.workloads.kmeans import (
    initial_centroids,
    kmeans,
    kmeans_assign,
)


def main() -> None:
    dfs = SimulatedDFS()
    points_path = datagen.stage_points(
        dfs, n=1200, centers=3, dim=2, seed=5
    )
    points = dfs.get(points_path).records
    init = initial_centroids(points, 3)

    # Correctness first: the local oracle.
    local = LocalEngine()
    local.dfs = dfs
    centroids = kmeans.run(
        local,
        points_path=points_path,
        initial=init,
        epsilon=1e-6,
        max_iterations=30,
    )
    print("converged centroids (local oracle):")
    for c in sorted(centroids, key=lambda c: c.cid):
        print(f"  cluster {c.cid}: {c.pos}")

    # Now on the simulated cluster, optimized vs unoptimized.
    for label, config in (
        ("all optimizations", EmmaConfig.all()),
        (
            "no fusion, no caching",
            EmmaConfig(
                fold_group_fusion=False,
                caching=False,
                partition_pulling=False,
            ),
        ),
    ):
        engine = SparkLikeEngine(dfs=dfs)
        result = kmeans.run(
            engine,
            config=config,
            points_path=points_path,
            initial=init,
            epsilon=1e-6,
            max_iterations=30,
        )
        # Distributed folds sum in a different order; compare with a
        # float tolerance rather than exact equality.
        by_cid = {c.cid: c.pos for c in result}
        assert all(
            by_cid[c.cid].distance_to(c.pos) < 1e-6 for c in centroids
        )
        print(f"\nspark [{label}]: {engine.metrics.summary()}")

    # Final assignment pass (Listing 4, lines 37-42) and a tiny report.
    engine = SparkLikeEngine(dfs=dfs)
    solution = kmeans_assign.run(
        engine, points_path=points_path, centroids=centroids.fetch()
    )
    sizes = {
        g.key: g.values.count()
        for g in solution.group_by(lambda s: s.cid)
    }
    print("\ncluster sizes:", dict(sorted(sizes.items())))
    print("optimization report:", kmeans.report().table1_row())


if __name__ == "__main__":
    main()

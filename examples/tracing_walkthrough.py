"""The system's debugging story, end to end (tracing & profiling).

Run:  python examples/tracing_walkthrough.py [output-dir]

Compiles and runs PageRank on the Spark-like engine with tracing on
and prints everything the observability layer collects:

  1. compile provenance — every optimizer/lowering pass that fired
     (or was skipped, and why), with the IR before and after, via
     ``explain(trace=True)``;
  2. the runtime span tree — run -> job -> operator/stage spans with
     simulated wall time, rows/bytes per operator, and shuffle and
     broadcast volumes, via ``EmmaConfig(tracing=True)``;
  3. the exports — a JSON-lines file and a ``chrome://tracing``
     document (open the latter in Chrome or https://ui.perfetto.dev).

The script asserts the layer's core invariant before exiting: the
per-job span durations sum exactly to the engine's simulated-seconds
total, so the trace *is* the cost model, not an approximation of it.
"""

import json
import sys
import tempfile
from pathlib import Path

from repro.api import EmmaConfig, SparkLikeEngine
from repro.engines.dfs import SimulatedDFS
from repro.workloads.graphs import stage_follower_graph
from repro.workloads.pagerank import pagerank

NUM_PAGES = 200
ITERATIONS = 4


def main() -> None:
    out_dir = Path(
        sys.argv[1]
        if len(sys.argv) > 1
        else tempfile.mkdtemp(prefix="emma-trace-")
    )

    print("=" * 64)
    print("1. compile provenance: explain(trace=True)")
    print("=" * 64)
    print(pagerank.explain(trace=True))

    print()
    print("=" * 64)
    print("2. traced run: EmmaConfig(tracing=True)")
    print("=" * 64)
    dfs = SimulatedDFS()
    engine = SparkLikeEngine(dfs=dfs)
    graph_path = stage_follower_graph(
        dfs, num_vertices=NUM_PAGES, seed=11
    )
    traced = pagerank.run(
        engine,
        config=EmmaConfig(tracing=True),
        graph_path=graph_path,
        num_pages=NUM_PAGES,
        max_iterations=ITERATIONS,
    )
    print(traced.render())

    top = sorted(traced.result, key=lambda r: -r.rank)[:3]
    print()
    print("top ranks:", [(r.id, round(r.rank, 5)) for r in top])
    print("metrics:  ", traced.metrics.summary())

    # The core invariant: job spans partition the simulated clock.
    job_total = sum(job.dur for job in traced.job_spans())
    drift = abs(job_total - traced.metrics.simulated_seconds)
    assert drift < 1e-9, (job_total, traced.metrics.simulated_seconds)
    print(
        f"invariant ok: {len(traced.job_spans())} job spans sum to "
        f"{job_total:.4f}s == metrics.simulated_seconds"
    )

    print()
    print("=" * 64)
    print("3. exports")
    print("=" * 64)
    out_dir.mkdir(parents=True, exist_ok=True)
    jsonl_path = out_dir / "pagerank-trace.jsonl"
    chrome_path = out_dir / "pagerank-trace.json"
    traced.write_jsonl(jsonl_path)
    traced.write_chrome(chrome_path)
    with open(chrome_path, encoding="utf-8") as fh:
        n_events = len(json.load(fh)["traceEvents"])
    print(f"wrote {jsonl_path} ({len(jsonl_path.read_text().splitlines())} spans)")
    print(f"wrote {chrome_path} ({n_events} trace events)")
    print("open the .json file in chrome://tracing or ui.perfetto.dev")


if __name__ == "__main__":
    main()

"""Public API facade — everything a user program needs in one import.

    from repro.api import (
        DataBag, parallelize, read, write, stateful,
        LocalEngine, SparkLikeEngine, FlinkLikeEngine, EmmaConfig,
    )

Inside a ``@parallelize``-bracketed function, ``read``/``write``/
``stateful``/``DataBag`` are *intrinsics*: the lifter recognizes the
calls syntactically and maps them to IR nodes, so the host functions
below exist mainly to give the same code direct, undecorated semantics
(and sensible docs/signatures).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable

from repro.core.databag import DataBag
from repro.core.grp import Grp
from repro.core.io import (
    CsvFormat,
    JsonLinesFormat,
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
)
from repro.core.stateful import StatefulBag
from repro.engines import (
    ClusterConfig,
    CompileTrace,
    CostModel,
    FaultEvent,
    FaultPlan,
    FlinkLikeEngine,
    LocalEngine,
    Metrics,
    PlanCache,
    RetryPolicy,
    RuntimeTracer,
    SimulatedDFS,
    SparkLikeEngine,
    TracedRun,
    TraceSpan,
    render_span_tree,
)
from repro.errors import (
    EmmaError,
    SimulatedMemoryError,
    SimulatedTimeout,
    TaskFailedError,
)
from repro.frontend.parallelize import Algorithm, parallelize
from repro.optimizer.pipeline import EmmaConfig, OptimizationReport
from repro.server import JobService


def read(path: str | Path, fmt: Any) -> DataBag:
    """Read a DataBag from storage (host-mode implementation).

    Inside ``@parallelize`` this is an intrinsic that becomes a dataflow
    source reading the engine's simulated DFS.
    """
    if isinstance(fmt, CsvFormat):
        return read_csv(path, fmt)
    if isinstance(fmt, JsonLinesFormat):
        return read_jsonl(path, fmt)
    raise EmmaError(f"unsupported format {type(fmt).__name__}")


def write(path: str | Path, fmt: Any, bag: DataBag) -> None:
    """Write a DataBag to storage (host-mode implementation)."""
    if isinstance(fmt, CsvFormat):
        write_csv(path, fmt, bag)
    elif isinstance(fmt, JsonLinesFormat):
        write_jsonl(path, fmt, bag)
    else:
        raise EmmaError(f"unsupported format {type(fmt).__name__}")


def stateful(
    bag: DataBag, key: Callable[[Any], Any] | None = None
) -> StatefulBag:
    """Convert a DataBag into a StatefulBag (host-mode implementation)."""
    return StatefulBag(bag, key=key)


__all__ = [
    "Algorithm",
    "ClusterConfig",
    "CompileTrace",
    "CostModel",
    "CsvFormat",
    "DataBag",
    "EmmaConfig",
    "EmmaError",
    "FaultEvent",
    "FaultPlan",
    "FlinkLikeEngine",
    "Grp",
    "JsonLinesFormat",
    "LocalEngine",
    "JobService",
    "Metrics",
    "OptimizationReport",
    "PlanCache",
    "RetryPolicy",
    "RuntimeTracer",
    "SimulatedDFS",
    "SimulatedMemoryError",
    "SimulatedTimeout",
    "SparkLikeEngine",
    "StatefulBag",
    "TaskFailedError",
    "TracedRun",
    "TraceSpan",
    "parallelize",
    "read",
    "render_span_tree",
    "stateful",
    "write",
]

"""Interesting physical properties — partitioning-aware planning.

The paper's physical layer promises *transparent data motion*
(Section 4.2/4.3: broadcast injection, caching, partition pulling), but
the plans it hands the engines still describe data motion operator-at-
a-time: every join/group site pays for its shuffle as if its input's
layout were unknown.  This pass closes that gap with the classic
Selinger-style *interesting properties* argument, applied to hash
partitionings over the combinator DAG:

* **delivered** partitioning propagates bottom-up: a cached bag whose
  cache site enforces a pulled partition key delivers that key; filters
  (and all-filter chains) pass their input's partitioning through;
  group/agg outputs deliver their grouping key; a repartition join
  delivers its join key over the pair's left element.
* **required** partitioning flows from the shuffle consumers: the two
  key extractors of an equi/semi-join and the key of a group/agg.

Where required meets delivered, each shuffle-feeding input is
classified as

* ``elidable`` — delivered already matches required (the shuffle is a
  no-op at runtime);
* ``hoistable`` — the input is **loop-invariant** (every leaf is a
  cached bag, no UDF in the subtree reads a loop-mutated or stateful
  name), so its shuffled result can be computed once and reused by
  every iteration of the enclosing driver loop;
* ``required`` — the data genuinely moves.

Join nodes additionally get a plan-time **strategy** annotation:
``"repartition"`` when either side's motion is free (elidable or
hoistable amortized over the loop), else ``"cost"`` — deferring to the
executor's runtime comparison of broadcast vs repartition seconds from
:class:`~repro.engines.costmodel.CostModel` estimates, refined by the
per-run :class:`~repro.engines.costmodel.StatsCache` of observed sizes.

The pass is purely annotational: results never depend on it (the
executor re-checks every delivered partitioning against the actual
runtime partitioner), only data motion and its accounting do.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.comprehension.exprs import Attr, Const, Index, Ref
from repro.frontend.driver_ir import (
    DriverProgram,
    SAssign,
    SFor,
    SIf,
    SWhile,
    Stmt,
)
from repro.lowering.combinators import (
    CAggBy,
    CBagRef,
    CChain,
    CCross,
    CDistinct,
    CEqJoin,
    CFilter,
    CFlatMap,
    CFold,
    CGroupBy,
    CMap,
    CMinus,
    CSemiJoin,
    CUnion,
    Combinator,
    PhysProps,
    ScalarFn,
    combinator_nodes,
)

ELIDABLE = "elidable"
HOISTABLE = "hoistable"
REQUIRED = "required"

#: state-record attributes a stateful bag hash-partitions on (see
#: :class:`repro.engines.stateful.DistributedStatefulBag`)
_STATE_KEY_ATTRS = ("key", "id")


@dataclass(frozen=True)
class PlanContext:
    """Driver-level facts the per-site annotation needs."""

    #: whether the site executes inside a driver loop
    in_loop: bool = False
    #: names materialized by ``SCache`` statements
    cached_names: frozenset[str] = frozenset()
    #: names bound to stateful bags
    stateful_names: frozenset[str] = frozenset()
    #: partition keys enforced at cache sites (partition pulling)
    partition_keys: Mapping[str, ScalarFn] = field(default_factory=dict)
    #: names (re)assigned inside any driver loop body
    loop_mutated: frozenset[str] = frozenset()


@dataclass
class PhysicalPlanStats:
    """What the pass decided for one site (trace/report fodder)."""

    annotated_joins: int = 0
    elidable_inputs: int = 0
    hoistable_inputs: int = 0
    required_inputs: int = 0
    decisions: list[str] = field(default_factory=list)

    @property
    def fired(self) -> bool:
        return bool(self.elidable_inputs or self.hoistable_inputs)

    def count(self, motion: str) -> None:
        """Tally one classified shuffle-feeding input."""
        if motion == ELIDABLE:
            self.elidable_inputs += 1
        elif motion == HOISTABLE:
            self.hoistable_inputs += 1
        else:
            self.required_inputs += 1

    def summary(self) -> str:
        """One-line trace/report description of the decisions."""
        return (
            f"{self.annotated_joins} join(s); shuffle inputs: "
            f"{self.elidable_inputs} elidable, "
            f"{self.hoistable_inputs} hoistable, "
            f"{self.required_inputs} required"
        )


def loop_mutated_names(program: DriverProgram) -> frozenset[str]:
    """Names assigned inside any loop body of the driver program."""
    out: set[str] = set()

    def scan(stmts: tuple[Stmt, ...], in_loop: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, SAssign):
                if in_loop:
                    out.add(stmt.name)
            elif isinstance(stmt, SWhile):
                scan(stmt.body, True)
            elif isinstance(stmt, SFor):
                out.add(stmt.var)
                scan(stmt.body, True)
            elif isinstance(stmt, SIf):
                scan(stmt.then, in_loop)
                scan(stmt.orelse, in_loop)

    scan(program.body, False)
    return frozenset(out)


def annotate_physical(
    plan: Combinator, ctx: PlanContext
) -> tuple[Combinator, PhysicalPlanStats]:
    """Annotate one site plan; returns the copy plus decision stats."""
    stats = PhysicalPlanStats()
    return _annotate(plan, ctx, stats), stats


# -- recursion ---------------------------------------------------------------


def _annotate(
    node: Combinator, ctx: PlanContext, stats: PhysicalPlanStats
) -> Combinator:
    if isinstance(node, (CEqJoin, CSemiJoin)):
        # Children are annotated first so a nested join/group's own
        # delivered partitioning is visible to this classification.
        left = _annotate(node.left, ctx, stats)
        right = _annotate(node.right, ctx, stats)
        lm, lrefs = _classify(left, node.kx, ctx)
        rm, rrefs = _classify(right, node.ky, ctx)
        stats.annotated_joins += 1
        stats.count(lm)
        stats.count(rm)
        # A side that is already laid out right makes repartition free
        # on that side — fix the strategy statically.  A *hoistable*
        # side only amortizes its shuffle, so the choice stays with the
        # runtime cost comparison (which prices that side at zero).
        strategy = (
            "repartition" if ELIDABLE in (lm, rm) else "cost"
        )
        delivered = (
            _pair_key(node.kx, 0) if strategy == "repartition" else None
        )
        stats.decisions.append(
            f"{node.describe()}: strategy={strategy} "
            f"(left {lm}, right {rm})"
        )
        out = replace(
            node,
            left=_with_motion(left, lm, lrefs),
            right=_with_motion(right, rm, rrefs),
        )
        return out.with_phys(
            PhysProps(delivered=delivered, strategy=strategy)
        )
    if isinstance(node, (CGroupBy, CAggBy)):
        inp = _annotate(node.input, ctx, stats)
        motion, refs = _classify(inp, node.key, ctx)
        stats.count(motion)
        out = replace(node, input=_with_motion(inp, motion, refs))
        return out.with_phys(
            PhysProps(delivered=ScalarFn(("_g",), Attr(Ref("_g"), "key")))
        )
    if isinstance(
        node, (CMap, CFlatMap, CFilter, CChain, CDistinct, CFold)
    ):
        return replace(node, input=_annotate(node.input, ctx, stats))
    if isinstance(node, (CCross, CUnion, CMinus)):
        return replace(
            node,
            left=_annotate(node.left, ctx, stats),
            right=_annotate(node.right, ctx, stats),
        )
    return node


def _with_motion(
    node: Combinator, motion: str, refs: tuple[str, ...]
) -> Combinator:
    base = node.phys if node.phys is not None else PhysProps()
    return node.with_phys(
        replace(base, motion=motion, invariant_refs=refs)
    )


# -- classification ----------------------------------------------------------


def _classify(
    node: Combinator, required: ScalarFn, ctx: PlanContext
) -> tuple[str, tuple[str, ...]]:
    """How a shuffle-feeding input satisfies its required partitioning."""
    delivered = _delivered(node, ctx)
    if delivered is not None and _same_key(delivered, required):
        return ELIDABLE, ()
    if _is_stateful_ref(node, ctx) and _is_state_key(required):
        # A stateful bag's dataflow view is hash-partitioned on the
        # state key; the exact key attribute is only known at runtime,
        # so this is a (sound-to-miss) structural heuristic.
        return ELIDABLE, ()
    if ctx.in_loop:
        invariant, refs = _loop_invariant(node, ctx)
        if invariant:
            return HOISTABLE, refs
    return REQUIRED, ()


def _loop_invariant(
    node: Combinator, ctx: PlanContext
) -> tuple[bool, tuple[str, ...]]:
    """Whether a subtree recomputes identically on every iteration.

    True when every leaf is a cached bag and no UDF in the subtree
    reads a loop-mutated or stateful name — then both the subtree's
    records and its shuffled layout are iteration-independent.
    """
    refs: set[str] = set()
    for sub in combinator_nodes(node):
        if not sub.inputs():
            if not isinstance(sub, CBagRef):
                return False, ()
            if sub.name not in ctx.cached_names:
                return False, ()
            if sub.name in ctx.loop_mutated:
                return False, ()
            refs.add(sub.name)
        for udf in sub.udfs():
            free = udf.free_names()
            if free & (ctx.loop_mutated | ctx.stateful_names):
                return False, ()
    if not refs:
        return False, ()
    return True, tuple(sorted(refs))


# -- delivered-partitioning propagation --------------------------------------


def _delivered(node: Combinator, ctx: PlanContext) -> ScalarFn | None:
    """The hash-partitioning key a node's output carries, if known."""
    if node.partition_hint is not None:
        return node.partition_hint
    if isinstance(node, CBagRef):
        return ctx.partition_keys.get(node.name)
    if isinstance(node, CFilter):
        return _delivered(node.input, ctx)
    if isinstance(node, CChain):
        if node.preserves_partitioning():
            return _delivered(node.input, ctx)
        return None
    if isinstance(node, (CGroupBy, CAggBy)):
        return ScalarFn(("_g",), Attr(Ref("_g"), "key"))
    if isinstance(node, CEqJoin):
        props = node.phys
        if props is not None and props.delivered is not None:
            return props.delivered
        return None
    if isinstance(node, CSemiJoin):
        # Both realizations keep the left side's layout.
        return _delivered(node.left, ctx)
    if isinstance(node, (CDistinct, CMinus)):
        return ScalarFn.identity("_d")
    if isinstance(node, CUnion):
        left = _delivered(node.left, ctx)
        right = _delivered(node.right, ctx)
        if left is not None and right is not None and _same_key(left, right):
            return left
        return None
    return None


# -- small helpers -----------------------------------------------------------


def _same_key(a: ScalarFn, b: ScalarFn) -> bool:
    return (
        len(a.params) == len(b.params)
        and a.canonical() == b.canonical()
    )


def _pair_key(k: ScalarFn, pos: int) -> ScalarFn | None:
    """``k`` lifted over element ``pos`` of an output pair."""
    if len(k.params) != 1:
        return None
    body = k.body.substitute(
        {k.params[0]: Index(Ref("_j"), Const(pos))}
    )
    return ScalarFn(("_j",), body)


def _is_stateful_ref(node: Combinator, ctx: PlanContext) -> bool:
    return isinstance(node, CBagRef) and node.name in ctx.stateful_names


def _is_state_key(key: ScalarFn) -> bool:
    return (
        len(key.params) == 1
        and isinstance(key.body, Attr)
        and isinstance(key.body.obj, Ref)
        and key.body.obj.name == key.params[0]
        and key.body.name in _STATE_KEY_ATTRS
    )

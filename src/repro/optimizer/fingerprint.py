"""Content fingerprints for compiled plans and input snapshots.

The deep embedding reifies whole programs as values, so a program has
a *content identity*: hash the lifted IR and you can recognize the
same program across driver processes.  This module computes the two
fingerprints behind :mod:`repro.engines.plancache`:

* :func:`plan_fingerprint` — SHA-256 over the canonical rendering of
  the lifted driver IR (statement structure, comprehension views, and
  every lifted UDF body in the pretty notation of
  :func:`repro.frontend.driver_ir.pretty_program`) combined with every
  *plan-affecting* :class:`~repro.optimizer.pipeline.EmmaConfig` knob
  (:data:`PLAN_KNOBS`).  Runtime-only knobs (execution mode, fault
  plan, memory budget, tracing...) are deliberately excluded: the same
  cached plan serves every backend because results are bit-identical
  across them.
* :func:`snapshot_fingerprint` — SHA-256 over the digests of a run's
  actual inputs: parameter values, captured closure bindings, and the
  *contents* of every simulated-DFS file a string parameter points at.
  Returns ``None`` when any input has no stable content identity, in
  which case the run is simply not result-cacheable.

Both are pure functions of IR + values — no clocks, no ``id()``s — so
equal fingerprints across two driver processes mean the compiled plan
and the memoized result are interchangeable.
"""

from __future__ import annotations

import hashlib
import weakref
from dataclasses import fields, is_dataclass
from types import ModuleType
from typing import TYPE_CHECKING, Any, Mapping

from repro.core.databag import DataBag
from repro.engines.cluster import stable_hash
from repro.engines.dfs import SimulatedDFS
from repro.errors import EngineError
from repro.frontend.driver_ir import DriverProgram, pretty_program

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.optimizer.pipeline import EmmaConfig

#: The ``EmmaConfig`` fields that change what ``compile_program``
#: produces.  Toggling any of these yields a different fingerprint and
#: therefore a plan-cache miss; every other config field is a runtime
#: knob that reuses the same cached plan.  ``columnar`` is listed
#: because kernel *selection* (which chains get vector kernels) runs at
#: compile time even though execution stays bit-identical.
PLAN_KNOBS: tuple[str, ...] = (
    "inlining",
    "unnesting",
    "fold_group_fusion",
    "caching",
    "partition_pulling",
    "filter_pushdown",
    "operator_chaining",
    "physical_planning",
    "udf_reordering",
    "columnar",
    "columnar_exchange",
)


def plan_knob_items(config: "EmmaConfig") -> tuple[tuple[str, Any], ...]:
    """The plan-affecting knobs of a config as sorted (name, value) pairs."""
    return tuple((name, getattr(config, name)) for name in PLAN_KNOBS)


def canonical_program_text(program: DriverProgram) -> str:
    """The canonical, process-independent rendering of lifted IR.

    The pretty pseudo-code printer is deterministic over the IR tree
    and ignores source line numbers (they are ``compare=False`` lift
    metadata), so two lifts of the same source — in different driver
    processes, from differently-located files — render identically.
    """
    return pretty_program(program)


def plan_fingerprint(
    program: DriverProgram, config: "EmmaConfig"
) -> str:
    """The content fingerprint keying the plan cache (hex SHA-256)."""
    digest = hashlib.sha256()
    digest.update(canonical_program_text(program).encode("utf-8"))
    for name, value in plan_knob_items(config):
        digest.update(f"\n::knob {name}={value!r}".encode("utf-8"))
    return digest.hexdigest()


def snapshot_fingerprint(
    params: Mapping[str, Any],
    captured: Mapping[str, Any] | None = None,
    dfs: SimulatedDFS | None = None,
) -> str | None:
    """The content fingerprint of one run's inputs (hex SHA-256).

    ``params`` are digested by value; string parameters naming a staged
    DFS file additionally digest that file's records, so re-staging
    different data at the same path invalidates memoized results.
    ``captured`` closure bindings are digested the same way (without
    path resolution).  Returns ``None`` — *uncacheable* — as soon as
    any value lacks a stable content identity.
    """
    parts: list[tuple] = []
    for name in sorted(params):
        digest = value_digest(params[name], dfs=dfs)
        if digest is None:
            return None
        parts.append(("param", name, digest))
    for name in sorted(captured or {}):
        digest = value_digest(captured[name])
        if digest is None:
            return None
        parts.append(("captured", name, digest))
    payload = repr(tuple(parts)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


#: Per-``DfsFile`` content-digest memo.  ``dfs.put`` replaces the
#: whole ``DfsFile`` object, so keying on object identity caches the
#: O(records) hash across repeated snapshot fingerprints of unchanged
#: inputs while re-staged data naturally misses.  Keys are ``id()``s
#: (``DfsFile`` is an eq-dataclass, hence unhashable) with a finalizer
#: evicting each entry when its file dies, so recycled ids can never
#: serve a stale digest.
_FILE_DIGESTS: dict[int, int] = {}


def _memoized_file_digest(stored: Any) -> int | None:
    """The content hash of one ``DfsFile``, memoized per object."""
    key = id(stored)
    if key in _FILE_DIGESTS:
        return _FILE_DIGESTS[key]
    try:
        content = stable_hash(stored.records)
    except EngineError:
        return None
    _FILE_DIGESTS[key] = content
    weakref.finalize(stored, _FILE_DIGESTS.pop, key, None)
    return content


def value_digest(
    value: Any, dfs: SimulatedDFS | None = None
) -> tuple | None:
    """A process-independent content digest of one input value.

    Extends the closed set of :func:`~repro.engines.cluster.
    stable_hash` with the shapes that appear in captured driver
    bindings: classes and named functions digest by qualified name,
    modules by name, ``DataBag``s by content, and repo-internal value
    objects (e.g. I/O formats) by class plus instance attributes.
    Returns ``None`` for anything without a stable identity — never a
    guess.
    """
    if isinstance(value, str):
        if dfs is not None and dfs.exists(value):
            stored = dfs.get(value)
            content = _memoized_file_digest(stored)
            if content is None:
                return None
            return ("path", value, content, len(stored.records))
        return ("str", value)
    if isinstance(value, type):
        return ("type", value.__module__, value.__qualname__)
    if isinstance(value, ModuleType):
        return ("module", value.__name__)
    if isinstance(value, DataBag):
        try:
            return ("bag", stable_hash(value.fetch()))
        except EngineError:
            return None
    if callable(value):
        module = getattr(value, "__module__", None)
        qualname = getattr(value, "__qualname__", None)
        if module and qualname and "<locals>" not in qualname:
            return ("fn", module, qualname)
        return None
    try:
        return ("value", stable_hash(value))
    except EngineError:
        pass
    # Containers/records mixing plain data with classes or callables
    # digest structurally; each element goes back through the full
    # dispatch above.
    if is_dataclass(value) and not isinstance(value, type):
        return _items_digest(
            ("record", type(value).__module__, type(value).__qualname__),
            ((f.name, getattr(value, f.name)) for f in fields(value)),
            dfs,
        )
    if isinstance(value, (tuple, list)):
        return _items_digest(
            ("seq", type(value).__name__),
            ((str(i), item) for i, item in enumerate(value)),
            dfs,
        )
    if isinstance(value, dict):
        try:
            items = sorted(value.items())
        except TypeError:
            return None
        return _items_digest(
            ("map",), ((repr(k), v) for k, v in items), dfs
        )
    if type(value).__module__.partition(".")[0] == "repro":
        # Repo-internal value objects (I/O formats, configs) carry all
        # their state in instance attributes; arbitrary foreign objects
        # stay uncacheable.
        try:
            attrs = sorted(vars(value).items())
        except TypeError:
            return None
        return _items_digest(
            ("obj", type(value).__module__, type(value).__qualname__),
            attrs,
            dfs,
        )
    return None


def _items_digest(
    head: tuple, items: Any, dfs: SimulatedDFS | None
) -> tuple | None:
    out = []
    for name, item in items:
        digest = value_digest(item, dfs=dfs)
        if digest is None:
            return None
        out.append((name, digest))
    return head + (tuple(out),)

"""Field-level read/write-set inference over lifted UDF bodies.

The deep embedding lifts whole Python UDFs into the scalar IR, but the
comprehension calculus only reasons about their *syntactic free
variables*: a residual guard such as ``p[1].commit_date <
p[1].receipt_date`` over a join pair mentions both pair components
(``p`` expands to ``(o, li)`` during unnesting) and therefore blocks
every pushdown the calculus could otherwise prove.  Following Hueske et
al., "Enabling Operator Reordering in Data Flow Programs Through Static
Code Analysis", this module recovers the *semantic* access pattern:

* :func:`analyze_read_set` infers, per UDF parameter, the set of
  :class:`FieldPath`\\ s the body may read — field-level for tuple and
  dataclass access through ``Attr``/``Index(Const)`` chains, widening
  to the whole subtree on a dynamic index, and collapsing to the
  conservative TOP element on anything that defeats path tracking
  (``getattr``, ``**`` argument expansion).
* :func:`analyze_emit_set` infers a map UDF's write/emit set: how each
  component of its output record is produced — a pure *copy* of an
  input field path, or a *computed* value.

UDF bodies are pure expressions (the frontend lifts no statements), so
there is no mutation to track: the "write set" of a map is exactly its
emit structure, and two operators conflict only when one reads a field
the other computes.  :mod:`repro.optimizer.reorder` consumes both
analyses to push filters below joins and groupings and to swap filters
past maps.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.comprehension.exprs import (
    Attr,
    Call,
    Const,
    Expr,
    Index,
    Lambda,
    Ref,
    TupleExpr,
    transform,
)
from repro.lowering.combinators import ScalarFn

#: the ``Call.kwargs`` key the frontend uses for ``**`` expansion
DOUBLE_STAR = "**"


def default_udf_reordering() -> str:
    """The ``EmmaConfig.udf_reordering`` default: ``REPRO_UDF_REORDERING``
    when set (``auto``/``on``/``off``), else ``"auto"``."""
    mode = os.environ.get("REPRO_UDF_REORDERING", "auto").lower()
    if mode not in ("auto", "on", "off"):
        raise ValueError(
            f"REPRO_UDF_REORDERING must be auto/on/off, got {mode!r}"
        )
    return mode


# ---------------------------------------------------------------------------
# Field paths
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldPath:
    """An access path rooted at a UDF parameter.

    ``steps`` is a sequence of ``("attr", name)`` / ``("index", i)``
    pairs; the empty path denotes the whole record.  A recorded path
    means "this subtree (and anything below it) may be read" — so a
    shorter path subsumes every extension of it.
    """

    steps: tuple[tuple[str, Any], ...] = ()

    def extend(self, step: tuple[str, Any]) -> "FieldPath":
        """The path one access deeper."""
        return FieldPath(self.steps + (step,))

    def starts_with(self, prefix: "FieldPath") -> bool:
        """Whether ``prefix`` is a (non-strict) prefix of this path."""
        n = len(prefix.steps)
        return self.steps[:n] == prefix.steps

    def drop(self, n: int) -> "FieldPath":
        """The path with its first ``n`` steps removed."""
        return FieldPath(self.steps[n:])

    def render(self) -> str:
        """Human-readable form, e.g. ``[1].commit_date`` or ``<all>``."""
        if not self.steps:
            return "<all>"
        out = []
        for kind, value in self.steps:
            out.append(f".{value}" if kind == "attr" else f"[{value}]")
        return "".join(out)


def render_paths(paths: frozenset[FieldPath] | set[FieldPath]) -> str:
    """``{a, b, ...}`` rendering of a path set, deterministic order."""
    names = sorted(p.render().lstrip(".") for p in paths)
    return "{" + ", ".join(names) + "}"


# ---------------------------------------------------------------------------
# Read sets
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReadSet:
    """What one UDF may read, per parameter.

    ``paths`` maps each parameter to the field paths the body may read
    from it.  ``top`` marks the conservative TOP element: the body
    contains an access the analysis cannot bound (``getattr``, ``**``
    expansion), so *any* field of *any* parameter must be assumed read.
    ``free`` lists the non-parameter names the body reads — broadcast
    and closure captures, which reordering checks against loop-mutated
    driver state.
    """

    params: tuple[str, ...]
    paths: Mapping[str, frozenset[FieldPath]]
    top: bool = False
    top_reason: str = ""
    free: frozenset[str] = frozenset()

    def reads(self, param: str) -> frozenset[FieldPath]:
        """The field paths read from ``param`` (meaningless under TOP)."""
        return self.paths.get(param, frozenset())

    def pair_side(self, param: str) -> int | None:
        """0/1 when every read of ``param`` is confined to that pair
        component (``param[0]...`` / ``param[1]...``); else ``None``."""
        if self.top:
            return None
        sides = set()
        for path in self.reads(param):
            if not path.steps or path.steps[0][0] != "index":
                return None
            sides.add(path.steps[0][1])
        if len(sides) == 1 and sides <= {0, 1}:
            return sides.pop()
        return None

    def only_attr(self, param: str, name: str) -> bool:
        """Whether every read of ``param`` goes through ``.name``."""
        if self.top:
            return False
        reads = self.reads(param)
        return bool(reads) and all(
            p.steps and p.steps[0] == ("attr", name) for p in reads
        )

    def describe(self, param: str | None = None) -> str:
        """``reads {...}`` text for traces and plan annotations."""
        if self.top:
            return f"reads TOP ({self.top_reason})"
        if param is not None:
            return f"reads {render_paths(self.reads(param))}"
        parts = [
            f"{p}: {render_paths(self.reads(p))}" for p in self.params
        ]
        return "reads {" + "; ".join(parts) + "}"


class _Collector:
    """Mutable state of one read-set traversal."""

    def __init__(self, params: tuple[str, ...]) -> None:
        self.params = frozenset(params)
        self.paths: dict[str, set[FieldPath]] = {p: set() for p in params}
        self.free: set[str] = set()
        self.top = False
        self.top_reason = ""

    def mark_top(self, reason: str) -> None:
        if not self.top:
            self.top = True
            self.top_reason = reason

    def record(self, name: str, path: FieldPath, bound: frozenset[str]) -> None:
        if name in bound:
            return
        if name in self.params:
            self.paths[name].add(path)
        else:
            self.free.add(name)


def analyze_read_set(fn: ScalarFn) -> ReadSet:
    """Infer the per-parameter read set of a lifted UDF body."""
    body = simplify_projections(fn.body)
    col = _Collector(fn.params)
    _visit(body, frozenset(), col)
    return ReadSet(
        params=fn.params,
        paths={p: frozenset(s) for p, s in col.paths.items()},
        top=col.top,
        top_reason=col.top_reason,
        free=frozenset(col.free),
    )


def _visit(expr: Expr, bound: frozenset[str], col: _Collector) -> None:
    if isinstance(expr, Ref):
        col.record(expr.name, FieldPath(), bound)
        return
    if isinstance(expr, (Attr, Index)):
        base, steps = _peel_access(expr)
        if base is expr:
            # A dynamic subscript heads the chain: the whole object
            # subtree is read (sound, still side-confined), and the
            # index expression is read normally.
            assert isinstance(expr, Index)
            _visit(expr.obj, bound, col)
            _visit(expr.index, bound, col)
            return
        if isinstance(base, Ref):
            col.record(base.name, FieldPath(steps), bound)
            return
        # Accesses on a non-reference base (call result, conditional):
        # the reads happen inside the base.
        _visit(base, bound, col)
        return
    if isinstance(expr, Lambda):
        _visit(expr.body, bound | frozenset(expr.params), col)
        return
    if isinstance(expr, Call):
        if _is_getattr(expr) and _touches_params(expr, bound, col):
            col.mark_top("dynamic getattr access")
        for key, value in expr.kwargs:
            if key == DOUBLE_STAR and _touches_params(value, bound, col):
                col.mark_top("** argument expansion")
        _visit(expr.func, bound, col)
        for arg in expr.args:
            _visit(arg, bound, col)
        for _key, value in expr.kwargs:
            _visit(value, bound, col)
        return
    for child in expr.children():
        _visit(child, bound, col)


def _peel_access(expr: Expr) -> tuple[Expr, tuple[tuple[str, Any], ...]]:
    """Peel an ``Attr``/constant-``Index`` chain down to its base."""
    steps: list[tuple[str, Any]] = []
    while True:
        if isinstance(expr, Attr):
            steps.append(("attr", expr.name))
            expr = expr.obj
        elif (
            isinstance(expr, Index)
            and isinstance(expr.index, Const)
            and isinstance(expr.index.value, int)
            and not isinstance(expr.index.value, bool)
        ):
            steps.append(("index", expr.index.value))
            expr = expr.obj
        else:
            return expr, tuple(reversed(steps))


def _is_getattr(call: Call) -> bool:
    f = call.func
    if isinstance(f, Ref) and f.name == "getattr":
        return True
    return isinstance(f, Const) and f.value is getattr


def _touches_params(
    expr: Expr, bound: frozenset[str], col: _Collector
) -> bool:
    """Whether ``expr`` reaches any UDF parameter (TOP trigger check).

    A ``getattr``/``**`` over pure broadcast state stays precise — only
    dynamic access *into a parameter* defeats path tracking.
    """
    return bool((expr.free_vars() - bound) & col.params)


# ---------------------------------------------------------------------------
# Write/emit sets
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EmitComponent:
    """One output component of a map UDF.

    ``path`` locates the component in the output record; ``source`` is
    the input field path it copies, or ``None`` when the component is
    computed (arithmetic, calls — a *written* field).
    """

    path: FieldPath
    source: FieldPath | None


@dataclass(frozen=True)
class EmitSet:
    """The write/emit set of a single-parameter map UDF.

    ``components`` is ``None`` when the output structure is opaque to
    the analysis (multi-parameter UDFs, constructor calls whose field
    layout is unknowable at compile time, ``**`` expansion).
    """

    components: tuple[EmitComponent, ...] | None
    opaque_reason: str = ""

    def resolves(self, read: FieldPath) -> bool:
        """Whether a downstream read of ``read`` lands on a copied
        (never computed) component of the output."""
        if self.components is None:
            return False
        for comp in self.components:
            if read.starts_with(comp.path) or comp.path.starts_with(read):
                if comp.source is None:
                    return False
        return any(
            comp.source is not None and read.starts_with(comp.path)
            for comp in self.components
        )

    def describe(self) -> str:
        """``emits {...}`` text for traces and plan annotations."""
        if self.components is None:
            return f"emits TOP ({self.opaque_reason})"
        parts = []
        for comp in self.components:
            where = comp.path.render() if comp.path.steps else "<out>"
            what = (
                comp.source.render().lstrip(".") or "<all>"
                if comp.source is not None
                else "computed"
            )
            if comp.source is not None and not comp.source.steps:
                what = "<all>"
            parts.append(f"{where}: {what}")
        return "emits {" + ", ".join(parts) + "}"


def analyze_emit_set(fn: ScalarFn) -> EmitSet:
    """Infer the emit structure of a map UDF.

    Supported shapes: the identity map, a pure access chain over the
    parameter, and tuple construction whose items are themselves access
    chains or computed scalars.  Constructor calls are opaque — without
    the runtime environment the pass cannot prove which attribute a
    keyword argument lands on.
    """
    if len(fn.params) != 1:
        return EmitSet(None, "multi-parameter UDF")
    param = fn.params[0]
    body = simplify_projections(fn.body)
    if isinstance(body, TupleExpr):
        components = tuple(
            EmitComponent(
                path=FieldPath((("index", i),)),
                source=_copy_source(item, param),
            )
            for i, item in enumerate(body.items)
        )
        return EmitSet(components)
    source = _copy_source(body, param)
    if source is not None:
        return EmitSet((EmitComponent(path=FieldPath(), source=source),))
    if isinstance(body, Call):
        return EmitSet(None, "constructor call with unknown field layout")
    return EmitSet((EmitComponent(path=FieldPath(), source=None),))


def _copy_source(expr: Expr, param: str) -> FieldPath | None:
    """The input field path ``expr`` copies, or ``None`` if computed."""
    base, steps = _peel_access(expr)
    if isinstance(base, Ref) and base.name == param:
        return FieldPath(steps)
    return None


# ---------------------------------------------------------------------------
# Projection simplification
# ---------------------------------------------------------------------------


def simplify_projections(expr: Expr) -> Expr:
    """Collapse ``(a, b, ...)[i]`` to its ``i``-th component, bottom-up.

    Generator unnesting substitutes tuple heads into downstream guards,
    so a filter over a join pair arrives as
    ``Index(TupleExpr((..., ...)), Const(i))`` — syntactically touching
    both components while semantically reading one.  Tuple construction
    and constant indexing are pure, so the rewrite is semantics-
    preserving and makes the genuine access path visible to the
    read-set analysis.
    """

    def step(node: Expr) -> Expr:
        if (
            isinstance(node, Index)
            and isinstance(node.obj, TupleExpr)
            and isinstance(node.index, Const)
            and isinstance(node.index.value, int)
            and not isinstance(node.index.value, bool)
            and -len(node.obj.items)
            <= node.index.value
            < len(node.obj.items)
        ):
            return node.obj.items[node.index.value]
        return node

    return transform(expr, step)

"""Fold-group fusion (paper Section 4.2.2).

The rewrite targets comprehensions with a generator over a ``group_by``
whose group values are consumed *exclusively* by folds::

    [[ t | g <- xs.group_by(k) ]]      with t using g.values only
                                       inside fold comprehensions

Two algebraic laws justify the rewrite:

* **Banana split** — a tuple of folds over the same bag equals one fold
  over tuples of the component algebras applied pointwise;
* **Fold-build fusion** (deforestation) — constructing the group values
  with the bag constructors and immediately consuming them with a fold
  collapses into applying the fold algebra during construction.

Together: replace the ``group_by`` with an ``agg_by`` carrying the
product of the collected fold algebras, and substitute each original
fold comprehension in the head/guards with a positional aggregate
access ``g.aggs[i]``.  Because our folds are defined over the *union*
representation, the combining functions are associative-commutative by
the well-definedness conditions, so the partial aggregation that
``agg_by`` performs on the mapper side is always legal — no extra
"homomorphy" annotations needed (contrast with Steno [29], discussed in
the paper's related work).

The rewrite is conservative: if any use of ``g.values`` escapes a fold
comprehension, or a fold comprehension over the values has more than
one generator, the ``group_by`` is left untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comprehension.exprs import (
    AggByCall,
    AlgebraSpec,
    Attr,
    Const,
    Expr,
    GroupByCall,
    Index,
    Ref,
    transform,
    walk,
)
from repro.comprehension.ir import (
    Comprehension,
    FoldKind,
    Generator,
    Guard,
    Qualifier,
)


@dataclass
class FusionStats:
    """How many group-by sites were fused (drives Table 1 reporting)."""

    fused_groups: int = 0
    fused_folds: int = 0


def fold_group_fusion(
    expr: Expr, stats: FusionStats | None = None
) -> Expr:
    """Apply fold-group fusion bottom-up across an expression tree."""
    stats = stats if stats is not None else FusionStats()

    def rewrite(node: Expr) -> Expr:
        if isinstance(node, Comprehension):
            fused = _try_fuse(node, stats)
            if fused is not None:
                return fused
        return node

    return transform(expr, rewrite)


def _try_fuse(
    comp: Comprehension, stats: FusionStats
) -> Comprehension | None:
    for gi, q in enumerate(comp.qualifiers):
        if not isinstance(q, Generator):
            continue
        if not isinstance(q.source, GroupByCall):
            continue
        fused = _fuse_generator(comp, gi, q, stats)
        if fused is not None:
            return fused
    return None


def _fuse_generator(
    comp: Comprehension,
    gi: int,
    gen: Generator,
    stats: FusionStats,
) -> Comprehension | None:
    g = gen.var
    group_by = gen.source
    assert isinstance(group_by, GroupByCall)
    values_access = Attr(Ref(g), "values")

    # Later generators must not range over the group values.
    for q in comp.qualifiers[gi + 1 :]:
        if isinstance(q, Generator) and g in q.source.free_vars():
            return None

    # The region where g is visible: the head plus later guards (and
    # the outer fold spec, where fusion is not supported).
    if isinstance(comp.kind, FoldKind) and g in comp.kind.spec.free_vars():
        return None
    region: list[Expr] = [comp.head]
    region.extend(
        q.predicate
        for q in comp.qualifiers[gi + 1 :]
        if isinstance(q, Guard)
    )

    # Collect the distinct fold comprehensions over g.values.  Folds
    # that differ only in generator variable names are the same
    # aggregate (resugaring synthesizes fresh names), so candidates are
    # deduplicated up to alpha-equivalence.
    candidates: list[Comprehension] = []
    candidate_keys: list[Comprehension] = []
    for part in region:
        for node in walk(part):
            if _is_fold_over(node, values_access):
                key = _alpha_canonical(node)  # type: ignore[arg-type]
                if not any(key == k for k in candidate_keys):
                    candidates.append(node)  # type: ignore[arg-type]
                    candidate_keys.append(key)
    if not candidates:
        return None

    # Build the fused algebra specs; abort on unsupported shapes.
    specs: list[AlgebraSpec] = []
    for cand in candidates:
        spec = _fused_spec(cand)
        if spec is None:
            return None
        specs.append(spec)

    # Substitute each candidate with a positional aggregate access and
    # then verify no use of g escaped the candidates.
    def replace(node: Expr) -> Expr:
        if not _is_fold_over(node, values_access):
            return node
        key = _alpha_canonical(node)  # type: ignore[arg-type]
        for i, cand_key in enumerate(candidate_keys):
            if key == cand_key:
                return Index(Attr(Ref(g), "aggs"), Const(i))
        return node

    new_head = transform(comp.head, replace)
    new_quals: list[Qualifier] = list(comp.qualifiers[: gi + 1])
    for q in comp.qualifiers[gi + 1 :]:
        if isinstance(q, Guard):
            new_quals.append(Guard(transform(q.predicate, replace)))
        else:
            new_quals.append(q)

    if not _uses_only_key_and_aggs(
        new_head,
        [
            q.predicate
            for q in new_quals[gi + 1 :]
            if isinstance(q, Guard)
        ],
        g,
    ):
        return None

    key = group_by.key
    new_quals[gi] = Generator(
        var=g,
        source=AggByCall(
            source=group_by.source, key=key, specs=tuple(specs)
        ),
        mode=gen.mode,
    )
    stats.fused_groups += 1
    stats.fused_folds += len(specs)
    return Comprehension(
        head=new_head, qualifiers=tuple(new_quals), kind=comp.kind
    )


def _alpha_canonical(comp: Comprehension) -> Comprehension:
    """Rename a fold comprehension's generator variable positionally.

    Single-generator fold comprehensions (the only candidate shape) get
    their variable renamed to ``_cv0`` so alpha-equivalent folds compare
    equal structurally.
    """
    (gen,) = comp.generators()
    if gen.var == "_cv0":
        return comp
    rename = {gen.var: Ref("_cv0")}
    new_quals: list[Qualifier] = []
    for q in comp.qualifiers:
        if isinstance(q, Generator):
            new_quals.append(
                Generator(var="_cv0", source=q.source, mode=q.mode)
            )
        else:
            new_quals.append(Guard(q.predicate.substitute(rename)))
    kind = comp.kind
    if isinstance(kind, FoldKind):
        kind = FoldKind(kind.spec.substitute(rename))
    return Comprehension(
        head=comp.head.substitute(rename),
        qualifiers=tuple(new_quals),
        kind=kind,
    )


def _is_fold_over(node: Expr, values_access: Expr) -> bool:
    """A single-generator fold comprehension ranging over the values."""
    if not isinstance(node, Comprehension):
        return False
    if not isinstance(node.kind, FoldKind):
        return False
    generators = node.generators()
    if len(generators) != 1:
        return False
    return generators[0].source == values_access


def _fused_spec(cand: Comprehension) -> AlgebraSpec | None:
    """Fuse the fold comprehension's body into its algebra spec.

    ``[[ h | x <- g.values, p1, ..., pn ]]^fold(e,s,u)`` becomes the
    spec ``(e, x -> s(h) if all p else e, u)`` — legal by the unit law.
    """
    (gen,) = cand.generators()
    guards = tuple(gq.predicate for gq in cand.guards())
    # Guards may only reference the element variable and outer scope —
    # they cannot reference other group values (no generators left).
    assert isinstance(cand.kind, FoldKind)
    spec = cand.kind.spec
    if spec.head is not None or spec.guards:
        return None  # already fused once; should not occur
    head = cand.head
    if isinstance(head, Ref) and head.name == gen.var and not guards:
        return spec
    return spec.fused_with(gen.var, head, guards)


def _uses_only_key_and_aggs(
    head: Expr, guard_preds: list[Expr], g: str
) -> bool:
    """After substitution, ``g`` may appear only as ``g.key``/``g.aggs``."""
    for part in [head, *guard_preds]:
        total = 0
        sanctioned = 0
        for node in walk(part):
            if isinstance(node, Ref) and node.name == g:
                total += 1
            if (
                isinstance(node, Attr)
                and node.name in ("key", "aggs")
                and node.obj == Ref(g)
            ):
                sanctioned += 1
        if total != sanctioned:
            return False
    return True

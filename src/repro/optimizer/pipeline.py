"""The compiler pass manager (paper Figure 1, steps i-iii).

``compile_program`` takes lifted driver IR and a configuration and
produces a :class:`CompiledProgram`:

1. **Inlining** — single-use bag definitions collapse into their
   consumers (Section 4.1).
2. **Caching analysis** — loop-invariant multi-use bags get ``SCache``
   statements (Section 4.4); disabled by ``EmmaConfig.caching=False``.
3. **Per-site compilation** — every maximal DataBag expression in the
   driver IR is resugared (``MC⁻¹``), normalized (unnesting; the
   exists-rule obeys ``EmmaConfig.unnesting``), fold-group-fused
   (``EmmaConfig.fold_group_fusion``), and lowered to a combinator
   dataflow, which replaces the expression as a :class:`PlanExpr`.
4. **Partition pulling** — join/group keys observed over cached names
   in the normalized sites choose the enforced partitioning at each
   cache site (``EmmaConfig.partition_pulling``).

The :class:`OptimizationReport` records which optimizations actually
fired — reproducing the paper's Table 1 is a matter of compiling each
program and reading its report.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.comprehension.exprs import (
    BagExpr,
    Env,
    Expr,
    FetchCall,
    FoldCall,
    Ref,
    StatefulCreate,
    StatefulUpdate,
    StatefulUpdateWithMessages,
    WriteCall,
)
from repro.comprehension.ir import BAG, Comprehension
from repro.comprehension.normalize import NormalizeStats, normalize
from repro.comprehension.resugar import resugar
from repro.engines.columnar import (
    default_columnar_exchange,
    default_columnar_mode,
)
from repro.engines.spill import default_memory_budget
from repro.engines.faults import FaultPlan, RetryPolicy
from repro.engines.scheduler import (
    default_execution_mode,
    default_max_parallel_tasks,
)
from repro.engines.sizes import estimate_bag_bytes
from repro.engines.tracing import CompileTrace
from repro.errors import EmmaError
from repro.frontend.driver_ir import (
    DriverProgram,
    SAssign,
    SCache,
    SExpr,
    SFor,
    SIf,
    SReturn,
    SWhile,
    Stmt,
)
from repro.lowering.chaining import ChainStats, chain_operators
from repro.lowering.combinators import Combinator, ScalarFn, explain
from repro.lowering.rules import LoweringContext, lower
from repro.optimizer.caching import (
    CacheDecision,
    insert_cache_statements,
    plan_caching,
)
from repro.optimizer.columnar_select import ColumnarStats, select_columnar
from repro.optimizer.fold_group_fusion import FusionStats, fold_group_fusion
from repro.optimizer.inlining import inline_single_use
from repro.optimizer.partition_pulling import (
    PartitionUse,
    choose_partition_keys,
    collect_partition_uses,
)
from repro.optimizer.physical_props import (
    PlanContext,
    annotate_physical,
    loop_mutated_names,
)
from repro.optimizer.reorder import ReorderStats, reorder_operators
from repro.optimizer.udf_analysis import default_udf_reordering


@dataclass(frozen=True)
class EmmaConfig:
    """Which optimizations the compiler pipeline applies."""

    inlining: bool = True
    unnesting: bool = True
    fold_group_fusion: bool = True
    caching: bool = True
    partition_pulling: bool = True
    #: ablation knob: disable the Figure 3a filter-pushdown state
    filter_pushdown: bool = True
    #: physical operator chaining: fuse maximal runs of record-wise
    #: operators into one per-partition kernel (not a Table 1 row —
    #: it is the physical layer the target engines apply below the
    #: logical rewrites)
    operator_chaining: bool = True
    #: partitioning-aware physical planning: the interesting-properties
    #: pass (:mod:`repro.optimizer.physical_props`) annotates shuffle
    #: sites as required/elidable/hoistable and joins with a plan-time
    #: strategy; also a runtime knob — the engine's cost-based strategy
    #: choice, loop-invariant hoist cache, and partitioner propagation
    #: follow it (not a Table 1 row; a post-paper physical-layer pass)
    physical_planning: bool = True
    #: UDF-aware operator reordering (:mod:`repro.optimizer.reorder`):
    #: "auto" infers field-level read/write sets over lifted UDF bodies
    #: and pushes filters below joins/groupings (and before maps) the
    #: comprehension calculus cannot move; "off" leaves black-box UDFs
    #: in place.  Results are bit-identical either way — only data
    #: volumes (shuffled bytes, operator input sizes) and therefore
    #: simulated costs move.  Default honours ``REPRO_UDF_REORDERING``.
    udf_reordering: str = field(default_factory=default_udf_reordering)

    # Runtime (not compile-time) knobs, applied to the engine by
    # ``Algorithm.run``: they do not change the compiled plans, only
    # how the simulated cluster executes them.
    #: deterministic fault schedule for the simulated cluster
    fault_plan: FaultPlan | None = None
    #: scheduler reaction to injected task failures
    retry_policy: RetryPolicy | None = None
    #: stateful-bag checkpoint cadence (0 = initial snapshot only)
    checkpoint_interval: int = 0
    #: collect hierarchical runtime spans (:mod:`repro.engines.tracing`);
    #: ``Algorithm.run`` then returns a :class:`~repro.engines.tracing.
    #: TracedRun` instead of the bare result
    tracing: bool = False
    #: host-parallel partition-task backend: "serial" (inline loops),
    #: "threads", or "processes" (true multi-core via source-shipped
    #: chain kernels); results and ``simulated_seconds`` stay
    #: bit-identical across modes — only measured wall clock changes.
    #: Defaults honour ``REPRO_EXECUTION_MODE`` so CI can run whole
    #: suites under the parallel backend.
    #: columnar batch data plane: "auto" vectorizes eligible chains
    #: when numpy is available, "on" forces the columnar path (with a
    #: pure-Python column fallback), "off" keeps every chain
    #: row-at-a-time.  Results and ``simulated_seconds`` are
    #: bit-identical either way — only wall clock and byte counters
    #: move.  Default honours ``REPRO_COLUMNAR``.
    columnar: str = field(default_factory=default_columnar_mode)
    #: columnar *exchange* plane: vectorized shuffle partitioning, hash
    #: join build/probe, and group-by over key columns ("auto" engages
    #: when numpy is available, "on" forces the PyColumn fallback,
    #: "off" keeps exchanges row-at-a-time).  Independent of
    #: ``columnar`` — results, ``simulated_seconds``, and fault
    #: schedules are bit-identical either way.  Default honours
    #: ``REPRO_COLUMNAR_EXCHANGE``.
    columnar_exchange: str = field(
        default_factory=default_columnar_exchange
    )
    execution_mode: str = field(default_factory=default_execution_mode)
    #: concurrent partition-task slots (0 = one per host CPU core);
    #: default honours ``REPRO_MAX_PARALLEL_TASKS``
    max_parallel_tasks: int = field(
        default_factory=default_max_parallel_tasks
    )
    #: re-launch straggler partition tasks (first result wins)
    speculative_execution: bool = True
    #: driver memory budget in bytes for the out-of-core layer
    #: (:mod:`repro.engines.spill`): resident cached partitions, hoist
    #: caches, and columnar batches above the budget are LRU-spilled to
    #: real temp files and lazily reloaded; over-limit group
    #: materializations degrade to external run-merge instead of
    #: raising ``SimulatedMemoryError``.  ``0`` (the default) keeps
    #: everything resident.  Results, ``simulated_seconds``, and fault
    #: schedules are bit-identical under any budget — only wall clock
    #: and the ``spill_*`` metrics move.  Default honours
    #: ``REPRO_MEMORY_BUDGET``.
    memory_budget: int = field(default_factory=default_memory_budget)

    @staticmethod
    def none() -> "EmmaConfig":
        """The unoptimized baseline (inlining stays on — it is a
        preprocessing step, not one of the paper's Table 1 rows)."""
        return EmmaConfig(
            unnesting=False,
            fold_group_fusion=False,
            caching=False,
            partition_pulling=False,
            operator_chaining=False,
            physical_planning=False,
            udf_reordering="off",
        )

    @staticmethod
    def all() -> "EmmaConfig":
        return EmmaConfig()

    def label(self) -> str:
        """A short human-readable configuration name."""
        parts = []
        if self.unnesting:
            parts.append("unnesting")
        if self.fold_group_fusion:
            parts.append("fold-group-fusion")
        if self.caching:
            parts.append("caching")
        if self.partition_pulling:
            parts.append("partition-pulling")
        return "+".join(parts) if parts else "baseline"


@dataclass
class OptimizationReport:
    """What the compiler did — the per-program row of Table 1."""

    config: EmmaConfig = field(default_factory=EmmaConfig)
    inlined_definitions: int = 0
    exists_unnests: int = 0
    generator_unnests: int = 0
    head_unnests: int = 0
    fused_groups: int = 0
    fused_folds: int = 0
    cache_decisions: list[CacheDecision] = field(default_factory=list)
    partition_keys: dict[str, ScalarFn] = field(default_factory=dict)
    dataflow_sites: int = 0
    operator_chains: int = 0
    chained_operators: int = 0
    #: chains the kernel-selection rule marked for the columnar plane
    columnar_chains: int = 0
    #: exchange operators (joins, group-bys) marked for columnar
    #: shuffle/build/probe over key columns
    columnar_exchanges: int = 0
    physical_joins: int = 0
    elidable_shuffle_inputs: int = 0
    hoistable_shuffle_inputs: int = 0
    #: UDF read/write-set analyses performed by the reordering pass
    udfs_analyzed: int = 0
    #: operator reorderings the pass applied / rejected on cost grounds
    reorders_applied: int = 0
    reorders_rejected: int = 0

    @property
    def unnesting_applied(self) -> bool:
        return self.exists_unnests > 0

    @property
    def fold_group_fusion_applied(self) -> bool:
        return self.fused_groups > 0

    @property
    def caching_applied(self) -> bool:
        return bool(self.cache_decisions)

    @property
    def partition_pulling_applied(self) -> bool:
        return bool(self.partition_keys)

    @property
    def operator_chaining_applied(self) -> bool:
        return self.operator_chains > 0

    @property
    def physical_planning_applied(self) -> bool:
        return bool(
            self.elidable_shuffle_inputs or self.hoistable_shuffle_inputs
        )

    @property
    def udf_reordering_applied(self) -> bool:
        return self.reorders_applied > 0

    def table1_row(self) -> dict[str, bool]:
        """The applicability row: optimization name -> applied."""
        return {
            "unnesting": self.unnesting_applied,
            "fold_group_fusion": self.fold_group_fusion_applied,
            "caching": self.caching_applied,
            "partition_pulling": self.partition_pulling_applied,
        }


@dataclass(frozen=True)
class PlanExpr(Expr):
    """A compiled dataflow site embedded in a driver expression.

    ``kind`` selects the runtime action:

    * ``"bag"`` — defer (lazy thunk, Spark/Flink-style);
    * ``"scalar"`` — run the fold job now, return the scalar;
    * ``"fetch"`` — run and collect to the driver;
    * ``"write"`` — run and write the result to the simulated DFS.

    Evaluation reaches the engine through the reserved environment
    names ``__engine__`` and ``__denv__`` installed by the driver
    interpreter.
    """

    plan: Combinator = None  # type: ignore[assignment]
    kind: str = "bag"
    path: Expr | None = None

    def free_vars(self) -> frozenset[str]:
        # The plan's references resolve from the full driver env at
        # runtime; captured-name analysis ran before compilation.
        return frozenset()

    def substitute(self, mapping: Mapping[str, Expr]) -> "Expr":
        return self

    def is_bag_typed(self) -> bool:
        return self.kind == "bag"

    def evaluate(self, env: Env) -> Any:
        engine = env.lookup("__engine__")
        denv = env.lookup("__denv__")
        if self.kind == "bag":
            return engine.defer(self.plan, denv)
        if self.kind == "scalar":
            return engine.run_scalar(self.plan, denv)
        if self.kind == "fetch":
            return engine.collect(engine.defer(self.plan, denv))
        if self.kind == "write":
            records = engine.collect(engine.defer(self.plan, denv))
            path = self.path.evaluate(env)
            job = engine._new_job()
            nbytes = estimate_bag_bytes(records)
            job.charge_spread(engine.cost.dfs_write_seconds(nbytes))
            engine.metrics.dfs_write_bytes += nbytes
            engine.dfs.put(path, records)
            engine._finish_job(job)
            return None
        raise EmmaError(f"unknown PlanExpr kind {self.kind!r}")


@dataclass
class CompiledProgram:
    """A driver program with compiled dataflow sites."""

    program: DriverProgram
    partition_keys: dict[str, ScalarFn]
    report: OptimizationReport
    #: (site expression after rewriting, lowered plan, in_loop) triples
    sites: list[tuple[Expr, Combinator, bool]] = field(
        default_factory=list
    )
    #: per-pass provenance (always collected; rendering is lazy)
    trace: CompileTrace | None = None
    #: content fingerprint of (lifted IR, plan-affecting knobs) — the
    #: plan-cache key (:mod:`repro.optimizer.fingerprint`)
    fingerprint: str | None = None
    #: host seconds the compile pipeline took (what a plan-cache hit
    #: saves; charged to ``metrics.compile_seconds_saved`` on hits)
    compile_seconds: float = 0.0
    #: provenance of this object: ``"fresh-compile"`` or ``"plan-cache"``
    cache_origin: str = "fresh-compile"

    def explain(
        self, comprehensions: bool = False, trace: bool = False
    ) -> str:
        """All compiled dataflow plans, one indented tree per site.

        With ``comprehensions=True``, each site is prefixed by its
        rewritten comprehension view in Grust notation — the paper's
        intermediate representation, as the compiler saw it after
        normalization and fold-group fusion.  With ``trace=True``, the
        plans are followed by the compile-provenance report: every pass
        that fired (or was skipped, and why), with the IR term before
        and after.
        """
        from repro.comprehension.pretty import pretty

        blocks = []
        task_width = None
        if self.report.config.execution_mode != "serial":
            import os

            task_width = self.report.config.max_parallel_tasks or (
                os.cpu_count() or 1
            )
            blocks.append(
                f"-- execution: mode={self.report.config.execution_mode}"
                f" max-task-width={task_width} --"
            )
        if self.report.config.memory_budget:
            blocks.append(
                "-- memory: budget="
                f"{self.report.config.memory_budget}B"
                " spill=lru-to-disk group-overflow=external-merge --"
            )
        if self.fingerprint:
            blocks.append(
                f"-- plan: fingerprint={self.fingerprint[:12]}"
                f" source={self.cache_origin} --"
            )
        for i, (expr, plan, in_loop) in enumerate(self.sites):
            suffix = " (in loop)" if in_loop else ""
            lines = [f"-- site {i}{suffix} --"]
            if comprehensions:
                lines.append(f"view: {pretty(expr)}")
            lines.append(explain(plan, task_width=task_width))
            blocks.append("\n".join(lines))
        if trace and self.trace is not None:
            blocks.append(self.trace.render())
        return "\n".join(blocks)


class _SiteCompiler:
    """Compiles driver expressions, replacing dataflow sites in place."""

    def __init__(
        self,
        config: EmmaConfig,
        report: OptimizationReport,
        trace: CompileTrace | None = None,
        loop_mutated: frozenset[str] = frozenset(),
    ) -> None:
        self.config = config
        self.report = report
        self.trace = trace
        self.loop_mutated = loop_mutated
        self.bag_names: set[str] = set()
        self.stateful_names: set[str] = set()
        self.partition_uses: list[PartitionUse] = []
        self.sites: list[tuple[Expr, Combinator, bool]] = []
        self._in_loop = False

    # -- site pipeline ------------------------------------------------------

    def compile_site(self, expr: Expr) -> Combinator:
        site = self.report.dataflow_sites
        trace = self.trace
        norm_stats = NormalizeStats()
        rewritten = resugar(expr)
        if trace is not None:
            trace.record(
                "site compilation",
                "resugar",
                True,
                detail="MC⁻¹ recovered the comprehension view",
                site=site,
                before=expr,
                after=rewritten,
            )
        normalized = normalize(
            rewritten,
            unnest_exists=self.config.unnesting,
            stats=norm_stats,
        )
        if trace is not None:
            total = (
                norm_stats.exists_unnests
                + norm_stats.generator_unnests
                + norm_stats.head_unnests
            )
            detail = (
                f"exists={norm_stats.exists_unnests} "
                f"generator={norm_stats.generator_unnests} "
                f"head={norm_stats.head_unnests} unnests"
            )
            if not self.config.unnesting:
                detail += " (exists-unnesting disabled by config)"
            trace.record(
                "site compilation",
                "normalize",
                total > 0,
                detail=detail,
                site=site,
                before=rewritten if total else None,
                after=normalized if total else None,
            )
        rewritten = normalized
        self.report.exists_unnests += norm_stats.exists_unnests
        self.report.generator_unnests += norm_stats.generator_unnests
        self.report.head_unnests += norm_stats.head_unnests
        if self.config.fold_group_fusion:
            fusion = FusionStats()
            fused = fold_group_fusion(rewritten, fusion)
            if trace is not None:
                fired = fusion.fused_groups > 0
                trace.record(
                    "site compilation",
                    "fold-group-fusion",
                    fired,
                    detail=(
                        f"{fusion.fused_groups} group(s) with "
                        f"{fusion.fused_folds} fold(s) fused into agg_by"
                        if fired
                        else "no group consumed exclusively by folds"
                    ),
                    site=site,
                    before=rewritten if fired else None,
                    after=fused if fired else None,
                )
            rewritten = fused
            self.report.fused_groups += fusion.fused_groups
            self.report.fused_folds += fusion.fused_folds
        elif trace is not None:
            trace.record(
                "site compilation",
                "fold-group-fusion",
                False,
                detail="disabled by config",
                site=site,
            )
        self.partition_uses.extend(
            collect_partition_uses(rewritten, self._in_loop)
        )
        plan = lower(
            rewritten,
            LoweringContext(
                driver_vars=frozenset(self.bag_names),
                push_filters=self.config.filter_pushdown,
                trace=trace,
                site=site,
            ),
        )
        if trace is not None:
            trace.record(
                "site compilation",
                "lower",
                True,
                detail="comprehension realized as a combinator dataflow",
                site=site,
                after=plan,
            )
        if self.config.udf_reordering != "off":
            reorder_stats = ReorderStats()
            reorder_ctx = PlanContext(
                in_loop=self._in_loop,
                cached_names=frozenset(
                    d.name for d in self.report.cache_decisions
                ),
                stateful_names=frozenset(self.stateful_names),
                loop_mutated=self.loop_mutated,
            )
            before_events = len(trace) if trace is not None else 0
            plan = reorder_operators(
                plan, reorder_stats, reorder_ctx, trace=trace, site=site
            )
            self.report.udfs_analyzed += reorder_stats.udfs_analyzed
            self.report.reorders_applied += reorder_stats.applied
            self.report.reorders_rejected += reorder_stats.rejected
            if trace is not None and len(trace) == before_events:
                trace.record(
                    "udf reordering",
                    "push-filter",
                    False,
                    detail=(
                        "no movable filter above a join/grouping/map "
                        "in this plan"
                    ),
                    site=site,
                )
        elif trace is not None:
            trace.record(
                "udf reordering",
                "push-filter",
                False,
                detail="disabled by config",
                site=site,
            )
        if self.config.operator_chaining:
            chain_stats = ChainStats()
            before_events = len(trace) if trace is not None else 0
            plan = chain_operators(
                plan, chain_stats, trace=trace, site=site
            )
            self.report.operator_chains += chain_stats.chains
            self.report.chained_operators += (
                chain_stats.chained_operators
            )
            if trace is not None and len(trace) == before_events:
                trace.record(
                    "operator chaining",
                    "chain-fuse",
                    False,
                    detail=(
                        "no run of two or more adjacent record-wise "
                        "operators in this plan"
                    ),
                    site=site,
                )
        elif trace is not None:
            trace.record(
                "operator chaining",
                "chain-fuse",
                False,
                detail="disabled by config",
                site=site,
            )
        chains_on = (
            self.config.operator_chaining and self.config.columnar != "off"
        )
        if chains_on or self.config.columnar_exchange != "off":
            col_stats = ColumnarStats()
            plan = select_columnar(
                plan,
                col_stats,
                trace=trace,
                site=site,
                exchange=self.config.columnar_exchange,
                chains=chains_on,
            )
            self.report.columnar_chains += col_stats.columnar_chains
            self.report.columnar_exchanges += col_stats.columnar_exchanges
        if not chains_on and trace is not None:
            trace.record(
                "columnar selection",
                "vectorize-chain",
                False,
                detail=(
                    "disabled by config"
                    if self.config.operator_chaining
                    else "no fused chains without operator chaining"
                ),
                site=site,
            )
        self.report.dataflow_sites += 1
        self.sites.append((rewritten, plan, self._in_loop))
        return plan

    # -- expression walk ------------------------------------------------------

    def compile_expr(self, expr: Expr) -> Expr:
        if isinstance(expr, WriteCall):
            plan = self.compile_site(expr.source)
            return PlanExpr(
                plan=plan,
                kind="write",
                path=self.compile_expr(expr.path),
            )
        if isinstance(expr, FetchCall):
            return PlanExpr(
                plan=self.compile_site(expr.source), kind="fetch"
            )
        if isinstance(expr, StatefulCreate):
            return replace(
                expr, source=self.compile_expr(expr.source)
            )
        if isinstance(expr, (StatefulUpdate, StatefulUpdateWithMessages)):
            changes: dict[str, Expr] = {}
            if isinstance(expr, StatefulUpdateWithMessages):
                changes["messages"] = self.compile_expr(expr.messages)
            return replace(expr, **changes) if changes else expr
        if isinstance(expr, FoldCall):
            return PlanExpr(
                plan=self.compile_site(expr), kind="scalar"
            )
        if self._is_bag(expr):
            return PlanExpr(plan=self.compile_site(expr), kind="bag")
        return expr.rebuild(self.compile_expr)

    def _is_bag(self, expr: Expr) -> bool:
        if isinstance(expr, Comprehension):
            return expr.kind is BAG
        if isinstance(expr, BagExpr):
            return True
        if isinstance(expr, Ref):
            return expr.name in self.bag_names
        return False

    # -- statement walk -----------------------------------------------------------

    def compile_block(self, stmts: tuple[Stmt, ...]) -> tuple[Stmt, ...]:
        out: list[Stmt] = []
        for stmt in stmts:
            out.append(self.compile_stmt(stmt))
        return tuple(out)

    def compile_stmt(self, stmt: Stmt) -> Stmt:
        if isinstance(stmt, SAssign):
            if stmt.stateful:
                self.stateful_names.add(stmt.name)
                self.bag_names.discard(stmt.name)
            elif stmt.bag_typed:
                self.bag_names.add(stmt.name)
                self.stateful_names.discard(stmt.name)
            else:
                self.bag_names.discard(stmt.name)
                self.stateful_names.discard(stmt.name)
            return replace(stmt, value=self.compile_expr(stmt.value))
        if isinstance(stmt, SExpr):
            return replace(stmt, value=self.compile_expr(stmt.value))
        if isinstance(stmt, SReturn):
            if stmt.value is None:
                return stmt
            return replace(stmt, value=self.compile_expr(stmt.value))
        if isinstance(stmt, SWhile):
            cond = self.compile_expr(stmt.cond)
            prev, self._in_loop = self._in_loop, True
            body = self.compile_block(stmt.body)
            self._in_loop = prev
            return replace(stmt, cond=cond, body=body)
        if isinstance(stmt, SFor):
            iterable = self.compile_expr(stmt.iterable)
            prev, self._in_loop = self._in_loop, True
            body = self.compile_block(stmt.body)
            self._in_loop = prev
            return replace(stmt, iterable=iterable, body=body)
        if isinstance(stmt, SIf):
            return replace(
                stmt,
                cond=self.compile_expr(stmt.cond),
                then=self.compile_block(stmt.then),
                orelse=self.compile_block(stmt.orelse),
            )
        if isinstance(stmt, SCache):
            return stmt
        raise EmmaError(
            f"cannot compile statement {type(stmt).__name__}"
        )


def compile_program(
    program: DriverProgram, config: EmmaConfig | None = None
) -> CompiledProgram:
    """Run the full pipeline; see the module docstring."""
    import time

    from repro.optimizer.fingerprint import (
        PLAN_KNOBS,
        plan_fingerprint,
    )

    started = time.perf_counter()
    config = config or EmmaConfig()
    report = OptimizationReport(config=config)
    trace = CompileTrace()

    # 0. Fingerprint: the content identity of (lifted IR, plan knobs),
    # computed *before* any rewriting so a plan cache can key lookups
    # without compiling (:mod:`repro.engines.plancache`).
    fingerprint = plan_fingerprint(program, config)
    trace.record(
        "fingerprint",
        "plan-fingerprint",
        True,
        detail=(
            f"sha256:{fingerprint[:12]} over canonical IR + "
            f"{len(PLAN_KNOBS)} plan-affecting knobs"
        ),
    )

    # 1. Inlining.
    if config.inlining:
        before_program = program
        program, inlined = inline_single_use(program)
        report.inlined_definitions = inlined
        trace.record(
            "inlining",
            "inline-single-use",
            inlined > 0,
            detail=(
                f"{inlined} single-use definition(s) spliced into "
                "their consumers"
                if inlined
                else "no single-use bag definitions"
            ),
            before=before_program if inlined else None,
            after=program if inlined else None,
        )
    else:
        trace.record(
            "inlining",
            "inline-single-use",
            False,
            detail="disabled by config",
        )

    # 2. Caching analysis (before sites are replaced by plans).
    if config.caching:
        decisions = plan_caching(program)
        report.cache_decisions = decisions
        if decisions:
            for d in decisions:
                trace.record(
                    "caching",
                    "cache-insert",
                    True,
                    detail=f"{d.name}: {d.reason}",
                )
        else:
            trace.record(
                "caching",
                "cache-insert",
                False,
                detail="no loop-invariant multi-use bags",
            )
        program = insert_cache_statements(program, decisions)
    else:
        trace.record(
            "caching", "cache-insert", False, detail="disabled by config"
        )

    # 3. Per-site compilation.  Loop-mutated names are collected up
    # front so the per-site reordering pass can consult them (the
    # mutation structure of the driver IR does not change when sites
    # are replaced by plans).
    compiler = _SiteCompiler(
        config,
        report,
        trace=trace,
        loop_mutated=loop_mutated_names(program),
    )
    compiler.bag_names |= set(program.bag_params)
    compiled_body = compiler.compile_block(program.body)
    compiled = program.with_body(compiled_body)

    # 4. Partition pulling.
    partition_keys: dict[str, ScalarFn] = {}
    if config.partition_pulling and report.cache_decisions:
        cached = {d.name for d in report.cache_decisions}
        partition_keys = choose_partition_keys(
            compiler.partition_uses, cached
        )
        report.partition_keys = partition_keys
        if partition_keys:
            for name, key in partition_keys.items():
                trace.record(
                    "partition pulling",
                    "partition-key",
                    True,
                    detail=(
                        f"{name} hash-partitioned on "
                        f"{key.describe()} at its cache site"
                    ),
                )
        else:
            trace.record(
                "partition pulling",
                "partition-key",
                False,
                detail="no join/group key observed over cached names",
            )
    elif config.partition_pulling:
        trace.record(
            "partition pulling",
            "partition-key",
            False,
            detail="nothing cached to pre-partition",
        )
    else:
        trace.record(
            "partition pulling",
            "partition-key",
            False,
            detail="disabled by config",
        )

    # 5. Physical planning: the interesting-properties pass annotates
    # every site plan with delivered/required partitionings, shuffle-
    # input motion classes, and plan-time join strategies.
    sites = compiler.sites
    if config.physical_planning:
        cached_names = frozenset(
            d.name for d in report.cache_decisions
        )
        mutated = compiler.loop_mutated
        plan_map: dict[int, Combinator] = {}
        new_sites: list[tuple[Expr, Combinator, bool]] = []
        for idx, (expr, plan, in_loop) in enumerate(sites):
            ctx = PlanContext(
                in_loop=in_loop,
                cached_names=cached_names,
                stateful_names=frozenset(compiler.stateful_names),
                partition_keys=partition_keys,
                loop_mutated=mutated,
            )
            annotated, stats = annotate_physical(plan, ctx)
            plan_map[id(plan)] = annotated
            new_sites.append((expr, annotated, in_loop))
            report.physical_joins += stats.annotated_joins
            report.elidable_shuffle_inputs += stats.elidable_inputs
            report.hoistable_shuffle_inputs += stats.hoistable_inputs
            trace.record(
                "physical planning",
                "interesting-properties",
                stats.fired,
                detail=stats.summary(),
                site=idx,
                after=annotated if stats.fired else None,
            )
            for decision in stats.decisions:
                trace.record(
                    "physical planning",
                    "join-strategy",
                    True,
                    detail=decision,
                    site=idx,
                )
        sites = new_sites
        compiled = compiled.with_body(
            _replace_site_plans(compiled.body, plan_map)
        )
    else:
        trace.record(
            "physical planning",
            "interesting-properties",
            False,
            detail="disabled by config",
        )

    return CompiledProgram(
        program=compiled,
        partition_keys=partition_keys,
        report=report,
        sites=sites,
        trace=trace,
        fingerprint=fingerprint,
        compile_seconds=time.perf_counter() - started,
    )


def _replace_site_plans(
    stmts: tuple[Stmt, ...], plan_map: Mapping[int, Combinator]
) -> tuple[Stmt, ...]:
    """Swap every embedded :class:`PlanExpr`'s plan for its annotated
    copy (matched by the original plan object's identity)."""

    def rewrite_expr(expr: Expr) -> Expr:
        if isinstance(expr, PlanExpr):
            changes: dict[str, Any] = {}
            annotated = plan_map.get(id(expr.plan))
            if annotated is not None:
                changes["plan"] = annotated
            if expr.path is not None:
                changes["path"] = rewrite_expr(expr.path)
            return replace(expr, **changes) if changes else expr
        return expr.rebuild(rewrite_expr)

    def rewrite_stmt(stmt: Stmt) -> Stmt:
        if isinstance(stmt, (SAssign, SExpr)):
            return replace(stmt, value=rewrite_expr(stmt.value))
        if isinstance(stmt, SReturn):
            if stmt.value is None:
                return stmt
            return replace(stmt, value=rewrite_expr(stmt.value))
        if isinstance(stmt, SWhile):
            return replace(
                stmt,
                cond=rewrite_expr(stmt.cond),
                body=tuple(rewrite_stmt(s) for s in stmt.body),
            )
        if isinstance(stmt, SFor):
            return replace(
                stmt,
                iterable=rewrite_expr(stmt.iterable),
                body=tuple(rewrite_stmt(s) for s in stmt.body),
            )
        if isinstance(stmt, SIf):
            return replace(
                stmt,
                cond=rewrite_expr(stmt.cond),
                then=tuple(rewrite_stmt(s) for s in stmt.then),
                orelse=tuple(rewrite_stmt(s) for s in stmt.orelse),
            )
        return stmt

    return tuple(rewrite_stmt(s) for s in stmts)

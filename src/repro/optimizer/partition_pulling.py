"""Partition pulling (paper Section 4.4, "Partition Pulling").

"Partitionings that can be reused by a certain dataflow (e.g. on a join
or group key) can be spotted by Emma and enforced earlier in the
pipeline. ... (i) compute the sets of interesting partitionings for
each dataflow result based on its occurrence in other dataflow inputs,
and (ii) enforce a partitioning at the producer site based on a
weighted scheme that prefers consumers occurring within a loop
structure."

This pass runs over the *normalized* dataflow-site expressions (so
equi-join predicates and ``agg_by``/``group_by`` keys are explicit) and
collects, for every cached name, the keys on which its consumers join
or group.  The weighted winner becomes the cache site's enforced
partitioning — the one shuffle it costs is paid when the cache is
built, outside the loop, and every consuming iteration reuses it (the
synergy with caching that Figure 4's rightmost bars demonstrate).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.comprehension.exprs import (
    AggByCall,
    Compare,
    Expr,
    GroupByCall,
    Ref,
    walk,
)
from repro.comprehension.ir import Comprehension, Generator, Guard
from repro.lowering.combinators import ScalarFn

_LOOP_WEIGHT = 4


@dataclass(frozen=True)
class PartitionUse:
    """One observed key use for a named bag.

    ``partner`` names the other side of an equi-join/semi-join use
    (``None`` for grouping uses).  An enforced partitioning on one join
    side only eliminates a shuffle when the other side's partitioning
    also survives loop iterations, so the chooser requires join
    partners to be cached too.
    """

    name: str
    key: ScalarFn
    weight: int
    partner: str | None = None
    kind: str = "join"  # "join" | "group"


def collect_partition_uses(
    site_expr: Expr, in_loop: bool
) -> list[PartitionUse]:
    """Interesting partitionings in one normalized dataflow site."""
    weight = _LOOP_WEIGHT if in_loop else 1
    uses: list[PartitionUse] = []
    for node in walk(site_expr):
        if isinstance(node, (GroupByCall, AggByCall)):
            if isinstance(node.source, Ref):
                key = node.key
                uses.append(
                    PartitionUse(
                        name=node.source.name,
                        key=ScalarFn(key.params, key.body).canonical(),
                        weight=weight,
                        kind="group",
                    )
                )
        if isinstance(node, Comprehension):
            uses.extend(_comprehension_uses(node, weight))
    return uses


def _comprehension_uses(
    comp: Comprehension, weight: int
) -> list[PartitionUse]:
    """Equi-predicate key uses for generators ranging over named bags."""
    named_gens = {
        q.var: q.source.name
        for q in comp.qualifiers
        if isinstance(q, Generator) and isinstance(q.source, Ref)
    }
    if not named_gens:
        return []
    uses: list[PartitionUse] = []
    for q in comp.qualifiers:
        if not isinstance(q, Guard):
            continue
        pred = q.predicate
        if not isinstance(pred, Compare) or pred.op != "==":
            continue
        sides = (pred.left, pred.right)
        side_vars: list[str | None] = []
        for side in sides:
            names = side.free_vars()
            if len(names) == 1 and next(iter(names)) in named_gens:
                side_vars.append(next(iter(names)))
            else:
                side_vars.append(None)
        for side, var, other_var in zip(
            sides, side_vars, reversed(side_vars)
        ):
            if var is None:
                continue
            partner = (
                named_gens[other_var] if other_var is not None else None
            )
            uses.append(
                PartitionUse(
                    name=named_gens[var],
                    key=ScalarFn((var,), side).canonical(),
                    weight=weight,
                    partner=partner,
                )
            )
    return uses


def choose_partition_keys(
    uses: list[PartitionUse], cached_names: set[str]
) -> dict[str, ScalarFn]:
    """Pick the weighted-majority key per cached name."""
    tallies: dict[str, Counter] = {}
    keys_by_repr: dict[tuple[str, str], ScalarFn] = {}
    for use in uses:
        if use.name not in cached_names:
            continue
        # Join-key uses only count when the partner side's partitioning
        # also survives (i.e. the partner is cached); an enforced
        # partitioning against a recomputed partner elides no shuffle.
        if use.kind == "join" and (
            use.partner is None or use.partner not in cached_names
        ):
            continue
        key_id = use.key.describe()
        tallies.setdefault(use.name, Counter())[key_id] += use.weight
        keys_by_repr[(use.name, key_id)] = use.key
    chosen: dict[str, ScalarFn] = {}
    for name, tally in tallies.items():
        best_key_id, _votes = tally.most_common(1)[0]
        chosen[name] = keys_by_repr[(name, best_key_id)]
    return chosen

"""Inlining of single-use bag definitions (paper Section 4.1).

"As a preprocessing step, we also inline all value definitions whose
right-hand side is comprehended and referenced only once.  This results
in bigger comprehensions and increases the chances of discovering and
applying comprehension level rewrites."

The pass is conservative about effects and evaluation counts:

* only bag-typed, non-stateful assignments are inlined;
* the definition must be used exactly once in the *whole program*;
* the single use must be in a later statement of the same block — a use
  inside a nested loop body or a loop condition would change how many
  times the dataflow is (re)evaluated relative to its definition;
* no name free in the right-hand side (nor the defined name itself) may
  be reassigned between the definition and the use.

One definition is inlined per round, and rounds repeat to a fixpoint,
so chains collapse (``clusters`` inlines into ``new_ctrds``, which
inlines into its consumer, and so on).
"""

from __future__ import annotations

from repro.comprehension.exprs import Expr, Ref, walk
from repro.frontend.driver_ir import (
    DriverProgram,
    SAssign,
    SExpr,
    SFor,
    SIf,
    SReturn,
    SWhile,
    Stmt,
)

_MAX_ROUNDS = 64


def count_free_refs(expr: Expr, name: str) -> int:
    """Occurrences of ``name`` as a *free* reference in ``expr``.

    Implemented via binder-correct substitution: replace free ``name``
    with a marker and count markers.
    """
    marker = Ref("__inline_count_marker__")
    substituted = expr.substitute({name: marker})
    return sum(
        1
        for node in walk(substituted)
        if isinstance(node, Ref)
        and node.name == "__inline_count_marker__"
    )


def stmt_exprs(stmt: Stmt) -> tuple[Expr, ...]:
    """The expressions directly attached to a statement."""
    if isinstance(stmt, SAssign):
        return (stmt.value,)
    if isinstance(stmt, SExpr):
        return (stmt.value,)
    if isinstance(stmt, SWhile):
        return (stmt.cond,)
    if isinstance(stmt, SIf):
        return (stmt.cond,)
    if isinstance(stmt, SFor):
        return (stmt.iterable,)
    if isinstance(stmt, SReturn):
        return (stmt.value,) if stmt.value is not None else ()
    return ()


def count_in_stmt_tree(stmt: Stmt, name: str) -> int:
    """Free uses of ``name`` in a statement and all nested blocks."""
    total = sum(count_free_refs(e, name) for e in stmt_exprs(stmt))
    for child in stmt.children():
        total += count_in_stmt_tree(child, name)
    return total


def assigned_names(stmt: Stmt) -> set[str]:
    """Names assigned anywhere within a statement tree."""
    names: set[str] = set()
    if isinstance(stmt, SAssign):
        names.add(stmt.name)
    if isinstance(stmt, SFor):
        names.add(stmt.var)
    for child in stmt.children():
        names |= assigned_names(child)
    return names


def inline_single_use(
    program: DriverProgram,
) -> tuple[DriverProgram, int]:
    """Inline single-use bag definitions; returns (program, count)."""
    total = 0
    for _ in range(_MAX_ROUNDS):
        rewritten = _inline_one(program)
        if rewritten is None:
            break
        program = rewritten
        total += 1
    return program, total


def _inline_one(program: DriverProgram) -> DriverProgram | None:
    """Perform at most one inlining step; None when nothing applies."""
    new_body = _inline_in_block(program.body, program)
    if new_body is None:
        return None
    return program.with_body(new_body)


def _inline_in_block(
    block: tuple[Stmt, ...], program: DriverProgram
) -> tuple[Stmt, ...] | None:
    stmts = list(block)
    for i, stmt in enumerate(stmts):
        # Try nested blocks first (innermost definitions collapse first).
        if isinstance(stmt, SWhile):
            inner = _inline_in_block(stmt.body, program)
            if inner is not None:
                stmts[i] = SWhile(
                    cond=stmt.cond, body=inner, line=stmt.line
                )
                return tuple(stmts)
        elif isinstance(stmt, SFor):
            inner = _inline_in_block(stmt.body, program)
            if inner is not None:
                stmts[i] = SFor(
                    var=stmt.var,
                    iterable=stmt.iterable,
                    body=inner,
                    line=stmt.line,
                )
                return tuple(stmts)
        elif isinstance(stmt, SIf):
            inner = _inline_in_block(stmt.then, program)
            if inner is not None:
                stmts[i] = SIf(
                    cond=stmt.cond,
                    then=inner,
                    orelse=stmt.orelse,
                    line=stmt.line,
                )
                return tuple(stmts)
            inner = _inline_in_block(stmt.orelse, program)
            if inner is not None:
                stmts[i] = SIf(
                    cond=stmt.cond,
                    then=stmt.then,
                    orelse=inner,
                    line=stmt.line,
                )
                return tuple(stmts)
        target = _find_use_site(stmt, stmts, i, program)
        if target is not None:
            j, rewritten = target
            stmts[j] = rewritten
            del stmts[i]
            return tuple(stmts)
    return None


def _find_use_site(
    stmt: Stmt,
    stmts: list[Stmt],
    i: int,
    program: DriverProgram,
) -> tuple[int, Stmt] | None:
    """If ``stmts[i]`` can inline into a later sibling, return the
    sibling index and its rewritten form."""
    if not isinstance(stmt, SAssign) or not stmt.bag_typed:
        return None
    if stmt.stateful:
        return None
    name = stmt.name
    # Exactly one use across the whole (current) program, excluding the
    # definition itself.
    uses = 0
    for s in program.walk():
        if s is stmt:
            continue
        uses += sum(count_free_refs(e, name) for e in stmt_exprs(s))
    if uses != 1:
        return None
    rhs_deps = stmt.value.free_vars() | {name}
    for j in range(i + 1, len(stmts)):
        later = stmts[j]
        direct_uses = sum(
            count_free_refs(e, name) for e in stmt_exprs(later)
        )
        nested_uses = count_in_stmt_tree(later, name) - direct_uses
        if nested_uses:
            return None  # the single use hides inside a nested block
        if direct_uses == 1:
            if isinstance(later, SWhile):
                return None  # loop conditions re-evaluate per iteration
            return j, _substitute_stmt(later, name, stmt.value)
        # No use here: a reassignment of a dependency blocks inlining.
        if assigned_names(later) & rhs_deps:
            return None
    return None


def _substitute_stmt(stmt: Stmt, name: str, value: Expr) -> Stmt:
    mapping = {name: value}
    if isinstance(stmt, SAssign):
        return SAssign(
            name=stmt.name,
            value=stmt.value.substitute(mapping),
            bag_typed=stmt.bag_typed,
            stateful=stmt.stateful,
            line=stmt.line,
        )
    if isinstance(stmt, SExpr):
        return SExpr(
            value=stmt.value.substitute(mapping), line=stmt.line
        )
    if isinstance(stmt, SReturn):
        assert stmt.value is not None
        return SReturn(
            value=stmt.value.substitute(mapping), line=stmt.line
        )
    if isinstance(stmt, SIf):
        return SIf(
            cond=stmt.cond.substitute(mapping),
            then=stmt.then,
            orelse=stmt.orelse,
            line=stmt.line,
        )
    if isinstance(stmt, SFor):
        return SFor(
            var=stmt.var,
            iterable=stmt.iterable.substitute(mapping),
            body=stmt.body,
            line=stmt.line,
        )
    raise AssertionError(f"cannot inline into {type(stmt).__name__}")

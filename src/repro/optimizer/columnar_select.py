"""Per-chain columnar/row kernel selection.

After physical operator chaining, each :class:`~repro.lowering.
combinators.CChain` can execute either row-at-a-time (the classic
fused kernel loop) or batch-at-a-time over :class:`~repro.engines.
columnar.ColumnBatch` partitions.  This pass applies the
*kernel-selection rule* per chain:

* every step must be in the vectorizable scalar subset
  (:func:`repro.engines.chainkernel.vectorizable_reason` — maps over
  columns, filters via selection masks; flat-maps always stream rows);
* a chain that the executor will fuse into a downstream aggregation's
  mapper phase stays row-at-a-time (it streams straight into the
  partial-aggregation accumulators and never materializes a batch).

The decision is recorded on the chain node (``columnar`` /
``columnar_reason``), rendered by ``explain()`` as
``Chain[... | columnar]`` or ``Chain[... | row]``, and traced with the
reason.  Selection is static; the executor re-checks the dynamic half
(actual record layout, binding values) per job and falls back to the
row kernel — counting ``columnar_fallbacks`` — when a partition's
types do not cooperate.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.engines.chainkernel import (
    FILTER,
    FLATMAP,
    MAP,
    vectorizable_reason,
)
from repro.lowering.chaining import consumer_counts
from repro.lowering.combinators import (
    CAggBy,
    CChain,
    CEqJoin,
    CFilter,
    CFlatMap,
    CGroupBy,
    CMap,
    CSemiJoin,
    Combinator,
    ScalarFn,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.engines.tracing import CompileTrace


@dataclass
class ColumnarStats:
    """What the pass decided — one count per selected plane."""

    columnar_chains: int = 0
    row_chains: int = 0
    columnar_exchanges: int = 0
    row_exchanges: int = 0


def chain_step_descs(
    chain: CChain,
) -> tuple[tuple[str, tuple[str, ...], object], ...]:
    """The ``(kind, params, body)`` description of each chain step."""
    out = []
    for op in chain.ops:
        if isinstance(op, CMap):
            out.append((MAP, op.fn.params, op.fn.body))
        elif isinstance(op, CFlatMap):
            out.append((FLATMAP, op.fn.params, op.fn.body))
        elif isinstance(op, CFilter):
            out.append(
                (FILTER, op.predicate.params, op.predicate.body)
            )
        else:  # pragma: no cover - chains only hold narrow operators
            out.append(("?", (), None))
    return tuple(out)


def exchange_key_reason(key) -> str:
    """Why a shuffle/join/group key UDF cannot run as a column.

    Exchange keys are evaluated through a single-step MAP vector
    kernel, so the eligibility rule is exactly the chain rule applied
    to that one step.
    """
    return vectorizable_reason(((MAP, key.params, key.body),))


def partial_pair_key() -> ScalarFn:
    """The synthetic key the executor shuffles partial aggregates on.

    :meth:`JobExecutor._exec_agg_by` repartitions mapper-side partial
    aggregates — ``(key, aggs)`` pairs — on ``\\_p -> _p[0]``; the
    static exchange decision for :class:`CAggBy` is about *that* key,
    not the user's grouping key (which runs before the exchange).
    """
    from repro.comprehension.exprs import Const, Index, Ref

    return ScalarFn(("_p",), Index(Ref("_p"), Const(0)))


def select_columnar(
    root: Combinator,
    stats: ColumnarStats | None = None,
    trace: "CompileTrace | None" = None,
    site: int | None = None,
    exchange: str = "off",
    chains: bool = True,
) -> Combinator:
    """Annotate every chain in ``root`` with its execution plane.

    With ``exchange != "off"`` the pass additionally decides, per
    exchange operator (:class:`CEqJoin`, :class:`CSemiJoin`,
    :class:`CGroupBy`, :class:`CAggBy`), whether its
    shuffle/build/probe/group phases may run over key *columns*
    (``exchange="columnar"``) or must stay row-at-a-time
    (``exchange="row"`` plus a reason) — the static half of the
    columnar exchange plane; the executor re-checks record layout per
    partition at run time.  Joins and group-bys vectorize their whole
    exchange; semi-joins and fused aggregations vectorize the
    partitioning phase (their probe/merge loops stay row-at-a-time).
    ``chains=False`` leaves chain nodes untouched (the chain plane is
    configured off).
    """
    stats = stats if stats is not None else ColumnarStats()
    consumers = consumer_counts(root)

    # Chains the executor will inline into an aggregation's mapper
    # phase (same condition as ``JobExecutor._exec_agg_by``): they
    # stream row-at-a-time into the accumulators by construction.
    agg_fused: set[int] = set()
    seen = {id(root)}
    stack = [root]
    while stack:
        node = stack.pop()
        if (
            isinstance(node, CAggBy)
            and isinstance(node.input, CChain)
            and not node.input.shared
            and not node.input.cache
            and node.input.partition_hint is None
            and consumers[id(node.input)] == 1
        ):
            agg_fused.add(id(node.input))
        for child in node.inputs():
            if id(child) not in seen:
                seen.add(id(child))
                stack.append(child)

    memo: dict[int, Combinator] = {}

    def rebuild(node: Combinator) -> Combinator:
        key = id(node)
        if key in memo:
            return memo[key]
        result = _rebuild_one(node, key)
        memo[key] = result
        return result

    def _rebuild_one(node: Combinator, key: int) -> Combinator:
        changes: dict[str, Combinator] = {}
        for f in dataclasses.fields(node):
            value = getattr(node, f.name)
            if isinstance(value, Combinator):
                new = rebuild(value)
                if new is not value:
                    changes[f.name] = new
        if exchange != "off" and isinstance(
            node, (CEqJoin, CSemiJoin, CGroupBy, CAggBy)
        ):
            if isinstance(node, (CEqJoin, CSemiJoin)):
                reason = exchange_key_reason(node.kx)
                if not reason:
                    other = exchange_key_reason(node.ky)
                    if other:
                        reason = f"right key: {other}"
                elif exchange_key_reason(node.ky):
                    reason = f"left key: {reason}"
                else:
                    reason = f"left key: {reason}"
            elif isinstance(node, CAggBy):
                reason = exchange_key_reason(partial_pair_key())
            else:
                reason = exchange_key_reason(node.key)
            plane = "row" if reason else "columnar"
            if plane == "columnar":
                stats.columnar_exchanges += 1
            else:
                stats.row_exchanges += 1
            if trace is not None:
                trace.record(
                    "columnar selection",
                    "vectorize-exchange",
                    plane == "columnar",
                    detail=(
                        f"{node.describe()} exchanges batch-at-a-time "
                        f"(key evaluated as a column)"
                        if plane == "columnar"
                        else (
                            f"{node.describe()} exchanges row-at-a-"
                            f"time: {reason}"
                        )
                    ),
                    site=site,
                )
            changes["exchange"] = plane
            changes["exchange_reason"] = reason
        if chains and isinstance(node, CChain):
            if key in agg_fused:
                reason = (
                    "fused into the downstream aggregation's mapper "
                    "phase (streams row-at-a-time into accumulators)"
                )
                columnar = False
            else:
                reason = vectorizable_reason(chain_step_descs(node))
                columnar = reason == ""
            if columnar:
                stats.columnar_chains += 1
            else:
                stats.row_chains += 1
            if trace is not None:
                trace.record(
                    "columnar selection",
                    "vectorize-chain",
                    columnar,
                    detail=(
                        f"{node.describe()} runs batch-at-a-time "
                        f"({len(node.ops)} step(s) vectorized)"
                        if columnar
                        else (
                            f"{node.describe()} stays row-at-a-time: "
                            f"{reason}"
                        )
                    ),
                    site=site,
                )
            changes["columnar"] = columnar
            changes["columnar_reason"] = reason
        if not changes:
            return node
        return dataclasses.replace(node, **changes)

    return rebuild(root)

"""Logical and physical optimizations (paper Sections 4.2 and 4.4).

* :mod:`repro.optimizer.inlining` — inline single-use bag definitions
  before resugaring, producing bigger comprehensions with more rewrite
  opportunities (Section 4.1, "Inlining").
* :mod:`repro.optimizer.fold_group_fusion` — the banana-split +
  fold-build-fusion rewrite turning ``group_by`` into ``agg_by``
  (Section 4.2.2).
* :mod:`repro.optimizer.caching` — materialize dataflow results that
  are referenced more than once or consumed inside loops (Section 4.4).
* :mod:`repro.optimizer.partition_pulling` — pull interesting hash
  partitionings out of loops to the producing cache site (Section 4.4).
* :mod:`repro.optimizer.pipeline` — the pass manager: orchestrates
  inlining, per-site comprehension rewriting, lowering, and the
  physical passes; records which optimizations fired (Table 1).
* :mod:`repro.optimizer.fingerprint` — content fingerprints of lifted
  programs and input snapshots, the keys of the cross-run plan/result
  cache (:mod:`repro.engines.plancache`).
"""

from repro.optimizer.fingerprint import (
    PLAN_KNOBS,
    plan_fingerprint,
    snapshot_fingerprint,
)
from repro.optimizer.pipeline import (
    CompiledProgram,
    EmmaConfig,
    OptimizationReport,
    compile_program,
)

__all__ = [
    "CompiledProgram",
    "EmmaConfig",
    "OptimizationReport",
    "compile_program",
    "PLAN_KNOBS",
    "plan_fingerprint",
    "snapshot_fingerprint",
]

"""UDF-aware operator reordering over the combinator dataflow.

The comprehension calculus already pushes *syntactically* provable
guards into join slots during unnesting; everything else arrives here
as a black-box :class:`~repro.lowering.combinators.CFilter` whose
predicate mentions whole records.  This pass reopens those boxes using
the field-level read/write sets inferred by
:mod:`repro.optimizer.udf_analysis` (after Hueske et al., PAPERS.md)
and commutes operators whenever the sets prove a conflict-free swap:

* **filter below equi-join / cross** — the predicate reads only fields
  of one pair component, so it is rewritten over that component and
  pushed into the corresponding join input (pre-shuffle selection);
* **filter below semi-/anti-join** — the output *is* the left element,
  so any analyzable predicate commutes to the left input;
* **filter below group-by / agg-by** — the predicate reads only the
  group ``.key``, so it composes with the key extractor and filters
  the ungrouped input;
* **filter below distinct** — duplicate elimination preserves records;
* **filter before map** — every field the predicate reads is a pure
  *copy* in the map's emit set, so the predicate re-expressed over the
  map input selects first and maps after.

Every decision — fired, skipped, or rejected — lands in the
:class:`~repro.engines.tracing.CompileTrace` with the inferred sets as
the reason, and moved filters carry a ``reorder_note`` that
``explain()`` renders inline (``[pushed-below-join: reads {...}]``).

The pass consults the PR 4 physical-planning facts before moving data
across a shuffle: pushing a loop-varying predicate into a
loop-invariant join side would invalidate the hoisted once-per-loop
shuffle, so that pushdown is *rejected* (``reorders_rejected``) — the
hoist amortization beats pre-shuffle filtering.  Filters themselves
pass hash partitionings through (see ``physical_props``), so a fired
pushdown never breaks co-partitioning.

Reordering changes data volumes and therefore simulated costs — that
is its purpose — but never results: the differential suites pin
repr-identical output reorder-on vs reorder-off across execution modes
and fault plans.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.comprehension.exprs import (
    Attr,
    Const,
    Expr,
    Index,
    Lambda,
    Ref,
    fresh_name,
    transform,
    walk,
)
from repro.lowering.chaining import consumer_counts
from repro.lowering.combinators import (
    CAggBy,
    CCross,
    CDistinct,
    CEqJoin,
    CFilter,
    CGroupBy,
    CMap,
    CSemiJoin,
    Combinator,
    ScalarFn,
)
from repro.optimizer.physical_props import PlanContext, _loop_invariant
from repro.optimizer.udf_analysis import (
    EmitSet,
    ReadSet,
    analyze_emit_set,
    analyze_read_set,
    render_paths,
    simplify_projections,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.engines.tracing import CompileTrace

#: bound on whole-tree rewrite passes; each pass applies at most one
#: rule per node, so cascades (filter past map past join) converge fast
MAX_PASSES = 16

PHASE = "udf reordering"

_SIDE_NAMES = ("left", "right")


@dataclass
class ReorderStats:
    """What the pass did at one site (report/metrics fodder)."""

    applied: int = 0
    rejected: int = 0
    udfs_analyzed: int = 0
    decisions: list[str] = field(default_factory=list)


class _Reorderer:
    def __init__(
        self,
        stats: ReorderStats,
        ctx: PlanContext,
        trace: "CompileTrace | None",
        site: int | None,
    ) -> None:
        self.stats = stats
        self.ctx = ctx
        self.trace = trace
        self.site = site
        self._read_sets: dict[int, ReadSet] = {}
        self._emit_sets: dict[int, EmitSet] = {}
        self._skips_logged: set[tuple[int, str]] = set()

    # -- memoized analyses -------------------------------------------------

    def read_set(self, fn: ScalarFn) -> ReadSet:
        key = id(fn)
        if key not in self._read_sets:
            self._read_sets[key] = analyze_read_set(fn)
            self.stats.udfs_analyzed += 1
        return self._read_sets[key]

    def emit_set(self, fn: ScalarFn) -> EmitSet:
        key = id(fn)
        if key not in self._emit_sets:
            self._emit_sets[key] = analyze_emit_set(fn)
            self.stats.udfs_analyzed += 1
        return self._emit_sets[key]

    # -- trace helpers -----------------------------------------------------

    def fired(
        self,
        rule: str,
        detail: str,
        before: Combinator,
        after: Combinator,
    ) -> None:
        self.stats.applied += 1
        self.stats.decisions.append(f"{rule}: {detail}")
        if self.trace is not None:
            self.trace.record(
                PHASE,
                rule,
                True,
                detail=detail,
                site=self.site,
                before=before,
                after=after,
            )

    def skipped(self, node: Combinator, rule: str, detail: str) -> None:
        key = (node.node_id, rule)
        if key in self._skips_logged:
            return
        self._skips_logged.add(key)
        if self.trace is not None:
            self.trace.record(
                PHASE, rule, False, detail=detail, site=self.site
            )

    def rejected(self, node: Combinator, rule: str, detail: str) -> None:
        key = (node.node_id, rule)
        if key in self._skips_logged:
            return
        self._skips_logged.add(key)
        self.stats.rejected += 1
        self.stats.decisions.append(f"{rule} rejected: {detail}")
        if self.trace is not None:
            self.trace.record(
                PHASE, rule, False, detail=detail, site=self.site
            )

    # -- fixpoint driver ---------------------------------------------------

    def run(self, root: Combinator) -> Combinator:
        for _ in range(MAX_PASSES):
            self._changed = False
            self._consumers = consumer_counts(root)
            self._memo: dict[int, Combinator] = {}
            root = self._rebuild(root)
            if not self._changed:
                break
        return root

    def _rebuild(self, node: Combinator) -> Combinator:
        key = id(node)
        if key in self._memo:
            return self._memo[key]
        changes: dict[str, Combinator] = {}
        for f in dataclasses.fields(node):
            value = getattr(node, f.name)
            if isinstance(value, Combinator):
                new = self._rebuild(value)
                if new is not value:
                    changes[f.name] = new
        if changes:
            node = dataclasses.replace(node, **changes)
        rewritten = self._try_rules(node)
        if rewritten is not node:
            self._changed = True
            node = rewritten
        self._memo[key] = node
        return node

    # -- rules -------------------------------------------------------------

    def _try_rules(self, node: Combinator) -> Combinator:
        if not isinstance(node, CFilter):
            return node
        child = node.input
        rule = _RULE_NAMES.get(type(child))
        if rule is None:
            return node
        if not self._movable(node, child, rule):
            return node
        if isinstance(child, (CEqJoin, CCross)):
            return self._push_below_pair_join(node, child, rule)
        if isinstance(child, CSemiJoin):
            return self._push_below_semi_join(node, child, rule)
        if isinstance(child, (CGroupBy, CAggBy)):
            return self._push_below_grouping(node, child, rule)
        if isinstance(child, CDistinct):
            return self._push_below_distinct(node, child, rule)
        if isinstance(child, CMap):
            return self._swap_before_map(node, child, rule)
        return node  # pragma: no cover - rule table is exhaustive

    def _movable(
        self, filt: CFilter, child: Combinator, rule: str
    ) -> bool:
        """Structural guards shared by every rule: moving the filter
        must not change any annotation-visible materialization."""
        if filt.cache or filt.partition_hint is not None:
            self.skipped(
                filt,
                rule,
                f"{filt.describe()} carries physical annotations "
                "(cache/partition hint) and stays put",
            )
            return False
        if child.cache or child.partition_hint is not None:
            self.skipped(
                filt,
                rule,
                f"{child.describe()} is a materialization point "
                "(cache/partition hint); pushing a filter inside would "
                "change the materialized bag",
            )
            return False
        if self._consumers.get(id(child), 1) > 1:
            self.skipped(
                filt,
                rule,
                f"{child.describe()} has multiple consumers; filtering "
                "inside it would change the shared result",
            )
            return False
        return True

    def _hoist_conflict(
        self, filt: CFilter, rule: str, side_input: Combinator, rs: ReadSet
    ) -> bool:
        """The PR 4 cost-model consult: reject a pushdown into a
        loop-invariant (hoistable) shuffle side when the predicate
        reads loop-mutated or stateful driver names — the once-per-loop
        hoisted shuffle amortizes better than per-iteration filtering,
        and the filtered side would no longer be invariant."""
        if not self.ctx.in_loop:
            return False
        varying = rs.free & (self.ctx.loop_mutated | self.ctx.stateful_names)
        if not varying:
            return False
        invariant, _refs = _loop_invariant(side_input, self.ctx)
        if not invariant:
            return False
        self.rejected(
            filt,
            rule,
            f"{filt.describe()} reads loop-varying driver state "
            f"{{{', '.join(sorted(varying))}}}; pushing it into the "
            "loop-invariant input would invalidate the hoisted "
            "once-per-loop shuffle (cost model: hoist amortization "
            "beats pre-shuffle filtering)",
        )
        return True

    def _push_below_pair_join(
        self, filt: CFilter, join: CEqJoin | CCross, rule: str
    ) -> Combinator:
        pred = filt.predicate
        if len(pred.params) != 1:
            return filt
        param = pred.params[0]
        rs = self.read_set(pred)
        if rs.top:
            self.skipped(
                filt,
                rule,
                f"{filt.describe()} stays above {join.label()}: "
                f"{rs.describe()}",
            )
            return filt
        side = rs.pair_side(param)
        if side is None:
            self.skipped(
                filt,
                rule,
                f"{filt.describe()} stays above {join.label()}: "
                f"{rs.describe(param)} spans both pair components",
            )
            return filt
        side_input = join.inputs()[side]
        if self._hoist_conflict(filt, rule, side_input, rs):
            return filt
        new_pred = _project_pair_predicate(pred, param, side)
        if new_pred is None:
            self.skipped(
                filt,
                rule,
                f"{filt.describe()} stays above {join.label()}: the "
                f"predicate could not be re-expressed over pair side "
                f"{side} alone",
            )
            return filt
        reads = render_paths(self.read_set(new_pred).reads(new_pred.params[0]))
        note = f"pushed-below-join: reads {reads}"
        pushed = dataclasses.replace(
            filt, predicate=new_pred, input=side_input, reorder_note=note
        )
        new_join = dataclasses.replace(
            join, **{_SIDE_NAMES[side]: pushed}
        )
        self.fired(
            rule,
            f"{filt.describe()} reads only pair side {side} "
            f"({rs.describe(param)}); pushed into the "
            f"{_SIDE_NAMES[side]} input of {join.describe()} as "
            f"{pushed.describe()}",
            before=filt,
            after=new_join,
        )
        return new_join

    def _push_below_semi_join(
        self, filt: CFilter, join: CSemiJoin, rule: str
    ) -> Combinator:
        pred = filt.predicate
        if len(pred.params) != 1:
            return filt
        rs = self.read_set(pred)
        if rs.top:
            self.skipped(
                filt,
                rule,
                f"{filt.describe()} stays above {join.label()}: "
                f"{rs.describe()}",
            )
            return filt
        if self._hoist_conflict(filt, rule, join.left, rs):
            return filt
        reads = render_paths(rs.reads(pred.params[0]))
        note = f"pushed-below-{join.describe().split('(')[0].lower()}: reads {reads}"
        pushed = dataclasses.replace(
            filt, input=join.left, reorder_note=note
        )
        new_join = dataclasses.replace(join, left=pushed)
        self.fired(
            rule,
            f"{join.describe()} emits its left elements unchanged; "
            f"{filt.describe()} ({rs.describe(pred.params[0])}) "
            "commutes to the left input",
            before=filt,
            after=new_join,
        )
        return new_join

    def _push_below_grouping(
        self, filt: CFilter, group: CGroupBy | CAggBy, rule: str
    ) -> Combinator:
        pred = filt.predicate
        if len(pred.params) != 1:
            return filt
        param = pred.params[0]
        rs = self.read_set(pred)
        if rs.top or not rs.only_attr(param, "key"):
            self.skipped(
                filt,
                rule,
                f"{filt.describe()} stays above {group.label()}: "
                f"{rs.describe() if rs.top else rs.describe(param)} "
                "is not confined to the group key",
            )
            return filt
        if self._hoist_conflict(filt, rule, group.input, rs):
            return filt
        new_pred = _compose_with_key(pred, param, group.key)
        if new_pred is None:
            self.skipped(
                filt,
                rule,
                f"{filt.describe()} stays above {group.label()}: the "
                "predicate could not be composed with the key extractor",
            )
            return filt
        reads = render_paths(rs.reads(param))
        note = f"pushed-below-{group.label().lower()}: reads {reads}"
        pushed = dataclasses.replace(
            filt, predicate=new_pred, input=group.input, reorder_note=note
        )
        new_group = dataclasses.replace(group, input=pushed)
        self.fired(
            rule,
            f"{filt.describe()} reads only the group key "
            f"({rs.describe(param)}); composed with key "
            f"{group.key.describe()} and pushed below "
            f"{group.describe()} as {pushed.describe()}",
            before=filt,
            after=new_group,
        )
        return new_group

    def _push_below_distinct(
        self, filt: CFilter, child: CDistinct, rule: str
    ) -> Combinator:
        pred = filt.predicate
        if len(pred.params) != 1:
            return filt
        rs = self.read_set(pred)
        if rs.top:
            self.skipped(
                filt,
                rule,
                f"{filt.describe()} stays above Distinct: "
                f"{rs.describe()}",
            )
            return filt
        if self._hoist_conflict(filt, rule, child.input, rs):
            return filt
        reads = render_paths(rs.reads(pred.params[0]))
        note = f"pushed-below-distinct: reads {reads}"
        pushed = dataclasses.replace(
            filt, input=child.input, reorder_note=note
        )
        new_child = dataclasses.replace(child, input=pushed)
        self.fired(
            rule,
            "Distinct preserves records; "
            f"{filt.describe()} ({rs.describe(pred.params[0])}) "
            "commutes below the duplicate elimination",
            before=filt,
            after=new_child,
        )
        return new_child

    def _swap_before_map(
        self, filt: CFilter, mp: CMap, rule: str
    ) -> Combinator:
        pred = filt.predicate
        if len(pred.params) != 1 or len(mp.fn.params) != 1:
            return filt
        param = pred.params[0]
        rs = self.read_set(pred)
        es = self.emit_set(mp.fn)
        if rs.top:
            self.skipped(
                filt,
                rule,
                f"{filt.describe()} stays above {mp.describe()}: "
                f"{rs.describe()}",
            )
            return filt
        if es.components is None:
            self.skipped(
                filt,
                rule,
                f"{filt.describe()} stays above {mp.describe()}: "
                f"{es.describe()}",
            )
            return filt
        unresolved = [
            p for p in rs.reads(param) if not es.resolves(p)
        ]
        if unresolved:
            self.skipped(
                filt,
                rule,
                f"{filt.describe()} stays above {mp.describe()}: it "
                f"reads {render_paths(frozenset(unresolved))}, which "
                f"the map computes rather than copies ({es.describe()})",
            )
            return filt
        new_pred = _compose_with_key(pred, param, mp.fn)
        if new_pred is None:
            self.skipped(
                filt,
                rule,
                f"{filt.describe()} stays above {mp.describe()}: the "
                "predicate could not be re-expressed over the map input",
            )
            return filt
        reads = render_paths(self.read_set(new_pred).reads(new_pred.params[0]))
        note = f"swapped-before-map: reads {reads}"
        pushed = dataclasses.replace(
            filt, predicate=new_pred, input=mp.input, reorder_note=note
        )
        new_map = dataclasses.replace(mp, input=pushed)
        self.fired(
            rule,
            f"{filt.describe()} reads only fields {mp.describe()} "
            f"copies ({rs.describe(param)} vs {es.describe()}); "
            f"selection swapped before the map as {pushed.describe()}",
            before=filt,
            after=new_map,
        )
        return new_map


_RULE_NAMES: dict[type, str] = {
    CEqJoin: "push-filter-below-join",
    CCross: "push-filter-below-cross",
    CSemiJoin: "push-filter-below-semi-join",
    CGroupBy: "push-filter-below-group-by",
    CAggBy: "push-filter-below-agg-by",
    CDistinct: "push-filter-below-distinct",
    CMap: "swap-filter-before-map",
}


def _shadows(body: Expr, param: str) -> bool:
    """Whether an inner lambda rebinds ``param`` — the pattern-based
    rewrites below are not binding-aware, so they bail out."""
    return any(
        isinstance(n, Lambda) and param in n.params for n in walk(body)
    )


def _project_pair_predicate(
    pred: ScalarFn, param: str, side: int
) -> ScalarFn | None:
    """Re-express a pair predicate over one pair component.

    Replaces every ``param[side]`` access chain root in the
    (projection-simplified) body with a fresh variable; fails when the
    parameter survives in any other position.
    """
    body = simplify_projections(pred.body)
    if _shadows(body, param):
        return None
    fresh = fresh_name("_e", body.free_vars() | {param})

    def step(node: Expr) -> Expr:
        if (
            isinstance(node, Index)
            and isinstance(node.obj, Ref)
            and node.obj.name == param
            and isinstance(node.index, Const)
            and node.index.value == side
            and not isinstance(node.index.value, bool)
        ):
            return Ref(fresh)
        return node

    new_body = transform(body, step)
    if param in new_body.free_vars():
        return None
    return ScalarFn((fresh,), new_body)


def _compose_with_key(
    pred: ScalarFn, param: str, key: ScalarFn
) -> ScalarFn | None:
    """``p(g) where g reads only .key``  ⇒  ``p'(x) = p over key(x)``.

    Used both for group/agg pushdown (replace ``param.key`` with the
    key extractor's body) and the filter/map swap (replace ``param``
    with the map body outright), followed by projection simplification
    so tuple re-packings collapse back to field reads.
    """
    if len(key.params) != 1:
        return None
    body = simplify_projections(pred.body)
    if _shadows(body, param):
        return None
    fresh = fresh_name(
        "_e", body.free_vars() | key.body.free_vars() | {param}
    )
    key_body = key.body.substitute({key.params[0]: Ref(fresh)})

    def step(node: Expr) -> Expr:
        if (
            isinstance(node, Attr)
            and node.name == "key"
            and isinstance(node.obj, Ref)
            and node.obj.name == param
        ):
            return key_body
        return node

    new_body = transform(body, step)
    if param in new_body.free_vars():
        # Whole-parameter substitution (the map-swap case).
        new_body = body.substitute({param: key_body})
    new_body = simplify_projections(new_body)
    if param in new_body.free_vars():
        return None
    return ScalarFn((fresh,), new_body)


def reorder_operators(
    root: Combinator,
    stats: ReorderStats | None = None,
    ctx: PlanContext | None = None,
    trace: "CompileTrace | None" = None,
    site: int | None = None,
) -> Combinator:
    """Apply the UDF-aware reordering rules to a lowered plan.

    Runs bounded whole-tree rewrite passes to fixpoint so pushdowns
    cascade (a filter swapped before a map can then sink below the
    join feeding it).  Returns the rewritten plan; decisions accumulate
    on ``stats`` and in ``trace``.
    """
    stats = stats if stats is not None else ReorderStats()
    ctx = ctx if ctx is not None else PlanContext()
    return _Reorderer(stats, ctx, trace, site).run(root)

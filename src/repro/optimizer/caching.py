"""The caching heuristic (paper Section 4.4, "Caching").

"As an aggressive heuristic strategy, at the moment we force the
evaluation and caching of dataflow results that are referenced more
than once (e.g. inside a loop or within multiple branches) in the
compiled algorithm."

Engines are lazy: an uncached bag consumed by several jobs — or by one
job per loop iteration — is *recomputed from its lineage every time*.
This pass finds loop-invariant bag definitions (and DataBag-typed
parameters) that are either consumed inside a loop or referenced more
than once, and marks them for materialization by inserting an
:class:`~repro.frontend.driver_ir.SCache` statement right after the
definition (or at the top of the program, for parameters).

Definitions *inside* loops are not cached: re-materializing a fresh
result every iteration rarely pays for itself, and the paper's k-means
discussion ("k-means merely caches the set of points") matches this
behaviour.

Whether caching actually helps is engine-specific — the Spark-like
engine pins partitions in memory, while the Flink-like engine spills to
the DFS and may gain nothing (Section 5.2) — but the *decision* here is
engine-agnostic, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.driver_ir import (
    DriverProgram,
    SAssign,
    SCache,
    SFor,
    SWhile,
    Stmt,
)
from repro.optimizer.inlining import count_free_refs, stmt_exprs


@dataclass(frozen=True)
class CacheDecision:
    """One name chosen for materialization, with the why."""

    name: str
    reason: str  # "loop" | "multi-use"


def plan_caching(program: DriverProgram) -> list[CacheDecision]:
    """Choose the names to cache (see module docstring)."""
    # Uses per name, split by whether they occur inside a loop, plus
    # assignment counts (a name reassigned anywhere is not a
    # loop-invariant value — caching its first binding buys nothing).
    loop_uses: dict[str, int] = {}
    flat_uses: dict[str, int] = {}
    assign_counts: dict[str, int] = {}

    def scan(stmts: tuple[Stmt, ...], depth: int) -> None:
        for stmt in stmts:
            bucket = loop_uses if depth > 0 else flat_uses
            for expr in stmt_exprs(stmt):
                for name in expr.free_vars():
                    bucket[name] = bucket.get(name, 0) + count_free_refs(
                        expr, name
                    )
            if isinstance(stmt, SAssign):
                assign_counts[stmt.name] = (
                    assign_counts.get(stmt.name, 0) + 1
                )
            child_depth = depth + (
                1 if isinstance(stmt, (SWhile, SFor)) else 0
            )
            scan(stmt.children(), child_depth)

    scan(program.body, 0)

    decisions: list[CacheDecision] = []

    def decide(name: str) -> CacheDecision | None:
        if assign_counts.get(name, 0) > 1:
            return None
        in_loop = loop_uses.get(name, 0)
        total = in_loop + flat_uses.get(name, 0)
        if in_loop >= 1:
            return CacheDecision(name, "loop")
        if total >= 2:
            return CacheDecision(name, "multi-use")
        return None

    # DataBag-typed parameters.
    for param in program.params:
        if param in program.bag_params:
            decision = decide(param)
            if decision is not None:
                decisions.append(decision)

    # Loop-invariant bag definitions (top-level statements only).
    for stmt in program.body:
        if (
            isinstance(stmt, SAssign)
            and stmt.bag_typed
            and not stmt.stateful
        ):
            decision = decide(stmt.name)
            if decision is not None:
                decisions.append(decision)
    return decisions


def insert_cache_statements(
    program: DriverProgram, decisions: list[CacheDecision]
) -> DriverProgram:
    """Insert ``SCache`` right after each decided definition."""
    names = {d.name for d in decisions}
    new_body: list[Stmt] = []
    # Parameters are cached before the first statement.
    for param in program.params:
        if param in names:
            new_body.append(SCache(name=param))
            names.discard(param)
    for stmt in program.body:
        new_body.append(stmt)
        if (
            isinstance(stmt, SAssign)
            and stmt.name in names
            and stmt.bag_typed
        ):
            new_body.append(SCache(name=stmt.name, line=stmt.line))
            names.discard(stmt.name)
    return program.with_body(tuple(new_body))

"""An always-on job service over the fingerprint cache.

One driver process used to mean one run: lift, optimize, execute,
exit — paying full compilation even when the previous run was
identical.  :class:`JobService` inverts that: a long-running admission
loop owns the shared :class:`~repro.engines.plancache.PlanCache`, the
shared simulated DFS, and the process-wide worker pool, and *jobs* —
(algorithm, params, config) submissions from many tenants — come and
go:

* **Admission** is asynchronous and fair: each tenant has a FIFO
  queue, the dispatcher round-robins across tenants, a per-tenant
  quota bounds how many of one tenant's jobs run at once, and a global
  cap bounds total concurrency.  Everything above the cap waits in
  queue — admission latency is tracked per job and summarized as
  p50/p99 in :meth:`JobService.stats`.
* **Execution** is cache-first.  A warm submission (same plan
  fingerprint, same input snapshot) is answered from the result cache
  without executing anything; a plan-cache hit skips the optimizer and
  codegen pipeline and goes straight to execution; a cold job pays the
  full pipeline once and warms both levels for every later tenant.
  Batch submissions *backfill*: the hit members are served from cache
  and only the missing inputs execute
  (:meth:`~JobService.submit_batch`).
* **Isolation**: every executed job gets a fresh engine from the
  service's ``engine_factory``, but all engines share one DFS and —
  in ``processes`` mode — the single module-wide worker pool, so
  concurrent jobs contend for the same workers rather than forking
  pools per job.

A newline-delimited JSON TCP endpoint (:meth:`JobService.serve`)
exposes ``submit``/``wait``/``stats``/``ping`` so external drivers can
reach the warm cache without importing the repo.

Caching changes *when* work happens, never *what* it computes: served
results are repr-identical to executed ones, and executed jobs keep
bit-identical ``simulated_seconds`` and fault schedules.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.engines.dfs import SimulatedDFS
from repro.engines.metrics import Metrics
from repro.engines.plancache import PlanCache
from repro.errors import EmmaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.frontend.parallelize import Algorithm
    from repro.optimizer.pipeline import EmmaConfig


def _percentile(values: list[float], q: float) -> float:
    """The q-th percentile (0..100) by nearest-rank, 0.0 when empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class JobHandle:
    """A submitted job: its identity, lifecycle stamps, and outcome.

    ``result()`` blocks until the job finishes (re-raising its error);
    ``cache`` records how each cache level treated this job — one of
    ``"hit"``, ``"miss"``, or ``"uncacheable"`` (no stable input
    identity) — and ``served_from_cache`` is true when the job never
    executed at all.
    """

    job_id: int
    tenant: str
    algorithm_name: str
    submitted_at: float
    admitted_at: float | None = None
    finished_at: float | None = None
    #: per-level outcome: {"plan": ..., "result": ...}
    cache: dict[str, str] = field(default_factory=dict)
    #: true when the result cache answered without executing
    served_from_cache: bool = False
    #: this job's own metrics (cache counters; plus the executing
    #: engine's full counters when the job actually ran)
    metrics: Metrics = field(default_factory=Metrics)
    _done: threading.Event = field(
        default_factory=threading.Event, repr=False
    )
    _value: Any = field(default=None, repr=False)
    _error: BaseException | None = field(default=None, repr=False)

    def done(self) -> bool:
        """Whether the job has finished (successfully or not)."""
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> Any:
        """Block for the job's value; re-raises the job's exception."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} did not finish within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._value

    @property
    def admission_latency(self) -> float | None:
        """Seconds spent queued before dispatch (None while queued)."""
        if self.admitted_at is None:
            return None
        return self.admitted_at - self.submitted_at

    def _finish(self, value: Any, error: BaseException | None) -> None:
        self._value = value
        self._error = error
        self.finished_at = time.perf_counter()
        self._done.set()


class JobService:
    """The always-on admission loop (see module docstring).

    ``engine_factory`` builds one fresh engine per executed job; it is
    called with the shared DFS (``engine_factory(dfs)``).  ``quotas``
    maps tenant name to its max concurrently-running jobs
    (``default_quota`` for everyone else); ``max_concurrent`` caps the
    service total.  The service starts its dispatcher thread on
    construction and runs until :meth:`shutdown`.
    """

    def __init__(
        self,
        engine_factory: Callable[[SimulatedDFS], Any],
        dfs: SimulatedDFS | None = None,
        cache: PlanCache | None = None,
        max_concurrent: int = 4,
        default_quota: int = 2,
        quotas: Mapping[str, int] | None = None,
    ) -> None:
        self.engine_factory = engine_factory
        self.dfs = dfs or SimulatedDFS()
        self.cache = cache or PlanCache()
        self.max_concurrent = max_concurrent
        self.default_quota = default_quota
        self.quotas = dict(quotas or {})
        #: aggregate counters across all jobs (cache segment included)
        self.metrics = Metrics()
        #: admission/completion event log: (event, job_id, tenant, t)
        self.events: list[tuple[str, int, str, float]] = []
        #: named algorithms reachable through the TCP endpoint
        self._registry: dict[str, "Algorithm"] = {}
        self._jobs: dict[int, JobHandle] = {}
        self._job_ids = itertools.count(1)
        self._lock = threading.Lock()
        # Tenant queues live on the loop thread; OrderedDict gives the
        # round-robin a stable rotation order.
        self._queues: "OrderedDict[str, deque]" = OrderedDict()
        self._running: dict[str, int] = {}
        self._total_running = 0
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, max_concurrent),
            thread_name_prefix="repro-job",
        )
        self._loop = asyncio.new_event_loop()
        self._wake = asyncio.Event()
        self._stopping = False
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-job-service", daemon=True
        )
        self._started = threading.Event()
        self._thread.start()
        self._started.wait()

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        algorithm: "Algorithm",
        params: Mapping[str, Any] | None = None,
        tenant: str = "default",
        config: "EmmaConfig | None" = None,
    ) -> JobHandle:
        """Queue one job; returns immediately with its handle."""
        if self._stopping:
            raise EmmaError("job service is shut down")
        params = dict(params or {})
        job = JobHandle(
            job_id=next(self._job_ids),
            tenant=tenant,
            algorithm_name=algorithm.name,
            submitted_at=time.perf_counter(),
        )
        with self._lock:
            self._jobs[job.job_id] = job
        self._loop.call_soon_threadsafe(
            self._enqueue, job, algorithm, params, config
        )
        return job

    def submit_batch(
        self,
        submissions: list[tuple["Algorithm", Mapping[str, Any]]],
        tenant: str = "default",
        config: "EmmaConfig | None" = None,
    ) -> list[JobHandle]:
        """Submit related jobs together, tracking cache *backfill*.

        When some members hit the result cache and others miss, the
        executed members are the batch's backfilled partitions — each
        one increments ``backfill_partitions`` — so the common
        incremental pattern (yesterday's inputs cached, today's delta
        new) executes exactly the delta.
        """
        handles = [
            self.submit(algorithm, params, tenant=tenant, config=config)
            for algorithm, params in submissions
        ]
        self._loop.call_soon_threadsafe(
            self._watch_backfill, list(handles)
        )
        return handles

    def register(self, algorithm: "Algorithm") -> None:
        """Expose an algorithm to TCP clients under its name."""
        self._registry[algorithm.name] = algorithm

    def job(self, job_id: int) -> JobHandle:
        """The handle for a job id (raises ``EmmaError`` if unknown)."""
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise EmmaError(f"unknown job id {job_id}") from None

    # -- the admission loop (all state below runs on the loop thread) ------

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(self._started.set)
        self._dispatch_task = self._loop.create_task(
            self._dispatch_forever()
        )
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    def _enqueue(
        self,
        job: JobHandle,
        algorithm: "Algorithm",
        params: dict,
        config: "EmmaConfig | None",
    ) -> None:
        self._queues.setdefault(job.tenant, deque()).append(
            (job, algorithm, params, config)
        )
        self.events.append(
            ("queued", job.job_id, job.tenant, time.perf_counter())
        )
        self._wake.set()

    def _quota(self, tenant: str) -> int:
        return self.quotas.get(tenant, self.default_quota)

    async def _dispatch_forever(self) -> None:
        while not self._stopping:
            dispatched = self._dispatch_round()
            if not dispatched:
                self._wake.clear()
                await self._wake.wait()

    def _dispatch_round(self) -> bool:
        """One fair pass: admit at most one job per eligible tenant.

        Rotating the tenant order after each admission keeps a
        flooding tenant from starving the others — every tenant with
        queued work and spare quota is offered a slot before any
        tenant gets a second one.
        """
        admitted = False
        for tenant in list(self._queues):
            if self._total_running >= self.max_concurrent:
                break
            queue = self._queues.get(tenant)
            if not queue:
                continue
            if self._running.get(tenant, 0) >= self._quota(tenant):
                continue
            job, algorithm, params, config = queue.popleft()
            self._admit(job, algorithm, params, config)
            self._queues.move_to_end(tenant)
            admitted = True
        return admitted

    def _admit(
        self,
        job: JobHandle,
        algorithm: "Algorithm",
        params: dict,
        config: "EmmaConfig | None",
    ) -> None:
        job.admitted_at = time.perf_counter()
        self._running[job.tenant] = self._running.get(job.tenant, 0) + 1
        self._total_running += 1
        self.events.append(
            ("admitted", job.job_id, job.tenant, job.admitted_at)
        )
        future = self._loop.run_in_executor(
            self._executor, self._execute, job, algorithm, params, config
        )
        def on_done(_future: Any, j: JobHandle = job) -> None:
            try:
                self._loop.call_soon_threadsafe(self._release, j)
            except RuntimeError:
                # Loop already closed during shutdown; nothing left
                # to release slots for.
                pass

        future.add_done_callback(on_done)

    def _release(self, job: JobHandle) -> None:
        self._running[job.tenant] -= 1
        self._total_running -= 1
        self.events.append(
            ("finished", job.job_id, job.tenant, time.perf_counter())
        )
        self._wake.set()

    def _watch_backfill(self, handles: list[JobHandle]) -> None:
        """Count a batch's executed members once the batch completes."""

        async def wait_and_count() -> None:
            await asyncio.gather(
                *(
                    self._loop.run_in_executor(None, h._done.wait)
                    for h in handles
                )
            )
            hits = sum(1 for h in handles if h.served_from_cache)
            executed = [h for h in handles if not h.served_from_cache]
            if hits and executed:
                self.metrics.backfill_partitions += len(executed)
                for handle in executed:
                    handle.metrics.backfill_partitions += 1

        self._loop.create_task(wait_and_count())

    # -- job execution (worker threads) -------------------------------------

    def _execute(
        self,
        job: JobHandle,
        algorithm: "Algorithm",
        params: dict,
        config: "EmmaConfig | None",
    ) -> None:
        try:
            value = self._run_cached(job, algorithm, params, config)
        except BaseException as exc:  # noqa: BLE001 - delivered to caller
            job._finish(None, exc)
        else:
            job._finish(value, None)

    def _run_cached(
        self,
        job: JobHandle,
        algorithm: "Algorithm",
        params: dict,
        config: "EmmaConfig | None",
    ) -> Any:
        from repro.optimizer.fingerprint import (
            plan_fingerprint,
            snapshot_fingerprint,
        )
        from repro.optimizer.pipeline import EmmaConfig

        cfg = config or EmmaConfig()
        plan_fp = plan_fingerprint(algorithm.lifted.program, cfg)
        snap_fp = snapshot_fingerprint(
            params, algorithm.lifted.captured, dfs=self.dfs
        )
        if snap_fp is None:
            job.cache["result"] = "uncacheable"
        else:
            hit, value = self.cache.lookup_result(
                plan_fp, snap_fp, metrics=job.metrics
            )
            if hit:
                job.cache["result"] = "hit"
                job.served_from_cache = True
                self._merge_job_metrics(job)
                return value
            job.cache["result"] = "miss"
        engine = self.engine_factory(self.dfs)
        engine.attach_plan_cache(self.cache)
        before = engine.metrics.snapshot()
        result = algorithm.run(engine, config=config, **params)
        delta = engine.metrics.delta_since(before)
        job.cache["plan"] = (
            "hit" if delta.plan_cache_hits else "miss"
        )
        job.metrics.merge(delta)
        self._merge_job_metrics(job)
        if snap_fp is not None:
            self.cache.store_result(plan_fp, snap_fp, result)
        return result

    def _merge_job_metrics(self, job: JobHandle) -> None:
        with self._lock:
            self.metrics.merge(job.metrics)

    # -- observability -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """A point-in-time service summary.

        Includes job counts, per-level cache hit rates, total compile
        seconds skipped, backfilled partition count, and the p50/p99
        of admission latency (seconds spent queued) over all admitted
        jobs.
        """
        with self._lock:
            handles = list(self._jobs.values())
        latencies = [
            h.admission_latency
            for h in handles
            if h.admission_latency is not None
        ]
        finished = sum(1 for h in handles if h.done())
        served = sum(1 for h in handles if h.served_from_cache)
        rates = self.cache.stats.hit_rate()
        return {
            "jobs_submitted": len(handles),
            "jobs_finished": finished,
            "jobs_served_from_cache": served,
            "tenants": sorted({h.tenant for h in handles}),
            "plan_cache_hit_rate": rates["plan"],
            "result_cache_hit_rate": rates["result"],
            "compile_seconds_saved": self.cache.stats.compile_seconds_saved,
            "backfill_partitions": self.metrics.backfill_partitions,
            "admission_latency_p50": _percentile(latencies, 50),
            "admission_latency_p99": _percentile(latencies, 99),
        }

    # -- the TCP endpoint ----------------------------------------------------

    def serve(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Start the newline-delimited JSON endpoint; returns the port.

        Protocol: one JSON object per line.  ``{"op": "ping"}`` →
        ``{"ok": true, "pong": true}``; ``{"op": "stats"}`` → the
        :meth:`stats` dict; ``{"op": "submit", "algorithm": name,
        "params": {...}, "tenant": t}`` (the name must have been
        :meth:`register`-ed) → ``{"ok": true, "job_id": n}``;
        ``{"op": "wait", "job_id": n}`` → the finished job's repr,
        cache outcomes, and metrics summary.  Errors come back as
        ``{"ok": false, "error": msg}``.
        """

        async def start() -> asyncio.AbstractServer:
            return await asyncio.start_server(
                self._handle_client, host, port
            )

        future = asyncio.run_coroutine_threadsafe(start(), self._loop)
        self._server = future.result(timeout=10)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._handle_request(line)
                writer.write(
                    json.dumps(response).encode("utf-8") + b"\n"
                )
                await writer.drain()
        finally:
            writer.close()

    async def _handle_request(self, line: bytes) -> dict[str, Any]:
        try:
            request = json.loads(line)
            op = request.get("op")
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "stats":
                return {"ok": True, **self.stats()}
            if op == "submit":
                name = request["algorithm"]
                if name not in self._registry:
                    return {
                        "ok": False,
                        "error": f"unknown algorithm {name!r}",
                    }
                handle = self.submit(
                    self._registry[name],
                    request.get("params", {}),
                    tenant=request.get("tenant", "default"),
                )
                return {"ok": True, "job_id": handle.job_id}
            if op == "wait":
                handle = self.job(int(request["job_id"]))
                timeout = request.get("timeout", 60.0)
                value = await self._loop.run_in_executor(
                    None, handle.result, timeout
                )
                return {
                    "ok": True,
                    "job_id": handle.job_id,
                    "result": repr(value),
                    "cache": handle.cache,
                    "served_from_cache": handle.served_from_cache,
                    "metrics": handle.metrics.summary(),
                }
            return {"ok": False, "error": f"unknown op {op!r}"}
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return {"ok": False, "error": str(exc)}

    # -- lifecycle -----------------------------------------------------------

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop admitting, drain workers, close the endpoint and loop."""
        if self._stopping:
            return
        self._stopping = True

        def stop() -> None:
            if self._server is not None:
                self._server.close()
            self._dispatch_task.cancel()
            self._wake.set()
            # Stop on the next tick so the cancelled dispatcher gets
            # its CancelledError delivered before the loop closes.
            self._loop.call_soon(self._loop.stop)

        self._loop.call_soon_threadsafe(stop)
        self._thread.join(timeout)
        self._executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "JobService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


class ServiceClient:
    """A tiny blocking client for the service's JSON TCP endpoint."""

    def __init__(self, host: str, port: int) -> None:
        import socket

        self._sock = socket.create_connection((host, port), timeout=60)
        self._file = self._sock.makefile("rwb")

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One round trip: send a request object, read the response."""
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise EmmaError("job service closed the connection")
        return json.loads(line)

    def close(self) -> None:
        """Close the connection."""
        self._file.close()
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

"""Exception hierarchy for the Emma reproduction.

Every error raised by the library derives from :class:`EmmaError` so that
client code can catch library failures with a single ``except`` clause
while still distinguishing the compilation stage that produced them.
"""

from __future__ import annotations


class EmmaError(Exception):
    """Base class for all errors raised by this library."""


class LiftError(EmmaError):
    """The frontend could not lift a Python construct into driver IR.

    Raised when an ``@parallelize``-bracketed function uses a statement or
    expression form outside the supported embedding subset.  The message
    always names the offending source construct and its line number.
    """


class ComprehensionError(EmmaError):
    """An ill-formed comprehension was constructed or transformed."""


class LoweringError(EmmaError):
    """A comprehension could not be translated into combinator form."""


class PlanError(EmmaError):
    """A physical dataflow plan is structurally invalid."""


class EngineError(EmmaError):
    """A backend engine failed while executing a dataflow.

    Engine failures carry their execution context so callers (the
    experiment runner, reports) can show how far a failed run got:
    ``metrics`` is a snapshot of the partial accounting at raise time,
    ``job``/``task``/``partition``/``worker`` locate the failing unit
    of work when known, and ``operator`` names the physical operator
    (e.g. ``"group_by"``) that was executing.
    """

    def __init__(
        self,
        message: str,
        *,
        job: int | None = None,
        task: int | None = None,
        partition: int | None = None,
        worker: int | None = None,
        operator: str | None = None,
        metrics: object | None = None,
    ) -> None:
        super().__init__(message)
        self.job = job
        self.task = task
        self.partition = partition
        self.worker = worker
        self.operator = operator
        self.metrics = metrics

    def failure_site(self) -> dict[str, int]:
        """The known (job, task, partition, worker) coordinates."""
        site = {
            "job": self.job,
            "task": self.task,
            "partition": self.partition,
            "worker": self.worker,
        }
        return {k: v for k, v in site.items() if v is not None}


class TaskFailedError(EngineError):
    """A task failed permanently after exhausting its retry budget.

    Raised by the fault-injection scheduler when one task crashes more
    than :attr:`~repro.engines.faults.RetryPolicy.max_attempts` times.
    """


class SimulatedTimeout(EngineError):
    """Simulated execution time exceeded the configured budget.

    Mirrors the paper's "failed to finish within a timeout of one hour"
    observations for the unoptimized iterative algorithms and TPC-H queries.
    """

    def __init__(
        self,
        simulated_seconds: float,
        budget_seconds: float,
        *,
        metrics: object | None = None,
    ) -> None:
        self.simulated_seconds = simulated_seconds
        self.budget_seconds = budget_seconds
        super().__init__(
            f"simulated execution time {simulated_seconds:.1f}s exceeded "
            f"budget of {budget_seconds:.1f}s",
            metrics=metrics,
        )


class SimulatedMemoryError(EngineError):
    """A simulated worker exceeded its memory allowance.

    This reproduces the paper's observation that, without fold-group
    fusion, group materialization can make an algorithm fail outright.
    Like :class:`TaskFailedError`, the exception carries its failing
    coordinates (``job``/``partition``/``worker``/``operator``) and a
    metrics snapshot so over-budget aborts are debuggable; a finite
    driver ``memory_budget`` turns this error into graceful external-
    merge degradation instead (see ``docs/out_of_core.md``).
    """

    def __init__(
        self,
        worker: int,
        used_bytes: int,
        limit_bytes: int,
        *,
        job: int | None = None,
        partition: int | None = None,
        operator: str | None = None,
        metrics: object | None = None,
    ) -> None:
        self.used_bytes = used_bytes
        self.limit_bytes = limit_bytes
        super().__init__(
            f"worker {worker} exceeded memory limit: used {used_bytes} "
            f"of {limit_bytes} bytes"
            + (f" while materializing {operator!r} groups" if operator else ""),
            worker=worker,
            job=job,
            partition=partition,
            operator=operator,
            metrics=metrics,
        )


class FoldConditionError(EmmaError):
    """A fold's arguments violate the well-definedness conditions.

    Folds over union-representation bags require the combining function to
    be associative and commutative with the zero element as unit
    (Section 2.2.2 of the paper).
    """

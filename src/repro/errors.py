"""Exception hierarchy for the Emma reproduction.

Every error raised by the library derives from :class:`EmmaError` so that
client code can catch library failures with a single ``except`` clause
while still distinguishing the compilation stage that produced them.
"""

from __future__ import annotations


class EmmaError(Exception):
    """Base class for all errors raised by this library."""


class LiftError(EmmaError):
    """The frontend could not lift a Python construct into driver IR.

    Raised when an ``@parallelize``-bracketed function uses a statement or
    expression form outside the supported embedding subset.  The message
    always names the offending source construct and its line number.
    """


class ComprehensionError(EmmaError):
    """An ill-formed comprehension was constructed or transformed."""


class LoweringError(EmmaError):
    """A comprehension could not be translated into combinator form."""


class PlanError(EmmaError):
    """A physical dataflow plan is structurally invalid."""


class EngineError(EmmaError):
    """A backend engine failed while executing a dataflow."""


class SimulatedTimeout(EngineError):
    """Simulated execution time exceeded the configured budget.

    Mirrors the paper's "failed to finish within a timeout of one hour"
    observations for the unoptimized iterative algorithms and TPC-H queries.
    """

    def __init__(self, simulated_seconds: float, budget_seconds: float) -> None:
        self.simulated_seconds = simulated_seconds
        self.budget_seconds = budget_seconds
        super().__init__(
            f"simulated execution time {simulated_seconds:.1f}s exceeded "
            f"budget of {budget_seconds:.1f}s"
        )


class SimulatedMemoryError(EngineError):
    """A simulated worker exceeded its memory allowance.

    This reproduces the paper's observation that, without fold-group
    fusion, group materialization can make an algorithm fail outright.
    """

    def __init__(self, worker: int, used_bytes: int, limit_bytes: int) -> None:
        self.worker = worker
        self.used_bytes = used_bytes
        self.limit_bytes = limit_bytes
        super().__init__(
            f"worker {worker} exceeded memory limit: used {used_bytes} "
            f"of {limit_bytes} bytes"
        )


class FoldConditionError(EmmaError):
    """A fold's arguments violate the well-definedness conditions.

    Folds over union-representation bags require the combining function to
    be associative and commutative with the zero element as unit
    (Section 2.2.2 of the paper).
    """

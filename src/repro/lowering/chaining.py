"""Physical operator chaining (paper §4.3.1, Figure 1's physical layer).

The logical layer already fuses comprehensions; this pass performs the
*physical* counterpart the target engines apply below it: maximal runs
of narrow, record-wise operators (``CMap``, ``CFlatMap``, ``CFilter``)
are grouped into a single :class:`~repro.lowering.combinators.CChain`
node that the executor runs as one fused per-partition kernel — one
task-overhead charge and one intermediate materialization per *chain*
instead of per *operator* (Flink's pipelined operator chains, Spark's
fused narrow stages).

Chain discovery is purely structural and never changes program meaning:

* an operator may only be *interior* to a chain when it has exactly one
  consumer (fusing a shared node would duplicate its work and defeat
  per-job DAG memoization), carries no ``cache`` annotation, and no
  ``partition_hint``;
* the chain head inherits the outermost operator's physical
  annotations, and is flagged ``shared`` when that operator feeds
  several consumers — a shared chain still fuses internally but is
  never inlined into a downstream aggregation.

Shared subtrees are rebuilt exactly once (by object identity), so a
diamond-shaped plan stays a diamond.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.lowering.combinators import (
    CChain,
    CFilter,
    CFlatMap,
    CMap,
    Combinator,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.engines.tracing import CompileTrace

#: the narrow record-wise operators eligible for chaining
CHAINABLE = (CMap, CFlatMap, CFilter)


@dataclass
class ChainStats:
    """What the pass did — feeds the optimizer's report."""

    chains: int = 0
    chained_operators: int = 0


def consumer_counts(root: Combinator) -> Counter:
    """Consumer-edge counts per node (by identity, sharing-aware)."""
    counts: Counter = Counter()
    seen = {id(root)}
    stack = [root]
    while stack:
        node = stack.pop()
        for child in node.inputs():
            counts[id(child)] += 1
            if id(child) not in seen:
                seen.add(id(child))
                stack.append(child)
    return counts


def _boundary_reason(cur: Combinator, consumers: Counter) -> str:
    """Why a chain run stopped growing at ``cur``."""
    if not isinstance(cur, CHAINABLE):
        return f"{cur.label()} is not record-wise"
    if consumers[id(cur)] != 1:
        return (
            f"{cur.label()} feeds {consumers[id(cur)]} consumers "
            "(fusing would duplicate its work)"
        )
    if cur.cache:
        return f"{cur.label()} carries a cache annotation"
    return f"{cur.label()} carries an enforced partitioning"


def chain_operators(
    root: Combinator,
    stats: ChainStats | None = None,
    trace: "CompileTrace | None" = None,
    site: int | None = None,
) -> Combinator:
    """Rewrite ``root`` with maximal operator runs fused into chains."""
    stats = stats if stats is not None else ChainStats()
    consumers = consumer_counts(root)
    memo: dict[int, Combinator] = {}

    def rebuild(node: Combinator) -> Combinator:
        key = id(node)
        if key in memo:
            return memo[key]
        result = _rebuild_one(node)
        memo[key] = result
        return result

    def _rebuild_one(node: Combinator) -> Combinator:
        if isinstance(node, CHAINABLE):
            run = [node]
            cur = node.input
            while (
                isinstance(cur, CHAINABLE)
                and consumers[id(cur)] == 1
                and not cur.cache
                and cur.partition_hint is None
            ):
                run.append(cur)
                cur = cur.input
            if len(run) > 1:
                stats.chains += 1
                stats.chained_operators += len(run)
                if trace is not None:
                    trace.record(
                        "operator chaining",
                        "chain-fuse",
                        True,
                        detail=(
                            " -> ".join(
                                op.label() for op in reversed(run)
                            )
                            + " fused into one kernel; boundary: "
                            + _boundary_reason(cur, consumers)
                        ),
                        site=site,
                    )
                return CChain(
                    cache=node.cache,
                    partition_hint=node.partition_hint,
                    ops=tuple(reversed(run)),
                    input=rebuild(cur),
                    shared=consumers[id(node)] > 1,
                )
            if trace is not None and isinstance(node.input, CHAINABLE):
                trace.record(
                    "operator chaining",
                    "chain-fuse",
                    False,
                    detail=(
                        f"{node.label()} not fused with its input; "
                        + _boundary_reason(node.input, consumers)
                    ),
                    site=site,
                )
        return _rebuild_children(node)

    def _rebuild_children(node: Combinator) -> Combinator:
        changes: dict[str, Combinator] = {}
        for f in dataclasses.fields(node):
            value = getattr(node, f.name)
            if isinstance(value, Combinator):
                new = rebuild(value)
                if new is not value:
                    changes[f.name] = new
        if not changes:
            return node
        # dataclasses.replace preserves node_id/cache/partition_hint.
        return dataclasses.replace(node, **changes)

    return rebuild(root)

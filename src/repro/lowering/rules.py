"""Comprehension -> combinator rewrite rules (paper Figure 2 / 3a).

The rewrite works on one normalized comprehension at a time and follows
the Figure 3a state machine:

1. **Filter** — every guard whose variables come from a single generator
   is pushed down onto that generator's dataflow.
2. **EqJoin** — an equality guard connecting two generators turns them
   into an equi-join; ``EXISTS``/``NOT_EXISTS`` generators turn into
   semi-/anti-joins of their partner generator.
3. **Cross** — remaining generator pairs combine via cartesian product.
4. **Map / FlatMap / Fold** — the head is applied to the single
   remaining dataflow; a fold kind wraps the result in a global fold.

Guards that survive to step 4 (e.g. non-equi predicates over joined
variables) become residual filters on the combined dataflow.

The bookkeeping uses *slots*: a slot is a dataflow under construction
plus a mapping from the original comprehension variables it covers to
access expressions over the slot's element variable (after a join the
element is the pair ``(x, y)``, so ``x`` maps to ``elem[0]``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.engines.tracing import CompileTrace

from repro.comprehension.exprs import (
    AggByCall,
    BagLiteral,
    Compare,
    DistinctCall,
    Expr,
    GroupByCall,
    Index,
    MinusCall,
    PlusCall,
    ReadCall,
    Ref,
    StatefulBagOf,
    TupleExpr,
    fresh_name,
)
from repro.comprehension.ir import (
    Comprehension,
    Flatten,
    FoldKind,
    GenMode,
    Generator,
)
from repro.errors import LoweringError
from repro.lowering.combinators import (
    CAggBy,
    CBagRef,
    CCross,
    CDistinct,
    CEqJoin,
    CFilter,
    CFlatMap,
    CFold,
    CGroupBy,
    CMap,
    CMinus,
    CParallelize,
    CSemiJoin,
    CSource,
    CUnion,
    Combinator,
    ScalarFn,
)


@dataclass
class LoweringContext:
    """Ambient knowledge for a lowering run.

    ``driver_vars`` are names bound in the driver (scalars or bags) —
    guards referencing only driver names are constant per dataflow and
    are applied as cheap residual filters.  ``push_filters`` disables
    the Figure 3a filter-pushdown state when False (an ablation knob:
    single-generator guards then run as residual filters above the
    joins instead of below them).
    """

    driver_vars: frozenset[str] = frozenset()
    push_filters: bool = True
    #: compile-provenance collector (duck-typed to avoid an engines
    #: import at module level); None = no recording
    trace: "CompileTrace | None" = None
    #: dataflow-site index stamped onto recorded events
    site: int | None = None

    def record(
        self,
        rule: str,
        fired: bool,
        detail: str,
        before: Any = None,
        after: Any = None,
    ) -> None:
        """Record one lowering-rule decision (no-op without a trace)."""
        if self.trace is not None:
            self.trace.record(
                "lowering",
                rule,
                fired,
                detail=detail,
                site=self.site,
                before=before,
                after=after,
            )


@dataclass
class _Slot:
    comb: Combinator
    var: str
    bindings: dict[str, Expr]

    def covers(self, names: Iterable[str]) -> bool:
        return all(n in self.bindings for n in names)


def lower(expr: Expr, ctx: LoweringContext | None = None) -> Combinator:
    """Lower a normalized bag/fold expression to a combinator tree."""
    ctx = ctx or LoweringContext()
    if isinstance(expr, Comprehension):
        return _lower_comprehension(expr, ctx, flatten_head=False)
    if isinstance(expr, Flatten):
        inner = expr.source
        if isinstance(inner, Comprehension):
            return _lower_comprehension(inner, ctx, flatten_head=True)
        raise LoweringError(
            "flatten of a non-comprehension survived normalization"
        )
    return lower_source(expr, ctx)


def lower_source(expr: Expr, ctx: LoweringContext) -> Combinator:
    """Lower a generator source expression to a combinator leaf/subtree."""
    if isinstance(expr, Ref):
        return CBagRef(name=expr.name)
    if isinstance(expr, ReadCall):
        return CSource(path=expr.path, fmt=expr.fmt)
    if isinstance(expr, BagLiteral):
        return CParallelize(seq=expr.seq)
    if isinstance(expr, GroupByCall):
        return CGroupBy(
            key=ScalarFn(expr.key.params, expr.key.body),
            input=lower_source(expr.source, ctx),
        )
    if isinstance(expr, AggByCall):
        return CAggBy(
            key=ScalarFn(expr.key.params, expr.key.body),
            specs=expr.specs,
            input=lower_source(expr.source, ctx),
        )
    if isinstance(expr, PlusCall):
        return CUnion(
            left=lower_source(expr.left, ctx),
            right=lower_source(expr.right, ctx),
        )
    if isinstance(expr, MinusCall):
        return CMinus(
            left=lower_source(expr.left, ctx),
            right=lower_source(expr.right, ctx),
        )
    if isinstance(expr, DistinctCall):
        return CDistinct(input=lower_source(expr.source, ctx))
    if isinstance(expr, StatefulBagOf) and isinstance(expr.state, Ref):
        # Reading a stateful bag inside a dataflow: the driver name
        # resolves to the engine's keyed state, already distributed.
        return CBagRef(name=expr.state.name)
    if isinstance(expr, (Comprehension, Flatten)):
        return lower(expr, ctx)
    raise LoweringError(
        f"cannot use {type(expr).__name__} as a dataflow source"
    )


# ---------------------------------------------------------------------------
# The state machine
# ---------------------------------------------------------------------------


def _lower_comprehension(
    comp: Comprehension, ctx: LoweringContext, flatten_head: bool
) -> Combinator:
    slots: list[_Slot] = []
    guards: list[Expr] = []
    existentials: list[Generator] = []
    order: list[str] = []  # generator vars, for deterministic choices

    for q in comp.qualifiers:
        if isinstance(q, Generator):
            order.append(q.var)
            if q.mode is not GenMode.NORMAL:
                existentials.append(q)
                continue
            bound_so_far = {
                name for s in slots for name in s.bindings
            }
            dependent = q.source.free_vars() & bound_so_far
            if dependent:
                # Dependent generator: its source ranges over data
                # derived from an earlier element (e.g. an adjacency
                # list attribute).  Realized as a flat-map on the slot
                # that binds those variables, pairing each parent
                # element with each generated value.
                _absorb_dependent_generator(slots, q, dependent)
                ctx.record(
                    "flatmap-unnest",
                    True,
                    f"dependent generator {q.var!r} (ranging over "
                    f"{sorted(dependent)}) realized as a flat-map",
                    before=q.source,
                )
            else:
                slots.append(
                    _Slot(
                        comb=lower_source(q.source, ctx),
                        var=q.var,
                        bindings={q.var: Ref(q.var)},
                    )
                )
        else:
            guards.append(q.predicate)

    if not slots:
        raise LoweringError("comprehension has no normal generators")

    exists_vars = frozenset(g.var for g in existentials)

    # State 1: push single-generator filters down.  (Existential
    # guards always push: the semi-join construction depends on it.)
    if ctx.push_filters:
        guards = _push_filters(
            slots, existentials, guards, ctx, exists_vars
        )
    else:
        if guards:
            ctx.record(
                "filter-pushdown",
                False,
                "disabled by config; single-generator guards run as "
                "residual filters above the joins",
            )
        guards = _push_filters(
            [], existentials, guards, ctx, exists_vars
        )

    # State 2a: resolve existential generators into semi-/anti-joins.
    guards = _apply_existentials(slots, existentials, guards, ctx)

    # State 2b: equi-joins between remaining slots.
    guards = _apply_joins(slots, guards, ctx)

    # State 3: cross products for unconnected slots.
    _apply_crosses(slots, ctx)

    (slot,) = slots

    # Residual guards (non-equi multi-variable predicates).
    for predicate in guards:
        ctx.record(
            "residual-filter",
            True,
            "guard is not a pushable/joinable equality; kept as a "
            "filter above the joins",
            before=predicate,
        )
        slot.comb = CFilter(
            predicate=ScalarFn(
                (slot.var,), predicate.substitute(slot.bindings)
            ),
            input=slot.comb,
        )

    # State 4: head application.
    head = comp.head.substitute(slot.bindings)
    head_fn = ScalarFn((slot.var,), head)
    if isinstance(comp.kind, FoldKind):
        spec = comp.kind.spec.substitute(slot.bindings)
        if not head_fn.is_identity() or spec.head is not None:
            spec = spec.fused_with(slot.var, head, ())
        return CFold(spec=spec, input=slot.comb)
    if flatten_head:
        return CFlatMap(fn=head_fn, input=slot.comb)
    if head_fn.is_identity():
        return slot.comb
    return CMap(fn=head_fn, input=slot.comb)


def _absorb_dependent_generator(
    slots: list[_Slot], gen: Generator, dependent: frozenset[str]
) -> None:
    """Fold a dependent generator into the slot binding its variables."""
    from repro.comprehension.ir import BAG as _BAG

    owner = None
    for slot in slots:
        if dependent <= frozenset(slot.bindings):
            owner = slot
            break
    if owner is None:
        raise LoweringError(
            f"generator {gen.var!r} depends on variables from several "
            "dataflows; join them with an explicit predicate first"
        )
    source = gen.source.substitute(owner.bindings)
    pair_comp = Comprehension(
        head=TupleExpr((Ref(owner.var), Ref(gen.var))),
        qualifiers=(Generator(gen.var, source),),
        kind=_BAG,
    )
    new_var = fresh_name(
        "_fm", frozenset(owner.bindings) | {gen.var, owner.var}
    )
    comb = CFlatMap(
        fn=ScalarFn((owner.var,), pair_comp),
        input=owner.comb,
    )
    left_elem = Index(Ref(new_var), _const_index(0))
    right_elem = Index(Ref(new_var), _const_index(1))
    new_bindings: dict[str, Expr] = {}
    for name, access in owner.bindings.items():
        new_bindings[name] = access.substitute({owner.var: left_elem})
    new_bindings[gen.var] = right_elem
    owner.comb = comb
    owner.var = new_var
    owner.bindings = new_bindings


def _comp_vars(expr: Expr, ctx: LoweringContext) -> frozenset[str]:
    """Free names of ``expr`` that are comprehension-bound (not driver)."""
    return expr.free_vars() - ctx.driver_vars


def _push_filters(
    slots: list[_Slot],
    existentials: list[Generator],
    guards: list[Expr],
    ctx: LoweringContext,
    exists_vars: frozenset[str],
) -> list[Expr]:
    """Attach guards referencing a single generator to that generator."""
    remaining: list[Expr] = []
    slot_by_name: dict[str, _Slot] = {}
    for s in slots:
        for bound in s.bindings:
            slot_by_name[bound] = s
    for predicate in guards:
        names = _comp_vars(predicate, ctx) & (
            set(slot_by_name) | exists_vars
        )
        exists_names = names & exists_vars
        if len(names) == 1 and exists_names:
            (name,) = names
            gen = next(g for g in existentials if g.var == name)
            idx = existentials.index(gen)
            filtered = CFilter(
                predicate=ScalarFn((name,), predicate),
                input=_existential_source(gen, ctx),
            )
            existentials[idx] = Generator(
                var=gen.var,
                source=_Prelowered(filtered),
                mode=gen.mode,
            )
            ctx.record(
                "filter-pushdown",
                True,
                f"guard pushed onto existential generator {name!r}",
                before=predicate,
            )
            continue
        if names and not exists_names:
            owners = {id(slot_by_name[n]) for n in names}
            if len(owners) == 1:
                slot = slot_by_name[next(iter(names))]
                slot.comb = CFilter(
                    predicate=ScalarFn(
                        (slot.var,),
                        predicate.substitute(slot.bindings),
                    ),
                    input=slot.comb,
                )
                ctx.record(
                    "filter-pushdown",
                    True,
                    f"single-generator guard over {sorted(names)} "
                    "pushed below the joins",
                    before=predicate,
                )
                continue
        # Multi-slot predicates (join candidates) and driver-constant
        # guards stay for the later rewrite states.
        remaining.append(predicate)
    return remaining


def _existential_source(gen: Generator, ctx: LoweringContext) -> Combinator:
    if isinstance(gen.source, _Prelowered):
        return gen.source.comb
    return lower_source(gen.source, ctx)


@dataclass(frozen=True)
class _Prelowered(Expr):
    """Internal wrapper: a generator source already lowered to a dataflow."""

    comb: Combinator = None  # type: ignore[assignment]

    def children(self):  # pragma: no cover - no Expr children
        return iter(())

    def free_vars(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, mapping) -> Expr:
        return self


def _split_equi_guard(
    predicate: Expr,
    left_names: frozenset[str],
    right_names: frozenset[str],
    ctx: LoweringContext,
) -> tuple[Expr, Expr] | None:
    """Match ``k1(x) == k2(y)`` with sides split across two var sets.

    Returns (left-side key expr, right-side key expr) or ``None``.
    """
    if not isinstance(predicate, Compare) or predicate.op != "==":
        return None
    generator_names = left_names | right_names
    lv = predicate.left.free_vars() & generator_names
    rv = predicate.right.free_vars() & generator_names
    if lv and lv <= left_names and rv and rv <= right_names:
        return predicate.left, predicate.right
    if lv and lv <= right_names and rv and rv <= left_names:
        return predicate.right, predicate.left
    return None


def _apply_existentials(
    slots: list[_Slot],
    existentials: list[Generator],
    guards: list[Expr],
    ctx: LoweringContext,
) -> list[Expr]:
    """Turn EXISTS/NOT_EXISTS generators into semi-/anti-joins."""
    for gen in existentials:
        gen_names = frozenset((gen.var,))
        matched = False
        for slot in slots:
            slot_names = frozenset(slot.bindings)
            for predicate in list(guards):
                split = _split_equi_guard(
                    predicate, slot_names, gen_names, ctx
                )
                if split is None:
                    continue
                left_key, right_key = split
                anti = gen.mode is GenMode.NOT_EXISTS
                slot.comb = CSemiJoin(
                    kx=ScalarFn(
                        (slot.var,), left_key.substitute(slot.bindings)
                    ),
                    ky=ScalarFn((gen.var,), right_key),
                    left=slot.comb,
                    right=_existential_source(gen, ctx),
                    anti=anti,
                )
                ctx.record(
                    "anti-join" if anti else "semi-join",
                    True,
                    f"{'NOT_EXISTS' if anti else 'EXISTS'} generator "
                    f"{gen.var!r} + equi-guard realized as a "
                    f"{'anti' if anti else 'semi'}-join",
                    before=predicate,
                )
                guards.remove(predicate)
                matched = True
                break
            if matched:
                break
        if not matched:
            raise LoweringError(
                f"existential generator {gen.var!r} has no equi-join "
                "predicate; normalization should not have unnested it"
            )
    return guards


def _apply_joins(
    slots: list[_Slot], guards: list[Expr], ctx: LoweringContext
) -> list[Expr]:
    """Repeatedly join slot pairs connected by equality guards."""
    changed = True
    while changed and len(slots) > 1:
        changed = False
        for predicate in list(guards):
            pair = _find_joinable(slots, predicate, ctx)
            if pair is None:
                continue
            a, b, left_key, right_key = pair
            joined = _join_slots(a, b, left_key, right_key)
            ctx.record(
                "equi-join",
                True,
                f"equality guard joins generators "
                f"{sorted(a.bindings)} and {sorted(b.bindings)}",
                before=predicate,
                after=joined.comb,
            )
            slots.remove(a)
            slots.remove(b)
            slots.append(joined)
            guards.remove(predicate)
            changed = True
            break
    return guards


def _find_joinable(
    slots: list[_Slot], predicate: Expr, ctx: LoweringContext
) -> tuple[_Slot, _Slot, Expr, Expr] | None:
    for i, a in enumerate(slots):
        for b in slots[i + 1 :]:
            split = _split_equi_guard(
                predicate,
                frozenset(a.bindings),
                frozenset(b.bindings),
                ctx,
            )
            if split is not None:
                return a, b, split[0], split[1]
    return None


def _join_slots(
    a: _Slot, b: _Slot, left_key: Expr, right_key: Expr
) -> _Slot:
    var = fresh_name("_j", frozenset(a.bindings) | frozenset(b.bindings))
    comb = CEqJoin(
        kx=ScalarFn((a.var,), left_key.substitute(a.bindings)),
        ky=ScalarFn((b.var,), right_key.substitute(b.bindings)),
        left=a.comb,
        right=b.comb,
    )
    return _Slot(comb=comb, var=var, bindings=_pair_bindings(a, b, var))


def _apply_crosses(
    slots: list[_Slot], ctx: LoweringContext
) -> None:
    while len(slots) > 1:
        a = slots.pop(0)
        b = slots.pop(0)
        ctx.record(
            "cross",
            True,
            f"no connecting guard between {sorted(a.bindings)} and "
            f"{sorted(b.bindings)}; combined via cartesian product",
        )
        var = fresh_name(
            "_c", frozenset(a.bindings) | frozenset(b.bindings)
        )
        slot = _Slot(
            comb=CCross(left=a.comb, right=b.comb),
            var=var,
            bindings=_pair_bindings(a, b, var),
        )
        slots.insert(0, slot)


def _pair_bindings(a: _Slot, b: _Slot, var: str) -> dict[str, Expr]:
    """Rebase both slots' bindings onto the pair element ``(a, b)``."""
    left_elem = Index(Ref(var), _const_index(0))
    right_elem = Index(Ref(var), _const_index(1))
    bindings: dict[str, Expr] = {}
    for name, access in a.bindings.items():
        bindings[name] = access.substitute({a.var: left_elem})
    for name, access in b.bindings.items():
        bindings[name] = access.substitute({b.var: right_elem})
    return bindings


def _const_index(i: int) -> Expr:
    from repro.comprehension.exprs import Const

    return Const(i)

"""Combinator nodes — the abstract parallel dataflow (paper §4.3.1).

Each combinator corresponds to a higher-order function supported by the
target engines (``map``, ``flatMap``, ``filter``, ``join``, ``cross``,
``groupBy``/``reduceByKey``-style ``aggBy``, ``union``, ...), so
generating a concrete dataflow is node-by-node substitution.  The nodes
here are *logical with physical annotations*: the optimizer may set
``cache`` (materialize and reuse the result across dataflow submissions)
and ``partition_hint`` (enforce a hash partitioning on a key, so later
joins/groupings reuse it) on any node.

UDFs are carried as :class:`ScalarFn` — a parameter list plus a lifted
IR body.  At submission time the engine closes the body over the driver
environment; free variables that resolve to bags become broadcast
variables (the paper's transparent "driver to UDFs" data motion,
Figure 3b).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator, Mapping

from repro.comprehension.exprs import (
    AlgebraSpec,
    Env,
    Expr,
    Lambda,
    Ref,
    compile_scalar,
)
from repro.comprehension.pretty import pretty

_node_ids = itertools.count()


@dataclass(frozen=True)
class ScalarFn:
    """A UDF: parameters plus a lifted IR body.

    ``compile(env)`` closes the body over ``env`` and returns a plain
    Python callable.  ``free_names()`` lists the body's unbound names —
    the candidates for broadcast injection and closure capture.
    """

    params: tuple[str, ...]
    body: Expr

    def free_names(self) -> frozenset[str]:
        """Unbound names of the body — broadcast/closure candidates."""
        return self.body.free_vars() - frozenset(self.params)

    def compile(self, env: Env | Mapping[str, Any]) -> Callable:
        """Close the body over ``env``; returns a plain callable."""
        return self.compile_native(env)[0]

    def compile_native(
        self, env: Env | Mapping[str, Any]
    ) -> tuple[Callable, bool]:
        """Close over ``env``, preferring a natively compiled closure.

        Returns ``(callable, native)``: ``native`` is True when the
        body compiled to a plain Python function via ``compile()`` (the
        hot path no longer walks the expression AST) and False when it
        fell back to the tree-walking interpreter (exotic nodes, or a
        free name only resolvable at call time).  Both forms have
        identical semantics.
        """
        env = Env.of(env)
        fn = compile_scalar(self.params, self.body, env)
        if fn is not None:
            return fn, True
        return Lambda(self.params, self.body).evaluate(env), False

    @staticmethod
    def identity(var: str = "x") -> "ScalarFn":
        return ScalarFn((var,), Ref(var))

    def canonical(self) -> "ScalarFn":
        """Alpha-normalized form: parameters renamed positionally.

        Two UDFs that differ only in parameter names canonicalize to
        equal values — partitioner matching uses this so that e.g. a
        grouping key ``\\g -> g.key`` recognizes a partitioning recorded
        as ``\\_g -> _g.key``.
        """
        mapping = {
            p: Ref(f"_arg{i}") for i, p in enumerate(self.params)
        }
        return ScalarFn(
            tuple(f"_arg{i}" for i in range(len(self.params))),
            self.body.substitute(mapping),
        )

    def is_identity(self) -> bool:
        """Whether the UDF is ``x -> x`` (elidable as a map)."""
        return (
            len(self.params) == 1
            and isinstance(self.body, Ref)
            and self.body.name == self.params[0]
        )

    def describe(self) -> str:
        """A one-line lambda rendering for plan explanations."""
        return f"\\{', '.join(self.params)} -> {pretty(self.body)}"


@dataclass(frozen=True)
class PhysProps:
    """Physical-planning annotations on a combinator node.

    Set by :mod:`repro.optimizer.physical_props` (the interesting-
    properties pass).  On a node feeding a shuffle, ``motion`` records
    how the required repartitioning is expected to be satisfied:

    * ``"elidable"`` — the node already delivers the required hash
      partitioning, so the shuffle is a no-op;
    * ``"hoistable"`` — the node is loop-invariant (all leaves are
      cached bags, no UDF reads a loop-mutated name), so its shuffled
      result can be computed once and reused every iteration;
    * ``"required"`` — the data genuinely has to move.

    On a join node, ``strategy`` records the plan-time preference
    (``"repartition"`` when a side's motion is free, ``"cost"`` to defer
    to the runtime size comparison).  ``delivered`` is the partitioning
    key the node's *output* carries, when one is statically known.
    ``invariant_refs`` names the cached bags a hoistable subtree reads —
    the hoist-cache key includes their identities so a re-cached input
    invalidates the hoisted result.
    """

    delivered: ScalarFn | None = None
    motion: str | None = None
    strategy: str | None = None
    invariant_refs: tuple[str, ...] = ()


@dataclass(frozen=True)
class Combinator:
    """Base class for dataflow combinator nodes.

    ``cache``, ``partition_hint``, and ``phys`` are physical annotations
    set by the optimizer; ``node_id`` identifies the node across
    rewrites (used by engines for cache keys).
    """

    node_id: int = field(
        default_factory=lambda: next(_node_ids), compare=False
    )
    cache: bool = field(default=False, compare=False)
    partition_hint: ScalarFn | None = field(default=None, compare=False)
    phys: PhysProps | None = field(default=None, compare=False)
    #: set by the UDF-aware reordering pass on operators it moved, e.g.
    #: ``"pushed-below-join: reads {commit_date, receipt_date}"``;
    #: rendered inline by :func:`explain`
    reorder_note: str = field(default="", compare=False)

    def inputs(self) -> tuple["Combinator", ...]:
        """The upstream dataflow nodes this combinator consumes."""
        return ()

    def udfs(self) -> tuple[ScalarFn, ...]:
        """The UDFs evaluated by this node (for broadcast analysis)."""
        return ()

    def with_cache(self) -> "Combinator":
        """A copy annotated for materialization (same node id)."""
        return replace(self, cache=True)

    def with_partition_hint(self, key: ScalarFn) -> "Combinator":
        """A copy annotated with an enforced hash partitioning."""
        return replace(self, partition_hint=key)

    def with_phys(self, props: PhysProps) -> "Combinator":
        """A copy annotated with physical-planning properties."""
        return replace(self, phys=props)

    def label(self) -> str:
        """The operator's display name (class name sans ``C``)."""
        return type(self).__name__.lstrip("C")

    def describe(self) -> str:
        """One-line node rendering for :func:`explain`."""
        return self.label()


# -- leaves -----------------------------------------------------------------


@dataclass(frozen=True)
class CSource(Combinator):
    """Read a bag from the (distributed) filesystem."""

    path: Expr = None  # type: ignore[assignment]
    fmt: Expr = None  # type: ignore[assignment]

    def describe(self) -> str:
        return f"Source({pretty(self.path)})"


@dataclass(frozen=True)
class CBagRef(Combinator):
    """Reference a driver-held bag value by name.

    At submission the engine resolves the name in the driver
    environment: a cached/distributed bag plugs in directly; a local
    DataBag is parallelized (the "driver to dataflow" edge).
    """

    name: str = ""

    def describe(self) -> str:
        return f"BagRef({self.name})"


@dataclass(frozen=True)
class CParallelize(Combinator):
    """Lift a driver-side sequence expression into a distributed bag."""

    seq: Expr = None  # type: ignore[assignment]

    def describe(self) -> str:
        return f"Parallelize({pretty(self.seq)})"


# -- element-wise -------------------------------------------------------------


@dataclass(frozen=True)
class CMap(Combinator):
    """``map f xs``."""

    fn: ScalarFn = None  # type: ignore[assignment]
    input: Combinator = None  # type: ignore[assignment]

    def inputs(self) -> tuple[Combinator, ...]:
        return (self.input,)

    def udfs(self) -> tuple[ScalarFn, ...]:
        return (self.fn,)

    def describe(self) -> str:
        return f"Map({self.fn.describe()})"


@dataclass(frozen=True)
class CFlatMap(Combinator):
    """``flatMap f xs`` — f yields a collection per element."""

    fn: ScalarFn = None  # type: ignore[assignment]
    input: Combinator = None  # type: ignore[assignment]

    def inputs(self) -> tuple[Combinator, ...]:
        return (self.input,)

    def udfs(self) -> tuple[ScalarFn, ...]:
        return (self.fn,)

    def describe(self) -> str:
        return f"FlatMap({self.fn.describe()})"


@dataclass(frozen=True)
class CFilter(Combinator):
    """``filter p xs``."""

    predicate: ScalarFn = None  # type: ignore[assignment]
    input: Combinator = None  # type: ignore[assignment]

    def inputs(self) -> tuple[Combinator, ...]:
        return (self.input,)

    def udfs(self) -> tuple[ScalarFn, ...]:
        return (self.predicate,)

    def describe(self) -> str:
        return f"Filter({self.predicate.describe()})"


@dataclass(frozen=True)
class CChain(Combinator):
    """A fused run of record-wise operators (a physical operator chain).

    ``ops`` holds the original narrow combinators (:class:`CMap`,
    :class:`CFlatMap`, :class:`CFilter`) in dataflow order —
    ``ops[0]`` consumes ``input``.  The executor streams each partition
    through one compiled per-partition kernel, paying a single task-
    overhead charge and a single materialization for the whole chain
    (Flink's pipelined operator chains; Spark's fused narrow stages).

    ``shared`` marks a chain whose *result* has several consumers: it
    still fuses internally, but is never inlined into a downstream
    aggregation, so per-job DAG memoization can reuse its one
    materialized result.
    """

    ops: tuple[Combinator, ...] = ()
    input: Combinator = None  # type: ignore[assignment]
    shared: bool = field(default=False, compare=False)
    #: optimizer-selected execution plane: ``True`` runs the chain
    #: through a vectorized batch kernel over ColumnBatch partitions
    columnar: bool = field(default=False, compare=False)
    #: why the chain stays (or may fall back to) row-at-a-time; set by
    #: the columnar-selection pass, rendered in ``describe()``/trace
    columnar_reason: str = field(default="", compare=False)

    def inputs(self) -> tuple[Combinator, ...]:
        return (self.input,)

    def udfs(self) -> tuple[ScalarFn, ...]:
        out: list[ScalarFn] = []
        for op in self.ops:
            out.extend(op.udfs())
        return tuple(out)

    def preserves_partitioning(self) -> bool:
        """Only an all-filter chain keeps its input's partitioning."""
        return all(isinstance(op, CFilter) for op in self.ops)

    def describe(self) -> str:
        inner = " -> ".join(op.describe() for op in self.ops)
        if self.columnar:
            return f"Chain[{inner} | columnar]"
        if self.columnar_reason:
            return f"Chain[{inner} | row]"
        return f"Chain[{inner}]"


# -- binary ---------------------------------------------------------------


@dataclass(frozen=True)
class CEqJoin(Combinator):
    """Equi-join: pairs ``(x, y)`` with ``kx(x) == ky(y)``."""

    kx: ScalarFn = None  # type: ignore[assignment]
    ky: ScalarFn = None  # type: ignore[assignment]
    left: Combinator = None  # type: ignore[assignment]
    right: Combinator = None  # type: ignore[assignment]
    #: exchange-plane selection ("columnar" / "row" / "" when the pass
    #: did not run), decided at compile time by
    #: :func:`repro.optimizer.columnar_select.select_columnar`
    exchange: str = field(default="", compare=False)
    exchange_reason: str = field(default="", compare=False)

    def inputs(self) -> tuple[Combinator, ...]:
        return (self.left, self.right)

    def udfs(self) -> tuple[ScalarFn, ...]:
        return (self.kx, self.ky)

    def describe(self) -> str:
        return f"EqJoin({self.kx.describe()} == {self.ky.describe()})"


@dataclass(frozen=True)
class CSemiJoin(Combinator):
    """Left semi-join (``anti=False``) or anti-join (``anti=True``).

    Emits each left element at most once — the realization of an
    ``EXISTS``/``NOT_EXISTS`` generator, preserving bag multiplicities
    of the left side.
    """

    kx: ScalarFn = None  # type: ignore[assignment]
    ky: ScalarFn = None  # type: ignore[assignment]
    left: Combinator = None  # type: ignore[assignment]
    right: Combinator = None  # type: ignore[assignment]
    anti: bool = False
    #: exchange-plane selection ("columnar" / "row" / "" when the pass
    #: did not run), decided at compile time by
    #: :func:`repro.optimizer.columnar_select.select_columnar`
    exchange: str = field(default="", compare=False)
    exchange_reason: str = field(default="", compare=False)

    def inputs(self) -> tuple[Combinator, ...]:
        return (self.left, self.right)

    def udfs(self) -> tuple[ScalarFn, ...]:
        return (self.kx, self.ky)

    def describe(self) -> str:
        kind = "AntiJoin" if self.anti else "SemiJoin"
        return f"{kind}({self.kx.describe()} == {self.ky.describe()})"


@dataclass(frozen=True)
class CCross(Combinator):
    """Cartesian product: all pairs ``(x, y)``."""

    left: Combinator = None  # type: ignore[assignment]
    right: Combinator = None  # type: ignore[assignment]

    def inputs(self) -> tuple[Combinator, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class CUnion(Combinator):
    """Bag union (``plus``)."""

    left: Combinator = None  # type: ignore[assignment]
    right: Combinator = None  # type: ignore[assignment]

    def inputs(self) -> tuple[Combinator, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class CMinus(Combinator):
    """Bag difference (``minus``)."""

    left: Combinator = None  # type: ignore[assignment]
    right: Combinator = None  # type: ignore[assignment]

    def inputs(self) -> tuple[Combinator, ...]:
        return (self.left, self.right)


# -- grouping / aggregation ---------------------------------------------------


@dataclass(frozen=True)
class CGroupBy(Combinator):
    """``groupBy k xs`` — materializes ``Grp(key, values)`` groups.

    Requires a full shuffle *and* per-key materialization of group
    values; fold-group fusion exists to replace this node with
    :class:`CAggBy` whenever the group values are only folded.
    """

    key: ScalarFn = None  # type: ignore[assignment]
    input: Combinator = None  # type: ignore[assignment]
    #: exchange-plane selection ("columnar" / "row" / "" when the pass
    #: did not run), decided at compile time by
    #: :func:`repro.optimizer.columnar_select.select_columnar`
    exchange: str = field(default="", compare=False)
    exchange_reason: str = field(default="", compare=False)

    def inputs(self) -> tuple[Combinator, ...]:
        return (self.input,)

    def udfs(self) -> tuple[ScalarFn, ...]:
        return (self.key,)

    def describe(self) -> str:
        return f"GroupBy({self.key.describe()})"


@dataclass(frozen=True)
class CAggBy(Combinator):
    """``aggBy k (e1 x ... x en, s1 x ... x sn, u1 x ... x un) xs``.

    The fused form produced by fold-group fusion: emits one
    ``(key, a1, ..., an)`` record per key, pre-aggregating on the mapper
    side before the shuffle (the ``reduceByKey``/``combine`` pattern).
    """

    key: ScalarFn = None  # type: ignore[assignment]
    specs: tuple[AlgebraSpec, ...] = ()
    input: Combinator = None  # type: ignore[assignment]
    #: exchange-plane selection for the partial-aggregate shuffle
    #: ("columnar" / "row" / "" when the pass did not run).  The
    #: shuffled records are always ``(key, aggs)`` pairs keyed by
    #: ``_p[0]``, so the static key check is on that synthetic key,
    #: not on ``key`` (which runs mapper-side, before the exchange).
    exchange: str = field(default="", compare=False)
    exchange_reason: str = field(default="", compare=False)

    def inputs(self) -> tuple[Combinator, ...]:
        return (self.input,)

    def udfs(self) -> tuple[ScalarFn, ...]:
        return (self.key,)

    def describe(self) -> str:
        names = ", ".join(s.alias for s in self.specs)
        return f"AggBy({self.key.describe()}; {names})"


@dataclass(frozen=True)
class CDistinct(Combinator):
    """Duplicate elimination."""

    input: Combinator = None  # type: ignore[assignment]

    def inputs(self) -> tuple[Combinator, ...]:
        return (self.input,)


@dataclass(frozen=True)
class CFold(Combinator):
    """A global fold — the dataflow's result is a scalar on the driver."""

    spec: AlgebraSpec = None  # type: ignore[assignment]
    input: Combinator = None  # type: ignore[assignment]

    def inputs(self) -> tuple[Combinator, ...]:
        return (self.input,)

    def describe(self) -> str:
        return f"Fold({self.spec.alias})"


# ---------------------------------------------------------------------------
# Utilities
# ---------------------------------------------------------------------------


def combinator_nodes(root: Combinator) -> Iterator[Combinator]:
    """Yield all nodes of a combinator tree, pre-order."""
    yield root
    for child in root.inputs():
        yield from combinator_nodes(child)


def ensure_node_ids_above(minimum: int) -> None:
    """Advance the global node-id counter past ``minimum``.

    Plans loaded from the on-disk plan cache carry the node ids they
    were compiled with; bumping the counter keeps ids of nodes created
    later in this driver from colliding with them (engine hoist caches
    key on ``node_id``).
    """
    global _node_ids
    current = next(_node_ids)
    _node_ids = itertools.count(max(current, minimum + 1))


_MOTION_MARKERS = {
    "elidable": "[co-partitioned]",
    "hoistable": "[hoisted]",
    "required": "[shuffle]",
}


def explain(
    root: Combinator, indent: int = 0, task_width: int | None = None
) -> str:
    """Render a combinator tree as an indented plan, one node per line.

    With ``task_width`` (the scheduler's concurrent-slot count under a
    non-serial execution mode), stage-forming nodes — fused chains and
    shuffle sites — additionally carry a ``[tasks<=N]`` marker showing
    how wide their partition tasks may fan out on the host.
    """
    flags = []
    if root.cache:
        flags.append("cached")
    if root.partition_hint is not None:
        flags.append(f"partitioned[{root.partition_hint.describe()}]")
    if root.phys is not None and root.phys.strategy is not None:
        flags.append(f"strategy={root.phys.strategy}")
    if getattr(root, "exchange", ""):
        flags.append(f"exchange={root.exchange}")
    suffix = f"  <{', '.join(flags)}>" if flags else ""
    marker = ""
    if root.phys is not None and root.phys.motion is not None:
        marker = " " + _MOTION_MARKERS[root.phys.motion]
    described = root.describe()
    if task_width is not None and (
        described.startswith("Chain[") or marker
    ):
        marker += f" [tasks<={task_width}]"
    notes = [root.reorder_note] if root.reorder_note else []
    if isinstance(root, CChain):
        # Chaining preserves the original narrow operators in ``ops``,
        # so a moved filter's annotation survives fusion.
        notes.extend(op.reorder_note for op in root.ops if op.reorder_note)
    for note in notes:
        marker += f" [{note}]"
    lines = ["  " * indent + described + marker + suffix]
    for child in root.inputs():
        lines.append(explain(child, indent + 1, task_width=task_width))
    return "\n".join(lines)


@dataclass(frozen=True)
class AggResult:
    """One output record of :class:`CAggBy`: the key plus aggregates.

    Aggregates are accessed positionally (``aggs[i]``) by the rewritten
    head expressions that fold-group fusion produces.
    """

    key: Any
    aggs: tuple

    def __iter__(self) -> Iterator[Any]:
        # Allow tuple-style unpacking: (key, a1, ..., an).
        yield self.key
        yield from self.aggs

"""Lowering: comprehensions -> combinator dataflows (paper Section 4.3).

Each rule of Figure 2 matches elements of a normalized comprehension and
replaces them with a closed-form *combinator*; the rewrite follows the
Figure 3a state machine (filters first, then equi-joins, then crosses,
then the final map/flat-map), which pushes filters as far down as the
constructed dataflow allows.  The resulting combinator tree is the
abstract version of the dataflow submitted to a parallel engine.
"""

from repro.lowering.chaining import ChainStats, chain_operators
from repro.lowering.combinators import (
    CAggBy,
    CBagRef,
    CChain,
    CCross,
    CDistinct,
    CEqJoin,
    CFilter,
    CFlatMap,
    CFold,
    CGroupBy,
    CMap,
    CMinus,
    CParallelize,
    CSemiJoin,
    CSource,
    CUnion,
    Combinator,
    ScalarFn,
    combinator_nodes,
    explain,
)
from repro.lowering.rules import LoweringContext, lower, lower_source

__all__ = [
    "CAggBy",
    "CBagRef",
    "CChain",
    "CCross",
    "CDistinct",
    "CEqJoin",
    "CFilter",
    "CFlatMap",
    "CFold",
    "CGroupBy",
    "CMap",
    "CMinus",
    "CParallelize",
    "CSemiJoin",
    "CSource",
    "CUnion",
    "Combinator",
    "ScalarFn",
    "combinator_nodes",
    "explain",
    "ChainStats",
    "chain_operators",
    "LoweringContext",
    "lower",
    "lower_source",
]

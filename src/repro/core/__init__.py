"""The user-facing Emma language core (paper Section 3, Listing 3).

``DataBag`` is the single collection abstraction: a homogeneous bag that
supports the monad operators (``map``, ``flat_map``, ``with_filter``),
nesting through ``group_by`` (group values are themselves DataBags),
structural recursion through ``fold`` and its aliases, and conversion
to/from host-language sequences.  ``StatefulBag`` adds point-wise
iterative refinement for graph-style algorithms.

All operators have direct host-language semantics — programs run locally
as plain Python, which is both the paper's rapid-prototyping story and
this library's differential-testing oracle for the parallel backends.
"""

from repro.core.databag import DataBag
from repro.core.grp import Grp
from repro.core.io import (
    CsvFormat,
    JsonLinesFormat,
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
)
from repro.core.stateful import StatefulBag

__all__ = [
    "DataBag",
    "Grp",
    "StatefulBag",
    "CsvFormat",
    "JsonLinesFormat",
    "read_csv",
    "read_jsonl",
    "write_csv",
    "write_jsonl",
]

"""``DataBag`` — the core collection abstraction (paper Listing 3).

The bag is homogeneous, unordered, and admits duplicates.  The API is a
faithful Python rendering of the paper's Listing 3:

* monad operators ``map`` / ``flat_map`` / ``with_filter`` (these are
  what Python generator expressions over bags desugar to in the
  frontend);
* nesting via ``group_by`` — group values are first-class DataBags;
* ``plus`` (bag union), ``minus`` (bag difference), ``distinct``;
* structural recursion via ``fold`` and a family of aliases
  (``sum``, ``count``, ``min``, ``max``, ``min_by``, ``exists`` ...);
* conversion to and from host-language sequences.

Everything here executes directly with host-language semantics: the bag
is list-backed and operators are eager.  This is the "incremental
development and debugging at small scale" mode of the paper, and it is
the semantic oracle against which the simulated parallel engines are
differential-tested.

Equality between bags is multiset equality — element order never
matters.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import (
    Callable,
    Generic,
    Iterable,
    Iterator,
    Sequence,
    TypeVar,
)

from repro.algebra.fold import FoldAlgebra
from repro.core.grp import Grp

A = TypeVar("A")
B = TypeVar("B")
K = TypeVar("K")


class DataBag(Generic[A]):
    """A homogeneous collection with bag semantics.

    Construct from any iterable::

        xs = DataBag([1, 2, 2, 3])

    or via :meth:`DataBag.empty` / :meth:`DataBag.of`.
    """

    __slots__ = ("_data",)

    def __init__(self, elements: Iterable[A] = ()) -> None:
        self._data: list[A] = list(elements)

    # -- constructors -------------------------------------------------

    @staticmethod
    def empty() -> "DataBag[A]":
        """The empty bag (``emp`` of the union algebra)."""
        return DataBag(())

    @staticmethod
    def of(*elements: A) -> "DataBag[A]":
        """Bag of the given elements: ``DataBag.of(1, 2, 2)``."""
        return DataBag(elements)

    @staticmethod
    def single(element: A) -> "DataBag[A]":
        """Singleton bag (``sng`` of the union algebra)."""
        return DataBag((element,))

    # -- type conversion ----------------------------------------------

    def fetch(self) -> list[A]:
        """Materialize the bag as a host-language list (arbitrary order).

        On a parallel backend this is the point where distributed
        partitions are shipped to the driver.
        """
        return list(self._data)

    # -- monad operators (enable comprehension syntax) -----------------

    def map(self, f: Callable[[A], B]) -> "DataBag[B]":
        """Apply ``f`` to every element."""
        return DataBag(f(x) for x in self._data)

    def flat_map(self, f: Callable[[A], "DataBag[B] | Iterable[B]"]) -> "DataBag[B]":
        """Apply ``f`` (element -> bag) and union the results."""
        out: list[B] = []
        for x in self._data:
            result = f(x)
            if isinstance(result, DataBag):
                out.extend(result._data)
            else:
                out.extend(result)
        return DataBag(out)

    def with_filter(self, p: Callable[[A], bool]) -> "DataBag[A]":
        """Keep the elements satisfying predicate ``p``."""
        return DataBag(x for x in self._data if p(x))

    # ``filter`` is a convenience alias familiar to Python users.
    filter = with_filter

    # -- nesting -------------------------------------------------------

    def group_by(self, key: Callable[[A], K]) -> "DataBag[Grp[K, A]]":
        """Group elements by ``key``; group values are DataBags.

        One ``Grp`` per distinct key.  Group order is unspecified (bag
        semantics); values preserve no order either.
        """
        groups: dict[K, list[A]] = defaultdict(list)
        for x in self._data:
            groups[key(x)].append(x)
        return DataBag(
            Grp(k, DataBag(vs)) for k, vs in groups.items()
        )

    # -- union / difference / distinct ----------------------------------

    def plus(self, addend: "DataBag[A]") -> "DataBag[A]":
        """Bag union (``uni``): multiplicities add up."""
        return DataBag(self._data + addend._data)

    def minus(self, subtrahend: "DataBag[A]") -> "DataBag[A]":
        """Bag difference: multiplicities subtract, floored at zero.

        Requires hashable elements.
        """
        remaining = Counter(subtrahend._data)
        out: list[A] = []
        for x in self._data:
            if remaining[x] > 0:
                remaining[x] -= 1
            else:
                out.append(x)
        return DataBag(out)

    def distinct(self) -> "DataBag[A]":
        """Remove duplicates.  Requires hashable elements."""
        seen: set[A] = set()
        out: list[A] = []
        for x in self._data:
            if x not in seen:
                seen.add(x)
                out.append(x)
        return DataBag(out)

    # -- structural recursion -------------------------------------------

    def fold(
        self,
        zero: B | Callable[[], B],
        singleton: Callable[[A], B],
        union: Callable[[B, B], B],
    ) -> B:
        """Structural recursion with the ``(e, s, u)`` triple.

        ``zero`` may be a plain value or a zero-argument factory; pass a
        factory when the zero is mutable.  The triple must satisfy the
        well-definedness conditions of Section 2.2.2 (unit,
        associativity, commutativity of ``union``) — the library cannot
        verify this for arbitrary functions, but
        :func:`repro.algebra.laws.check_fold_well_defined` can spot-check
        it during development.
        """
        make_zero = zero if callable(zero) else (lambda: zero)
        algebra: FoldAlgebra[A, B] = FoldAlgebra(
            zero=make_zero, singleton=singleton, union=union
        )
        return algebra(self._data)

    def fold_algebra(self, algebra: FoldAlgebra[A, B]) -> B:
        """Apply a prebuilt :class:`FoldAlgebra` to this bag."""
        return algebra(self._data)

    # -- fold aliases ----------------------------------------------------

    def sum(self) -> A:
        """Sum of the elements: ``fold(0, id, +)``."""
        return self.fold(0, lambda x: x, lambda x, y: x + y)

    def product(self) -> A:
        """Product of the elements: ``fold(1, id, *)``."""
        return self.fold(1, lambda x: x, lambda x, y: x * y)

    def count(self) -> int:
        """Number of elements: ``fold(0, const 1, +)``."""
        return self.fold(0, lambda _x: 1, lambda x, y: x + y)

    # ``size`` is an alias used in some Emma code samples.
    size = count

    def is_empty(self) -> bool:
        """True iff the bag has no elements: ``fold(True, const False, and)``."""
        return self.fold(True, lambda _x: False, lambda x, y: x and y)

    def non_empty(self) -> bool:
        """True iff the bag has at least one element."""
        return not self.is_empty()

    def exists(self, p: Callable[[A], bool]) -> bool:
        """Existential qualifier: ``fold(False, p, or)``."""
        return self.fold(False, lambda x: bool(p(x)), lambda x, y: x or y)

    def forall(self, p: Callable[[A], bool]) -> bool:
        """Universal qualifier: ``fold(True, p, and)``."""
        return self.fold(True, lambda x: bool(p(x)), lambda x, y: x and y)

    def min(self) -> A | None:
        """Minimum element, or ``None`` for the empty bag."""
        return self.min_by(lambda x: x)

    def max(self) -> A | None:
        """Maximum element, or ``None`` for the empty bag."""
        return self.max_by(lambda x: x)

    def min_by(self, key: Callable[[A], object]) -> A | None:
        """Element with the minimal ``key``, or ``None`` if empty.

        Written as a fold over the option monoid, mirroring the paper's
        ``minBy`` (the k-means nearest-centroid step uses it).
        """

        def union(x: A | None, y: A | None) -> A | None:
            if x is None:
                return y
            if y is None:
                return x
            return x if key(x) <= key(y) else y  # type: ignore[operator]

        return self.fold(None, lambda x: x, union)

    def max_by(self, key: Callable[[A], object]) -> A | None:
        """Element with the maximal ``key``, or ``None`` if empty."""

        def union(x: A | None, y: A | None) -> A | None:
            if x is None:
                return y
            if y is None:
                return x
            return x if key(x) >= key(y) else y  # type: ignore[operator]

        return self.fold(None, lambda x: x, union)

    def sample(self, n: int) -> list[A]:
        """Up to ``n`` arbitrary elements (deterministic here: a prefix)."""
        if n < 0:
            raise ValueError("sample size must be non-negative")
        return self._data[:n]

    # -- python protocol -------------------------------------------------

    def __iter__(self) -> Iterator[A]:
        """Iterate the elements in an unspecified order.

        Provided so bags can appear as generator-expression sources —
        the syntax the frontend lifts into comprehensions.
        """
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, x: object) -> bool:
        return x in self._data

    def __eq__(self, other: object) -> bool:
        """Multiset equality — order never matters for bags."""
        if not isinstance(other, DataBag):
            return NotImplemented
        return _as_counter(self._data) == _as_counter(other._data)

    def __hash__(self) -> int:
        # Hash via the sorted multiset representation when possible;
        # bags of unhashable elements are themselves unhashable.
        return hash(frozenset(_as_counter(self._data).items()))

    def __repr__(self) -> str:
        preview = ", ".join(repr(x) for x in self._data[:8])
        suffix = ", ..." if len(self._data) > 8 else ""
        return f"DataBag([{preview}{suffix}])"


def _as_counter(data: Sequence) -> Counter:
    """Multiset view of a sequence, tolerating unhashable elements."""
    try:
        return Counter(data)
    except TypeError:
        # Fall back to repr-keying for unhashable elements; adequate for
        # the equality use cases (records in this library are hashable
        # dataclasses or tuples, so this path is exercised rarely).
        return Counter(repr(x) for x in data)

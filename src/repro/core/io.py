"""Reading and writing DataBags (paper Listing 3, lines 5-6).

Two concrete formats are provided:

* :class:`CsvFormat` — typed CSV for flat record classes (dataclasses or
  any class constructible from keyword arguments with simple field
  types);
* :class:`JsonLinesFormat` — one JSON object per line, for records with
  nested list fields (e.g. k-means points carrying a position vector).

Both work against the local filesystem here; on a simulated engine,
reads and writes go through the simulated DFS instead and are charged to
the engine's cost model (see :mod:`repro.engines.dfs`).
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Callable, Generic, Type, TypeVar

from repro.core.databag import DataBag
from repro.errors import EmmaError

R = TypeVar("R")

_SIMPLE_PARSERS: dict[type, Callable[[str], object]] = {
    int: int,
    float: float,
    str: str,
    bool: lambda s: s.strip().lower() in ("true", "1", "yes"),
}


class CsvFormat(Generic[R]):
    """Typed CSV (de)serialization for a flat record class.

    The record class must be a dataclass (or expose ``__annotations__``
    and accept keyword construction).  Field types must be ``int``,
    ``float``, ``str`` or ``bool``.

    Example::

        @dataclass(frozen=True)
        class Point:
            id: int
            x: float
            y: float

        bag = read_csv(path, CsvFormat(Point))
    """

    def __init__(self, record_type: Type[R]) -> None:
        self.record_type = record_type
        if dataclasses.is_dataclass(record_type):
            self._fields = {
                f.name: f.type for f in dataclasses.fields(record_type)
            }
        else:
            self._fields = dict(getattr(record_type, "__annotations__", {}))
        if not self._fields:
            raise EmmaError(
                f"{record_type.__name__} has no fields; CsvFormat needs a "
                "dataclass or an annotated record class"
            )
        by_name = {"int": int, "float": float, "str": str, "bool": bool}
        self._parsers: dict[str, Callable[[str], object]] = {}
        for name, ftype in self._fields.items():
            if isinstance(ftype, str):
                # Dataclass field types can be unevaluated string
                # annotations (PEP 563); resolve the simple ones by name.
                ftype = by_name.get(ftype, ftype)
            parser = _SIMPLE_PARSERS.get(ftype)  # type: ignore[arg-type]
            if parser is None:
                raise EmmaError(
                    f"field {name!r} of {record_type.__name__} has "
                    f"unsupported CSV type {ftype!r}"
                )
            self._parsers[name] = parser

    def parse_row(self, row: dict[str, str]) -> R:
        """One CSV row (as a dict) -> record instance."""
        kwargs = {
            name: parser(row[name]) for name, parser in self._parsers.items()
        }
        return self.record_type(**kwargs)

    def unparse_record(self, record: R) -> dict[str, object]:
        """Record instance -> one CSV row (as a dict)."""
        return {name: getattr(record, name) for name in self._fields}

    @property
    def field_names(self) -> list[str]:
        return list(self._fields)


class JsonLinesFormat(Generic[R]):
    """One JSON object per line; supports nested list/dict fields."""

    def __init__(self, record_type: Type[R]) -> None:
        self.record_type = record_type

    def parse_line(self, line: str) -> R:
        """One JSON line -> record instance."""
        data = json.loads(line)
        return self.record_type(**data)

    def unparse_record(self, record: R) -> str:
        """Record instance -> one compact JSON line (no newline)."""
        if dataclasses.is_dataclass(record):
            payload = dataclasses.asdict(record)
        else:
            payload = dict(vars(record))
        return json.dumps(payload, separators=(",", ":"))


def read_csv(path: str | Path, fmt: CsvFormat[R]) -> DataBag[R]:
    """Read a CSV file (with header) into a DataBag of records."""
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        return DataBag(fmt.parse_row(row) for row in reader)


def write_csv(path: str | Path, fmt: CsvFormat[R], bag: DataBag[R]) -> None:
    """Write a DataBag of records to a CSV file with a header row."""
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=fmt.field_names)
        writer.writeheader()
        for record in bag:
            writer.writerow(fmt.unparse_record(record))


def read_jsonl(path: str | Path, fmt: JsonLinesFormat[R]) -> DataBag[R]:
    """Read a JSON-lines file into a DataBag of records."""
    with open(path) as f:
        return DataBag(fmt.parse_line(line) for line in f if line.strip())


def write_jsonl(
    path: str | Path, fmt: JsonLinesFormat[R], bag: DataBag[R]
) -> None:
    """Write a DataBag of records to a JSON-lines file."""
    with open(path, "w") as f:
        for record in bag:
            f.write(fmt.unparse_record(record))
            f.write("\n")

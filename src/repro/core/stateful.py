"""``StatefulBag`` — point-wise iterative bag refinement (paper §3.1).

A range of algorithms (PageRank, Connected Components, label
propagation) refine a keyed bag in place.  Domain-specific systems
expose this as "vertex-centric" programming; Emma captures it
domain-agnostically:

* conversion from/to stateless ``DataBag`` is explicit
  (``StatefulBag(bag)`` / ``.bag()``);
* elements are updated point-wise with a UDF, either standalone
  (``update(u)``) or driven by keyed *update messages*
  (``update_with_messages(messages, u)``);
* the UDF returns ``None`` ("no change") or the new element version;
* each update returns the **delta** — a ``DataBag`` of the elements that
  actually changed — which is what enables semi-naive iteration (the
  Connected Components example loops while the delta is non-empty).

Elements must expose a key.  By default the key is ``element.key`` or
``element.id`` (checked in that order); pass an explicit ``key``
callable to override.
"""

from __future__ import annotations

from typing import Callable, Generic, Hashable, Optional, TypeVar

from repro.core.databag import DataBag
from repro.errors import EmmaError

A = TypeVar("A")
B = TypeVar("B")
K = TypeVar("K", bound=Hashable)


def _default_key(element: object) -> Hashable:
    for attr in ("key", "id"):
        if hasattr(element, attr):
            return getattr(element, attr)
    raise EmmaError(
        "StatefulBag elements need a 'key' or 'id' attribute, or an "
        "explicit key function"
    )


class StatefulBag(Generic[A, K]):
    """A keyed bag whose elements can be updated in place.

    The bag holds exactly one element per key; constructing it from a
    DataBag with duplicate keys is an error (state would be ambiguous).
    """

    __slots__ = ("_state", "_key")

    def __init__(
        self,
        source: DataBag[A],
        key: Callable[[A], K] | None = None,
    ) -> None:
        self._key: Callable[[A], K] = key or _default_key  # type: ignore[assignment]
        self._state: dict[K, A] = {}
        for element in source:
            k = self._key(element)
            if k in self._state:
                raise EmmaError(
                    f"duplicate key {k!r} while constructing StatefulBag"
                )
            self._state[k] = element

    # -- conversion -----------------------------------------------------

    def bag(self) -> DataBag[A]:
        """A stateless snapshot of the current state."""
        return DataBag(self._state.values())

    def __len__(self) -> int:
        return len(self._state)

    def __contains__(self, key: object) -> bool:
        return key in self._state

    def get(self, key: K) -> A | None:
        """Current element for ``key``, or ``None``."""
        return self._state.get(key)

    # -- point-wise updates ----------------------------------------------

    def update(self, u: Callable[[A], Optional[A]]) -> DataBag[A]:
        """Update every element with ``u``; return the changed delta.

        ``u`` returns the new element version, or ``None`` to leave the
        element untouched.  A changed element must keep its key.
        """
        delta: list[A] = []
        for k, element in list(self._state.items()):
            new = u(element)
            if new is None:
                continue
            self._require_same_key(k, new)
            self._state[k] = new
            delta.append(new)
        return DataBag(delta)

    def update_with_messages(
        self,
        messages: DataBag[B],
        u: Callable[[A, B], Optional[A]],
        message_key: Callable[[B], K] | None = None,
    ) -> DataBag[A]:
        """Update elements addressed by keyed messages; return the delta.

        Each message is routed to the state element sharing its key
        (messages whose key matches no element are dropped, which mirrors
        sending a message to a non-existent vertex).  When several
        messages address one element they are applied in sequence, and
        the element appears in the delta at most once — with its final
        version.
        """
        mkey: Callable[[B], K] = message_key or _default_key  # type: ignore[assignment]
        changed: dict[K, A] = {}
        for message in messages:
            k = mkey(message)
            current = self._state.get(k)
            if current is None:
                continue
            new = u(current, message)
            if new is None:
                continue
            self._require_same_key(k, new)
            self._state[k] = new
            changed[k] = new
        return DataBag(changed.values())

    # -- internals --------------------------------------------------------

    def _require_same_key(self, old_key: K, new_element: A) -> None:
        new_key = self._key(new_element)
        if new_key != old_key:
            raise EmmaError(
                f"update changed element key from {old_key!r} to "
                f"{new_key!r}; point-wise updates must preserve keys"
            )

    def __repr__(self) -> str:
        return f"StatefulBag({len(self._state)} elements)"

"""The ``Grp`` type produced by ``DataBag.group_by`` (paper Section 3.1).

A group pairs a key with its values, and — unlike Spark/Flink/Hadoop,
where group values are an ``Iterable``/``Iterator`` — the values here are
a first-class ``DataBag``.  That uniformity is what lets the compiler
treat nested bag patterns (``g.values.count()`` inside a comprehension
head) with the same machinery as top-level bags and rewrite them into
partial aggregates (fold-group fusion, Section 4.2.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generic, TypeVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.databag import DataBag

K = TypeVar("K")
V = TypeVar("V")


class Grp(Generic[K, V]):
    """A group: ``key`` plus a ``DataBag`` of ``values``."""

    __slots__ = ("key", "values")

    def __init__(self, key: K, values: "DataBag[V]") -> None:
        self.key = key
        self.values = values

    def __repr__(self) -> str:
        return f"Grp(key={self.key!r}, values={self.values!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Grp):
            return NotImplemented
        return self.key == other.key and self.values == other.values

    def __hash__(self) -> int:
        # Groups hash by key only; two groups with equal keys in the same
        # bag cannot occur (group_by produces one group per key).
        return hash(("Grp", self.key))

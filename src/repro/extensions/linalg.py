"""Sparse distributed linear algebra on top of DataBag (paper §7).

Vectors and matrices are bags of coordinate entries; the operations are
ordinary comprehensions, so the compiler gives them the full treatment:
a matrix-vector product is a join (on the column/index) followed by a
``group_by`` + ``sum`` that fold-group fusion turns into a single
``agg_by`` pass — i.e. the classic one-round map-reduce matvec falls
out of the declarative spec with no hand-tuning.

Power iteration composes matvec + normalization inside a driver loop,
demonstrating the linear-algebra-as-dataflows story end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.api import DataBag, parallelize


@dataclass(frozen=True)
class MatrixEntry:
    """A sparse matrix entry ``A[row, col] = value``."""

    row: int
    col: int
    value: float


@dataclass(frozen=True)
class VectorEntry:
    """A sparse vector entry ``x[index] = value``."""

    index: int
    value: float


@parallelize
def _matvec(entries: DataBag, vector: DataBag):
    """``y = A @ x`` as join + fused group aggregation."""
    products = (
        (e.row, e.value * x.value)
        for e in entries
        for x in vector
        if e.col == x.index
    )
    result = (
        VectorEntry(g.key, g.values.map(lambda t: t[1]).sum())
        for g in products.group_by(lambda t: t[0])
    )
    return result


@parallelize
def _squared_norm(vector: DataBag):
    return vector.map(lambda x: x.value * x.value).sum()


# math.sqrt must be resolvable by name at decoration time — the lifted
# program references it as a captured global.
sqrt = math.sqrt


@parallelize
def _power_iteration(entries: DataBag, initial, iterations):
    """Repeated normalized matvec — the dominant-eigenvector loop.

    The whole loop body is dataflows; only the scalar norm crosses back
    to the driver each iteration (as a fold result), exactly the
    driver/dataflow split of Figure 3b.
    """
    x = DataBag(initial)
    i = 0
    norm = 1.0
    while i < iterations:
        products = (
            (e.row, e.value * v.value)
            for e in entries
            for v in x
            if e.col == v.index
        )
        y = (
            VectorEntry(g.key, g.values.map(lambda t: t[1]).sum())
            for g in products.group_by(lambda t: t[0])
        )
        norm = sqrt(y.map(lambda v: v.value * v.value).sum())  # noqa: F821
        x = y.map(lambda v: VectorEntry(v.index, v.value / norm))
        i = i + 1
    return x


def matvec(entries: DataBag, vector: DataBag, engine=None) -> DataBag:
    """Compute ``A @ x`` on the given backend (local by default)."""
    return _matvec.run(engine, entries=entries, vector=vector)


def vector_norm(vector: DataBag, engine=None) -> float:
    """The Euclidean norm of a sparse vector."""
    return math.sqrt(_squared_norm.run(engine, vector=vector))


def power_iteration(
    entries: DataBag,
    dimension: int,
    iterations: int = 20,
    engine=None,
) -> DataBag:
    """Approximate the dominant eigenvector of a sparse matrix."""
    initial = [
        VectorEntry(i, 1.0 / math.sqrt(dimension))
        for i in range(dimension)
    ]
    return _power_iteration.run(
        engine,
        entries=entries,
        initial=initial,
        iterations=iterations,
    )

"""Domain APIs layered on the DataBag abstraction (paper Section 7).

The paper's future-work section: "domain-specific abstractions can be
easily integrated on top of the DataBag API ... We are developing
linear algebra and graph processing APIs on top of the DataBag API."
This subpackage implements both:

* :mod:`repro.extensions.graph` — a Pregel-style vertex-centric API
  expressed entirely through ``StatefulBag`` point-wise updates and
  ordinary comprehensions; PageRank and Connected Components become
  ten-line vertex programs, and every superstep's aggregation goes
  through the same fold-group-fusion path as hand-written code.
* :mod:`repro.extensions.linalg` — sparse distributed vectors/matrices
  as bags of coordinate entries; matrix-vector products compile to a
  join + ``agg_by`` dataflow, so power iteration runs unchanged on any
  backend.
"""

from repro.extensions.graph import VertexProgram, run_vertex_program
from repro.extensions.linalg import (
    MatrixEntry,
    VectorEntry,
    matvec,
    power_iteration,
    vector_norm,
)

__all__ = [
    "VertexProgram",
    "run_vertex_program",
    "MatrixEntry",
    "VectorEntry",
    "matvec",
    "power_iteration",
    "vector_norm",
]

"""A vertex-centric graph API on top of DataBag/StatefulBag.

The paper argues (§3.1) that "vertex-centric" programming models are
just a domain-specific surface over iterative point-wise bag
refinement, and promises such APIs as future work (§7).  This module
delivers a Pregel-style abstraction whose *entire* runtime is one
``@parallelize`` program over the core API — the compiler sees the
superstep's message aggregation as an ordinary ``group_by`` + fold and
fuses it like any other (fold-group fusion fires for every vertex
program, for free).

A :class:`VertexProgram` supplies four plain-Python UDFs:

* ``init(vertex) -> value`` — the initial per-vertex value;
* ``send(state, neighbor_count) -> message value`` — the value a vertex
  sends along each out-edge;
* ``combine`` — a fold triple ``(zero, lift, merge)`` aggregating the
  incoming message values per receiver;
* ``apply(state, aggregate) -> new value | None`` — point-wise update;
  returning ``None`` keeps the old state (and, in semi-naive mode,
  removes the vertex from the next frontier).

``semi_naive=True`` sends messages only from vertices changed in the
previous round and stops when the frontier empties (Connected
Components); ``semi_naive=False`` runs all vertices for a fixed number
of supersteps (PageRank).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.api import DataBag, parallelize, read, stateful
from repro.core.io import JsonLinesFormat
from repro.workloads.graphs import Vertex

_GRAPH_FORMAT = JsonLinesFormat(Vertex)


@dataclass(frozen=True)
class VertexState:
    """Engine-side per-vertex state: id, adjacency, current value."""

    id: int
    neighbors: tuple
    value: Any


@dataclass(frozen=True)
class VertexMessage:
    """A message addressed to vertex ``id``."""

    id: int
    value: Any


@dataclass(frozen=True)
class VertexProgram:
    """The four UDFs of a vertex-centric computation (see module doc)."""

    init: Callable[[Vertex], Any]
    send: Callable[[VertexState, int], Any]
    combine_zero: Any
    combine_lift: Callable[[Any], Any]
    combine_merge: Callable[[Any, Any], Any]
    apply: Callable[[VertexState, Any], Optional[Any]]
    semi_naive: bool = False


@parallelize
def _superstep_loop(
    graph_path,
    init_fn,
    send_fn,
    combine_zero,
    combine_lift,
    combine_merge,
    make_state,
    make_message,
    make_update,
    apply_update,
    semi_naive,
    max_supersteps,
):
    """The generic vertex-program driver — one program for all of them.

    The UDFs arrive as ordinary driver parameters; the compiler treats
    them as opaque scalars while still fusing the per-receiver message
    aggregation (the generic ``fold`` over group values) into an
    ``agg_by``.
    """
    vertices = read(graph_path, _GRAPH_FORMAT)
    initial = (make_state(v, init_fn(v)) for v in vertices)
    state = stateful(initial)
    frontier = state.bag()
    superstep = 0
    while superstep < max_supersteps and frontier.non_empty():
        messages = (
            make_message(n, send_fn(s, len(s.neighbors)))
            for s in frontier
            for n in s.neighbors
        )
        updates = (
            make_update(
                g.key,
                g.values.map(lambda m: m.value).fold(
                    combine_zero, combine_lift, combine_merge
                ),
            )
            for g in messages.group_by(lambda m: m.id)
        )
        delta = state.update_with_messages(updates, apply_update)
        if semi_naive:
            frontier = delta
        else:
            frontier = state.bag()
        superstep = superstep + 1
    return state.bag()


def run_vertex_program(
    program: VertexProgram,
    graph_path: str,
    engine=None,
    max_supersteps: int = 20,
    config=None,
) -> DataBag:
    """Run a vertex program over a staged graph; returns the state bag."""

    def apply_update(s: VertexState, u: VertexMessage):
        new_value = program.apply(s, u.value)
        if new_value is None:
            return None
        return VertexState(s.id, s.neighbors, new_value)

    return _superstep_loop.run(
        engine,
        config=config,
        graph_path=graph_path,
        init_fn=program.init,
        send_fn=program.send,
        combine_zero=program.combine_zero,
        combine_lift=program.combine_lift,
        combine_merge=program.combine_merge,
        make_state=lambda v, value: VertexState(
            v.id, v.neighbors, value
        ),
        make_message=VertexMessage,
        make_update=VertexMessage,
        apply_update=apply_update,
        semi_naive=program.semi_naive,
        max_supersteps=max_supersteps,
    )


# ---------------------------------------------------------------------------
# Ready-made vertex programs
# ---------------------------------------------------------------------------


def pagerank_program(
    num_pages: int, damping: float = 0.85
) -> VertexProgram:
    """PageRank as a ten-line vertex program."""
    return VertexProgram(
        init=lambda _v: 1.0 / num_pages,
        send=lambda s, degree: s.value / degree,
        combine_zero=0.0,
        combine_lift=lambda m: m,
        combine_merge=lambda a, b: a + b,
        apply=lambda _s, incoming: (
            (1 - damping) / num_pages + damping * incoming
        ),
        semi_naive=False,
    )


def max_label_program() -> VertexProgram:
    """Connected components via max-label propagation (semi-naive)."""
    return VertexProgram(
        init=lambda v: v.id,
        send=lambda s, _degree: s.value,
        combine_zero=-1,
        combine_lift=lambda m: m,
        combine_merge=lambda a, b: a if a >= b else b,
        apply=lambda s, label: label if label > s.value else None,
        semi_naive=True,
    )

"""Reproduction of *Implicit Parallelism through Deep Language Embedding*
(Alexandrov et al., SIGMOD 2015) — the Emma language — in Python.

The package implements the full system described in the paper:

* :mod:`repro.algebra` — bags as ADTs, structural recursion, the
  semantic laws (Section 2.2);
* :mod:`repro.core` — the DataBag/StatefulBag user abstractions
  (Section 3, Listing 3);
* :mod:`repro.comprehension` — the monad-comprehension IR, resugaring
  and normalization (Sections 2.2.3, 4.1);
* :mod:`repro.frontend` — the ``@parallelize`` deep embedding over the
  Python AST (Sections 3.2, 4);
* :mod:`repro.optimizer` — fold-group fusion, unnesting, caching,
  partition pulling (Sections 4.2, 4.4);
* :mod:`repro.lowering` — comprehension-to-combinator dataflow
  generation (Section 4.3);
* :mod:`repro.engines` — simulated Spark-like and Flink-like parallel
  runtimes with a calibrated cost model, plus the local oracle backend
  (substituting for the paper's 40-node cluster, see DESIGN.md);
* :mod:`repro.workloads` — k-means, PageRank, Connected Components,
  TPC-H Q1/Q4, the spam-classifier workflow, and synthetic data
  generators (Section 5 / Appendix A).

Most users want :mod:`repro.api`.
"""

__version__ = "1.0.0"

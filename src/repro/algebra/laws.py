"""Checkable forms of the semantic equations from Section 2.2.

The union-representation fold ``(e, s, u)`` is well defined iff the same
equations imposed on ``(emp, sng, uni)`` hold for it:

* ``u(x, e) = u(e, x) = x``           (unit)
* ``u(x, u(y, z)) = u(u(x, y), z)``   (associativity)
* ``u(x, y) = u(y, x)``               (commutativity)

These cannot be decided for arbitrary Python functions, so the library
offers *property checks over sample values*: they are used by the test
suite (with hypothesis-generated samples), and may be used by clients as
a development-time sanity check on custom folds.  A failed check is a
definite law violation; a passed check is evidence, not proof.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

from repro.algebra.fold import FoldAlgebra
from repro.errors import FoldConditionError

A = TypeVar("A")
B = TypeVar("B")


def _pairs(values: Sequence[B]) -> Iterable[tuple[B, B]]:
    for x in values:
        for y in values:
            yield x, y


def _triples(values: Sequence[B]) -> Iterable[tuple[B, B, B]]:
    for x in values:
        for y in values:
            for z in values:
                yield x, y, z


def check_unit(
    union: Callable[[B, B], B],
    zero: B,
    samples: Sequence[B],
    equal: Callable[[B, B], bool] = lambda a, b: a == b,
) -> bool:
    """Check ``u(x, e) = u(e, x) = x`` on the given samples."""
    return all(
        equal(union(x, zero), x) and equal(union(zero, x), x)
        for x in samples
    )


def check_associative(
    union: Callable[[B, B], B],
    samples: Sequence[B],
    equal: Callable[[B, B], bool] = lambda a, b: a == b,
) -> bool:
    """Check ``u(x, u(y, z)) = u(u(x, y), z)`` on the given samples."""
    return all(
        equal(union(x, union(y, z)), union(union(x, y), z))
        for x, y, z in _triples(samples)
    )


def check_commutative(
    union: Callable[[B, B], B],
    samples: Sequence[B],
    equal: Callable[[B, B], bool] = lambda a, b: a == b,
) -> bool:
    """Check ``u(x, y) = u(y, x)`` on the given samples."""
    return all(
        equal(union(x, y), union(y, x)) for x, y in _pairs(samples)
    )


def check_fold_well_defined(
    algebra: FoldAlgebra[A, B],
    element_samples: Sequence[A],
    equal: Callable[[B, B], bool] = lambda a, b: a == b,
    raise_on_failure: bool = False,
) -> bool:
    """Check all three well-definedness conditions for a fold algebra.

    Partial-result samples are derived from ``element_samples`` through
    the algebra's own ``singleton``, which keeps the check meaningful for
    algebras whose carrier differs from the element type.

    Args:
        algebra: the ``(e, s, u)`` triple under test.
        element_samples: bag elements used to generate partial results.
        equal: equality on the carrier (override for e.g. float results).
        raise_on_failure: raise :class:`FoldConditionError` instead of
            returning ``False``.

    Returns:
        ``True`` when every sampled instance of every law holds.
    """
    zero = algebra.zero()
    partials: list[B] = [algebra.singleton(x) for x in element_samples]
    # Include one combined value so associativity sees non-leaf carriers.
    if len(partials) >= 2:
        partials.append(algebra.union(partials[0], partials[1]))

    failures = []
    if not check_unit(algebra.union, zero, partials, equal):
        failures.append("unit")
    if not check_associative(algebra.union, partials, equal):
        failures.append("associativity")
    if not check_commutative(algebra.union, partials, equal):
        failures.append("commutativity")

    if failures and raise_on_failure:
        raise FoldConditionError(
            f"fold '{algebra.name}' violates: {', '.join(failures)}"
        )
    return not failures

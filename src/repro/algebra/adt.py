"""Bags as algebraic data types (paper Section 2.2.1).

The paper models the type ``Bag A`` with two constructor algebras:

* **Insert representation** (``AlgBag-Ins``)::

      type Bag A = emp | cons x:A xs:Bag A

  subject to the semantic equation ``EQ-Comm-Ins``
  (``cons x1 (cons x2 xs) = cons x2 (cons x1 xs)``).

* **Union representation** (``AlgBag-Union``)::

      type Bag A = emp | sng x:A | uni xs:Bag A ys:Bag A

  subject to ``EQ-Unit`` (``uni xs emp = uni emp xs = xs``),
  ``EQ-Assoc`` and ``EQ-Comm``.

A bag *value* is an equivalence class of constructor application trees
under these equations.  This module provides concrete tree types for both
representations, conversions between them, and the quotient map from
trees to multisets (the canonical representative of the equivalence
class).  The union representation is the one the language is built on:
it is the natural fit for distributed bags, where each partition is a
subtree joined by ``uni`` nodes (Section 2.2.2).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Generic, Hashable, Iterable, Iterator, TypeVar, Union

A = TypeVar("A")


# ---------------------------------------------------------------------------
# Insert representation: emp | cons x xs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EmpIns:
    """The empty bag in insert representation."""

    def __iter__(self) -> Iterator[object]:
        return iter(())

    def __len__(self) -> int:
        return 0


@dataclass(frozen=True)
class Cons(Generic[A]):
    """``cons x xs`` — the bag ``xs`` with element ``x`` added."""

    head: A
    tail: "InsTree[A]"

    def __iter__(self) -> Iterator[A]:
        node: InsTree[A] = self
        while isinstance(node, Cons):
            yield node.head
            node = node.tail

    def __len__(self) -> int:
        return sum(1 for _ in self)


InsTree = Union[EmpIns, Cons[A]]


def ins_tree_of(elements: Iterable[A]) -> InsTree[A]:
    """Build the left-deep ``cons`` chain for ``elements``.

    The chain is one concrete member of the equivalence class that
    represents the bag; any permutation of ``elements`` yields an
    equivalent tree under ``EQ-Comm-Ins``.
    """
    tree: InsTree[A] = EmpIns()
    for x in reversed(list(elements)):
        tree = Cons(x, tree)
    return tree


def bag_of_ins_tree(tree: InsTree[A]) -> Counter:
    """Quotient map: collapse an insert-representation tree to a multiset.

    Two trees are equivalent under ``EQ-Comm-Ins`` iff they map to the
    same multiset, so the :class:`collections.Counter` is the canonical
    representative of the equivalence class.
    """
    counter: Counter = Counter()
    node = tree
    while isinstance(node, Cons):
        counter[node.head] += 1
        node = node.tail
    return counter


# ---------------------------------------------------------------------------
# Union representation: emp | sng x | uni xs ys
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EmpUnion:
    """The empty bag in union representation."""

    def __iter__(self) -> Iterator[object]:
        return iter(())

    def __len__(self) -> int:
        return 0


@dataclass(frozen=True)
class Sng(Generic[A]):
    """``sng x`` — the singleton bag containing exactly ``x``."""

    value: A

    def __iter__(self) -> Iterator[A]:
        yield self.value

    def __len__(self) -> int:
        return 1


@dataclass(frozen=True)
class Uni(Generic[A]):
    """``uni xs ys`` — the bag union of ``xs`` and ``ys``.

    In a distributed setting each ``uni`` node marks a point where two
    partitions would have to be merged if the bag were materialized on a
    single node; folds instead push their algebra below the ``uni`` and
    ship partial results (paper Section 2.2.2).
    """

    left: "UnionTree[A]"
    right: "UnionTree[A]"

    def __iter__(self) -> Iterator[A]:
        # Iterative traversal: union trees for large bags can be deep.
        stack: list[UnionTree[A]] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Sng):
                yield node.value
            elif isinstance(node, Uni):
                stack.append(node.right)
                stack.append(node.left)

    def __len__(self) -> int:
        return sum(1 for _ in self)


UnionTree = Union[EmpUnion, Sng[A], Uni[A]]


def union_tree_of(elements: Iterable[A]) -> UnionTree[A]:
    """Build a balanced union-representation tree for ``elements``.

    Balance is irrelevant semantically (``EQ-Assoc``) but keeps recursion
    depth logarithmic, mirroring how a partitioned bag joins per-node
    subtrees near the root.
    """
    leaves: list[UnionTree[A]] = [Sng(x) for x in elements]
    if not leaves:
        return EmpUnion()
    while len(leaves) > 1:
        paired: list[UnionTree[A]] = []
        for i in range(0, len(leaves) - 1, 2):
            paired.append(Uni(leaves[i], leaves[i + 1]))
        if len(leaves) % 2 == 1:
            paired.append(leaves[-1])
        leaves = paired
    return leaves[0]


def union_tree_of_partitions(partitions: Iterable[Iterable[A]]) -> UnionTree[A]:
    """Model a distributed bag: one subtree per partition, joined by ``uni``.

    This is the conceptual picture from Section 2.2.2 — the value *is*
    still one bag, but the top-level ``uni`` spine is only evaluated if
    the bag must be materialized on a single node.
    """
    subtrees = [union_tree_of(p) for p in partitions]
    if not subtrees:
        return EmpUnion()
    tree = subtrees[0]
    for sub in subtrees[1:]:
        tree = Uni(tree, sub)
    return tree


def bag_of_union_tree(tree: UnionTree[A]) -> Counter:
    """Quotient map for union trees: tree -> multiset.

    Two union trees are equivalent under ``EQ-Unit``/``EQ-Assoc``/
    ``EQ-Comm`` iff they collapse to the same multiset.
    """
    counter: Counter = Counter()
    for x in tree:
        counter[x] += 1
    return counter


def trees_equivalent(
    left: UnionTree[Hashable] | InsTree[Hashable],
    right: UnionTree[Hashable] | InsTree[Hashable],
) -> bool:
    """Decide whether two constructor trees denote the same bag value.

    Works across representations: an insert tree and a union tree are
    equivalent when their multisets coincide (the translation between the
    algebras follows from initiality, as the paper notes).
    """
    return _to_counter(left) == _to_counter(right)


def _to_counter(tree: object) -> Counter:
    if isinstance(tree, (EmpIns, Cons)):
        return bag_of_ins_tree(tree)
    if isinstance(tree, (EmpUnion, Sng, Uni)):
        return bag_of_union_tree(tree)
    raise TypeError(f"not a bag constructor tree: {tree!r}")


def ins_of_union(tree: UnionTree[A]) -> InsTree[A]:
    """Translate a union-representation tree to insert representation."""
    return ins_tree_of(list(tree))


def union_of_ins(tree: InsTree[A]) -> UnionTree[A]:
    """Translate an insert-representation tree to union representation."""
    return union_tree_of(list(tree))

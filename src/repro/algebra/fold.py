"""Structural recursion on bags (paper Section 2.2.2).

A fold over a union-representation bag substitutes a triple
``(zero, singleton, union)`` — written ``(e, s, u)`` in the paper — for
the constructors ``(emp, sng, uni)`` of the bag's constructor tree and
evaluates the resulting expression tree.  The triple is a
:class:`FoldAlgebra`.

The module also implements the **banana-split law** (Meijer et al. [28],
used by the paper's fold-group fusion): a tuple of folds over the same
bag equals a single fold over tuples, with the component algebras applied
pointwise.  ``product_algebra`` builds that combined algebra and is the
workhorse behind ``groupBy -> aggBy`` rewriting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Iterable, Sequence, TypeVar

from repro.algebra.adt import (
    Cons,
    EmpIns,
    EmpUnion,
    InsTree,
    Sng,
    UnionTree,
)

A = TypeVar("A")
B = TypeVar("B")


@dataclass(frozen=True)
class FoldAlgebra(Generic[A, B]):
    """The ``(e, s, u)`` triple of a union-representation fold.

    Attributes:
        zero: the value substituted for ``emp`` — must be a *function of
            no arguments* returning a fresh zero, so that mutable zeros
            (e.g. numpy arrays, lists) are never shared between
            evaluations.
        singleton: substituted for ``sng`` — maps one element into ``B``.
        union: substituted for ``uni`` — combines two partial results.
        name: optional human-readable label used by the pretty printer
            and by plan explanations.
    """

    zero: Callable[[], B]
    singleton: Callable[[A], B]
    union: Callable[[B, B], B]
    name: str = "fold"

    def __call__(self, elements: Iterable[A]) -> B:
        """Apply the fold to an iterable, treated as a bag.

        Evaluates left-to-right; by the well-definedness conditions the
        result is independent of the order, so this is just one concrete
        tree from the equivalence class.
        """
        acc = self.zero()
        for x in elements:
            acc = self.union(acc, self.singleton(x))
        return acc

    def merge(self, partials: Iterable[B]) -> B:
        """Combine partial results shipped from distributed partitions."""
        acc = self.zero()
        for p in partials:
            acc = self.union(acc, p)
        return acc


def fold_union_tree(algebra: FoldAlgebra[A, B], tree: UnionTree[A]) -> B:
    """Evaluate a fold by constructor substitution on a union tree.

    This is the literal definition from the paper: each ``emp``/``sng``/
    ``uni`` node is replaced by the corresponding algebra component.
    Implemented iteratively (post-order) so deep trees do not overflow
    the Python stack.
    """
    if isinstance(tree, EmpUnion):
        return algebra.zero()
    if isinstance(tree, Sng):
        return algebra.singleton(tree.value)

    # Post-order traversal with an explicit stack of (node, visited) pairs.
    results: list[B] = []
    stack: list[tuple[UnionTree[A], bool]] = [(tree, False)]
    while stack:
        node, visited = stack.pop()
        if isinstance(node, EmpUnion):
            results.append(algebra.zero())
        elif isinstance(node, Sng):
            results.append(algebra.singleton(node.value))
        elif not visited:
            stack.append((node, True))
            stack.append((node.right, False))
            stack.append((node.left, False))
        else:
            right = results.pop()
            left = results.pop()
            results.append(algebra.union(left, right))
    (result,) = results
    return result


def fold_ins_tree(
    zero: B, step: Callable[[A, B], B], tree: InsTree[A]
) -> B:
    """Structural recursion on insert-representation trees.

    The insert-representation fold is the classic ``foldr``; it needs no
    commutativity from ``step``, which is exactly why engines built on it
    (cf. Steno [29], discussed in Related Work) must impose extra
    "homomorphy" constraints before they may parallelize.  The union
    representation sidesteps that — see :func:`fold_union_tree`.
    """
    elements = list(tree) if isinstance(tree, Cons) else []
    if isinstance(tree, EmpIns):
        return zero
    acc = zero
    for x in reversed(elements):
        acc = step(x, acc)
    return acc


def banana_split(
    algebras: Sequence[FoldAlgebra[A, object]],
    name: str | None = None,
) -> FoldAlgebra[A, tuple]:
    """Combine several folds over the same bag into one fold over tuples.

    The banana-split law: ``(fold a1 xs, ..., fold an xs)`` equals
    ``fold (a1 x ... x an) xs`` where the product algebra applies each
    component pointwise.  The paper uses this to fuse the ``Sum`` and
    ``Cnt`` folds of k-means into a single pass before fusing that pass
    into the ``groupBy``.
    """
    return product_algebra(algebras, name=name)


def product_algebra(
    algebras: Sequence[FoldAlgebra[A, object]],
    name: str | None = None,
) -> FoldAlgebra[A, tuple]:
    """The pointwise product ``a1 x ... x an`` of fold algebras."""
    algebras = tuple(algebras)
    if not algebras:
        raise ValueError("product_algebra requires at least one algebra")

    def zero() -> tuple:
        return tuple(a.zero() for a in algebras)

    def singleton(x: A) -> tuple:
        return tuple(a.singleton(x) for a in algebras)

    def union(left: tuple, right: tuple) -> tuple:
        return tuple(
            a.union(lv, rv) for a, lv, rv in zip(algebras, left, right)
        )

    label = name or "x".join(a.name for a in algebras)
    return FoldAlgebra(zero=zero, singleton=singleton, union=union, name=label)


# ---------------------------------------------------------------------------
# A small catalogue of common fold algebras (the DataBag aliases build on
# these; they are also handy in tests).
# ---------------------------------------------------------------------------


def sum_algebra(key: Callable[[A], object] = lambda x: x) -> FoldAlgebra:
    """``sum`` as a fold: ``(0, key, +)``."""
    return FoldAlgebra(
        zero=lambda: 0,
        singleton=key,
        union=lambda x, y: x + y,
        name="sum",
    )


def count_algebra() -> FoldAlgebra:
    """``count`` as a fold: ``(0, const 1, +)``."""
    return FoldAlgebra(
        zero=lambda: 0,
        singleton=lambda _x: 1,
        union=lambda x, y: x + y,
        name="count",
    )


def min_algebra(key: Callable[[A], object] = lambda x: x) -> FoldAlgebra:
    """``min`` as a fold over the option monoid (``None`` is the zero)."""

    def union(x: object, y: object) -> object:
        if x is None:
            return y
        if y is None:
            return x
        return x if x <= y else y  # type: ignore[operator]

    return FoldAlgebra(
        zero=lambda: None, singleton=key, union=union, name="min"
    )


def max_algebra(key: Callable[[A], object] = lambda x: x) -> FoldAlgebra:
    """``max`` as a fold over the option monoid (``None`` is the zero)."""

    def union(x: object, y: object) -> object:
        if x is None:
            return y
        if y is None:
            return x
        return x if x >= y else y  # type: ignore[operator]

    return FoldAlgebra(
        zero=lambda: None, singleton=key, union=union, name="max"
    )


def exists_algebra(predicate: Callable[[A], bool]) -> FoldAlgebra:
    """``exists p`` as a fold: ``(False, p, or)``."""
    return FoldAlgebra(
        zero=lambda: False,
        singleton=lambda x: bool(predicate(x)),
        union=lambda x, y: x or y,
        name="exists",
    )


def forall_algebra(predicate: Callable[[A], bool]) -> FoldAlgebra:
    """``forall p`` as a fold: ``(True, p, and)``."""
    return FoldAlgebra(
        zero=lambda: True,
        singleton=lambda x: bool(predicate(x)),
        union=lambda x, y: x and y,
        name="forall",
    )


def bag_algebra() -> FoldAlgebra:
    """The identity fold — rebuilds the bag itself (as a list).

    Fold-build fusion (Section 4.2.2) replaces this algebra, used
    implicitly by ``groupBy`` to *construct* group values, with the
    consuming fold's algebra.
    """
    return FoldAlgebra(
        zero=list,
        singleton=lambda x: [x],
        union=lambda x, y: x + y,
        name="bag",
    )

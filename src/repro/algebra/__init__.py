"""Algebraic foundation for bags (Section 2.2 of the paper).

This subpackage models bags as abstract data types in both the *insert*
representation (``AlgBag-Ins``: ``emp | cons x xs``) and the *union*
representation (``AlgBag-Union``: ``emp | sng x | uni xs ys``), provides
structural recursion (``fold``) over both, and states the semantic
equations that make folds well defined.
"""

from repro.algebra.adt import (
    Cons,
    EmpIns,
    EmpUnion,
    InsTree,
    Sng,
    Uni,
    UnionTree,
    bag_of_ins_tree,
    bag_of_union_tree,
    ins_tree_of,
    union_tree_of,
)
from repro.algebra.fold import (
    FoldAlgebra,
    banana_split,
    fold_ins_tree,
    fold_union_tree,
    product_algebra,
)
from repro.algebra.laws import (
    check_associative,
    check_commutative,
    check_fold_well_defined,
    check_unit,
)

__all__ = [
    "Cons",
    "EmpIns",
    "EmpUnion",
    "InsTree",
    "Sng",
    "Uni",
    "UnionTree",
    "bag_of_ins_tree",
    "bag_of_union_tree",
    "ins_tree_of",
    "union_tree_of",
    "FoldAlgebra",
    "banana_split",
    "fold_ins_tree",
    "fold_union_tree",
    "product_algebra",
    "check_associative",
    "check_commutative",
    "check_fold_well_defined",
    "check_unit",
]

"""Engine interface, lazy bag thunks, and cached bag handles.

Three kinds of driver-side bag values circulate between the driver
interpreter and an engine (mirroring Figure 3b's data-motion agents):

* :class:`DeferredBag` — a *thunk* [paper §4.3.2]: an unevaluated
  dataflow (combinator root plus an environment snapshot).  Consumed as
  a dataflow **input**, its lineage is inlined and recomputed within the
  consuming job — the lazy-evaluation semantics of Spark RDDs and Flink
  DataSets.  **Forced** (for a broadcast, a fetch, or a driver scalar),
  it executes once and memoizes the collected result, exactly like the
  paper's ``Thunk.force``.
* :class:`BagHandle` — a cached, materialized distributed bag.  The
  engine's cache policy decides the medium: the Spark-like engine keeps
  partitions in worker memory (cheap to re-read); the Flink-like engine
  has no in-memory cache and spills to the simulated DFS, paying
  read/write I/O on every use (the paper's Section 5.2 observation).
* a plain host collection / ``DataBag`` — driver-local data, shipped to
  the cluster (``parallelize``) on use.

Engines are deterministic simulators: they execute the dataflow on real
partitioned Python data while charging every byte and element operation
to the :class:`~repro.engines.costmodel.CostModel`.
"""

from __future__ import annotations

import time
import weakref
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.core.databag import DataBag
from repro.engines.cluster import ClusterConfig, PartitionedBag
from repro.engines.costmodel import CostModel, StatsCache
from repro.engines.dfs import SimulatedDFS
from repro.engines.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.engines.metrics import JobRun, Metrics
from repro.engines.tracing import RuntimeTracer
from repro.errors import EngineError, SimulatedTimeout
from repro.lowering.combinators import Combinator, ScalarFn

if TYPE_CHECKING:  # pragma: no cover
    from repro.engines.scheduler import TaskScheduler
    from repro.optimizer.pipeline import EmmaConfig


class DeferredBag:
    """A lazy dataflow thunk (see module docstring)."""

    __slots__ = ("engine", "root", "env", "_forced")

    def __init__(
        self, engine: "Engine", root: Combinator, env: dict[str, Any]
    ) -> None:
        self.engine = engine
        self.root = root
        self.env = env
        self._forced: list[Any] | None = None

    @property
    def is_forced(self) -> bool:
        return self._forced is not None

    def force_local(self) -> list[Any]:
        """Execute once and memoize the driver-collected records."""
        if self._forced is None:
            self._forced = self.engine.collect(self)
        return self._forced

    def __repr__(self) -> str:
        state = "forced" if self.is_forced else "lazy"
        return f"DeferredBag({self.root.describe()}, {state})"


@dataclass(eq=False)
class BagHandle:
    """A cached, materialized distributed bag.

    For recovery, a memory-cached handle records how to rebuild lost
    partitions: either its **lineage** (the combinator subtree plus the
    environment snapshot it was materialized from — a worker loss
    re-executes that subtree, stopping at upstream cached/DFS-backed
    bags, the recovery barriers) or a **driver replica** of the
    partition lists (for driver-originated data such as parallelized
    collections and stateful-update deltas, whose "lineage" is the
    driver itself).  DFS-backed handles need neither: the simulated
    DFS survives worker loss by construction.
    """

    engine: "Engine"
    bag: PartitionedBag
    storage: str  # "memory" | "dfs"
    dfs_path: str | None = None
    #: lineage for recomputation (combinator root + env snapshot)
    lineage_root: Combinator | None = None
    lineage_env: dict[str, Any] | None = None
    #: the partitioning enforced when the bag was cached (re-enforced
    #: on recomputation so recovered partitions line up exactly)
    partition_key: ScalarFn | None = None
    #: driver-side replica of the partition lists (recovery barrier
    #: for driver-originated data with no dataflow lineage)
    recovery_partitions: list[list[Any]] | None = None
    #: partition indexes currently lost to a worker failure
    lost_partitions: set[int] = field(default_factory=set)

    def count(self) -> int:
        """Number of records in the cached bag."""
        return self.bag.count()

    def mark_lost(self, worker: int, num_workers: int) -> list[int]:
        """Tombstone this handle's partitions resident on a dead worker.

        The stale lists are left in place so jobs that already hold the
        bag keep a consistent snapshot (a running task's input blocks
        are already fetched); the next cache *read* rebuilds every
        tombstoned partition and overwrites it — so an incorrect
        recomputation surfaces in downstream results rather than being
        masked by the stale copy.
        """
        if self.storage != "memory":
            return []  # DFS-backed caches survive worker loss.
        lost = [
            i
            for i in range(self.bag.num_partitions)
            if i % num_workers == worker and i not in self.lost_partitions
        ]
        self.lost_partitions.update(lost)
        return lost

    def __repr__(self) -> str:
        return f"BagHandle({self.bag!r}, storage={self.storage})"


class Engine:
    """Base simulated engine: configuration plus the driver-facing API.

    Subclasses set the class attributes that differentiate the execution
    models; all dataflow mechanics live in
    :class:`repro.engines.executor.JobExecutor`.
    """

    #: engine display name
    name = "abstract"
    #: broadcast cost multiplier (Flink's broadcast handling re-
    #: materializes per task and is substantially more expensive)
    broadcast_factor = 1.0
    #: where cached bags live: "memory" or "dfs"
    cache_storage = "memory"
    #: whether shuffles spill through local disk (Spark-style)
    shuffle_via_disk = True
    #: per-task driver-side scheduling overhead, seconds (centralized
    #: scheduling makes this grow with the number of partitions)
    task_overhead = 0.0
    #: whether the engine runs fused operator chains as one physical
    #: task (Flink's pipelined chains, Spark's fused narrow stages);
    #: when False a CChain still streams records through one kernel but
    #: is charged the per-operator scheduling overhead it would have
    #: paid unfused
    pipelined_chains = True
    #: extra element-op factor for materializing groups (groupBy)
    group_materialize_factor = 1.0
    #: whether groupBy materialization is bounded by worker memory
    group_memory_bound = False
    #: whether grouping streams through sorted disk spills instead of
    #: materializing groups in memory (Flink's sort-based grouping)
    group_spill_to_disk = False
    #: max estimated bytes of a build side for broadcast join strategy
    broadcast_join_threshold = 4 * 1024 * 1024
    #: partitioning-aware physical planning at runtime: cost-based join
    #: strategy choice on annotated plans, loop-invariant shuffle
    #: hoisting, and partitioner propagation through maps (toggled per
    #: run by ``EmmaConfig.physical_planning``)
    physical_planning = True
    #: host-parallel execution backend for partition tasks: "serial"
    #: runs the operators' original inline loops; "threads"/"processes"
    #: fan the pure per-partition work out on the engine's
    #: :class:`~repro.engines.scheduler.TaskScheduler` (results and
    #: ``simulated_seconds`` stay bit-identical — only wall clock moves)
    execution_mode = "serial"
    #: concurrent partition-task slots (0 = one per host CPU core)
    max_parallel_tasks = 0
    #: re-launch straggler tasks speculatively (first result wins)
    speculative_execution = True
    #: columnar batch data plane for optimizer-selected chains:
    #: "auto" (vectorize when numpy is available), "on" (force, with
    #: the pure-Python column fallback), or "off"; results and
    #: ``simulated_seconds`` are bit-identical in every mode
    columnar_mode = "auto"
    #: columnar exchange plane for optimizer-selected shuffles, joins,
    #: and group-bys ("auto"/"on"/"off"); independent of
    #: ``columnar_mode``, same bit-identical guarantees
    columnar_exchange_mode = "auto"

    def __init__(
        self,
        cluster: ClusterConfig | None = None,
        cost: CostModel | None = None,
        dfs: SimulatedDFS | None = None,
        time_budget: float | None = None,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        checkpoint_interval: int = 0,
        execution_mode: str | None = None,
        max_parallel_tasks: int | None = None,
        speculative_execution: bool = True,
        columnar: str | None = None,
        columnar_exchange: str | None = None,
        memory_budget: int | None = None,
    ) -> None:
        self.cluster = cluster or ClusterConfig()
        self.cost = cost or CostModel()
        self.dfs = dfs or SimulatedDFS()
        self.time_budget = time_budget
        self.metrics = Metrics()
        self._cache_seq = 0
        #: every N stateful-bag updates, checkpoint the state to the
        #: DFS (0 = only the initial driver snapshot is kept)
        self.checkpoint_interval = checkpoint_interval
        self.faults: FaultInjector | None = None
        #: hierarchical span collector; None (the default) keeps every
        #: tracing call site a single attribute check
        self.tracer: RuntimeTracer | None = None
        self.retry_policy = retry_policy or RetryPolicy()
        if fault_plan is not None:
            self.configure_faults(fault_plan, retry_policy)
        #: live cached bags / stateful bags, notified on worker loss
        self._cached_handles: "weakref.WeakSet[BagHandle]" = (
            weakref.WeakSet()
        )
        self._stateful_bags: "weakref.WeakSet[Any]" = weakref.WeakSet()
        #: per-run hoist cache for loop-invariant shuffled inputs,
        #: keyed by (node id, canonical key, parallelism, input handle
        #: identities); cleared by :meth:`begin_run` and on worker loss
        self._hoist_cache: dict[tuple, PartitionedBag] = {}
        #: columnar-at-rest batch cache: per source bag (weak, so
        #: batches die with the bag), keyed by schema + projection and
        #: stamped with the partition-list identities/lengths so any
        #: partition replacement (e.g. lineage recovery) invalidates.
        #: Purely a packing-cost cache — hits change no observable.
        self._batch_cache: "weakref.WeakKeyDictionary[PartitionedBag, tuple]" = (
            weakref.WeakKeyDictionary()
        )
        #: per-run observed cardinalities/bytes for adaptive re-checks
        self.stats = StatsCache()
        #: lazily built host-parallel task scheduler (see ``scheduler``)
        self._scheduler: "TaskScheduler | None" = None
        # ``None`` adopts the (environment-overridable) defaults so CI
        # can flip every engine to the parallel backend at once.
        from repro.engines.scheduler import (
            default_execution_mode,
            default_max_parallel_tasks,
        )

        self.configure_execution(
            execution_mode
            if execution_mode is not None
            else default_execution_mode(),
            max_parallel_tasks
            if max_parallel_tasks is not None
            else default_max_parallel_tasks(),
            speculative_execution,
        )
        from repro.engines.columnar import (
            default_columnar_exchange,
            default_columnar_mode,
        )

        self.configure_columnar(
            columnar if columnar is not None else default_columnar_mode()
        )
        self.configure_columnar_exchange(
            columnar_exchange
            if columnar_exchange is not None
            else default_columnar_exchange()
        )
        from repro.engines.spill import SpillManager, default_memory_budget

        #: the driver's out-of-core layer: residency tracking, LRU
        #: spill-to-disk, and the file-backed shuffle service
        self.spill = SpillManager(self)
        self.configure_memory(
            memory_budget
            if memory_budget is not None
            else default_memory_budget()
        )
        #: optional cross-run plan/result cache; ``None`` falls back to
        #: the ``REPRO_PLAN_CACHE_DIR`` environment default (see
        #: :func:`repro.engines.plancache.default_plan_cache`)
        self.plan_cache = None

    def attach_plan_cache(self, cache) -> None:
        """Serve this engine's compiles from a shared fingerprint cache.

        If the cache has no memory limit of its own but this engine
        runs under a memory budget, the budget bounds the cache's
        resident bytes too — cold entries drop to their disk tier like
        any other spillable state (PR 7 discipline).
        """
        self.plan_cache = cache
        if cache is not None and not cache.memory_limit and self.spill.limit:
            cache.set_memory_limit(self.spill.limit, metrics=self.metrics)

    def configure_memory(self, budget: int) -> None:
        """Set the driver memory budget (bytes; 0 = unlimited).

        Lowering the budget mid-run evicts immediately — the mechanism
        behind the ``MEMORY_SQUEEZE`` chaos event.  Spilling is host-
        resource mechanics only: results, ``simulated_seconds``, and
        fault schedules are bit-identical under any budget.
        """
        self.spill.configure(budget)
        if self._scheduler is not None:
            self._scheduler.spill = self.spill if self.spill.active else None

    def configure_columnar(self, mode: str) -> None:
        """Select the columnar data plane mode (``auto``/``on``/``off``)."""
        from repro.engines.columnar import COLUMNAR_MODES

        if mode not in COLUMNAR_MODES:
            raise EngineError(
                f"unknown columnar mode {mode!r}: expected one of "
                f"{', '.join(COLUMNAR_MODES)}"
            )
        self.columnar_mode = mode

    def configure_columnar_exchange(self, mode: str) -> None:
        """Select the columnar exchange plane (``auto``/``on``/``off``)."""
        from repro.engines.columnar import COLUMNAR_MODES

        if mode not in COLUMNAR_MODES:
            raise EngineError(
                f"unknown columnar exchange mode {mode!r}: expected one "
                f"of {', '.join(COLUMNAR_MODES)}"
            )
        self.columnar_exchange_mode = mode

    # -- host-parallel execution backend ----------------------------------

    def configure_execution(
        self,
        mode: str,
        max_parallel_tasks: int | None = None,
        speculation: bool | None = None,
    ) -> None:
        """Select the host-parallel backend for partition tasks.

        ``mode`` is one of ``"serial"`` (the operators' original inline
        loops), ``"threads"`` (in-process thread pool — useful for
        testing the scheduler without pickling), or ``"processes"``
        (a spawn-context ``ProcessPoolExecutor`` with source-shipped
        chain kernels; the mode that buys real multi-core wall clock).
        Any existing scheduler is torn down so the next job builds one
        with the new settings.
        """
        from repro.engines.scheduler import EXECUTION_MODES

        if mode not in EXECUTION_MODES:
            raise EngineError(
                f"unknown execution_mode {mode!r}: expected one of "
                f"{', '.join(EXECUTION_MODES)}"
            )
        self.execution_mode = mode
        if max_parallel_tasks is not None:
            self.max_parallel_tasks = max_parallel_tasks
        if speculation is not None:
            self.speculative_execution = speculation
        if self._scheduler is not None:
            self._scheduler.close()
            self._scheduler = None

    @property
    def scheduler(self) -> "TaskScheduler":
        """The engine's task scheduler, built on first use.

        Built lazily so serial-mode engines never pay for pool setup,
        and rebuilt after every :meth:`configure_execution` so mode and
        width changes take effect immediately.
        """
        if self._scheduler is None:
            from repro.engines.scheduler import TaskScheduler

            self._scheduler = TaskScheduler(
                mode=self.execution_mode,
                max_parallel_tasks=self.max_parallel_tasks,
                speculation=self.speculative_execution,
                spill=self.spill if self.spill.active else None,
            )
        return self._scheduler

    # -- fault configuration ----------------------------------------------

    def configure_faults(
        self,
        plan: FaultPlan | None,
        policy: RetryPolicy | None = None,
    ) -> None:
        """Install (or clear, with ``plan=None``) a fault schedule."""
        if policy is not None:
            self.retry_policy = policy
        if plan is None:
            self.faults = None
            return
        self.faults = FaultInjector(
            plan, self.retry_policy, self.cluster.num_workers
        )

    def apply_runtime_config(self, config: "EmmaConfig") -> None:
        """Adopt the runtime knobs of an :class:`EmmaConfig`.

        Called by :meth:`Algorithm.run <repro.frontend.parallelize.
        Algorithm.run>` so fault plans and checkpoint intervals can be
        configured per run alongside the compiler switches.
        """
        if config.fault_plan is not None or config.retry_policy is not None:
            self.configure_faults(config.fault_plan, config.retry_policy)
        if config.checkpoint_interval:
            self.checkpoint_interval = config.checkpoint_interval
        if config.tracing:
            self.enable_tracing()
        self.physical_planning = config.physical_planning
        if (
            config.execution_mode != self.execution_mode
            or config.max_parallel_tasks != self.max_parallel_tasks
            or config.speculative_execution != self.speculative_execution
        ):
            self.configure_execution(
                config.execution_mode,
                config.max_parallel_tasks,
                config.speculative_execution,
            )
        if config.columnar != self.columnar_mode:
            self.configure_columnar(config.columnar)
        if config.columnar_exchange != self.columnar_exchange_mode:
            self.configure_columnar_exchange(config.columnar_exchange)
        if config.memory_budget != self.spill.limit:
            self.configure_memory(config.memory_budget)

    def begin_run(self) -> None:
        """Reset per-run planner state (hoist cache, statistics).

        Called at the start of every compiled driver-program run so
        runs are deterministic in isolation: nothing hoisted or
        observed in an earlier run leaks into the next one.
        """
        self.spill.drop_hoist_entries()
        self._hoist_cache.clear()
        self.stats.clear()

    def enable_tracing(self) -> RuntimeTracer:
        """Install (idempotently) and return the engine's span tracer."""
        if self.tracer is None:
            self.tracer = RuntimeTracer(engine=self.name)
        return self.tracer

    def disable_tracing(self) -> None:
        """Stop collecting spans (already-collected spans are kept by
        whoever holds the tracer)."""
        self.tracer = None

    # -- worker loss and recovery -----------------------------------------

    def on_worker_lost(self, worker: int, job: JobRun) -> None:
        """Process a worker death: cached memory partitions on the dead
        node are tombstoned (rebuilt lazily from lineage on the next
        cache read), and stateful bags restore their lost partitions
        from the last checkpoint plus the update log immediately."""
        num_workers = self.cluster.num_workers
        # Hoisted shuffled inputs live in worker memory without
        # tombstone bookkeeping: drop them all and let the next
        # iteration recompute (and re-hoist) from the cached sources.
        self.spill.drop_hoist_entries()
        self._hoist_cache.clear()
        for handle in list(self._cached_handles):
            lost = handle.mark_lost(worker, num_workers)
            if lost:
                # A spilled partition of a dead worker lived on that
                # worker's local disk: its spill file is unusable and
                # the partition goes through the same lineage recovery
                # as a resident one (identical fault schedules).
                self.spill.on_partitions_lost(handle, lost)
        for bag in list(self._stateful_bags):
            bag.on_worker_lost(worker, job)

    def _recover_handle(self, handle: BagHandle, job: JobRun) -> None:
        """Rebuild a handle's tombstoned partitions.

        Lineage-backed handles re-execute their combinator subtree —
        upstream cached bags and DFS sources act as recovery barriers,
        so the recomputation is as narrow as the surviving ancestry
        allows — and re-enforce the cached partitioning, which makes
        the rebuilt layout identical to the lost one.  Driver-backed
        handles re-ship the replica.  Recovery work is charged into
        the consuming job and never triggers further fault injection.
        """
        from repro.engines.executor import JobExecutor

        lost = sorted(handle.lost_partitions)
        if not lost:
            return
        before = job.total_seconds()
        guard = self.faults.suspend() if self.faults else nullcontext()
        with guard:
            if handle.lineage_root is not None:
                executor = JobExecutor(
                    self, dict(handle.lineage_env or {}), job
                )
                bag = executor.run_bag(handle.lineage_root)
                if handle.partition_key is not None and not (
                    bag.partitioner is not None
                    and bag.partitioner.matches(
                        handle.partition_key, bag.num_partitions
                    )
                ):
                    bag = executor.shuffle_by_key(
                        bag, handle.partition_key
                    )
                if bag.num_partitions != handle.bag.num_partitions:
                    raise EngineError(
                        "lineage recomputation produced "
                        f"{bag.num_partitions} partitions where the "
                        f"cached bag had {handle.bag.num_partitions}",
                        partition=lost[0],
                        metrics=self.metrics.snapshot(),
                    )
                rebuilt = bag.partitions
            elif handle.recovery_partitions is not None:
                from repro.engines.sizes import estimate_bag_bytes

                rebuilt = handle.recovery_partitions
                nbytes = sum(
                    estimate_bag_bytes(rebuilt[i]) for i in lost
                )
                job.charge_driver(self.cost.driver_seconds(nbytes))
                self.metrics.driver_ship_bytes += nbytes
            else:
                raise EngineError(
                    f"cached partitions {lost} were lost with neither "
                    "lineage nor a driver replica to rebuild them from",
                    partition=lost[0],
                    metrics=self.metrics.snapshot(),
                )
            for i in lost:
                handle.bag.partitions[i] = list(rebuilt[i])
        handle.lost_partitions.clear()
        self.spill.register_cache_partitions(handle, lost)
        self.metrics.partitions_recomputed += len(lost)
        self.metrics.recovery_seconds += job.total_seconds() - before
        if self.tracer is not None:
            self.tracer.event(
                "recover:partitions",
                ts=job.trace_ts(),
                partitions=len(lost),
                source="lineage"
                if handle.lineage_root is not None
                else "driver-replica",
                seconds=round(job.total_seconds() - before, 9),
            )

    # -- driver-facing API -------------------------------------------------

    def defer(
        self, root: Combinator, env: Mapping[str, Any]
    ) -> DeferredBag:
        """Wrap a bag-typed dataflow as a lazy thunk (no execution)."""
        return DeferredBag(self, root, dict(env))

    def run_scalar(self, root: Combinator, env: Mapping[str, Any]) -> Any:
        """Execute a fold/write dataflow now and return its result."""
        from repro.engines.executor import JobExecutor

        job = self._new_job()
        result = JobExecutor(self, dict(env), job).run(root)
        self._finish_job(job)
        return result

    def collect(self, value: Any) -> list[Any]:
        """Materialize any bag value on the driver (``fetch``)."""
        if isinstance(value, DataBag):
            return value.fetch()
        if isinstance(value, list):
            return list(value)
        if isinstance(value, DeferredBag):
            if value.is_forced:
                return value.force_local()
            from repro.engines.executor import JobExecutor

            job = self._new_job()
            bag = JobExecutor(self, value.env, job).run_bag(value.root)
            nbytes = bag.nbytes()
            job.charge_driver(self.cost.driver_seconds(nbytes))
            self.metrics.driver_collect_bytes += nbytes
            self._finish_job(job)
            return bag.collect()
        if isinstance(value, BagHandle):
            job = self._new_job()
            bag = self._read_cached(value, job)
            nbytes = bag.nbytes()
            job.charge_driver(self.cost.driver_seconds(nbytes))
            self.metrics.driver_collect_bytes += nbytes
            self._finish_job(job)
            return bag.collect()
        raise EngineError(
            f"cannot collect a {type(value).__name__} as a bag"
        )

    def cache(
        self, value: Any, partition_key: ScalarFn | None = None
    ) -> BagHandle:
        """Materialize ``value`` per the engine's cache policy.

        With ``partition_key``, the bag is hash-partitioned on that key
        *before* being stored (the partition-pulling optimization pays
        its one shuffle here, amortized over later uses).
        """
        from repro.engines.executor import JobExecutor

        job = self._new_job()
        executor = JobExecutor(self, {}, job)
        lineage_root: Combinator | None = None
        lineage_env: dict[str, Any] | None = None
        if isinstance(value, DeferredBag):
            executor.env = value.env
            bag = executor.run_bag(value.root)
            lineage_root, lineage_env = value.root, dict(value.env)
        elif isinstance(value, BagHandle):
            bag = self._read_cached(value, job)
            lineage_root = value.lineage_root
            if value.lineage_env is not None:
                lineage_env = dict(value.lineage_env)
        elif isinstance(value, DataBag):
            bag = executor.parallelize_local(value.fetch())
        elif isinstance(value, list):
            bag = executor.parallelize_local(value)
        else:
            raise EngineError(
                f"cannot cache a {type(value).__name__} as a bag"
            )
        if partition_key is not None and not (
            bag.partitioner is not None
            and bag.partitioner.matches(partition_key, bag.num_partitions)
        ):
            bag = executor.shuffle_by_key(bag, partition_key)
        handle = self._store_cached(
            bag,
            job,
            lineage_root=lineage_root,
            lineage_env=lineage_env,
            partition_key=partition_key,
        )
        self._finish_job(job)
        return handle

    # -- cache policy ------------------------------------------------------

    def _store_cached(
        self,
        bag: PartitionedBag,
        job: JobRun,
        lineage_root: Combinator | None = None,
        lineage_env: dict[str, Any] | None = None,
        partition_key: ScalarFn | None = None,
    ) -> BagHandle:
        nbytes = bag.nbytes()
        if self.cache_storage == "memory":
            # Writing to the in-memory store costs one local pass.
            job.charge_spread(self.cost.cpu_seconds(bag.count()))
            self.metrics.cache_write_bytes += nbytes
            if self.spill.tracks_any(bag):
                # Spilling mutates partition-list slots in place, so a
                # registered handle must own its lists exclusively —
                # re-caching a cached bag gets fresh copies (the
                # constructor copies every partition list).
                bag = PartitionedBag(bag.partitions, bag.partitioner)
            recovery = None
            if lineage_root is None:
                # Driver-originated data has no dataflow lineage; keep a
                # driver replica so worker loss remains recoverable.
                recovery = [list(p) for p in bag.partitions]
            handle = BagHandle(
                self,
                bag,
                "memory",
                lineage_root=lineage_root,
                lineage_env=lineage_env,
                partition_key=partition_key,
                recovery_partitions=recovery,
            )
            self._cached_handles.add(handle)
            self.spill.pin_handle(handle)
            self.spill.register_cache_partitions(handle)
            return handle
        # DFS-backed cache: pay a distributed write now ...
        self._cache_seq += 1
        path = f"__cache__/{self.name}/{self._cache_seq}"
        self.dfs.put(path, bag.collect())
        job.charge_spread(self.cost.dfs_write_seconds(nbytes))
        self.metrics.dfs_write_bytes += nbytes
        self.metrics.cache_write_bytes += nbytes
        handle = BagHandle(self, bag, "dfs", dfs_path=path)
        self._cached_handles.add(handle)
        return handle

    def _read_cached(self, handle: BagHandle, job: JobRun) -> PartitionedBag:
        """Access a cached bag, charging per the storage medium."""
        if handle.lost_partitions:
            self._recover_handle(handle, job)
        if handle.storage == "memory":
            # Reload any spilled partitions before the bag escapes (and
            # pin the handle for the rest of the job).  Reloads charge
            # no simulated time, so the accounting below is identical
            # whether or not the bag ever left memory.
            self.spill.unspill_handle(handle)
        nbytes = handle.bag.nbytes()
        if handle.storage == "memory":
            self.metrics.cache_read_bytes += nbytes
            return handle.bag
        # ... and a distributed read on every use.
        job.charge_spread(self.cost.dfs_read_seconds(nbytes))
        self.metrics.dfs_read_bytes += nbytes
        self.metrics.cache_read_bytes += nbytes
        # A DFS round-trip loses the in-memory partitioning only if the
        # engine does not track it; partitioning survives because the
        # cache stores partition boundaries with the file.
        return handle.bag

    # -- job lifecycle -------------------------------------------------------

    def _new_job(self) -> JobRun:
        job = JobRun(
            self.cluster.num_workers,
            self.metrics,
            start_ts=self.metrics.simulated_seconds,
        )
        if self.tracer is not None:
            index = self.tracer.next_job_index()
            job.span = self.tracer.begin(
                f"job {index}",
                "job",
                ts=job.start_ts,
                job_index=index,
                workers=self.cluster.num_workers,
            )
        job.columnar_start = (
            self.metrics.columnar_batches_built,
            self.metrics.columnar_kernels,
            self.metrics.columnar_fallbacks,
        )
        job.exchange_start = (
            self.metrics.columnar_shuffles,
            self.metrics.columnar_joins,
            self.metrics.columnar_groups,
            self.metrics.columnar_blocks_shipped,
        )
        job.spill_start = (
            self.metrics.spill_bytes_written,
            self.metrics.spill_bytes_read,
            self.metrics.partitions_spilled,
            self.metrics.partitions_reloaded,
            self.metrics.external_merge_passes,
            self.metrics.budget_evictions,
        )
        self.spill.begin_job(job)
        job.wall_started = time.perf_counter()
        return job

    def _finish_job(self, job: JobRun) -> float:
        job_time = job.finish(
            fixed_overhead=self.cost.job_overhead,
            stage_overhead=self.cost.stage_overhead,
        )
        # Wall clock is measured, not simulated: it is the one metric
        # allowed to differ between execution modes.
        wall = time.perf_counter() - job.wall_started
        self.metrics.wall_clock_seconds += wall
        self.spill.end_job()
        if self.tracer is not None and job.span is not None:
            extra: dict[str, Any] = {}
            batches = (
                self.metrics.columnar_batches_built
                - job.columnar_start[0]
            )
            kernels = (
                self.metrics.columnar_kernels - job.columnar_start[1]
            )
            fallbacks = (
                self.metrics.columnar_fallbacks - job.columnar_start[2]
            )
            if batches or kernels or fallbacks:
                extra["columnar_batches"] = batches
                extra["columnar_kernels"] = kernels
                extra["columnar_fallbacks"] = fallbacks
            exchange_now = (
                self.metrics.columnar_shuffles,
                self.metrics.columnar_joins,
                self.metrics.columnar_groups,
                self.metrics.columnar_blocks_shipped,
            )
            if exchange_now != job.exchange_start:
                names = (
                    "columnar_shuffles",
                    "columnar_joins",
                    "columnar_groups",
                    "columnar_blocks_shipped",
                )
                for name, now, start in zip(
                    names, exchange_now, job.exchange_start
                ):
                    if now - start:
                        extra[name] = now - start
            spill_now = (
                self.metrics.spill_bytes_written,
                self.metrics.spill_bytes_read,
                self.metrics.partitions_spilled,
                self.metrics.partitions_reloaded,
                self.metrics.external_merge_passes,
                self.metrics.budget_evictions,
            )
            if spill_now != job.spill_start:
                names = (
                    "spill_bytes_written",
                    "spill_bytes_read",
                    "partitions_spilled",
                    "partitions_reloaded",
                    "external_merge_passes",
                    "budget_evictions",
                )
                for name, now, start in zip(
                    names, spill_now, job.spill_start
                ):
                    if now - start:
                        extra[name] = now - start
            self.tracer.end_at_duration(
                job.span,
                job_time,
                stages=job.stages,
                busy_seconds=round(max(job.worker_seconds, default=0.0), 9),
                driver_seconds=round(job.driver_seconds, 9),
                wall_clock_seconds=round(wall, 6),
                **extra,
            )
        if (
            self.time_budget is not None
            and self.metrics.simulated_seconds > self.time_budget
        ):
            raise SimulatedTimeout(
                self.metrics.simulated_seconds,
                self.time_budget,
                metrics=self.metrics.snapshot(),
            )
        return job_time

    def reset_metrics(self) -> None:
        """Start a fresh metrics accumulation (between experiments)."""
        self.metrics = Metrics()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(workers={self.cluster.num_workers})"
        )

"""Memory-budgeted out-of-core execution: the driver's spill layer.

The simulated engines keep every partition of every cached bag, hoisted
shuffle input, and columnar batch resident in *host* memory.  This
module bounds that residency with a driver-wide byte budget
(``EmmaConfig(memory_budget=...)`` / ``REPRO_MEMORY_BUDGET``): when
resident bytes exceed the budget, the least-recently-used entries are
**spilled** to real temp files on the simulated DFS's spill tier
(:meth:`~repro.engines.dfs.SimulatedDFS.spill_put_bytes`) and lazily
reloaded on the next access.

The one invariant everything here is built around: **spilling is a
host-resource mechanism, invisible to the simulation**.  Evictions and
reloads charge zero simulated seconds, never advance the fault-injector
task counter, and never change results — so ``simulated_seconds``,
fault schedules, and outputs are bit-identical spill-on vs spill-off
(only wall clock and the ``spill_*`` metrics move).  Eviction order is
itself deterministic: entries are ranked by a monotone touch counter,
never by wall-clock time.

Three owner kinds are tracked, all charged through the
:mod:`repro.engines.sizes` estimators:

* ``cache`` — individual partitions of memory-tier
  :class:`~repro.engines.base.BagHandle` bags.  Eviction pickles the
  partition list to a spill file and leaves a loud
  :class:`SpilledPartition` sentinel in its slot; the next cache read
  reloads every spilled partition before the bag is handed out.
* ``hoist`` — whole bags in the per-engine loop-invariant hoist cache.
  Eviction dumps the partitions and replaces the cache value with a
  :class:`SpilledBag` stub; a hoist hit on the stub reloads it.
* ``batch`` — columnar at-rest batch-cache entries.  These are pure
  packing caches, so eviction simply drops them (rebuilt on demand).

The module also provides the **file-backed shuffle service** for the
process-pool backend: large task payloads are written once to the
spill tier and a small :class:`SpillFileRef` crosses the process
boundary instead, with IPC byte accounting counting only the ref.
Row payloads travel as pickles; :class:`~repro.engines.columnar.
ColumnBatch` payloads travel as typed buffer dumps (dtype + raw
buffer per column).
"""

from __future__ import annotations

import os
import pickle
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from repro.engines.columnar import (
    ColumnBatch,
    pack_column,
    unpack_column,
)
from repro.engines.sizes import estimate_bag_bytes
from repro.errors import EngineError

if TYPE_CHECKING:  # pragma: no cover
    from repro.engines.base import BagHandle, Engine
    from repro.engines.cluster import PartitionedBag
    from repro.engines.metrics import JobRun


def default_memory_budget() -> int:
    """The driver memory budget from ``REPRO_MEMORY_BUDGET`` (bytes).

    ``0`` (the default) disables eviction entirely: residency is still
    tracked (so a mid-run budget squeeze can engage instantly) but
    nothing ever spills, which keeps the default behaviour byte-for-
    byte identical to an engine without the spill layer.
    """
    raw = os.environ.get("REPRO_MEMORY_BUDGET", "").strip()
    if not raw:
        return 0
    try:
        budget = int(raw)
    except ValueError as exc:
        raise EngineError(
            f"REPRO_MEMORY_BUDGET={raw!r} is not an integer byte count"
        ) from exc
    if budget < 0:
        raise EngineError(
            f"REPRO_MEMORY_BUDGET={budget} must be >= 0 (0 = unlimited)"
        )
    return budget


# -- payload codecs ----------------------------------------------------------

#: codec names used in spill files and shuffle refs
CODEC_PICKLE = "pickle"
CODEC_BATCH = "batch"
#: a tuple payload mixing :class:`ColumnBatch` elements with plain
#: values — the shape of a columnar join-probe's ``(left, right)``
#: pair; each batch element takes the typed buffer dump
CODEC_BLOCKS = "blocks"


def dump_batch(batch: ColumnBatch) -> bytes:
    """Serialize a :class:`ColumnBatch` as packed typed buffers.

    Delegates to :func:`repro.engines.columnar.pack_column` — the same
    compact form batches pickle as across the process-pool boundary
    (raw buffers for numeric columns, string tuples for fixed-width
    unicode) — so spill files and shuffle blocks share one codec.
    """
    return pickle.dumps(
        (
            batch.schema,
            tuple(pack_column(c) for c in batch.columns),
            batch.nrows,
        ),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def load_batch(buf: bytes) -> ColumnBatch:
    """Rebuild a :class:`ColumnBatch` from :func:`dump_batch` output."""
    schema, cols, nrows = pickle.loads(buf)
    try:
        rebuilt = tuple(unpack_column(*c) for c in cols)
    except RuntimeError as exc:  # pragma: no cover - cross-host guard
        raise EngineError(str(exc)) from exc
    return ColumnBatch(schema, rebuilt, nrows)


def encode_payload(data: Any) -> tuple[str, bytes]:
    """Serialize spillable data: ``(codec, bytes)``.

    Row partitions (and any other Python value) pickle; column batches
    take the typed buffer dump; tuples containing batches (a columnar
    join pair, possibly with one row-mode side) dump each batch element
    as typed buffers and pickle the rest.
    """
    if isinstance(data, ColumnBatch):
        return CODEC_BATCH, dump_batch(data)
    if isinstance(data, tuple) and any(
        isinstance(el, ColumnBatch) for el in data
    ):
        parts = tuple(
            ("batch", dump_batch(el))
            if isinstance(el, ColumnBatch)
            else ("obj", pickle.dumps(el, protocol=pickle.HIGHEST_PROTOCOL))
            for el in data
        )
        return CODEC_BLOCKS, pickle.dumps(
            parts, protocol=pickle.HIGHEST_PROTOCOL
        )
    return CODEC_PICKLE, pickle.dumps(
        data, protocol=pickle.HIGHEST_PROTOCOL
    )


def decode_payload(codec: str, buf: bytes) -> Any:
    """Inverse of :func:`encode_payload`."""
    if codec == CODEC_BATCH:
        return load_batch(buf)
    if codec == CODEC_BLOCKS:
        return tuple(
            load_batch(raw) if tag == "batch" else pickle.loads(raw)
            for tag, raw in pickle.loads(buf)
        )
    return pickle.loads(buf)


@dataclass(frozen=True)
class SpillFileRef:
    """A pointer to one spill file, shipped in place of its contents.

    In the file-backed shuffle, a task payload above the size threshold
    is written once to the spill tier and this small ref crosses the
    process boundary instead; the worker resolves it with
    :func:`load_payload_file`.
    """

    path: str
    codec: str
    nbytes: int


def load_payload_file(ref: SpillFileRef) -> Any:
    """Worker-side resolution of a shipped :class:`SpillFileRef`.

    Reads the host file directly (workers share the host filesystem
    with the driver); raises :class:`~repro.errors.EngineError` if the
    file disappeared, which the scheduler's serial fallback absorbs.
    """
    try:
        with open(ref.path, "rb") as f:
            buf = f.read()
    except OSError as exc:
        raise EngineError(
            f"shuffle spill file vanished: {ref.path!r} ({exc})"
        ) from exc
    return decode_payload(ref.codec, buf)


# -- spilled-slot placeholders ----------------------------------------------


class SpilledPartition:
    """The sentinel left in a bag slot whose partition was evicted.

    Keeps the record count (so ``PartitionedBag.count()`` stays cheap
    and correct) but fails loudly on any attempt to read records — a
    spilled partition must be reloaded through the
    :class:`SpillManager` before use; touching the sentinel directly
    is always an engine bug, never silent data loss.
    """

    __slots__ = ("count",)

    def __init__(self, count: int) -> None:
        self.count = count

    def __len__(self) -> int:
        return self.count

    def _refuse(self) -> EngineError:
        return EngineError(
            "attempted to read a spilled partition without reloading "
            "it; cached bags must be accessed through the engine's "
            "cache-read path"
        )

    def __iter__(self) -> Iterator[Any]:
        raise self._refuse()

    def __getitem__(self, index: Any) -> Any:
        raise self._refuse()

    def __repr__(self) -> str:
        return f"SpilledPartition(count={self.count})"


class SpilledBag:
    """The stub left in the hoist cache for an evicted shuffled bag.

    Holds everything needed to rebuild the entry on the next hoist hit
    — spill file path plus the original partitioner object (kept in
    memory: partitioner identity and key IR drive shuffle elision and
    must survive the round trip exactly).
    """

    __slots__ = ("path", "file_nbytes", "partitioner", "num_partitions")

    def __init__(
        self,
        path: str,
        file_nbytes: int,
        partitioner: Any,
        num_partitions: int,
    ) -> None:
        self.path = path
        self.file_nbytes = file_nbytes
        self.partitioner = partitioner
        self.num_partitions = num_partitions

    def __repr__(self) -> str:
        return (
            f"SpilledBag(partitions={self.num_partitions}, "
            f"file_bytes={self.file_nbytes})"
        )


class _Entry:
    """One tracked residency unit (a partition, hoist bag, or batch set)."""

    __slots__ = (
        "key",
        "group",
        "kind",
        "nbytes",
        "seq",
        "spilled",
        "path",
        "file_nbytes",
        "ref",
        "index",
    )

    def __init__(
        self,
        key: tuple,
        group: tuple,
        kind: str,
        nbytes: int,
        seq: int,
        ref: Any = None,
        index: int = -1,
    ) -> None:
        self.key = key
        self.group = group
        self.kind = kind
        self.nbytes = nbytes
        self.seq = seq
        self.spilled = False
        self.path: str | None = None
        self.file_nbytes = 0
        self.ref = ref
        self.index = index


class SpillManager:
    """Driver-wide memory budget with deterministic LRU spill-to-disk.

    One manager per :class:`~repro.engines.base.Engine`.  Residency is
    *always* tracked (even with ``limit == 0``) so a mid-run budget
    squeeze — the :data:`~repro.engines.faults.MEMORY_SQUEEZE` chaos
    event — can start evicting immediately; with the default unlimited
    budget nothing ever spills and the engine behaves exactly as it
    did without this layer.

    Entries in use by the current job are **pinned** (per job, cleared
    by :meth:`end_job`) so an eviction triggered mid-job can never pull
    a partition out from under an operator that already holds the bag.
    """

    #: payloads below this many serialized bytes ship inline over IPC
    #: rather than through a shuffle spill file
    shuffle_file_min_bytes = 16 * 1024

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.limit = 0
        self._entries: dict[tuple, _Entry] = {}
        self._usage = 0
        self._seq = 0
        self._uid = 0
        self._handle_uids: "weakref.WeakKeyDictionary[Any, int]" = (
            weakref.WeakKeyDictionary()
        )
        #: ids of partition lists currently tracked as resident — used
        #: to give every registered handle exclusive list ownership
        self._tracked_ids: set[int] = set()
        #: groups pinned by the current job (cleared per job)
        self._pinned: set[tuple] = set()
        #: the job whose trace clock spill events are stamped with
        self._job: "JobRun | None" = None

    # -- configuration -----------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether a finite budget is in force."""
        return self.limit > 0

    def usage(self) -> int:
        """Tracked resident bytes across all owners."""
        return self._usage

    def configure(self, limit: int) -> None:
        """Set the budget (bytes; 0 = unlimited) and evict to fit."""
        if limit < 0:
            raise EngineError(
                f"memory_budget={limit} must be >= 0 (0 = unlimited)"
            )
        self.limit = limit
        self.evict_to_budget()

    # -- job lifecycle -----------------------------------------------------

    def begin_job(self, job: "JobRun") -> None:
        """Adopt the job whose clock stamps spill trace events."""
        self._job = job

    def end_job(self) -> None:
        """Release per-job pins and enforce the budget at the boundary.

        Jobs are serial on the driver, so the job boundary is a
        deterministic point in the operation sequence — the natural
        moment to evict entries the finished job was pinning.
        """
        self._pinned.clear()
        self.evict_to_budget()
        self._job = None

    # -- shared internals --------------------------------------------------

    def _touch(self, entry: _Entry) -> None:
        self._seq += 1
        entry.seq = self._seq

    def _metrics(self) -> Any:
        return self.engine.metrics

    def _trace(self, name: str, **attrs: Any) -> None:
        tracer = self.engine.tracer
        if tracer is None:
            return
        ts = (
            self._job.trace_ts()
            if self._job is not None
            else self.engine.metrics.simulated_seconds
        )
        tracer.event(name, ts=ts, **attrs)

    def _discard(self, entry: _Entry) -> None:
        """Forget one entry (deleting its spill file if it has one)."""
        self._entries.pop(entry.key, None)
        if entry.spilled:
            if entry.path is not None:
                self.engine.dfs.spill_delete(entry.path)
        else:
            self._usage -= entry.nbytes

    def _release_group(self, group: tuple) -> None:
        """Drop every entry of one group (handle death, hoist clear)."""
        for entry in [
            e for e in self._entries.values() if e.group == group
        ]:
            if not entry.spilled and entry.kind == "cache":
                handle = entry.ref() if entry.ref is not None else None
                if handle is not None and entry.index >= 0:
                    parts = handle.bag.partitions
                    if entry.index < len(parts):
                        self._tracked_ids.discard(id(parts[entry.index]))
            self._discard(entry)

    # -- eviction ----------------------------------------------------------

    def evict_to_budget(self) -> None:
        """Spill LRU entries until usage fits the budget.

        Deterministic: candidates are ranked by the monotone touch
        counter (oldest first); pinned groups are skipped.  Runs at
        driver-side registration/reload points only — never from a
        worker, never on a wall-clock trigger — so the spill schedule
        is a pure function of the operation sequence.
        """
        if self.limit <= 0:
            return
        while self._usage > self.limit:
            victim: _Entry | None = None
            for entry in self._entries.values():
                if entry.spilled or entry.group in self._pinned:
                    continue
                if victim is None or entry.seq < victim.seq:
                    victim = entry
            if victim is None:
                return  # everything left is pinned: soft budget
            self._evict(victim)

    def _evict(self, entry: _Entry) -> None:
        metrics = self._metrics()
        if entry.kind == "cache":
            handle = entry.ref() if entry.ref is not None else None
            if handle is None:
                self._discard(entry)
                return
            parts = handle.bag.partitions
            i = entry.index
            if i >= len(parts) or not isinstance(parts[i], list):
                # The slot was already replaced (recovery tombstone,
                # a sibling's spill): stop tracking, do not touch it.
                self._discard(entry)
                return
            records = parts[i]
            codec, buf = encode_payload(records)
            path = self.engine.dfs.spill_put_bytes(buf, tag="cache")
            self._tracked_ids.discard(id(records))
            parts[i] = SpilledPartition(len(records))
            entry.spilled = True
            entry.path = path
            entry.file_nbytes = len(buf)
            self._usage -= entry.nbytes
            metrics.partitions_spilled += 1
            metrics.spill_bytes_written += len(buf)
            metrics.budget_evictions += 1
            self._trace(
                "spill:evict",
                kind="cache-partition",
                partition=i,
                bytes=len(buf),
            )
        elif entry.kind == "hoist":
            hoist = self.engine._hoist_cache
            bag = hoist.get(entry.ref)
            if bag is None or isinstance(bag, SpilledBag):
                self._discard(entry)
                return
            codec, buf = encode_payload(bag.partitions)
            path = self.engine.dfs.spill_put_bytes(buf, tag="hoist")
            hoist[entry.ref] = SpilledBag(
                path, len(buf), bag.partitioner, bag.num_partitions
            )
            entry.spilled = True
            entry.path = path
            entry.file_nbytes = len(buf)
            self._usage -= entry.nbytes
            metrics.partitions_spilled += bag.num_partitions
            metrics.spill_bytes_written += len(buf)
            metrics.budget_evictions += 1
            self._trace(
                "spill:evict",
                kind="hoist-bag",
                partitions=bag.num_partitions,
                bytes=len(buf),
            )
        else:  # batch: a pure cache — dropping it is the eviction
            source = entry.ref() if entry.ref is not None else None
            if source is not None:
                self.engine._batch_cache.pop(source, None)
            self._discard(entry)
            metrics.budget_evictions += 1
            self._trace("spill:evict", kind="batch-cache")

    # -- cached bag handles ------------------------------------------------

    def _handle_group(self, handle: "BagHandle") -> tuple:
        uid = self._handle_uids.get(handle)
        if uid is None:
            self._uid += 1
            uid = self._uid
            self._handle_uids[handle] = uid
            weakref.finalize(handle, self._release_group, ("cache", uid))
        return ("cache", uid)

    def tracks_any(self, bag: "PartitionedBag") -> bool:
        """Whether any of the bag's partition lists is already tracked.

        Used by the cache-store path to give each registered handle
        exclusive ownership of its lists: spilling mutates the list
        slot in place, so two handles must never share one.
        """
        return any(id(p) in self._tracked_ids for p in bag.partitions)

    def register_cache_partitions(
        self, handle: "BagHandle", indexes: list[int] | None = None
    ) -> None:
        """Track (or re-track) a memory-tier handle's partitions.

        Called when a handle is stored and again after lineage recovery
        rebuilds lost partitions (``indexes``).  Charges nothing — the
        store path already paid its simulated cost.  A partial
        re-registration (``indexes``) of a handle that was never
        tracked is a no-op: handles created outside the engine's
        cache-store path (e.g. stateful-update deltas) are accessed
        directly and must never grow spill sentinels.
        """
        if indexes is not None and self._handle_uids.get(handle) is None:
            return
        group = self._handle_group(handle)
        handle_ref = weakref.ref(handle)
        parts = handle.bag.partitions
        todo = range(len(parts)) if indexes is None else sorted(indexes)
        for i in todo:
            if not isinstance(parts[i], list):
                continue
            key = (*group, i)
            old = self._entries.get(key)
            if old is not None:
                self._discard(old)
            nbytes = estimate_bag_bytes(parts[i])
            entry = _Entry(
                key, group, "cache", nbytes, 0, ref=handle_ref, index=i
            )
            self._touch(entry)
            self._entries[key] = entry
            self._tracked_ids.add(id(parts[i]))
            self._usage += nbytes
        self.evict_to_budget()

    def pin_handle(self, handle: "BagHandle") -> None:
        """Protect a handle's partitions from eviction for this job."""
        if handle.storage == "memory":
            self._pinned.add(self._handle_group(handle))

    def unspill_handle(self, handle: "BagHandle") -> None:
        """Reload every spilled partition of a handle, in index order.

        The lazy-reload point: the engine's cache read calls this
        before handing out the bag, so sentinels never escape.  Reloads
        charge zero simulated time; only wall clock and the
        ``spill_bytes_read``/``partitions_reloaded`` counters move.
        """
        group = self._handle_group(handle)
        metrics = self._metrics()
        parts = handle.bag.partitions
        for i in range(len(parts)):
            entry = self._entries.get((*group, i))
            if entry is None or not entry.spilled:
                if entry is not None:
                    self._touch(entry)
                continue
            buf = self.engine.dfs.spill_get_bytes(entry.path)
            records = decode_payload(CODEC_PICKLE, buf)
            self.engine.dfs.spill_delete(entry.path)
            parts[i] = records
            self._tracked_ids.add(id(records))
            entry.spilled = False
            entry.path = None
            self._usage += entry.nbytes
            self._touch(entry)
            metrics.partitions_reloaded += 1
            metrics.spill_bytes_read += entry.file_nbytes
            self._trace(
                "spill:reload",
                kind="cache-partition",
                partition=i,
                bytes=entry.file_nbytes,
            )
            entry.file_nbytes = 0
        self._pinned.add(group)
        self.evict_to_budget()

    def on_partitions_lost(
        self, handle: "BagHandle", lost: list[int]
    ) -> None:
        """Worker loss hit a handle: drop tracking for lost partitions.

        A spilled partition of a dead worker is treated as living on
        that worker's local disk: its spill file is deleted (it can
        never be reloaded) and the partition recovers through the
        exact same lineage path as the spill-off run — which is what
        keeps fault schedules and recovery accounting bit-identical.
        The tombstoned slots re-register after recovery via
        :meth:`register_cache_partitions`.
        """
        group = self._handle_group(handle)
        for i in lost:
            entry = self._entries.pop((*group, i), None)
            if entry is None:
                continue
            if entry.spilled:
                if entry.path is not None:
                    self.engine.dfs.spill_delete(entry.path)
            else:
                parts = handle.bag.partitions
                if i < len(parts):
                    self._tracked_ids.discard(id(parts[i]))
                self._usage -= entry.nbytes

    # -- the hoist cache ---------------------------------------------------

    def register_hoist(self, hkey: tuple, nbytes: int) -> None:
        """Track one freshly stored hoist-cache bag."""
        key = ("hoist", hkey)
        old = self._entries.get(key)
        if old is not None:
            self._discard(old)
        entry = _Entry(key, key, "hoist", nbytes, 0, ref=hkey)
        self._touch(entry)
        self._entries[key] = entry
        self._usage += nbytes
        self._pinned.add(key)
        self.evict_to_budget()

    def resolve_hoist(self, hkey: tuple, hit: Any) -> Any:
        """Serve a hoist hit, reloading it first if it was spilled.

        Returns the resident :class:`~repro.engines.cluster.
        PartitionedBag` (or ``None`` for a miss).  The caller then
        charges the exact same hit accounting as a never-spilled hit,
        so the simulation cannot tell the difference.
        """
        key = ("hoist", hkey)
        entry = self._entries.get(key)
        if isinstance(hit, SpilledBag):
            from repro.engines.cluster import PartitionedBag

            buf = self.engine.dfs.spill_get_bytes(hit.path)
            partitions = decode_payload(CODEC_PICKLE, buf)
            self.engine.dfs.spill_delete(hit.path)
            bag = PartitionedBag(partitions, hit.partitioner)
            self.engine._hoist_cache[hkey] = bag
            metrics = self._metrics()
            metrics.partitions_reloaded += hit.num_partitions
            metrics.spill_bytes_read += hit.file_nbytes
            self._trace(
                "spill:reload",
                kind="hoist-bag",
                partitions=hit.num_partitions,
                bytes=hit.file_nbytes,
            )
            if entry is not None:
                entry.spilled = False
                entry.path = None
                entry.file_nbytes = 0
                self._usage += entry.nbytes
            hit = bag
        if entry is not None:
            self._touch(entry)
            self._pinned.add(key)
            self.evict_to_budget()
        return hit

    def drop_hoist_entries(self) -> None:
        """Forget all hoist entries (run boundary / worker loss)."""
        for entry in [
            e for e in self._entries.values() if e.kind == "hoist"
        ]:
            self._discard(entry)

    # -- the columnar batch cache ------------------------------------------

    def register_batches(
        self, source: "PartitionedBag", nbytes: int
    ) -> None:
        """Track the batch-cache footprint of one source bag."""
        self._uid += 1
        key = ("batch", self._uid)
        entry = _Entry(
            key, key, "batch", nbytes, 0, ref=weakref.ref(source)
        )
        self._touch(entry)
        self._entries[key] = entry
        self._usage += nbytes
        weakref.finalize(source, self._release_group, key)
        self.evict_to_budget()

    # -- the file-backed shuffle service -----------------------------------

    def ship_task_payload(
        self, spec: Any, data: Any, label: str = ""
    ) -> tuple[bytes, SpillFileRef | None]:
        """Serialize one process-pool task, file-backing large data.

        Payloads whose serialized data exceeds
        :attr:`shuffle_file_min_bytes` are written to the spill tier
        and shipped as ``(spec, SpillFileRef)``; the IPC counters see
        only the small ref pickle, while the file traffic lands in
        ``spill_bytes_written`` (and ``spill_bytes_read`` when the
        worker resolves it).  Small payloads ship inline exactly as
        without the shuffle service.
        """
        from repro.engines.scheduler import ship_task

        try:
            codec, buf = encode_payload(data)
        except Exception:
            # Unpicklable data: let ship_task produce the canonical
            # EngineError (and the scheduler its serial fallback).
            return ship_task(spec, data, label), None
        if len(buf) < self.shuffle_file_min_bytes:
            return ship_task(spec, data, label), None
        path = self.engine.dfs.spill_put_bytes(buf, tag="shuffle")
        ref = SpillFileRef(path, codec, len(buf))
        try:
            payload = pickle.dumps(
                (spec, ref), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception as exc:
            self.engine.dfs.spill_delete(path)
            raise EngineError(
                f"task {label or getattr(spec, 'kind', '?')!r} cannot "
                f"cross a process boundary: its kernel/UDF closure is "
                f"not picklable ({type(exc).__name__}: {exc}); falling "
                f"back to in-process execution"
            ) from exc
        self._metrics().spill_bytes_written += len(buf)
        return payload, ref

    def count_ref_read(self, ref: SpillFileRef) -> None:
        """Account one worker-side resolution of a shuffle file ref."""
        self._metrics().spill_bytes_read += ref.nbytes

    def delete_ref(self, ref: SpillFileRef) -> None:
        """Remove one shuffle spill file after its stage completed."""
        self.engine.dfs.spill_delete(ref.path)

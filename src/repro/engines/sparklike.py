"""The Spark-like engine (simulates Apache Spark v1.2 semantics).

Execution model mirrored from Spark:

* **Lazy acyclic dataflows with lineage.**  Bag dataflows are deferred;
  a consuming job inlines and *recomputes* the lineage on every use
  unless the bag was explicitly cached.  Driver loops therefore unroll
  lazily — the paper's "Spark realizes loops by lazily unrolling and
  evaluating dataflows inside the loop body".
* **In-memory caching.**  ``cache()`` pins partitions in worker memory;
  later uses read them at memory speed.
* **Cheap broadcasts.**  Broadcast variables ship once per worker
  (``broadcast_factor = 2`` — a small torrent-distribution overhead; contrast with the Flink-like engine's per-task rematerialization).
* **Shuffles spill through local disk** (map-side shuffle files).
* **Hash-based group materialization.**  ``groupByKey`` builds per-key
  in-memory lists; a worker whose groups exceed its memory allowance
  fails (``SimulatedMemoryError``) — the paper's "memory issues" failure
  mode for un-fused aggregations, and the reason Spark cannot finish
  the Pareto-skewed aggregation of Figure 5c without fold-group fusion.
* **Centralized task scheduling.**  The driver pays a per-task cost, so
  runtime grows with the total degree of parallelism even under weak
  scaling — the superlinear Spark trend of Figure 5.
"""

from __future__ import annotations

from repro.engines.base import Engine


class SparkLikeEngine(Engine):
    """See module docstring."""

    name = "spark"
    broadcast_factor = 2.0
    cache_storage = "memory"
    shuffle_via_disk = True
    task_overhead = 0.0005
    # Narrow transformations fuse into one stage: a chained
    # map/filter/flatMap run schedules as a single task wave.
    pipelined_chains = True
    group_materialize_factor = 3.0
    group_memory_bound = True
    group_spill_to_disk = False

"""The combinator-dataflow executor shared by the simulated engines.

A :class:`JobExecutor` runs one dataflow job: it evaluates a combinator
tree bottom-up over :class:`~repro.engines.cluster.PartitionedBag`
values, really applying the UDFs to every record, while charging
compute, network, disk, and broadcast costs into the job's per-worker
time accounts.  Partition ``i`` lives on worker ``i % num_workers``;
job time is the busiest worker's time, so key skew (the Pareto
distribution of Figure 5c) naturally produces the skewed runtimes the
paper reports.

Engine-specific behaviour is read off the engine's class attributes:
``broadcast_factor``, ``shuffle_via_disk``, ``group_spill_to_disk``,
``group_memory_bound``, ``group_materialize_factor``, ``task_overhead``,
and ``broadcast_join_threshold``.
"""

from __future__ import annotations

import dataclasses
import math
import pickle
from collections import Counter
from typing import TYPE_CHECKING, Any, Callable

from repro.comprehension.exprs import (
    Attr,
    Call,
    Const,
    Env,
    Index,
    Ref,
    TupleExpr,
)
from repro.core.databag import DataBag
from repro.core.grp import Grp
from repro.engines.chainkernel import (
    FILTER,
    FLATMAP,
    MAP,
    ChainKernel,
    KernelStep,
    NotVectorizable,
    VectorKernel,
    build_chain_kernel,
    build_key_kernel,
    build_vector_kernel,
)
from repro.engines.columnar import (
    HAS_NUMPY,
    ColumnBatch,
    bucket_indices,
    build_batch,
    concat_batches,
    normalize_batch,
    infer_schema,
    probe_join,
    scatter_batch,
)
from repro.engines.cluster import (
    PartitionedBag,
    Partitioner,
    hash_partition_index,
    stable_hash,
)
from repro.engines.costmodel import JoinObservation
from repro.engines.metrics import JobRun
from repro.engines.scheduler import (
    AggMapSpec,
    AggMergeSpec,
    BroadcastProbeSpec,
    BroadcastSemiSpec,
    BucketSpec,
    ColumnarBucketSpec,
    ColumnarGroupSpec,
    ColumnarJoinProbeSpec,
    FoldSpec,
    GroupSpec,
    JoinProbeSpec,
    KernelSpec,
    PartitionTask,
    SemiProbeSpec,
    TaskStage,
    UdfRef,
    VectorKernelSpec,
    group_rows_by_keys,
)
from repro.engines.sizes import (
    estimate_bag_bytes,
    estimate_blocks_bytes,
    estimate_record_bytes,
)
from repro.errors import EngineError, SimulatedMemoryError
from repro.lowering.combinators import (
    AggResult,
    CAggBy,
    CBagRef,
    CChain,
    CCross,
    CDistinct,
    CEqJoin,
    CFilter,
    CFlatMap,
    CFold,
    CGroupBy,
    CMap,
    CMinus,
    CParallelize,
    CSemiJoin,
    CSource,
    CUnion,
    Combinator,
    ScalarFn,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.engines.base import Engine


def _attr_key(var: str, attr: str) -> ScalarFn:
    from repro.comprehension.exprs import Attr, Ref

    return ScalarFn((var,), Attr(Ref(var), attr))


class _CompiledUdf:
    """A UDF closed over the driver env, with its compilation context.

    Beyond the ``(callable, extra)`` pair the operators consume, the
    record keeps the post-hoist UDF and its resolved bindings so the
    chain-kernel builder can inline the body into fused kernel source.
    """

    __slots__ = ("fn", "bindings", "closure", "extra", "native")

    def __init__(
        self,
        fn: ScalarFn,
        bindings: dict[str, Any],
        closure: Callable,
        extra: int,
        native: bool,
    ) -> None:
        self.fn = fn
        self.bindings = bindings
        self.closure = closure
        self.extra = extra
        self.native = native

    def __reduce__(self) -> tuple:
        """Pickle as source: IR + bindings, recompiled on arrival.

        The compiled closure (a code object over driver-local cells)
        never crosses a process boundary; the receiving side re-runs
        the same ``compile_native`` the driver did, with the same
        native-vs-interpreter fallback, so both sides execute
        semantically identical code.
        """
        return (_rehydrate_udf, (self.fn, self.bindings, self.extra))


def _rehydrate_udf(
    fn: ScalarFn, bindings: dict[str, Any], extra: int
) -> _CompiledUdf:
    """Recompile a shipped UDF in the receiving process (pickle hook)."""
    closure, native = fn.compile_native(dict(bindings))
    return _CompiledUdf(fn, bindings, closure, extra, native)


class JobExecutor:
    """Executes one dataflow job on a simulated engine."""

    def __init__(
        self,
        engine: "Engine",
        env: dict[str, Any],
        job: JobRun,
        shared_state: dict[str, Any] | None = None,
    ) -> None:
        self.engine = engine
        self.env = env
        self.job = job
        self.parallelism = engine.cluster.parallelism
        self.num_workers = engine.cluster.num_workers
        self._broadcast_memo: dict[int, DataBag] = {}
        self._worker_group_bytes = [0] * self.num_workers
        #: per-job DAG memo: a shared subplan (same combinator object
        #: consumed by several parents — diamond plans) executes once
        self._dag_memo: dict[int, PartitionedBag] = {}
        #: per-job UDF compilation memo (by ScalarFn identity)
        self._udf_memo: dict[int, tuple[ScalarFn, _CompiledUdf]] = {}
        self._bindings_memo: dict[
            frozenset[str], tuple[dict[str, Any], int]
        ] = {}
        self._kernel_memo: dict[int, ChainKernel] = {}
        #: per-job vector-kernel memo (by chain identity): a compiled
        #: :class:`VectorKernel`, or ``None`` after a chain-level
        #: fallback so the reason is counted and traced only once
        self._vkernel_memo: dict[int, VectorKernel | None] = {}
        #: per-job exchange key-kernel memo, keyed by (key IR identity,
        #: input schema signature): the key column's ``VectorKernel``,
        #: or ``None`` after a once-counted unsupported-UDF fallback
        self._xkernel_memo: dict[tuple, VectorKernel | None] = {}
        # State shared with nested executors spawned for lazy lineages
        # within the *same* job (so one DeferredBag consumed twice in a
        # job — a self-join over a lazy bag — executes once).
        self._shared_state = (
            shared_state if shared_state is not None else {"deferred": {}}
        )

    # -- entry points ------------------------------------------------------

    def run(self, root: Combinator) -> Any:
        """Execute; returns a scalar for a fold root, else a bag."""
        if isinstance(root, CFold):
            return self._exec_fold(root)
        return self.run_bag(root)

    def run_bag(self, root: Combinator) -> PartitionedBag:
        """Execute a bag-typed dataflow; folds are rejected here."""
        if isinstance(root, CFold):
            raise EngineError("fold dataflow where a bag was expected")
        return self._exec(root)

    # -- recursion ------------------------------------------------------------

    def _exec(self, comb: Combinator) -> PartitionedBag:
        memo_key = id(comb)
        hit = self._dag_memo.get(memo_key)
        if hit is not None:
            self.engine.metrics.dag_memo_hits += 1
            return hit
        self.job.charge_driver(
            self.engine.task_overhead * self.parallelism
        )
        handler = self._HANDLERS.get(type(comb))
        if handler is None:
            raise EngineError(
                f"engine cannot execute combinator {type(comb).__name__}"
            )
        tracer = self.engine.tracer
        if tracer is None:
            bag = handler(self, comb)
            if comb.partition_hint is not None:
                bag = self.shuffle_by_key(bag, comb.partition_hint)
        else:
            span = tracer.begin(
                comb.label(),
                "operator",
                ts=self.job.trace_ts(),
                op=comb.describe(),
            )
            before_busy = self.job.total_seconds()
            bag = handler(self, comb)
            if comb.partition_hint is not None:
                bag = self.shuffle_by_key(bag, comb.partition_hint)
            tracer.end(
                span,
                end_ts=self.job.trace_ts(),
                compute_seconds=round(
                    self.job.total_seconds() - before_busy, 9
                ),
                **bag.trace_attrs(),
            )
        self._dag_memo[memo_key] = bag
        return bag

    def _worker_of(self, partition_index: int) -> int:
        worker = partition_index % self.num_workers
        faults = self.engine.faults
        if faults is not None and faults.blacklisted:
            # Blacklisted workers take no new tasks; their partitions'
            # work lands on the next healthy node.
            worker = faults.effective_worker(worker)
        return worker

    # -- parallel backend --------------------------------------------------

    @property
    def _parallel(self) -> bool:
        """Whether partition tasks fan out on the host-parallel backend.

        In ``serial`` mode the operators below run their original
        inline loops; in ``threads``/``processes`` mode the pure
        per-partition work routes through the engine's
        :class:`~repro.engines.scheduler.TaskScheduler` and *all*
        cost charging and fault injection happens afterwards, in
        deterministic partition order — which is what keeps
        ``simulated_seconds``, injected fault schedules, and results
        bit-identical across the three modes.
        """
        return self.engine.execution_mode != "serial"

    def _udf_ref(self, compiled: _CompiledUdf) -> UdfRef:
        """The shippable source form of a compiled UDF."""
        return UdfRef(
            compiled.fn.params, compiled.fn.body, dict(compiled.bindings)
        )

    def _run_stage(self, tasks: list[PartitionTask]) -> list[Any]:
        """One scheduler fan-out; results come back in task order."""
        scheduler = self.engine.scheduler
        results = scheduler.run_stage(tasks, metrics=self.engine.metrics)
        self._drain_scheduler_events(scheduler)
        return results

    def _drain_scheduler_events(self, scheduler: Any) -> None:
        """Forward scheduler events (speculation, fallbacks) to spans."""
        if not scheduler.events:
            return
        tracer = self.engine.tracer
        if tracer is not None:
            for name, attrs in scheduler.events:
                tracer.event(name, ts=self.job.trace_ts(), **attrs)
        scheduler.events.clear()

    def _kernel_stage(
        self,
        kernel: ChainKernel,
        partitions: list[list[Any]],
        label: str = "",
    ) -> list[Any]:
        """Fan a chain kernel over partitions: ``[(rows, counts)]``."""
        spec = KernelSpec(kernel.steps, prepared=kernel)
        tasks = [
            PartitionTask(i, spec, p, label)
            for i, p in enumerate(partitions)
        ]
        return self._run_stage(tasks)

    def _kernel_partitions(
        self, comb: Combinator, source: PartitionedBag
    ) -> list[list[Any]]:
        """Run a narrow operator as parallel single-step kernel tasks.

        The kernel computes exactly what the operator's serial loop
        computes (PR 1's equivalence guarantee), and
        :meth:`_charge_kernel` charges exactly what the serial loop
        charges, so this path differs from serial only in wall-clock.
        """
        kernel = self._op_kernel(comb)
        results = self._kernel_stage(
            kernel, source.partitions, comb.label()
        )
        out: list[list[Any]] = []
        for i, (p, (rows, counts)) in enumerate(
            zip(source.partitions, results)
        ):
            self._charge_kernel(kernel, i, p, counts)
            out.append(rows)
        return out

    # -- leaves ---------------------------------------------------------------

    def _exec_source(self, comb: CSource) -> PartitionedBag:
        path = comb.path.evaluate(Env.of(self.env))
        stored = self.engine.dfs.get(path)
        self.job.charge_spread(
            self.engine.cost.dfs_read_seconds(stored.nbytes)
        )
        self.engine.metrics.dfs_read_bytes += stored.nbytes
        return PartitionedBag.from_records(
            stored.records, self.parallelism
        )

    def _exec_parallelize(self, comb: CParallelize) -> PartitionedBag:
        value = comb.seq.evaluate(Env.of(self.env))
        records = value.fetch() if isinstance(value, DataBag) else list(value)
        return self.parallelize_local(records)

    def parallelize_local(self, records: list[Any]) -> PartitionedBag:
        """Ship driver-local records to the cluster."""
        nbytes = estimate_bag_bytes(records)
        self.job.charge_driver(self.engine.cost.driver_seconds(nbytes))
        self.engine.metrics.driver_ship_bytes += nbytes
        return PartitionedBag.from_records(records, self.parallelism)

    def _exec_bag_ref(self, comb: CBagRef) -> PartitionedBag:
        from repro.engines.base import BagHandle, DeferredBag

        if comb.name not in self.env:
            raise EngineError(
                f"dataflow references unbound driver name {comb.name!r}"
            )
        value = self.env[comb.name]
        if isinstance(value, BagHandle):
            return self.engine._read_cached(value, self.job)
        if isinstance(value, DeferredBag):
            if value.is_forced:
                # A forced thunk is driver-local data; ship it back.
                return self.parallelize_local(value.force_local())
            # Lazy lineage: inline the recipe into this job (Spark/Flink
            # lazy-evaluation semantics — recomputed per *job*, but a
            # thunk consumed several times within one job runs once).
            deferred_memo = self._shared_state["deferred"]
            hit = deferred_memo.get(id(value))
            if hit is not None:
                self.engine.metrics.dag_memo_hits += 1
                return hit
            nested = JobExecutor(
                self.engine,
                value.env,
                self.job,
                shared_state=self._shared_state,
            )
            bag = nested.run_bag(value.root)
            deferred_memo[id(value)] = bag
            return bag
        if isinstance(value, DataBag):
            return self.parallelize_local(value.fetch())
        if isinstance(value, (list, tuple)):
            return self.parallelize_local(list(value))
        if isinstance(value, PartitionedBag):
            return value
        from repro.engines.stateful import DistributedStatefulBag

        if isinstance(value, DistributedStatefulBag):
            return value.bag()
        from repro.core.stateful import StatefulBag

        if isinstance(value, StatefulBag):
            return self.parallelize_local(value.bag().fetch())
        raise EngineError(
            f"driver name {comb.name!r} is not a bag "
            f"(found {type(value).__name__})"
        )

    # -- element-wise -----------------------------------------------------------

    def _exec_map(self, comb: CMap) -> PartitionedBag:
        source = self._exec(comb.input)
        if self._parallel:
            out = self._kernel_partitions(comb, source)
            self.engine.metrics.udf_invocations += source.count()
            return PartitionedBag(
                out, self._map_output_partitioner(comb, source)
            )
        fn, extra = self._compile_udf(comb.fn)
        out = []
        for i, p in enumerate(source.partitions):
            out.append([fn(x) for x in p])
            self._charge_cpu(i, len(p) * (1 + extra) + self._record_ops(p))
        self.engine.metrics.udf_invocations += source.count()
        return PartitionedBag(
            out, self._map_output_partitioner(comb, source)
        )

    def _map_output_partitioner(
        self, comb: CMap, source: PartitionedBag
    ) -> Partitioner | None:
        """The map output's partitioner, when the key provably survives.

        A map over a hash-partitioned bag keeps records in place, so if
        the map body carries the partition-key expression through to a
        field of its output — the common reshaping pattern ``x ->
        Record(x.key, ...)`` or ``x -> (x.key, ...)`` — the output is
        hash-partitioned on that field/position.  Matched structurally:
        one constructor argument of a plain dataclass call (no
        ``__post_init__``) or one tuple component must equal the
        partition-key body applied to the map's parameter.
        """
        if not self.engine.physical_planning:
            return None
        partitioner = source.partitioner
        if partitioner is None or len(partitioner.key.params) != 1:
            return None
        if len(comb.fn.params) != 1:
            return None
        key = partitioner.key
        param = comb.fn.params[0]
        key_body = key.body.substitute({key.params[0]: Ref(param)})
        body = comb.fn.body
        # Map each carried-through input expression to where it lands
        # in the output record, then re-express the key through it.
        mapping: dict[Any, Any] = {}
        if isinstance(body, Call) and isinstance(body.func, Ref):
            ctor = self.env.get(body.func.name)
            if not (
                isinstance(ctor, type)
                and dataclasses.is_dataclass(ctor)
                and not hasattr(ctor, "__post_init__")
            ):
                return None
            flds = dataclasses.fields(ctor)
            for pos, arg in enumerate(body.args):
                if pos < len(flds):
                    mapping[arg] = Attr(Ref("_r"), flds[pos].name)
            field_names = {f.name for f in flds}
            for kw_name, arg in body.kwargs:
                if kw_name in field_names:
                    mapping[arg] = Attr(Ref("_r"), kw_name)
        elif isinstance(body, TupleExpr):
            for pos, item in enumerate(body.items):
                mapping[item] = Index(Ref("_r"), Const(pos))
        else:
            return None

        def rewrite(expr):
            repl = mapping.get(expr)
            if repl is not None:
                return repl
            return expr.rebuild(rewrite)

        out_body = rewrite(key_body)
        if param in out_body.free_vars():
            # Some part of the key did not survive into the output.
            return None
        return Partitioner(
            ScalarFn(("_r",), out_body), source.num_partitions
        )

    def _exec_flat_map(self, comb: CFlatMap) -> PartitionedBag:
        source = self._exec(comb.input)
        if self._parallel:
            out = self._kernel_partitions(comb, source)
            self.engine.metrics.udf_invocations += source.count()
            return PartitionedBag(out)
        fn, extra = self._compile_udf(comb.fn)
        out = []
        for i, p in enumerate(source.partitions):
            rows: list[Any] = []
            for x in p:
                produced = fn(x)
                if isinstance(produced, DataBag):
                    rows.extend(produced.fetch())
                else:
                    rows.extend(produced)
            out.append(rows)
            self._charge_cpu(
                i,
                len(p) * (1 + extra)
                + len(rows)
                + self._record_ops(p),
            )
        self.engine.metrics.udf_invocations += source.count()
        return PartitionedBag(out)

    def _exec_filter(self, comb: CFilter) -> PartitionedBag:
        source = self._exec(comb.input)
        if self._parallel:
            out = self._kernel_partitions(comb, source)
            self.engine.metrics.udf_invocations += source.count()
            # Filtering preserves the partitioning of its input.
            return PartitionedBag(out, source.partitioner)
        fn, extra = self._compile_udf(comb.predicate)
        out = []
        for i, p in enumerate(source.partitions):
            out.append([x for x in p if fn(x)])
            self._charge_cpu(i, len(p) * (1 + extra) + self._record_ops(p))
        self.engine.metrics.udf_invocations += source.count()
        # Filtering preserves the partitioning of its input.
        return PartitionedBag(out, source.partitioner)

    # -- fused operator chains --------------------------------------------------

    _STEP_KINDS: dict[type, str] = {
        CMap: MAP,
        CFlatMap: FLATMAP,
        CFilter: FILTER,
    }

    def _kernel_step(self, op: Combinator) -> KernelStep:
        """One operator of a (possibly single-step) kernel."""
        udf = op.predicate if isinstance(op, CFilter) else op.fn
        compiled = self._udf_compilation(udf)
        return KernelStep(
            kind=self._STEP_KINDS[type(op)],
            closure=compiled.closure,
            extra=compiled.extra,
            params=compiled.fn.params,
            body=compiled.fn.body,
            bindings=compiled.bindings,
        )

    def _chain_kernel(self, comb: CChain) -> ChainKernel:
        """The compiled per-partition kernel for a chain (one per job)."""
        kernel = self._kernel_memo.get(id(comb))
        if kernel is None:
            kernel = build_chain_kernel(
                [self._kernel_step(op) for op in comb.ops]
            )
            self._kernel_memo[id(comb)] = kernel
        return kernel

    def _op_kernel(self, comb: Combinator) -> ChainKernel:
        """A single-step kernel for a narrow operator (parallel modes).

        Serial mode runs maps/filters/flat-maps as plain closure loops;
        the parallel backend wraps the single operator in the same
        generated-kernel machinery chains use, because that is what
        makes it shippable to worker processes as source.
        """
        kernel = self._kernel_memo.get(id(comb))
        if kernel is None:
            kernel = build_chain_kernel([self._kernel_step(comb)])
            self._kernel_memo[id(comb)] = kernel
        return kernel

    def _run_chain(
        self,
        kernel: ChainKernel,
        partition_index: int,
        partition: list[Any],
        emit: Callable[[Any], Any],
    ) -> tuple[list[int], int]:
        """Stream one partition through the kernel, charging exactly
        what the unfused operators would — minus the per-operator
        materialization: ``_record_ops`` is paid once per chain."""
        counts = kernel.run(partition, emit)
        return self._charge_kernel(
            kernel, partition_index, partition, counts
        )

    def _charge_kernel(
        self,
        kernel: ChainKernel,
        partition_index: int,
        partition: list[Any],
        counts: tuple,
    ) -> tuple[list[int], int]:
        """Charge one completed kernel task from its counters alone.

        Factored out of :meth:`_run_chain` so the parallel backend —
        which gets ``counts`` back from a worker instead of running the
        kernel inline — charges through the identical code path, in the
        identical partition order.
        """
        entered, emitted = kernel.entered_counts(len(partition), counts)
        ops = self._record_ops(partition)
        ci = 0
        for s, step in enumerate(kernel.steps):
            ops += entered[s] * (1 + step.extra)
            if step.kind == FLATMAP:
                ops += counts[ci]
            if step.counted:
                ci += 1
        self._charge_cpu(partition_index, ops)
        return entered, emitted

    def _charge_chain_overheads(self, kernel: ChainKernel) -> None:
        """Task accounting for one executed chain.

        A pipelining engine schedules the whole chain as one task wave
        (the single ``task_overhead`` charge already paid by ``_exec``);
        an engine without chaining still pays per operator.
        """
        n_ops = len(kernel.steps)
        self.engine.metrics.chained_operators += n_ops
        if self.engine.pipelined_chains:
            self.engine.metrics.tasks_saved += n_ops - 1
        else:
            self.job.charge_driver(
                self.engine.task_overhead
                * self.parallelism
                * (n_ops - 1)
            )

    # -- columnar batch execution -------------------------------------------

    def _columnar_active(self, comb: CChain) -> bool:
        """Whether this chain should attempt the columnar plane.

        Static selection (``comb.columnar``) comes from the optimizer;
        the engine knob gates it at runtime: ``off`` disables, ``on``
        forces the attempt even on the pure-Python column fallback, and
        ``auto`` vectorizes only where numpy makes it a clear win.
        """
        mode = self.engine.columnar_mode
        if not comb.columnar or mode == "off":
            return False
        return mode == "on" or HAS_NUMPY

    def _count_columnar_fallback(
        self, comb: Combinator, reason: str, category: str = "schema"
    ) -> None:
        """Count + trace one row-plane fallback with its reason.

        ``category`` breaks the aggregate counter down for
        ``summary()``: ``"udf"`` (key or chain UDF outside the
        vectorizable subset), ``"schema"`` (mixed or ragged record
        layout at batch-build time), ``"input"`` (records the schema
        sniffer cannot type at all).
        """
        metrics = self.engine.metrics
        metrics.columnar_fallbacks += 1
        if category == "udf":
            metrics.columnar_fallbacks_udf += 1
        elif category == "input":
            metrics.columnar_fallbacks_input += 1
        else:
            metrics.columnar_fallbacks_schema += 1
        tracer = self.engine.tracer
        if tracer is not None:
            tracer.event(
                "columnar fallback",
                ts=self.job.trace_ts(),
                chain=comb.describe(),
                reason=reason,
                category=category,
            )

    def _vector_kernel(
        self,
        comb: CChain,
        kernel: ChainKernel,
        sample: list[Any],
    ) -> VectorKernel | None:
        """The chain's compiled vector kernel, or ``None`` (once-counted
        fallback) when the observed record layout or a binding value is
        outside the vectorizable subset."""
        key = id(comb)
        if key in self._vkernel_memo:
            return self._vkernel_memo[key]
        vk: VectorKernel | None = None
        schema, reason = infer_schema(sample)
        if schema is None:
            self._count_columnar_fallback(comb, reason, "input")
        else:
            try:
                vk = build_vector_kernel(kernel.steps, schema)
            except NotVectorizable as exc:
                self._count_columnar_fallback(comb, str(exc), "udf")
            else:
                self.engine.metrics.columnar_kernels += 1
        self._vkernel_memo[key] = vk
        return vk

    def _trace_columnar_batches(
        self, comb: CChain, batches: list[ColumnBatch]
    ) -> None:
        """Per-column byte accounting for the batches of one chain."""
        tracer = self.engine.tracer
        if tracer is None or not batches:
            return
        per_column = [0] * len(batches[0].columns)
        rows = 0
        for b in batches:
            rows += b.nrows
            for j, n in enumerate(b.column_nbytes()):
                per_column[j] += n
        tracer.event(
            "columnar batches",
            ts=self.job.trace_ts(),
            chain=comb.describe(),
            batches=len(batches),
            rows=rows,
            column_bytes=per_column,
            total_bytes=sum(per_column),
        )

    def _partition_batches(
        self,
        comb: CChain,
        vk: VectorKernel,
        source: PartitionedBag,
    ) -> dict[int, ColumnBatch]:
        """Per-partition batches projected to one chain's needed columns."""
        return self._source_batches(comb, vk.schema, vk.needed, source)

    def _source_batches(
        self,
        comb: Combinator,
        schema: Any,
        needed: Any,
        source: PartitionedBag,
    ) -> dict[int, ColumnBatch]:
        """Per-partition batches for one operator, cached per source bag.

        An operator re-scanning the same at-rest
        :class:`PartitionedBag` (loop-invariant inputs, repeated
        queries over a parallelized bag) packs its columns only once:
        the engine keeps a weak per-bag cache keyed by schema signature
        and projection, stamped with the partition lists' identities
        and lengths so that any partition replacement — lineage
        recovery rebuilds the list object — invalidates the entry.
        Hits change nothing observable; ``columnar_batches_built``
        counts actual packing work, and per-partition fallbacks are
        counted when discovered.  Chains project to their needed
        columns; exchange operators pass ``needed=None`` for full-width
        batches so the far side can reconstruct complete records.
        """
        cache = self.engine._batch_cache
        stamp = (
            tuple(map(id, source.partitions)),
            tuple(map(len, source.partitions)),
        )
        key = (schema.signature(), needed)
        entry = cache.get(source)
        if entry is not None and entry[0] != stamp:
            entry = None
        if entry is not None:
            hit = entry[1].get(key)
            if hit is not None:
                return hit
        metrics = self.engine.metrics
        batches: dict[int, ColumnBatch] = {}
        traced: list[ColumnBatch] = []
        for i, p in enumerate(source.partitions):
            if not p:
                continue
            batch, reason = build_batch(p, schema, needed)
            if batch is None:
                self._count_columnar_fallback(
                    comb, f"partition {i}: {reason}", "schema"
                )
                continue
            metrics.columnar_batches_built += 1
            batches[i] = batch
            traced.append(batch)
        self._trace_columnar_batches(comb, traced)
        if entry is not None:
            entry[1][key] = batches
        else:
            cache[source] = (stamp, {key: batches})
        if batches and self.engine.spill.active:
            # Charge the at-rest batches against the driver budget; a
            # budget eviction simply drops the cache entry (batches are
            # re-packed on demand, a pure wall-clock cost).
            self.engine.spill.register_batches(
                source,
                sum(
                    sum(b.column_nbytes()) for b in batches.values()
                ),
            )
        return batches

    # -- columnar exchange plane -------------------------------------------

    def _exchange_active(self, comb: Combinator) -> bool:
        """Whether this exchange operator should attempt the columnar
        plane.

        Static selection (``comb.exchange == "columnar"``) comes from
        :func:`repro.optimizer.columnar_select.select_columnar`; the
        engine's ``columnar_exchange_mode`` knob gates it at runtime
        with the same semantics as the chain plane: ``off`` disables,
        ``on`` forces the attempt even on the pure-Python column
        fallback, ``auto`` engages only where numpy is available.
        """
        mode = self.engine.columnar_exchange_mode
        if mode == "off" or getattr(comb, "exchange", "") != "columnar":
            return False
        return mode == "on" or HAS_NUMPY

    def _key_step(self, compiled: _CompiledUdf) -> KernelStep:
        """A key UDF as a single MAP kernel step (IR + bindings)."""
        return KernelStep(
            MAP,
            compiled.closure,
            compiled.extra,
            params=compiled.fn.params,
            body=compiled.fn.body,
            bindings=compiled.bindings,
        )

    def _key_kernel(
        self, comb: Combinator, key_ir: ScalarFn, schema: Any
    ) -> VectorKernel | None:
        """The vector kernel evaluating ``key_ir`` over ``schema``
        columns, or ``None`` after a once-counted unsupported-UDF
        fallback (memoized per key + schema pair)."""
        memo_key = (id(key_ir), schema.signature())
        if memo_key in self._xkernel_memo:
            return self._xkernel_memo[memo_key]
        compiled = self._udf_compilation(key_ir)
        vk: VectorKernel | None = None
        try:
            vk = build_key_kernel(self._key_step(compiled), schema)
        except NotVectorizable as exc:
            self._count_columnar_fallback(comb, f"key: {exc}", "udf")
        self._xkernel_memo[memo_key] = vk
        return vk

    def _exchange_prep(
        self, comb: Combinator, key_ir: ScalarFn, bag: PartitionedBag
    ) -> tuple[VectorKernel, dict[int, ColumnBatch]] | None:
        """Key kernel + full-width batches for one exchange input.

        ``None`` means the whole input falls back to the row plane
        (untyped records or a key UDF outside the vectorizable subset,
        each counted once).  Batches are always full width — never
        projected to the key columns — so both driver and workers can
        reconstruct complete records from the same cached entry in
        every execution mode, keeping fallback and batch counters
        mode-invariant.
        """
        sample = next((p for p in bag.partitions if p), None)
        if sample is None:
            return None
        schema, reason = infer_schema(sample)
        if schema is None:
            self._count_columnar_fallback(comb, reason, "input")
            return None
        vk = self._key_kernel(comb, key_ir, schema)
        if vk is None:
            return None
        batches = self._source_batches(comb, schema, None, bag)
        if not batches:
            return None
        return vk, batches

    def _exec_chain_columnar(
        self, comb: CChain, kernel: ChainKernel, source: PartitionedBag
    ) -> PartitionedBag | None:
        """Run a chain batch-at-a-time; ``None`` defers to the row path.

        Results and all simulated accounting are bit-identical to the
        row kernel: the vector kernel returns the same counts tuple and
        is charged through the same :meth:`_charge_kernel`, in the same
        partition order (so fault schedules line up too).  Partitions
        whose records do not fit the inferred schema fall back to the
        row kernel individually, counted in ``columnar_fallbacks``.
        """
        sample = next((p for p in source.partitions if p), None)
        if sample is None:
            return None
        vk = self._vector_kernel(comb, kernel, sample)
        if vk is None:
            return None
        metrics = self.engine.metrics
        batches = self._partition_batches(comb, vk, source)
        total_invocations = 0
        out: list[list[Any]] = []
        out_batches: dict[int, ColumnBatch] = {}
        row_out = False
        if self._parallel:
            vspec = VectorKernelSpec(kernel.steps, vk.schema, prepared=vk)
            rspec = KernelSpec(kernel.steps, prepared=kernel)
            tasks = []
            for i, p in enumerate(source.partitions):
                batch = batches.get(i)
                if batch is not None:
                    tasks.append(
                        PartitionTask(i, vspec, batch, comb.label())
                    )
                else:
                    tasks.append(
                        PartitionTask(i, rspec, p, comb.label())
                    )
            results = self._run_stage(tasks)
            for i, (p, (payload, counts)) in enumerate(
                zip(source.partitions, results)
            ):
                if isinstance(payload, ColumnBatch):
                    rows = payload.to_records()
                    if rows:
                        out_batches[i] = payload
                else:
                    rows = payload
                    row_out = row_out or bool(rows)
                entered, _emitted = self._charge_kernel(
                    kernel, i, p, counts
                )
                out.append(rows)
                total_invocations += sum(entered)
        else:
            for i, p in enumerate(source.partitions):
                batch = batches.get(i)
                if batch is not None:
                    out_batch, counts = vk.run_batch(batch)
                    rows = out_batch.to_records()
                    if rows:
                        out_batches[i] = out_batch
                else:
                    rows = []
                    counts = kernel.run(p, rows.append)
                    row_out = row_out or bool(rows)
                entered, _emitted = self._charge_kernel(
                    kernel, i, p, counts
                )
                out.append(rows)
                total_invocations += sum(entered)
        metrics.udf_invocations += total_invocations
        result = PartitionedBag(
            out,
            source.partitioner
            if comb.preserves_partitioning()
            else None,
        )
        if out_batches and not row_out:
            # The chain's output is columnar-at-rest: keep it so.  A
            # row-kernel partition poisons the seed — a partial entry
            # would stop a later consumer from packing those rows.
            self._seed_batches(result, out_batches)
        return result

    def _exec_chain(self, comb: CChain) -> PartitionedBag:
        source = self._exec(comb.input)
        kernel = self._chain_kernel(comb)
        self._charge_chain_overheads(kernel)
        if self._columnar_active(comb):
            columnar = self._exec_chain_columnar(comb, kernel, source)
            if columnar is not None:
                return columnar
        total_invocations = 0
        out: list[list[Any]] = []
        if self._parallel:
            results = self._kernel_stage(
                kernel, source.partitions, comb.label()
            )
            for i, (p, (rows, counts)) in enumerate(
                zip(source.partitions, results)
            ):
                entered, _emitted = self._charge_kernel(
                    kernel, i, p, counts
                )
                out.append(rows)
                total_invocations += sum(entered)
            self.engine.metrics.udf_invocations += total_invocations
            return PartitionedBag(
                out,
                source.partitioner
                if comb.preserves_partitioning()
                else None,
            )
        for i, p in enumerate(source.partitions):
            rows: list[Any] = []
            entered, _emitted = self._run_chain(kernel, i, p, rows.append)
            out.append(rows)
            total_invocations += sum(entered)
        self.engine.metrics.udf_invocations += total_invocations
        partitioner = (
            source.partitioner if comb.preserves_partitioning() else None
        )
        return PartitionedBag(out, partitioner)

    # -- shuffles ---------------------------------------------------------------

    def _bucket_tasks(
        self,
        bag: PartitionedBag,
        key_ir: ScalarFn,
        n_parts: int,
        exchange: Combinator | None,
        label: str,
    ) -> list[PartitionTask]:
        """Bucket tasks for every partition, columnar where possible.

        With an active columnar exchange, partitions that packed into a
        :class:`ColumnBatch` ship as typed buffers and bucket
        batch-at-a-time on the worker; the rest (and everything, when
        ``exchange`` is ``None``) take the row spec.  Both specs
        reproduce ``stable_hash`` bucketing bit-identically, so mixing
        them within one stage is invisible to results.
        """
        compiled = self._udf_compilation(key_ir)
        key_ref = self._udf_ref(compiled)
        rspec = BucketSpec(key_ref, n_parts, prepared=compiled.closure)
        cspec = None
        batches: dict[int, ColumnBatch] = {}
        if exchange is not None:
            prep = self._exchange_prep(exchange, key_ir, bag)
            if prep is not None:
                vk, batches = prep
                cspec = ColumnarBucketSpec(
                    key_ref,
                    self._key_step(compiled),
                    vk.schema,
                    n_parts,
                    prepared=(vk, n_parts),
                )
        ship = self.engine.execution_mode == "processes"
        metrics = self.engine.metrics
        tasks = []
        for i, p in enumerate(bag.partitions):
            batch = batches.get(i) if cspec is not None else None
            if batch is not None:
                tasks.append(
                    PartitionTask(i, cspec, batch, label + "-columnar")
                )
                if ship:
                    metrics.columnar_blocks_shipped += 1
            else:
                tasks.append(PartitionTask(i, rspec, (p, n_parts), label))
        return tasks

    def _bucket_partitions(
        self,
        bag: PartitionedBag,
        key_ir: ScalarFn,
        n_parts: int,
        exchange: Combinator | None = None,
    ) -> list[list[list[Any]]]:
        """Hash-bucket every partition as parallel scheduler tasks.

        The per-record ``stable_hash`` is process-independent by
        construction, so worker processes bucket records exactly as the
        driver's serial loop would.
        """
        tasks = self._bucket_tasks(
            bag, key_ir, n_parts, exchange, "shuffle-bucket"
        )
        return self._run_stage(tasks)

    def shuffle_by_key(
        self,
        bag: PartitionedBag,
        key_ir: ScalarFn,
        prebucketed: list[list[list[Any]]] | None = None,
        exchange: Combinator | None = None,
    ) -> PartitionedBag:
        """Hash-repartition ``bag`` on ``key_ir`` (no-op if already so).

        ``prebucketed`` carries per-partition bucket lists computed
        ahead of time (the overlapped join-side scan of
        :meth:`_prebucket_pair`); merging them in input-partition order
        reproduces the serial shuffle's record order exactly.

        ``exchange`` is the shuffle-inducing combinator when the
        optimizer selected its columnar exchange plane: keys are then
        evaluated as a column and records scattered batch-at-a-time,
        with :func:`~repro.engines.columnar.bucket_indices` holding the
        bucket assignment bit-identical to ``hash_partition_index``.
        Bucket lists may therefore contain per-destination
        :class:`ColumnBatch` slices; the merge unpacks them in the same
        source order, so record order, every ``_charge_cpu`` call, and
        all byte accounting stay exactly the row plane's.
        """
        tracer = self.engine.tracer
        if bag.partitioner is not None and bag.partitioner.matches(
            key_ir, bag.num_partitions
        ):
            self.engine.metrics.shuffles_elided += 1
            if tracer is not None:
                tracer.event(
                    "shuffle-elided",
                    ts=self.job.trace_ts(),
                    key=key_ir.describe(),
                )
            return bag
        span = None
        if tracer is not None:
            span = tracer.begin(
                "Shuffle",
                "stage",
                ts=self.job.trace_ts(),
                key=key_ir.describe(),
            )
        key_fn, extra = self._compile_udf(key_ir)
        n_parts = self.parallelism
        exchange_on = exchange is not None and self._exchange_active(
            exchange
        )
        buckets = prebucketed
        col_buckets: dict[int, list[ColumnBatch]] | None = None
        if buckets is None and self._parallel:
            buckets = self._bucket_partitions(
                bag, key_ir, n_parts, exchange if exchange_on else None
            )
        elif buckets is None and exchange_on:
            prep = self._exchange_prep(exchange, key_ir, bag)
            if prep is not None:
                vk, batches = prep
                col_buckets = {}
                for i, batch in batches.items():
                    keys = vk.run_batch(batch)[0].columns[0]
                    col_buckets[i] = scatter_batch(
                        batch, bucket_indices(keys, n_parts), n_parts
                    )
        new_partitions: list[list[Any]] = [[] for _ in range(n_parts)]
        total_moved = 0
        columnar_parts = 0
        row_contrib = False
        dest_blocks: list[list[ColumnBatch]] = [
            [] for _ in range(n_parts)
        ]
        trace_blocks: list[ColumnBatch] = []
        sh = stable_hash
        for i, p in enumerate(bag.partitions):
            if not p:
                continue
            part_bytes = estimate_bag_bytes(p)
            bucketed = None if buckets is None else buckets[i]
            if bucketed is None and col_buckets is not None:
                bucketed = col_buckets.get(i)
            if bucketed is None:
                row_contrib = True
                keys = [key_fn(record) for record in p]
                for record, k in zip(p, keys):
                    new_partitions[sh(k) % n_parts].append(record)
            elif bucketed and isinstance(bucketed[0], ColumnBatch):
                columnar_parts += 1
                for idx, sub in enumerate(bucketed):
                    if sub.nrows:
                        new_partitions[idx].extend(sub.to_records())
                        dest_blocks[idx].append(sub)
                if tracer is not None:
                    trace_blocks.extend(bucketed)
            else:
                row_contrib = True
                for idx, records in enumerate(bucketed):
                    new_partitions[idx].extend(records)
            self._charge_cpu(i, len(p) * (1 + extra))
            # Send side: assume an even spread of destinations.
            locality = (self.num_workers - 1) / max(self.num_workers, 1)
            sent = part_bytes * locality
            total_moved += int(sent)
            seconds = self.engine.cost.network_seconds(sent)
            if self.engine.shuffle_via_disk:
                seconds += self.engine.cost.disk_seconds(part_bytes)
            self.job.charge_worker(self._worker_of(i), seconds)
        # Receive side: charged exactly from the skew of new partitions.
        locality = (self.num_workers - 1) / max(self.num_workers, 1)
        for j, p in enumerate(new_partitions):
            if not p:
                continue
            recv = estimate_bag_bytes(p) * locality
            seconds = self.engine.cost.network_seconds(recv)
            if self.engine.shuffle_via_disk:
                seconds += self.engine.cost.disk_seconds(recv)
            self.job.charge_worker(self._worker_of(j), seconds)
        self.engine.metrics.shuffle_bytes += total_moved
        self.engine.metrics.records_shuffled += bag.count()
        if columnar_parts:
            self.engine.metrics.columnar_shuffles += 1
            if tracer is not None:
                tracer.event(
                    "columnar shuffle blocks",
                    ts=self.job.trace_ts(),
                    key=key_ir.describe(),
                    partitions=columnar_parts,
                    blocks=len(trace_blocks),
                    block_bytes=estimate_blocks_bytes(trace_blocks),
                )
        self.job.add_stage()
        if span is not None:
            tracer.end(
                span,
                end_ts=self.job.trace_ts(),
                shuffle_bytes=total_moved,
                records=bag.count(),
                columnar_parts=columnar_parts,
            )
        result = PartitionedBag(
            new_partitions, Partitioner(key_ir, n_parts)
        )
        if columnar_parts and not row_contrib:
            self._seed_shuffled_batches(result, dest_blocks)
        return result

    def _seed_shuffled_batches(
        self,
        bag: PartitionedBag,
        dest_blocks: list[list[ColumnBatch]],
    ) -> None:
        """Keep an all-columnar shuffle's output columnar-at-rest.

        Each destination's scatter sub-batches concatenate (in the
        same source order the row merge used, so ``to_records`` of the
        cached batch is exactly the partition's record list) into a
        pre-seeded entry of the per-bag batch cache; a downstream
        exchange operator over the shuffled bag then hits the cache
        instead of re-packing columns from rows.  Driver-side in every
        execution mode, so batch and fallback counters stay
        mode-invariant; a budget eviction just drops the entry again.
        """
        self._seed_batches(
            bag,
            {
                j: concat_batches(blocks)
                for j, blocks in enumerate(dest_blocks)
                if blocks
            },
        )

    def _seed_batches(
        self, bag: PartitionedBag, batches: dict[int, ColumnBatch]
    ) -> None:
        """Pre-seed ``bag``'s at-rest batch cache with known batches.

        The entry is stored under the full-width key exchange
        operators look up, so a consumer hits it instead of re-packing
        columns from rows.  Purely a wall-clock shortcut: a budget
        eviction (or any partition replacement, via the stamp) drops
        the entry and the consumer re-packs on demand.
        """
        if not batches:
            return
        batches = {
            i: normalize_batch(b) for i, b in batches.items()
        }
        schema = next(iter(batches.values())).schema
        stamp = (
            tuple(map(id, bag.partitions)),
            tuple(map(len, bag.partitions)),
        )
        self.engine._batch_cache[bag] = (
            stamp,
            {(schema.signature(), None): batches},
        )
        if self.engine.spill.active:
            self.engine.spill.register_batches(
                bag,
                sum(
                    sum(b.column_nbytes()) for b in batches.values()
                ),
            )

    # -- broadcast ----------------------------------------------------------------

    def broadcast_value(self, value: Any) -> DataBag:
        """Make a driver/bag value available on all workers as a DataBag."""
        from repro.engines.base import BagHandle, DeferredBag

        memo_key = id(value)
        if memo_key in self._broadcast_memo:
            return self._broadcast_memo[memo_key]
        if isinstance(value, DeferredBag):
            records = value.force_local()
        elif isinstance(value, BagHandle):
            records = self.engine.collect(value)
        elif isinstance(value, DataBag):
            records = value.fetch()
        elif isinstance(value, (list, tuple)):
            records = list(value)
        else:
            raise EngineError(
                f"cannot broadcast a {type(value).__name__}"
            )
        nbytes = estimate_bag_bytes(records)
        factor = self.engine.broadcast_factor
        tracer = self.engine.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                "Broadcast", "stage", ts=self.job.trace_ts()
            )
        per_worker = self.engine.cost.network_seconds(nbytes * factor)
        self.job.charge_all_workers(per_worker)
        self.engine.metrics.broadcast_bytes += int(
            nbytes * self.num_workers * factor
        )
        self.engine.metrics.records_broadcast += (
            len(records) * self.num_workers
        )
        self.job.add_stage()
        if span is not None:
            tracer.end(
                span,
                end_ts=self.job.trace_ts(),
                broadcast_bytes=int(nbytes * self.num_workers * factor),
                records=len(records),
            )
        local = DataBag(records)
        self._broadcast_memo[memo_key] = local
        return local

    # -- UDF compilation -------------------------------------------------------------

    def _compile_udf(self, fn: ScalarFn) -> tuple[Callable, int]:
        """Close a UDF over the driver env; broadcast free bag values.

        Returns the callable plus the *extra per-element op weight*: a
        UDF that scans a broadcast bag per element (the paper's
        nearest-centroid or blacklist-scan patterns) costs ``1 + |bag|``
        ops per invocation.
        """
        compiled = self._udf_compilation(fn)
        return compiled.closure, compiled.extra

    def _udf_compilation(self, fn: ScalarFn) -> _CompiledUdf:
        """Memoized (by UDF identity, per job) closure compilation.

        The same ``ScalarFn`` object commonly appears in several
        operators of one job (chained steps, a join key reused by a
        partitioner probe); resolving its bindings and compiling it once
        also means its broadcasts are counted once.
        """
        cached = self._udf_memo.get(id(fn))
        if cached is not None and cached[0] is fn:
            return cached[1]
        hoisted_fn, hoisted = self._hoist_closed_bags(fn)
        bindings, extra = self._udf_bindings(
            hoisted_fn.free_names() - frozenset(hoisted)
        )
        for name, local in hoisted.items():
            bindings[name] = local
            extra += len(local)
        closure, native = hoisted_fn.compile_native(bindings)
        if native:
            self.engine.metrics.udfs_compiled += 1
        compiled = _CompiledUdf(hoisted_fn, bindings, closure, extra, native)
        self._udf_memo[id(fn)] = (fn, compiled)
        return compiled

    def _hoist_closed_bags(
        self, fn: ScalarFn
    ) -> tuple[ScalarFn, dict[str, DataBag]]:
        """Hoist closed bag subexpressions out of a UDF body.

        Inlining can push whole dataflow expressions (e.g. a ``read``)
        into UDF bodies that stay scalar when an optimization is
        disabled.  Evaluating them per element would be both wrong in
        cost and pathological in time, so each maximal bag-typed
        subexpression with no dependence on the UDF parameters is
        executed once as a nested dataflow and *broadcast* — the
        transparent driver-to-UDF data motion of Section 4.3.2.
        """
        from repro.comprehension.exprs import Expr, Lambda, Ref, walk
        from repro.comprehension.ir import Comprehension
        from repro.comprehension.normalize import normalize
        from repro.comprehension.resugar import resugar
        from repro.lowering.rules import lower

        # Names bound anywhere inside the body (lambda parameters,
        # generator variables): a subexpression referencing any of them
        # is not closed, no matter where it sits.
        locally_bound = set(fn.params)
        for node in walk(fn.body):
            if isinstance(node, Lambda):
                locally_bound.update(node.params)
            if isinstance(node, Comprehension):
                locally_bound.update(
                    g.var for g in node.generators()
                )
        hoisted_nodes: dict[str, Expr] = {}

        def visit(node: Expr) -> Expr:
            is_bag = node.is_bag_typed() or (
                isinstance(node, Comprehension) and not node.is_fold()
            )
            if (
                is_bag
                and not isinstance(node, Ref)
                and not (node.free_vars() & locally_bound)
                and all(name in self.env for name in node.free_vars())
            ):
                name = f"__hoisted_{len(hoisted_nodes)}"
                hoisted_nodes[name] = node
                return Ref(name)
            return node.rebuild(visit)

        body = visit(fn.body)
        if not hoisted_nodes:
            return fn, {}
        values: dict[str, DataBag] = {}
        for name, node in hoisted_nodes.items():
            plan = lower(normalize(resugar(node)))
            nested = JobExecutor(
                self.engine,
                self.env,
                self.job,
                shared_state=self._shared_state,
            )
            bag = nested.run_bag(plan)
            values[name] = self.broadcast_value(bag.collect())
        return ScalarFn(fn.params, body), values

    def _udf_bindings(
        self, names: frozenset[str]
    ) -> tuple[dict[str, Any], int]:
        from repro.engines.base import BagHandle, DeferredBag

        cached = self._bindings_memo.get(names)
        if cached is not None:
            # Callers extend the dict with hoisted values; hand out a copy.
            return dict(cached[0]), cached[1]
        bindings: dict[str, Any] = {}
        extra = 0
        for name in sorted(names):
            if name not in self.env:
                raise EngineError(
                    f"UDF references unbound driver name {name!r}"
                )
            value = self.env[name]
            if isinstance(
                value, (DeferredBag, BagHandle, DataBag)
            ):
                local = self.broadcast_value(value)
                bindings[name] = local
                extra += len(local)
            else:
                bindings[name] = value
        self._bindings_memo[names] = (dict(bindings), extra)
        return bindings, extra

    def _record_ops(self, partition: list[Any]) -> float:
        """Byte-proportional processing cost for record-wise UDFs."""
        if not partition:
            return 0.0
        return estimate_bag_bytes(partition) / self.engine.cost.cpu_bytes_per_op

    def _charge_cpu(self, partition_index: int, ops: float) -> None:
        worker = self._worker_of(partition_index)
        seconds = self.engine.cost.cpu_seconds(ops)
        self.job.charge_worker(worker, seconds)
        self.engine.metrics.element_ops += int(ops)
        # Every per-partition charge is one task attempt completing —
        # the natural boundary at which the simulated scheduler would
        # observe a crash, a lost heartbeat, or a straggler.
        faults = self.engine.faults
        if faults is not None and faults.active:
            faults.on_task(
                self.engine, self.job, partition_index, worker, seconds
            )

    # -- hoisted shuffles --------------------------------------------------------------

    def _hoist_key(self, child: Combinator, key_ir: ScalarFn) -> tuple | None:
        """Cache key for a loop-invariant shuffled input, or ``None``.

        Only inputs the physical-properties pass marked ``hoistable``
        qualify, and only while every invariant leaf still resolves to
        the *same* cached bag handle — rebinding a name to a new handle
        (a re-cache) naturally invalidates the entry via ``id()``.
        """
        if not self.engine.physical_planning:
            return None
        props = child.phys
        if props is None or props.motion != "hoistable":
            return None
        from repro.engines.base import BagHandle

        ref_ids = []
        for name in props.invariant_refs:
            value = self.env.get(name)
            if not isinstance(value, BagHandle):
                return None
            ref_ids.append(id(value))
        return (
            child.node_id,
            key_ir.canonical().body,
            self.parallelism,
            tuple(ref_ids),
        )

    def _resolve_side(
        self, child: Combinator, key_ir: ScalarFn
    ) -> tuple[PartitionedBag, bool]:
        """Execute a shuffle-feeding input, serving hoisted hits.

        Returns ``(bag, hoisted)``; when ``hoisted`` the bag is already
        shuffled on ``key_ir`` and the whole subtree was skipped.
        """
        hkey = self._hoist_key(child, key_ir)
        if hkey is not None:
            hit = self.engine._hoist_cache.get(hkey)
            if hit is not None:
                # A budget eviction may have left a spill-file stub in
                # the cache slot; reload it first (host mechanics only)
                # so the hit accounting below is identical either way.
                hit = self.engine.spill.resolve_hoist(hkey, hit)
                self.engine.metrics.shuffles_hoisted += 1
                self.engine.metrics.cache_read_bytes += hit.nbytes()
                tracer = self.engine.tracer
                if tracer is not None:
                    tracer.event(
                        "shuffle-hoisted",
                        ts=self.job.trace_ts(),
                        key=key_ir.describe(),
                    )
                return hit, True
        return self._exec(child), False

    def _prebucket_pair(
        self,
        left: PartitionedBag,
        kx: ScalarFn,
        right: PartitionedBag,
        ky: ScalarFn,
        exchange: Combinator | None = None,
    ) -> tuple[list | None, list | None]:
        """Overlap both repartition-join bucket scans in one task graph.

        When *both* join sides genuinely need motion — i.e. the
        physical planner left them ``required`` rather than elidable or
        hoistable — their bucket stages have no dependency on each
        other, so the scheduler runs the two fan-outs with all tasks in
        flight simultaneously.  Aligned sides return ``None`` (their
        shuffle elides inside :meth:`shuffle_by_key`).
        """
        if not (
            self._parallel
            and not self._aligned(left, kx)
            and not self._aligned(right, ky)
        ):
            return None, None
        n_parts = self.parallelism
        ltasks = self._bucket_tasks(
            left, kx, n_parts, exchange, "bucket-left"
        )
        rtasks = self._bucket_tasks(
            right, ky, n_parts, exchange, "bucket-right"
        )
        scheduler = self.engine.scheduler
        results = scheduler.run_graph(
            [
                TaskStage("left", lambda _r, _t=ltasks: _t),
                TaskStage("right", lambda _r, _t=rtasks: _t),
            ],
            metrics=self.engine.metrics,
        )
        self._drain_scheduler_events(scheduler)
        return results["left"], results["right"]

    def _shuffled_side(
        self,
        child: Combinator,
        bag: PartitionedBag,
        key_ir: ScalarFn,
        prebucketed: list | None = None,
        exchange: Combinator | None = None,
    ) -> PartitionedBag:
        """Shuffle a join/group input; store it when loop-invariant."""
        shuffled = self.shuffle_by_key(bag, key_ir, prebucketed, exchange)
        hkey = self._hoist_key(child, key_ir)
        if hkey is not None and hkey not in self.engine._hoist_cache:
            # Memory-resident, like the memory cache tier: one local
            # pass to lay the partitions down, counted as cache traffic.
            self.job.charge_spread(
                self.engine.cost.cpu_seconds(shuffled.count())
            )
            nbytes = shuffled.nbytes()
            self.engine.metrics.cache_write_bytes += nbytes
            self.engine._hoist_cache[hkey] = shuffled
            self.engine.spill.register_hoist(hkey, nbytes)
        return shuffled

    def _shuffled_input(
        self,
        child: Combinator,
        key_ir: ScalarFn,
        exchange: Combinator | None = None,
    ) -> PartitionedBag:
        """Execute *and* shuffle an input, hoist-cache aware."""
        bag, hoisted = self._resolve_side(child, key_ir)
        if hoisted:
            return bag
        return self._shuffled_side(child, bag, key_ir, exchange=exchange)

    # -- join strategy -----------------------------------------------------------------

    def _aligned(self, bag: PartitionedBag, key_ir: ScalarFn) -> bool:
        return bag.partitioner is not None and bag.partitioner.matches(
            key_ir, bag.num_partitions
        )

    def _motion_free(
        self,
        child: Combinator,
        bag: PartitionedBag,
        key_ir: ScalarFn,
        hoisted: bool,
    ) -> bool:
        """Whether repartitioning this side is (amortized) free.

        Free when the side was served from the hoist cache, already
        carries the required layout, or is loop-invariant (its one-time
        shuffle amortizes to nothing over the iterations).
        """
        return (
            hoisted
            or self._aligned(bag, key_ir)
            or self._hoist_key(child, key_ir) is not None
        )

    def _choose_broadcast(
        self, build_bytes: int, moved_bytes: int
    ) -> bool:
        """Cost-based choice, bounded by the broadcast threshold.

        The threshold stays a hard allowance (build sides above it never
        broadcast — they would not fit the simulated workers' memory
        budget); within the allowance the cost model compares shipping
        the build side everywhere against moving the unaligned bytes.
        """
        if build_bytes > self.engine.broadcast_join_threshold:
            return False
        cost = self.engine.cost
        return cost.broadcast_join_seconds(
            build_bytes, self.engine.broadcast_factor
        ) < cost.repartition_join_seconds(moved_bytes, self.num_workers)

    def _adaptive_choice(
        self,
        comb: Combinator,
        build_bytes: int,
        moved_bytes: int,
        left: PartitionedBag,
        right: PartitionedBag,
        lbytes: int,
        rbytes: int,
    ) -> bool:
        """Pick broadcast vs repartition for a planner-annotated join.

        The plan-time strategy is refined by the per-run statistics
        cache: the site's previously *observed* choice is the planned
        strategy on later executions, and a divergence (sizes drifted
        across iterations) is surfaced as an ``adaptive_switches`` tick.
        Returns True for broadcast.
        """
        stats = self.engine.stats
        phys = comb.phys
        if phys is not None and phys.strategy == "repartition":
            # Static repartition: some side's motion is free (elidable
            # or hoisted), so the shuffle is already (amortized) paid.
            actual = "repartition"
        else:
            actual = (
                "broadcast"
                if self._choose_broadcast(build_bytes, moved_bytes)
                else "repartition"
            )
        planned = stats.planned_strategy(comb.node_id)
        if planned is None and phys is not None:
            planned = phys.strategy
        if planned not in (None, "cost") and planned != actual:
            self.engine.metrics.adaptive_switches += 1
            tracer = self.engine.tracer
            if tracer is not None:
                tracer.event(
                    "adaptive-switch",
                    ts=self.job.trace_ts(),
                    planned=planned,
                    actual=actual,
                )
        stats.observe_join(
            comb.node_id,
            JoinObservation(
                left_rows=left.count(),
                left_bytes=lbytes,
                right_rows=right.count(),
                right_bytes=rbytes,
                moved_bytes=moved_bytes,
                strategy=actual,
            ),
        )
        return actual == "broadcast"

    def _pair_partitioner(
        self, partitioner: Partitioner | None, pos: int
    ) -> Partitioner | None:
        """A join input's partitioner lifted over the output pairs.

        Join outputs are ``(left, right)`` tuples built in place, so a
        hash partitioning of the surviving side carries over with its
        key re-rooted at the pair element.
        """
        if partitioner is None or len(partitioner.key.params) != 1:
            return None
        key = partitioner.key
        body = key.body.substitute(
            {key.params[0]: Index(Ref("_j"), Const(pos))}
        )
        return Partitioner(
            ScalarFn(("_j",), body), partitioner.num_partitions
        )

    # -- joins -------------------------------------------------------------------------

    def _exec_eq_join(self, comb: CEqJoin) -> PartitionedBag:
        left, lhoisted = self._resolve_side(comb.left, comb.kx)
        right, rhoisted = self._resolve_side(comb.right, comb.ky)
        cx = self._udf_compilation(comb.kx)
        cy = self._udf_compilation(comb.ky)
        kx, ky = cx.closure, cy.closure
        lbytes, rbytes = left.nbytes(), right.nbytes()
        planned = (
            comb.phys is not None and self.engine.physical_planning
        )
        if planned:
            lmoved = 0 if self._motion_free(comb.left, left, comb.kx, lhoisted) else lbytes
            rmoved = 0 if self._motion_free(comb.right, right, comb.ky, rhoisted) else rbytes
            broadcast = self._adaptive_choice(
                comb,
                min(lbytes, rbytes),
                lmoved + rmoved,
                left,
                right,
                lbytes,
                rbytes,
            )
        else:
            broadcast = (
                min(lbytes, rbytes)
                <= self.engine.broadcast_join_threshold
            )
        if broadcast:
            # Broadcast join: ship the small side everywhere.
            self.engine.metrics.broadcast_joins += 1
            if rbytes <= lbytes:
                small, big = right, left
                cs, cb = cy, cx
                small_first = False
            else:
                small, big = left, right
                cs, cb = cx, cy
                small_first = True
            ks, kb = cs.closure, cb.closure
            table: dict[Any, list[Any]] = {}
            small_records = small.collect()
            self.broadcast_value(small_records)
            for r in small_records:
                table.setdefault(ks(r), []).append(r)
            self.job.charge_all_workers(
                self.engine.cost.cpu_seconds(len(small_records))
            )
            out: list[list[Any]] = []
            if self._parallel:
                spec = BroadcastProbeSpec(
                    small_records,
                    self._udf_ref(cs),
                    self._udf_ref(cb),
                    small_first,
                    prepared=(table, kb, small_first),
                )
                tasks = [
                    PartitionTask(i, spec, p, "broadcast-join")
                    for i, p in enumerate(big.partitions)
                ]
                for i, (p, rows) in enumerate(
                    zip(big.partitions, self._run_stage(tasks))
                ):
                    out.append(rows)
                    self._charge_cpu(i, len(p) + len(rows))
            else:
                for i, p in enumerate(big.partitions):
                    rows: list[Any] = []
                    for x in p:
                        for m in table.get(kb(x), ()):
                            rows.append(
                                (m, x) if small_first else (x, m)
                            )
                    out.append(rows)
                    self._charge_cpu(i, len(p) + len(rows))
            return PartitionedBag(
                out,
                self._pair_partitioner(
                    big.partitioner, 1 if small_first else 0
                ),
            )
        # Repartition join.
        self.engine.metrics.repartition_joins += 1
        exchange = comb if self._exchange_active(comb) else None
        lpre = rpre = None
        if not lhoisted and not rhoisted:
            lpre, rpre = self._prebucket_pair(
                left, comb.kx, right, comb.ky, exchange
            )
        if not lhoisted:
            left = self._shuffled_side(
                comb.left, left, comb.kx, lpre, exchange
            )
        if not rhoisted:
            right = self._shuffled_side(
                comb.right, right, comb.ky, rpre, exchange
            )
        # Columnar probe: both sides' keys evaluate as columns over
        # the shuffled partitions' batches; partitions that fail to
        # batch probe row-at-a-time inside the same task, so output
        # pair order and every charge match the row probe exactly.
        lprep = rprep = None
        if exchange is not None:
            lprep = self._exchange_prep(comb, comb.kx, left)
            rprep = self._exchange_prep(comb, comb.ky, right)
        engaged = lprep is not None and rprep is not None
        if engaged:
            self.engine.metrics.columnar_joins += 1
        out = []
        if self._parallel:
            if engaged:
                lvk, lbatches = lprep
                rvk, rbatches = rprep
                spec = ColumnarJoinProbeSpec(
                    self._udf_ref(cx),
                    self._udf_ref(cy),
                    self._key_step(cx),
                    lvk.schema,
                    self._key_step(cy),
                    rvk.schema,
                    prepared=(kx, ky, lvk, rvk),
                )
                ship = self.engine.execution_mode == "processes"
                metrics = self.engine.metrics
                tasks = []
                for i, (lp, rp) in enumerate(
                    zip(left.partitions, right.partitions)
                ):
                    ldata = lbatches.get(i, lp)
                    rdata = rbatches.get(i, rp)
                    if ship:
                        metrics.columnar_blocks_shipped += isinstance(
                            ldata, ColumnBatch
                        ) + isinstance(rdata, ColumnBatch)
                    tasks.append(
                        PartitionTask(
                            i, spec, (ldata, rdata), "join-probe-columnar"
                        )
                    )
            else:
                spec = JoinProbeSpec(
                    self._udf_ref(cx),
                    self._udf_ref(cy),
                    prepared=(kx, ky),
                )
                tasks = [
                    PartitionTask(i, spec, (lp, rp), "join-probe")
                    for i, (lp, rp) in enumerate(
                        zip(left.partitions, right.partitions)
                    )
                ]
            for i, ((lp, rp), rows) in enumerate(
                zip(
                    zip(left.partitions, right.partitions),
                    self._run_stage(tasks),
                )
            ):
                out.append(rows)
                self._charge_cpu(i, len(lp) + len(rp) + len(rows))
            return PartitionedBag(
                out, self._pair_partitioner(left.partitioner, 0)
            )
        if engaged:
            lvk, lbatches = lprep
            rvk, rbatches = rprep
        for i, (lp, rp) in enumerate(
            zip(left.partitions, right.partitions)
        ):
            if engaged:
                rbatch = rbatches.get(i)
                lbatch = lbatches.get(i)
                rkeys = (
                    rvk.run_batch(rbatch)[0].columns[0]
                    if rbatch is not None
                    else [ky(r) for r in rp]
                )
                lkeys = (
                    lvk.run_batch(lbatch)[0].columns[0]
                    if lbatch is not None
                    else [kx(x) for x in lp]
                )
                rows = probe_join(lp, lkeys, rp, rkeys)
            else:
                rkeys = [ky(r) for r in rp]
                lkeys = [kx(x) for x in lp]
                table = {}
                for r, k in zip(rp, rkeys):
                    table.setdefault(k, []).append(r)
                rows = []
                for x, k in zip(lp, lkeys):
                    for m in table.get(k, ()):
                        rows.append((x, m))
            out.append(rows)
            self._charge_cpu(i, len(lp) + len(rp) + len(rows))
        return PartitionedBag(
            out, self._pair_partitioner(left.partitioner, 0)
        )

    def _exec_semi_join(self, comb: CSemiJoin) -> PartitionedBag:
        left, lhoisted = self._resolve_side(comb.left, comb.kx)
        right, rhoisted = self._resolve_side(comb.right, comb.ky)
        cx = self._udf_compilation(comb.kx)
        cy = self._udf_compilation(comb.ky)
        kx, ky = cx.closure, cy.closure
        lbytes, rbytes = left.nbytes(), right.nbytes()
        planned = (
            comb.phys is not None and self.engine.physical_planning
        )
        if planned:
            # The right side's key set is the build side.
            lmoved = 0 if self._motion_free(comb.left, left, comb.kx, lhoisted) else lbytes
            rmoved = 0 if self._motion_free(comb.right, right, comb.ky, rhoisted) else rbytes
            broadcast = self._adaptive_choice(
                comb, rbytes, lmoved + rmoved, left, right, lbytes, rbytes
            )
        else:
            broadcast = rbytes <= self.engine.broadcast_join_threshold
        if broadcast:
            self.engine.metrics.broadcast_joins += 1
            # Broadcast strategy: ship the (small) right side's key set;
            # the left side never moves and keeps its partitioning.
            keys = {ky(r) for r in right.records()}
            self.broadcast_value(list(keys))
            for i, p in enumerate(right.partitions):
                self._charge_cpu(i, len(p))
            out: list[list[Any]] = []
            if self._parallel:
                spec = BroadcastSemiSpec(
                    list(keys),
                    self._udf_ref(cx),
                    comb.anti,
                    prepared=(keys, kx, comb.anti),
                )
                tasks = [
                    PartitionTask(i, spec, p, "broadcast-semi")
                    for i, p in enumerate(left.partitions)
                ]
                for i, (p, rows) in enumerate(
                    zip(left.partitions, self._run_stage(tasks))
                ):
                    out.append(rows)
                    self._charge_cpu(i, len(p))
                return PartitionedBag(out, left.partitioner)
            for i, p in enumerate(left.partitions):
                if comb.anti:
                    rows = [x for x in p if kx(x) not in keys]
                else:
                    rows = [x for x in p if kx(x) in keys]
                out.append(rows)
                self._charge_cpu(i, len(p))
            return PartitionedBag(out, left.partitioner)
        self.engine.metrics.repartition_joins += 1
        # Repartition strategy: both sides shuffle *full records* on the
        # key (the target engines of the paper had no key-projected
        # semi-join — the unnested existential runs as a repartition
        # join whose probe side is deduplicated per key).  A side that
        # already carries the matching partitioning is not moved, which
        # is what partition pulling exploits.
        exchange = comb if self._exchange_active(comb) else None
        lpre = rpre = None
        if not lhoisted and not rhoisted:
            lpre, rpre = self._prebucket_pair(
                left, comb.kx, right, comb.ky, exchange
            )
        if not lhoisted:
            left = self._shuffled_side(
                comb.left, left, comb.kx, lpre, exchange
            )
        if not rhoisted:
            right = self._shuffled_side(
                comb.right, right, comb.ky, rpre, exchange
            )
        out = []
        if self._parallel:
            spec = SemiProbeSpec(
                self._udf_ref(cx),
                self._udf_ref(cy),
                comb.anti,
                prepared=(kx, ky, comb.anti),
            )
            tasks = [
                PartitionTask(i, spec, (lp, rp), "semi-probe")
                for i, (lp, rp) in enumerate(
                    zip(left.partitions, right.partitions)
                )
            ]
            for i, ((lp, rp), rows) in enumerate(
                zip(
                    zip(left.partitions, right.partitions),
                    self._run_stage(tasks),
                )
            ):
                out.append(rows)
                self._charge_cpu(i, len(lp) + len(rp))
            return PartitionedBag(out, left.partitioner)
        for i, (lp, rp) in enumerate(
            zip(left.partitions, right.partitions)
        ):
            keys = {ky(r) for r in rp}
            if comb.anti:
                rows = [x for x in lp if kx(x) not in keys]
            else:
                rows = [x for x in lp if kx(x) in keys]
            out.append(rows)
            self._charge_cpu(i, len(lp) + len(rp))
        return PartitionedBag(out, left.partitioner)

    def _exec_cross(self, comb: CCross) -> PartitionedBag:
        left = self._exec(comb.left)
        right = self._exec(comb.right)
        # Broadcast the smaller side.
        if right.nbytes() <= left.nbytes():
            small_records = right.collect()
            big, small_on_right = left, True
        else:
            small_records = left.collect()
            big, small_on_right = right, False
        self.broadcast_value(small_records)
        out: list[list[Any]] = []
        for i, p in enumerate(big.partitions):
            if small_on_right:
                rows = [(x, y) for x in p for y in small_records]
            else:
                rows = [(y, x) for x in p for y in small_records]
            out.append(rows)
            # The nested loop touches every (row, small-record) pair
            # once and scans the partition once.
            self._charge_cpu(i, len(p) + len(rows))
        return PartitionedBag(out)

    # -- grouping / aggregation ------------------------------------------------------

    def _exec_group_by(self, comb: CGroupBy) -> PartitionedBag:
        compiled = self._udf_compilation(comb.key)
        key_fn, extra = compiled.closure, compiled.extra
        exchange = comb if self._exchange_active(comb) else None
        shuffled = self._shuffled_input(comb.input, comb.key, exchange)
        factor = self.engine.group_materialize_factor
        # Columnar grouping: the key evaluates as one column over each
        # shuffled partition's batch, and group boundaries come from
        # run detection over that column — insertion and value order
        # match the row dict's first-occurrence semantics exactly.
        prep = (
            self._exchange_prep(comb, comb.key, shuffled)
            if exchange is not None
            else None
        )
        if prep is not None:
            self.engine.metrics.columnar_groups += 1
            gvk, gbatches = prep
        # Graceful degradation: partitions whose in-memory group
        # materialization would blow the simulated worker memory limit
        # group through external run-merge instead of aborting — but
        # only when a driver memory budget opted the run into the
        # out-of-core layer, so budget-less runs keep the paper's hard
        # failure mode bit-for-bit.
        external = self._plan_external_groups(shuffled.partitions)
        out: list[list[Any]] = []
        group_rows: dict[int, list[Any]] | None = None
        if self._parallel:
            spec = GroupSpec(self._udf_ref(compiled), prepared=key_fn)
            cspec = None
            if prep is not None:
                cspec = ColumnarGroupSpec(
                    self._udf_ref(compiled),
                    self._key_step(compiled),
                    gvk.schema,
                    prepared=(gvk,),
                )
            ship = self.engine.execution_mode == "processes"
            metrics = self.engine.metrics
            kept = [
                i
                for i in range(len(shuffled.partitions))
                if i not in external
            ]
            tasks = []
            for i in kept:
                batch = gbatches.get(i) if cspec is not None else None
                if batch is not None:
                    tasks.append(
                        PartitionTask(i, cspec, batch, "group-columnar")
                    )
                    if ship:
                        metrics.columnar_blocks_shipped += 1
                else:
                    tasks.append(
                        PartitionTask(
                            i, spec, shuffled.partitions[i], "group"
                        )
                    )
            group_rows = dict(zip(kept, self._run_stage(tasks)))
        for i, p in enumerate(shuffled.partitions):
            if i in external:
                out.append(self._external_group_partition(i, p, key_fn))
                ops = len(p) * (1 + extra) * factor
                if len(p) > 1:
                    # External grouping sorts runs: n log n, like the
                    # Flink-style sort-based grouping it degrades to.
                    ops *= math.log2(len(p))
                self._charge_cpu(i, ops)
                # The run-merge streams through disk twice (write +
                # read), charged exactly like ``group_spill_to_disk``;
                # nothing lands in ``_worker_group_bytes``.
                self.job.charge_worker(
                    self._worker_of(i),
                    self.engine.cost.disk_seconds(
                        2 * estimate_bag_bytes(p)
                    ),
                )
                continue
            if group_rows is not None:
                out.append(group_rows[i])
            else:
                batch = gbatches.get(i) if prep is not None else None
                if batch is not None:
                    keys = gvk.run_batch(batch)[0].to_records()
                    groups = group_rows_by_keys(p, keys)
                else:
                    groups = {}
                    for x in p:
                        groups.setdefault(key_fn(x), []).append(x)
                out.append(
                    [Grp(k, DataBag(vs)) for k, vs in groups.items()]
                )
            ops = len(p) * (1 + extra) * factor
            if self.engine.group_spill_to_disk and len(p) > 1:
                # Sort-based grouping costs n log n, not n.
                ops *= math.log2(len(p))
            self._charge_cpu(i, ops)
            self._account_group_memory(i, p)
        return PartitionedBag(out, _grp_partitioner(shuffled, "key"))

    def _plan_external_groups(self, partitions: list[list[Any]]) -> set[int]:
        """Partition indexes that must group externally, or empty.

        Mirrors :meth:`_account_group_memory` exactly: walking the
        partitions in index order against the live per-worker residency
        counters, any partition whose materialization would push its
        worker over ``cost.memory_per_worker`` — i.e. precisely where
        the budget-less engine raises ``SimulatedMemoryError`` — is
        diverted to the external path (and its bytes never become
        resident).  Empty whenever the engine is unbounded, streams
        groups through disk anyway, or has no memory budget set.
        """
        engine = self.engine
        if (
            not engine.spill.active
            or not engine.group_memory_bound
            or engine.group_spill_to_disk
        ):
            return set()
        limit = engine.cost.memory_per_worker
        projected = list(self._worker_group_bytes)
        external: set[int] = set()
        for i, p in enumerate(partitions):
            worker = self._worker_of(i)
            nbytes = estimate_bag_bytes(p)
            if projected[worker] + nbytes > limit:
                external.add(i)
            else:
                projected[worker] += nbytes
        return external

    def _external_group_partition(
        self, partition_index: int, p: list, key_fn: Any
    ) -> list[Any]:
        """Group one partition through spill-file runs + merge.

        Run generation: the partition is cut into bounded-size runs,
        each grouped in memory and spilled to one file.  Merge: runs
        stream back in generation order, folding into the result map —
        ``setdefault`` + ``extend`` in run order reproduces the
        in-memory dict's key-first-occurrence and value-encounter order
        *exactly*, so the output is indistinguishable from the
        all-in-memory grouping.  File traffic is host mechanics,
        counted only in the spill metrics.
        """
        engine = self.engine
        dfs = engine.dfs
        metrics = engine.metrics
        nbytes = estimate_bag_bytes(p)
        # Runs sized to a quarter of the worker's allowance, so the
        # merge keeps at most one run plus the result map in flight.
        run_budget = max(1, engine.cost.memory_per_worker // 4)
        avg = max(1, nbytes // len(p)) if p else 1
        run_records = max(1, run_budget // avg)
        paths: list[str] = []
        try:
            for start in range(0, len(p), run_records):
                run = p[start : start + run_records]
                run_groups: dict[Any, list[Any]] = {}
                for x in run:
                    run_groups.setdefault(key_fn(x), []).append(x)
                buf = pickle.dumps(
                    list(run_groups.items()),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                paths.append(dfs.spill_put_bytes(buf, tag="extgroup"))
                metrics.spill_bytes_written += len(buf)
            merged: dict[Any, list[Any]] = {}
            for path in paths:
                buf = dfs.spill_get_bytes(path)
                metrics.spill_bytes_read += len(buf)
                for k, vs in pickle.loads(buf):
                    merged.setdefault(k, []).extend(vs)
        finally:
            for path in paths:
                dfs.spill_delete(path)
        metrics.external_merge_passes += 1
        if engine.tracer is not None:
            engine.tracer.event(
                "spill:external-merge",
                ts=self.job.trace_ts(),
                partition=partition_index,
                runs=len(paths),
                records=len(p),
            )
        return [Grp(k, DataBag(vs)) for k, vs in merged.items()]

    def _account_group_memory(self, partition_index: int, p: list) -> None:
        nbytes = estimate_bag_bytes(p)
        if self.engine.group_spill_to_disk:
            # Streaming/sort-based grouping spills through local disk.
            seconds = self.engine.cost.disk_seconds(2 * nbytes)
            self.job.charge_worker(
                self._worker_of(partition_index), seconds
            )
            return
        worker = self._worker_of(partition_index)
        self._worker_group_bytes[worker] += nbytes
        used = self._worker_group_bytes[worker]
        if used > self.engine.metrics.peak_worker_bytes:
            self.engine.metrics.peak_worker_bytes = used
        if (
            self.engine.group_memory_bound
            and used > self.engine.cost.memory_per_worker
        ):
            raise SimulatedMemoryError(
                worker,
                used,
                self.engine.cost.memory_per_worker,
                partition=partition_index,
                operator="group_by",
                metrics=self.engine.metrics.snapshot(),
            )

    def _exec_agg_by(self, comb: CAggBy) -> PartitionedBag:
        # Map-side chain fusion: a private (unshared, unannotated)
        # chain feeding the aggregation streams straight into the
        # partial-aggregation accumulators — the chain's intermediate
        # result is never materialized at all.
        chain: CChain | None = None
        if (
            isinstance(comb.input, CChain)
            and not comb.input.shared
            and not comb.input.cache
            and comb.input.partition_hint is None
        ):
            chain = comb.input
            source = self._exec(chain.input)
            kernel = self._chain_kernel(chain)
        else:
            source = self._exec(comb.input)
            kernel = None
        ckey = self._udf_compilation(comb.key)
        key_fn, key_extra = ckey.closure, ckey.extra
        spec_names: frozenset[str] = frozenset()
        for spec in comb.specs:
            spec_names |= spec.free_vars()
        bindings, spec_extra = self._udf_bindings(spec_names)
        algebras = [
            spec.make_algebra(Env.of(bindings)) for spec in comb.specs
        ]
        extra = key_extra + spec_extra

        # The chain's output partitioning decides shuffle alignment.
        effective_partitioner = source.partitioner
        if chain is not None and not chain.preserves_partitioning():
            effective_partitioner = None
        aligned = effective_partitioner is not None and (
            effective_partitioner.matches(comb.key, source.num_partitions)
        )
        if kernel is not None:
            self._charge_chain_overheads(kernel)
            # The whole chain collapses into the aggregation's mapper
            # phase, so even its own task charge is saved.
            if self.engine.pipelined_chains:
                self.engine.metrics.tasks_saved += 1
        # Phase 1: mapper-side partial aggregation.
        chain_invocations = 0
        partials: list[list[tuple[Any, tuple]]] = []
        if self._parallel:
            mspec = AggMapSpec(
                self._udf_ref(ckey),
                comb.specs,
                bindings,
                steps=kernel.steps if kernel is not None else None,
                prepared=(kernel, key_fn, algebras),
            )
            tasks = [
                PartitionTask(i, mspec, p, "agg-map")
                for i, p in enumerate(source.partitions)
            ]
            for i, (p, (pairs, counts)) in enumerate(
                zip(source.partitions, self._run_stage(tasks))
            ):
                if kernel is None:
                    n_agg_inputs = len(p)
                else:
                    entered, n_agg_inputs = self._charge_kernel(
                        kernel, i, p, counts
                    )
                    chain_invocations += sum(entered)
                partials.append(pairs)
                self._charge_cpu(
                    i,
                    n_agg_inputs * (len(algebras) + extra) + len(pairs),
                )
        else:
            for i, p in enumerate(source.partitions):
                acc: dict[Any, list[Any]] = {}

                def accumulate(x: Any) -> None:
                    k = key_fn(x)
                    entry = acc.get(k)
                    if entry is None:
                        acc[k] = [
                            a.union(a.zero(), a.singleton(x))
                            for a in algebras
                        ]
                    else:
                        for j, a in enumerate(algebras):
                            entry[j] = a.union(entry[j], a.singleton(x))

                if kernel is None:
                    for x in p:
                        accumulate(x)
                    n_agg_inputs = len(p)
                else:
                    entered, n_agg_inputs = self._run_chain(
                        kernel, i, p, accumulate
                    )
                    chain_invocations += sum(entered)
                partials.append([(k, tuple(v)) for k, v in acc.items()])
                self._charge_cpu(
                    i, n_agg_inputs * (len(algebras) + extra) + len(acc)
                )
        if kernel is not None:
            self.engine.metrics.udf_invocations += chain_invocations
        partial_bag = PartitionedBag(
            partials, effective_partitioner if aligned else None
        )
        if aligned:
            # The input already sits where the reducers need it; the
            # partial-aggregate shuffle disappears entirely.
            self.engine.metrics.shuffles_elided += 1
            tracer = self.engine.tracer
            if tracer is not None:
                tracer.event(
                    "shuffle-elided",
                    ts=self.job.trace_ts(),
                    key=comb.key.describe(),
                )
        if not aligned:
            # Phase 2: only the partial aggregates are shuffled.
            partial_bag = self.shuffle_by_key(
                partial_bag,
                ScalarFn(
                    ("_p",),
                    _index0(),
                ),
                exchange=(
                    comb if self._exchange_active(comb) else None
                ),
            )
        # Phase 3: reducer-side merge.
        out: list[list[Any]] = []
        if self._parallel:
            rspec = AggMergeSpec(
                comb.specs, bindings, prepared=tuple(algebras)
            )
            tasks = [
                PartitionTask(i, rspec, p, "agg-merge")
                for i, p in enumerate(partial_bag.partitions)
            ]
            for i, (p, rows) in enumerate(
                zip(partial_bag.partitions, self._run_stage(tasks))
            ):
                out.append(rows)
                self._charge_cpu(
                    i, len(p) * len(algebras) + len(rows)
                )
            return PartitionedBag(
                out, _grp_partitioner(partial_bag, "key")
            )
        for i, p in enumerate(partial_bag.partitions):
            merged: dict[Any, list[Any]] = {}
            for k, accs in p:
                entry = merged.get(k)
                if entry is None:
                    merged[k] = list(accs)
                else:
                    for j, a in enumerate(algebras):
                        entry[j] = a.union(entry[j], accs[j])
            out.append(
                [AggResult(k, tuple(v)) for k, v in merged.items()]
            )
            self._charge_cpu(i, len(p) * len(algebras) + len(merged))
        return PartitionedBag(out, _grp_partitioner(partial_bag, "key"))

    def _exec_distinct(self, comb: CDistinct) -> PartitionedBag:
        source = self._exec(comb.input)
        shuffled = self.shuffle_by_key(source, ScalarFn.identity("_d"))
        out: list[list[Any]] = []
        for i, p in enumerate(shuffled.partitions):
            seen: set[Any] = set()
            rows: list[Any] = []
            for x in p:
                if x not in seen:
                    seen.add(x)
                    rows.append(x)
            out.append(rows)
            self._charge_cpu(i, len(p))
        return PartitionedBag(out, shuffled.partitioner)

    def _exec_union(self, comb: CUnion) -> PartitionedBag:
        left = self._exec(comb.left)
        right = self._exec(comb.right)
        n = max(left.num_partitions, right.num_partitions)
        out = [
            (left.partitions[i] if i < left.num_partitions else [])
            + (right.partitions[i] if i < right.num_partitions else [])
            for i in range(n)
        ]
        # Partition-wise concatenation of two bags hash-partitioned the
        # same way is still partitioned that way; keeping the
        # partitioner spares downstream joins/groupings a re-shuffle.
        partitioner = None
        if (
            left.partitioner is not None
            and right.partitioner is not None
            and left.num_partitions == right.num_partitions
            and left.partitioner.matches(
                right.partitioner.key, right.num_partitions
            )
        ):
            partitioner = left.partitioner
        return PartitionedBag(out, partitioner)

    def _exec_minus(self, comb: CMinus) -> PartitionedBag:
        left = self._exec(comb.left)
        right = self._exec(comb.right)
        identity = ScalarFn.identity("_m")
        left = self.shuffle_by_key(left, identity)
        right = self.shuffle_by_key(right, identity)
        out: list[list[Any]] = []
        for i, (lp, rp) in enumerate(
            zip(left.partitions, right.partitions)
        ):
            remaining = Counter(rp)
            rows: list[Any] = []
            for x in lp:
                if remaining[x] > 0:
                    remaining[x] -= 1
                else:
                    rows.append(x)
            out.append(rows)
            self._charge_cpu(i, len(lp) + len(rp))
        return PartitionedBag(out, left.partitioner)

    # -- folds --------------------------------------------------------------------------

    def _exec_fold(self, comb: CFold) -> Any:
        tracer = self.engine.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                comb.label(),
                "operator",
                ts=self.job.trace_ts(),
                op=comb.describe(),
            )
        source = self._exec(comb.input)
        bindings, extra = self._udf_bindings(comb.spec.free_vars())
        algebra = comb.spec.make_algebra(Env.of(bindings))
        partial_values: list[Any] = []
        if self._parallel:
            fspec = FoldSpec(comb.spec, bindings, prepared=algebra)
            tasks = [
                PartitionTask(i, fspec, p, "fold")
                for i, p in enumerate(source.partitions)
            ]
            partial_values = self._run_stage(tasks)
            for i, p in enumerate(source.partitions):
                self._charge_cpu(i, len(p) * (1 + extra))
        else:
            for i, p in enumerate(source.partitions):
                partial_values.append(algebra(p))
                self._charge_cpu(i, len(p) * (1 + extra))
        nbytes = sum(
            estimate_record_bytes(v) for v in partial_values
        )
        self.job.charge_driver(self.engine.cost.driver_seconds(nbytes))
        self.engine.metrics.driver_collect_bytes += nbytes
        self.job.charge_driver(
            self.engine.cost.cpu_seconds(len(partial_values))
        )
        if span is not None:
            tracer.end(
                span,
                end_ts=self.job.trace_ts(),
                rows_in=source.count(),
                partials=len(partial_values),
            )
        return algebra.merge(partial_values)

    # -- dispatch table -------------------------------------------------------------------

    _HANDLERS: dict[type, Callable] = {}


def _index0():
    from repro.comprehension.exprs import Const, Index, Ref

    return Index(Ref("_p"), Const(0))


def _grp_partitioner(
    shuffled: PartitionedBag, attr: str
) -> Partitioner | None:
    """Partitioner for keyed outputs (Grp/AggResult records by ``attr``).

    The data was just hash-partitioned on the grouping key, so the
    keyed output records are hash-partitioned on their ``.key``
    attribute — record that so downstream consumers can skip a shuffle.
    """
    if shuffled.partitioner is None:
        return None
    return Partitioner(
        _attr_key("_g", attr), shuffled.num_partitions
    )


JobExecutor._HANDLERS = {
    CSource: JobExecutor._exec_source,
    CParallelize: JobExecutor._exec_parallelize,
    CBagRef: JobExecutor._exec_bag_ref,
    CMap: JobExecutor._exec_map,
    CFlatMap: JobExecutor._exec_flat_map,
    CFilter: JobExecutor._exec_filter,
    CChain: JobExecutor._exec_chain,
    CEqJoin: JobExecutor._exec_eq_join,
    CSemiJoin: JobExecutor._exec_semi_join,
    CCross: JobExecutor._exec_cross,
    CGroupBy: JobExecutor._exec_group_by,
    CAggBy: JobExecutor._exec_agg_by,
    CDistinct: JobExecutor._exec_distinct,
    CUnion: JobExecutor._exec_union,
    CMinus: JobExecutor._exec_minus,
}

"""A dependency-driven partition-task scheduler with real parallelism.

The simulated engines charge *modelled* seconds per partition; this
module is the orthogonal axis the ROADMAP's north star asks for — the
same per-partition work executed **genuinely in parallel** on the host
machine.  A :class:`TaskScheduler` runs the partition tasks of a job
DAG out of order in one of three modes:

* ``serial`` — the default: tasks run inline, in order, in the driver
  process.  Zero overhead, bit-identical to the pre-scheduler code.
* ``threads`` — tasks fan out on a ``ThreadPoolExecutor``.  Kernels
  and UDF closures are shared by reference; useful for I/O-bound UDFs
  and as a GIL-bound sanity midpoint between serial and processes.
* ``processes`` — tasks fan out on a shared spawn-context
  ``ProcessPoolExecutor``.  Chain kernels and compiled scalar UDFs
  ship as *source* (IR + bindings — see
  :mod:`repro.engines.chainkernel`), are re-hydrated in the worker and
  memoized per worker process by a content fingerprint, and partitions
  cross the boundary through a small pickle serialization layer with
  byte accounting (``Metrics.ipc_bytes_shipped`` / ``ipc_bytes_returned``).

Three invariants make the parallel modes safe to enable anywhere:

1. **Deterministic merge** — every task is a pure function of its
   payload, and stage results are merged by task index, so outputs are
   bit-identical to serial execution no matter the completion order.
2. **Driver-side accounting** — all simulated-cost charging (and the
   fault injector's ``on_task`` boundary, whose decisions are a pure
   function of the monotone task sequence number) happens in the
   driver *after* a stage returns, in deterministic partition order.
   ``Metrics.simulated_seconds`` and injected fault schedules are
   therefore identical across modes; only wall-clock time changes.
3. **Serial fallback** — any failure of the parallel path (a UDF
   closure capturing an unpicklable object, a broken pool) falls back
   to inline serial execution of the same pure tasks, counted in
   ``Metrics.serial_fallbacks``.  A genuine task error reproduces and
   raises in the serial re-run, so the fallback can never mask a bug.

Straggler robustness: once most of a stage has completed, the slowest
still-running tasks are speculatively re-launched on the pool and the
first result per task index wins (purity makes the duplicate harmless
— the Dremel/Spark "backup task" trick).
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import sys
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.comprehension.exprs import AlgebraSpec, Env
from repro.comprehension.pretty import pretty
from repro.core.databag import DataBag
from repro.core.grp import Grp
from repro.engines.chainkernel import (
    ChainKernel,
    KernelStep,
    VectorKernel,
    build_chain_kernel,
    build_key_kernel,
    build_vector_kernel,
)
from repro.engines.columnar import (
    ColumnBatch,
    ColumnSchema,
    bucket_indices,
    probe_join,
    scatter_batch,
)
from repro.engines.cluster import hash_partition_index, stable_hash
from repro.errors import EngineError
from repro.lowering.combinators import AggResult, ScalarFn

#: the execution modes selectable via ``EmmaConfig(execution_mode=...)``
EXECUTION_MODES = ("serial", "threads", "processes")

_TOKENS = itertools.count()


def default_execution_mode() -> str:
    """The execution mode adopted when a caller names none explicitly.

    The ``REPRO_EXECUTION_MODE`` environment variable overrides the
    built-in ``"serial"`` default, so a whole test suite or CI job can
    run under the parallel backend without touching any call site (the
    ``parallel-backend`` CI job sets it to ``"processes"``).  The value
    is validated downstream by :class:`TaskScheduler`.
    """
    return os.environ.get("REPRO_EXECUTION_MODE", "serial")


def default_max_parallel_tasks() -> int:
    """Concurrent-task width adopted when a caller names none.

    ``REPRO_MAX_PARALLEL_TASKS`` overrides the built-in ``0`` (one slot
    per host CPU core); non-numeric values fail loudly.
    """
    raw = os.environ.get("REPRO_MAX_PARALLEL_TASKS", "0")
    try:
        return int(raw)
    except ValueError:
        raise EngineError(
            f"REPRO_MAX_PARALLEL_TASKS must be an integer, got {raw!r}"
        ) from None


# -- content fingerprints ---------------------------------------------------


def _value_digest(value: Any) -> tuple | None:
    """A process-independent digest of one captured binding value.

    Returns ``None`` for values with no stable content identity (the
    spec then gets a unique token fingerprint: still memoizable within
    one stage, just not across jobs).  Deliberately never falls back to
    ``repr`` — reprs embedding ``id()`` addresses could collide across
    garbage-collection reuse and alias two different kernels.
    """
    if isinstance(value, type):
        return ("type", value.__module__, value.__qualname__)
    if isinstance(value, DataBag):
        try:
            return ("bag", stable_hash(value.fetch()))
        except EngineError:
            return None
    if callable(value):
        module = getattr(value, "__module__", None)
        qualname = getattr(value, "__qualname__", None)
        if module and qualname and "<locals>" not in qualname:
            return ("fn", module, qualname)
        return None
    try:
        return ("val", stable_hash(value))
    except EngineError:
        return None


def _bindings_digest(
    bindings: Mapping[str, Any] | None,
) -> tuple | None:
    """Order-independent digest of a name→value closure binding map."""
    if bindings is None:
        return ()
    items = []
    for name in sorted(bindings):
        digest = _value_digest(bindings[name])
        if digest is None:
            return None
        items.append((name, digest))
    return tuple(items)


def _algebra_digest(spec: AlgebraSpec) -> tuple:
    """Structural digest of a symbolic fold algebra."""
    return (
        spec.alias,
        tuple(pretty(a) for a in spec.args),
        pretty(spec.head) if spec.head is not None else None,
        tuple(pretty(g) for g in spec.guards),
        spec.var,
    )


def _token() -> tuple:
    """A driver-unique fingerprint for specs without content identity."""
    return ("token", os.getpid(), next(_TOKENS))


# -- picklable UDF / task specs ---------------------------------------------


@dataclass(frozen=True)
class UdfRef:
    """A scalar UDF as shippable source: parameters, IR body, bindings.

    The compiled closure never travels; :meth:`compile` rebuilds it in
    the receiving process with the same native-vs-interpreter fallback
    the driver used, so both sides run semantically identical code.
    """

    params: tuple[str, ...]
    body: Any
    bindings: dict[str, Any] = field(default_factory=dict)

    def compile(self) -> Callable:
        """Materialize the closure over the shipped bindings."""
        return ScalarFn(tuple(self.params), self.body).compile_native(
            dict(self.bindings)
        )[0]

    def digest(self) -> tuple | None:
        """Content digest, or ``None`` when a binding has no identity."""
        bindings = _bindings_digest(self.bindings)
        if bindings is None:
            return None
        return (tuple(self.params), pretty(self.body), bindings)


class TaskSpec:
    """What a partition task *does* — shared by every task of a stage.

    A spec is picklable and carries a ``fingerprint`` identifying the
    executable artifact it builds (a compiled kernel, a hash table, a
    fold algebra).  Workers memoize built artifacts by fingerprint, so
    a loop that re-runs the same kernel every iteration re-hydrates it
    once per worker process, not once per task.  The driver-side build
    is cached on the spec itself (``_prepared``) and never pickled.
    """

    kind = "abstract"

    def __init__(self, fingerprint: tuple | None = None) -> None:
        self.fingerprint = fingerprint if fingerprint is not None else _token()
        self._prepared: Any = None

    def build(self) -> Any:
        """Construct the executable artifact (subclass hook)."""
        raise NotImplementedError

    def prepared(self) -> Any:
        """The driver-side artifact, built once per spec object."""
        if self._prepared is None:
            self._prepared = self.build()
        return self._prepared

    def __getstate__(self) -> dict[str, Any]:
        """Ship everything except the driver-side built artifact."""
        state = dict(self.__dict__)
        state["_prepared"] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        """Restore; the artifact is rebuilt (or memo-served) on use."""
        self.__dict__.update(state)


class KernelSpec(TaskSpec):
    """Run a fused chain kernel over a partition: ``(rows, counts)``."""

    kind = "kernel"

    def __init__(
        self,
        steps: Sequence[KernelStep],
        prepared: ChainKernel | None = None,
    ) -> None:
        digests = []
        fingerprint: tuple | None = None
        for step in steps:
            if step.body is None:
                digests = None
                break
            bindings = _bindings_digest(step.bindings)
            body = (
                pretty(step.body),
                tuple(step.params),
                bindings,
                step.kind,
                step.extra,
            )
            if bindings is None:
                digests = None
                break
            digests.append(body)
        if digests is not None:
            fingerprint = ("kernel", tuple(digests))
        super().__init__(fingerprint)
        self.steps = tuple(steps)
        if prepared is not None:
            self._prepared = prepared

    def build(self) -> ChainKernel:
        """Regenerate + compile the kernel source from the step IR."""
        return build_chain_kernel(self.steps)


class VectorKernelSpec(TaskSpec):
    """Run a vectorized chain kernel over a :class:`ColumnBatch`.

    The task payload is a whole batch (typed column buffers) instead of
    a row list; the result is ``(out_batch, counts)`` with the counts
    tuple identical in shape and value to the row kernel's, so the
    driver charges both planes through the same accounting path.
    """

    kind = "vkernel"

    def __init__(
        self,
        steps: Sequence[KernelStep],
        schema: ColumnSchema,
        prepared: VectorKernel | None = None,
    ) -> None:
        row_spec = KernelSpec(steps)
        fingerprint: tuple | None = None
        if row_spec.fingerprint[0] != "token":
            fingerprint = (
                "vkernel",
                row_spec.fingerprint,
                schema.signature(),
            )
        super().__init__(fingerprint)
        self.steps = tuple(steps)
        self.schema = schema
        if prepared is not None:
            self._prepared = prepared

    def build(self) -> VectorKernel:
        """Regenerate + compile the vector kernel from the step IR."""
        return build_vector_kernel(self.steps, self.schema)


class AggMapSpec(TaskSpec):
    """Mapper-side partial aggregation, optionally fused with a chain.

    The task streams a partition (through the chain kernel when one is
    fused in) straight into per-key fold-algebra accumulators and
    returns ``(pairs, counts)`` where ``pairs`` is the insertion-ordered
    ``[(key, accumulator_tuple), ...]`` list and ``counts`` the kernel
    counters (``None`` without a fused chain).
    """

    kind = "agg-map"

    def __init__(
        self,
        key: UdfRef,
        specs: Sequence[AlgebraSpec],
        bindings: dict[str, Any],
        steps: Sequence[KernelStep] | None = None,
        prepared: tuple | None = None,
    ) -> None:
        key_digest = key.digest()
        bindings_digest = _bindings_digest(bindings)
        fingerprint: tuple | None = None
        if key_digest is not None and bindings_digest is not None:
            steps_spec = None
            if steps is not None:
                steps_spec = KernelSpec(steps)
                if steps_spec.fingerprint[0] == "token":
                    steps_spec = None
            if steps is None or steps_spec is not None:
                fingerprint = (
                    "agg-map",
                    key_digest,
                    tuple(_algebra_digest(s) for s in specs),
                    bindings_digest,
                    steps_spec.fingerprint if steps_spec else None,
                )
        super().__init__(fingerprint)
        self.key = key
        self.specs = tuple(specs)
        self.bindings = bindings
        self.steps = tuple(steps) if steps is not None else None
        if prepared is not None:
            self._prepared = prepared

    def build(self) -> tuple:
        """(kernel | None, key closure, concrete fold algebras)."""
        kernel = (
            build_chain_kernel(self.steps) if self.steps is not None else None
        )
        key_fn = self.key.compile()
        env = Env.of(self.bindings)
        algebras = [s.make_algebra(env) for s in self.specs]
        return kernel, key_fn, algebras


class AggMergeSpec(TaskSpec):
    """Reducer-side merge of shuffled partial aggregates."""

    kind = "agg-merge"

    def __init__(
        self,
        specs: Sequence[AlgebraSpec],
        bindings: dict[str, Any],
        prepared: tuple | None = None,
    ) -> None:
        bindings_digest = _bindings_digest(bindings)
        fingerprint = None
        if bindings_digest is not None:
            fingerprint = (
                "agg-merge",
                tuple(_algebra_digest(s) for s in specs),
                bindings_digest,
            )
        super().__init__(fingerprint)
        self.specs = tuple(specs)
        self.bindings = bindings
        if prepared is not None:
            self._prepared = prepared

    def build(self) -> tuple:
        """The concrete fold algebras, rebuilt from their symbolic IR."""
        env = Env.of(self.bindings)
        return tuple(s.make_algebra(env) for s in self.specs)


class GroupSpec(TaskSpec):
    """Materialize ``Grp`` records for one shuffled partition."""

    kind = "group"

    def __init__(
        self, key: UdfRef, prepared: Callable | None = None
    ) -> None:
        digest = key.digest()
        super().__init__(
            ("group", digest) if digest is not None else None
        )
        self.key = key
        if prepared is not None:
            self._prepared = prepared

    def build(self) -> Callable:
        """The compiled grouping-key closure."""
        return self.key.compile()


class BucketSpec(TaskSpec):
    """Hash-bucket one partition's records for a shuffle.

    Returns a list of ``num_partitions`` record lists; the driver
    merges buckets across tasks in partition order, reproducing the
    serial shuffle's record order exactly.  The per-record
    ``stable_hash`` is process-independent by construction, so worker
    processes bucket identically to the driver.
    """

    kind = "bucket"

    def __init__(
        self,
        key: UdfRef,
        num_partitions: int,
        prepared: Callable | None = None,
    ) -> None:
        digest = key.digest()
        fingerprint = None
        if digest is not None:
            fingerprint = ("bucket", digest, num_partitions)
        super().__init__(fingerprint)
        self.key = key
        self.num_partitions = num_partitions
        if prepared is not None:
            self._prepared = prepared

    def build(self) -> Callable:
        """The compiled shuffle-key closure."""
        return self.key.compile()


class ColumnarBucketSpec(TaskSpec):
    """Hash-bucket one partition shipped as a :class:`ColumnBatch`.

    The columnar twin of :class:`BucketSpec`: the payload is a typed
    batch instead of a row list, the shuffle key is evaluated as a
    column through a single-step vector kernel, and the result is a
    list of ``num_partitions`` destination *sub-batches* (scattered in
    source order, so the driver's merge reproduces the row shuffle's
    record order exactly).  Bucket assignment is bit-identical to
    ``hash_partition_index`` by construction of
    :func:`~repro.engines.columnar.bucket_indices`.
    """

    kind = "columnar-bucket"

    def __init__(
        self,
        key: UdfRef,
        key_step: KernelStep,
        schema: ColumnSchema,
        num_partitions: int,
        prepared: tuple | None = None,
    ) -> None:
        digest = key.digest()
        fingerprint = None
        if digest is not None:
            fingerprint = (
                "columnar-bucket",
                digest,
                schema.signature(),
                num_partitions,
            )
        super().__init__(fingerprint)
        self.key = key
        self.key_step = key_step
        self.schema = schema
        self.num_partitions = num_partitions
        if prepared is not None:
            self._prepared = prepared

    def build(self) -> tuple:
        """(key vector kernel, destination count)."""
        return (
            build_key_kernel(self.key_step, self.schema),
            self.num_partitions,
        )


class ColumnarGroupSpec(TaskSpec):
    """Materialize ``Grp`` records from one shuffled batch.

    The columnar twin of :class:`GroupSpec`: the payload is the
    partition as a full-width :class:`ColumnBatch`; the worker
    evaluates the grouping key as a column, then groups the
    reconstructed records with run detection (adjacent equal keys skip
    the hash probe — shuffled partitions cluster equal keys when the
    upstream scatter preserved source runs).
    """

    kind = "columnar-group"

    def __init__(
        self,
        key: UdfRef,
        key_step: KernelStep,
        schema: ColumnSchema,
        prepared: tuple | None = None,
    ) -> None:
        digest = key.digest()
        fingerprint = None
        if digest is not None:
            fingerprint = ("columnar-group", digest, schema.signature())
        super().__init__(fingerprint)
        self.key = key
        self.key_step = key_step
        self.schema = schema
        if prepared is not None:
            self._prepared = prepared

    def build(self) -> tuple:
        """(key vector kernel,) — tuple for memo-shape uniformity."""
        return (build_key_kernel(self.key_step, self.schema),)


class ColumnarJoinProbeSpec(TaskSpec):
    """Hash join build/probe over key columns of a partition pair.

    The columnar twin of :class:`JoinProbeSpec`: each side of the
    payload is either a full-width :class:`ColumnBatch` (keys evaluated
    through the side's vector kernel) or a plain row list (that
    partition fell back — keys evaluated through the compiled closure).
    Build and probe orders match the row runner exactly, so the output
    pair order is bit-identical.
    """

    kind = "columnar-join-probe"

    def __init__(
        self,
        kx: UdfRef,
        ky: UdfRef,
        x_step: KernelStep,
        x_schema: ColumnSchema,
        y_step: KernelStep,
        y_schema: ColumnSchema,
        prepared: tuple | None = None,
    ) -> None:
        dx, dy = kx.digest(), ky.digest()
        fingerprint = None
        if dx is not None and dy is not None:
            fingerprint = (
                "columnar-join-probe",
                dx,
                dy,
                x_schema.signature(),
                y_schema.signature(),
            )
        super().__init__(fingerprint)
        self.kx = kx
        self.ky = ky
        self.x_step = x_step
        self.x_schema = x_schema
        self.y_step = y_step
        self.y_schema = y_schema
        if prepared is not None:
            self._prepared = prepared

    def build(self) -> tuple:
        """(kx closure, ky closure, left key kernel, right key kernel)."""
        return (
            self.kx.compile(),
            self.ky.compile(),
            build_key_kernel(self.x_step, self.x_schema),
            build_key_kernel(self.y_step, self.y_schema),
        )


class JoinProbeSpec(TaskSpec):
    """Co-partitioned hash join probe over a ``(left, right)`` pair."""

    kind = "join-probe"

    def __init__(
        self,
        kx: UdfRef,
        ky: UdfRef,
        prepared: tuple | None = None,
    ) -> None:
        dx, dy = kx.digest(), ky.digest()
        fingerprint = None
        if dx is not None and dy is not None:
            fingerprint = ("join-probe", dx, dy)
        super().__init__(fingerprint)
        self.kx = kx
        self.ky = ky
        if prepared is not None:
            self._prepared = prepared

    def build(self) -> tuple:
        """Both compiled key closures."""
        return self.kx.compile(), self.ky.compile()


class BroadcastProbeSpec(TaskSpec):
    """Broadcast hash join probe: the small side rides in the spec.

    Like Spark's broadcast join, each worker builds the hash table
    from the shipped records — once per worker process thanks to the
    fingerprint memo, mirroring a real broadcast variable.
    """

    kind = "broadcast-probe"

    def __init__(
        self,
        records: list[Any],
        key_small: UdfRef,
        key_big: UdfRef,
        small_first: bool,
        prepared: tuple | None = None,
    ) -> None:
        ds, db = key_small.digest(), key_big.digest()
        fingerprint = None
        if ds is not None and db is not None:
            try:
                fingerprint = (
                    "broadcast-probe",
                    ds,
                    db,
                    small_first,
                    stable_hash(records),
                )
            except EngineError:
                fingerprint = None
        super().__init__(fingerprint)
        self.records = records
        self.key_small = key_small
        self.key_big = key_big
        self.small_first = small_first
        if prepared is not None:
            self._prepared = prepared

    def build(self) -> tuple:
        """(hash table over the small side, big-side key closure)."""
        ks = self.key_small.compile()
        table: dict[Any, list[Any]] = {}
        for r in self.records:
            table.setdefault(ks(r), []).append(r)
        return table, self.key_big.compile(), self.small_first


class SemiProbeSpec(TaskSpec):
    """Co-partitioned (anti-)semi-join probe over a partition pair."""

    kind = "semi-probe"

    def __init__(
        self,
        kx: UdfRef,
        ky: UdfRef,
        anti: bool,
        prepared: tuple | None = None,
    ) -> None:
        dx, dy = kx.digest(), ky.digest()
        fingerprint = None
        if dx is not None and dy is not None:
            fingerprint = ("semi-probe", dx, dy, anti)
        super().__init__(fingerprint)
        self.kx = kx
        self.ky = ky
        self.anti = anti
        if prepared is not None:
            self._prepared = prepared

    def build(self) -> tuple:
        """Both compiled key closures plus the anti flag."""
        return self.kx.compile(), self.ky.compile(), self.anti


class BroadcastSemiSpec(TaskSpec):
    """Broadcast (anti-)semi-join filter: key set rides in the spec."""

    kind = "broadcast-semi"

    def __init__(
        self,
        keys: list[Any],
        kx: UdfRef,
        anti: bool,
        prepared: tuple | None = None,
    ) -> None:
        dx = kx.digest()
        fingerprint = None
        if dx is not None:
            try:
                fingerprint = (
                    "broadcast-semi",
                    dx,
                    anti,
                    stable_hash(set(keys)),
                )
            except (EngineError, TypeError):
                fingerprint = None
        super().__init__(fingerprint)
        self.keys = keys
        self.kx = kx
        self.anti = anti
        if prepared is not None:
            self._prepared = prepared

    def build(self) -> tuple:
        """(key set, probe-side key closure, anti flag)."""
        return set(self.keys), self.kx.compile(), self.anti


class FoldSpec(TaskSpec):
    """Per-partition partial of a structural fold (``algebra(p)``)."""

    kind = "fold"

    def __init__(
        self,
        spec: AlgebraSpec,
        bindings: dict[str, Any],
        prepared: Any | None = None,
    ) -> None:
        bindings_digest = _bindings_digest(bindings)
        fingerprint = None
        if bindings_digest is not None:
            fingerprint = (
                "fold",
                _algebra_digest(spec),
                bindings_digest,
            )
        super().__init__(fingerprint)
        self.spec = spec
        self.bindings = bindings
        if prepared is not None:
            self._prepared = prepared

    def build(self) -> Any:
        """The concrete fold algebra over the shipped bindings."""
        return self.spec.make_algebra(Env.of(self.bindings))


# -- task runners -----------------------------------------------------------


def _run_kernel(kernel: ChainKernel, partition: list[Any]) -> tuple:
    """Stream a partition through a chain kernel; collect the rows."""
    rows: list[Any] = []
    counts = kernel.run(partition, rows.append)
    return rows, counts


def _run_vector_kernel(kernel: VectorKernel, batch: ColumnBatch) -> tuple:
    """Run a vector kernel over one shipped batch: ``(batch, counts)``."""
    return kernel.run_batch(batch)


def _run_agg_map(prepared: tuple, partition: list[Any]) -> tuple:
    """Partial-aggregate a partition (chain-fused when steps shipped)."""
    kernel, key_fn, algebras = prepared
    acc: dict[Any, list[Any]] = {}

    def accumulate(x: Any) -> None:
        k = key_fn(x)
        entry = acc.get(k)
        if entry is None:
            acc[k] = [
                a.union(a.zero(), a.singleton(x)) for a in algebras
            ]
        else:
            for j, a in enumerate(algebras):
                entry[j] = a.union(entry[j], a.singleton(x))

    if kernel is None:
        for x in partition:
            accumulate(x)
        counts = None
    else:
        counts = kernel.run(partition, accumulate)
    return [(k, tuple(v)) for k, v in acc.items()], counts


def _run_agg_merge(algebras: tuple, partition: list[Any]) -> list[Any]:
    """Merge shuffled ``(key, accumulators)`` pairs into results."""
    merged: dict[Any, list[Any]] = {}
    for k, accs in partition:
        entry = merged.get(k)
        if entry is None:
            merged[k] = list(accs)
        else:
            for j, a in enumerate(algebras):
                entry[j] = a.union(entry[j], accs[j])
    return [AggResult(k, tuple(v)) for k, v in merged.items()]


def _run_group(key_fn: Callable, partition: list[Any]) -> list[Any]:
    """Materialize the groups of one shuffled partition."""
    groups: dict[Any, list[Any]] = {}
    for x in partition:
        groups.setdefault(key_fn(x), []).append(x)
    return [Grp(k, DataBag(vs)) for k, vs in groups.items()]


def _run_bucket(key_fn: Callable, task_data: tuple) -> list[list[Any]]:
    """Hash-bucket one partition's records into destination lists."""
    partition, num_partitions = task_data
    buckets: list[list[Any]] = [[] for _ in range(num_partitions)]
    for record in partition:
        buckets[hash_partition_index(key_fn(record), num_partitions)].append(
            record
        )
    return buckets


def _run_columnar_bucket(
    prepared: tuple, batch: ColumnBatch
) -> list[ColumnBatch]:
    """Bucket one shipped batch into destination sub-batches."""
    kernel, num_partitions = prepared
    keys = kernel.run_batch(batch)[0].columns[0]
    dests = bucket_indices(keys, num_partitions)
    return scatter_batch(batch, dests, num_partitions)


#: marks "no previous key yet" in the run-detecting group loop
_NO_KEY = object()


def group_rows_by_keys(rows: list[Any], keys: list[Any]) -> dict:
    """Group records by their precomputed keys, detecting key runs.

    Exactly equivalent to ``groups.setdefault(key_fn(x), []).append(x)``
    over the same sequence — insertion order, value order, and the key
    objects stored in the dict all match — but adjacent equal keys
    append straight to the previous group without re-probing the hash
    table (the run-detection half of the columnar group-by).
    """
    groups: dict[Any, list[Any]] = {}
    last_key: Any = _NO_KEY
    last_list: list[Any] | None = None
    for x, k in zip(rows, keys):
        if last_list is not None and k == last_key:
            last_list.append(x)
            continue
        entry = groups.get(k)
        if entry is None:
            groups[k] = entry = [x]
        else:
            entry.append(x)
        last_key = k
        last_list = entry
    return groups


def _run_columnar_group(prepared: tuple, batch: ColumnBatch) -> list[Any]:
    """Group one shipped batch by its key column."""
    (kernel,) = prepared
    rows = batch.to_records()
    keys = kernel.run_batch(batch)[0].to_records()
    groups = group_rows_by_keys(rows, keys)
    return [Grp(k, DataBag(vs)) for k, vs in groups.items()]


def _side_rows_and_keys(
    side: Any, kernel: Any, key_fn: Callable
) -> tuple[list[Any], list[Any]]:
    """(records, keys) of one join side: batch or row-list payload."""
    if isinstance(side, ColumnBatch):
        return (
            side.to_records(),
            kernel.run_batch(side)[0].columns[0],
        )
    return side, [key_fn(x) for x in side]


def _run_columnar_join_probe(prepared: tuple, task_data: tuple) -> list[Any]:
    """Build-and-probe one pair whose sides may ship as batches."""
    kx, ky, x_kernel, y_kernel = prepared
    lp, rp = task_data
    rrows, rkeys = _side_rows_and_keys(rp, y_kernel, ky)
    lrows, lkeys = _side_rows_and_keys(lp, x_kernel, kx)
    return probe_join(lrows, lkeys, rrows, rkeys)


def _run_join_probe(prepared: tuple, task_data: tuple) -> list[Any]:
    """Build-and-probe one co-partitioned (left, right) pair."""
    kx, ky = prepared
    lp, rp = task_data
    table: dict[Any, list[Any]] = {}
    for r in rp:
        table.setdefault(ky(r), []).append(r)
    rows: list[Any] = []
    for x in lp:
        for m in table.get(kx(x), ()):
            rows.append((x, m))
    return rows


def _run_broadcast_probe(prepared: tuple, partition: list[Any]) -> list[Any]:
    """Probe a big-side partition against the broadcast hash table."""
    table, kb, small_first = prepared
    rows: list[Any] = []
    for x in partition:
        for m in table.get(kb(x), ()):
            rows.append((m, x) if small_first else (x, m))
    return rows


def _run_semi_probe(prepared: tuple, task_data: tuple) -> list[Any]:
    """(Anti-)semi-join one co-partitioned (left, right) pair."""
    kx, ky, anti = prepared
    lp, rp = task_data
    keys = {ky(r) for r in rp}
    if anti:
        return [x for x in lp if kx(x) not in keys]
    return [x for x in lp if kx(x) in keys]


def _run_broadcast_semi(prepared: tuple, partition: list[Any]) -> list[Any]:
    """Filter a partition against the broadcast key set."""
    keys, kx, anti = prepared
    if anti:
        return [x for x in partition if kx(x) not in keys]
    return [x for x in partition if kx(x) in keys]


def _run_fold(algebra: Any, partition: list[Any]) -> Any:
    """One partition's fold partial."""
    return algebra(partition)


_RUNNERS: dict[str, Callable[[Any, Any], Any]] = {
    "kernel": _run_kernel,
    "vkernel": _run_vector_kernel,
    "agg-map": _run_agg_map,
    "agg-merge": _run_agg_merge,
    "group": _run_group,
    "bucket": _run_bucket,
    "columnar-bucket": _run_columnar_bucket,
    "columnar-group": _run_columnar_group,
    "columnar-join-probe": _run_columnar_join_probe,
    "join-probe": _run_join_probe,
    "broadcast-probe": _run_broadcast_probe,
    "semi-probe": _run_semi_probe,
    "broadcast-semi": _run_broadcast_semi,
    "fold": _run_fold,
}


def register_runner(kind: str, runner: Callable[[Any, Any], Any]) -> None:
    """Register a custom task runner (test hook for exotic stages)."""
    _RUNNERS[kind] = runner


# -- tasks and stages -------------------------------------------------------


@dataclass
class PartitionTask:
    """One schedulable unit: a spec applied to one partition's data."""

    index: int
    spec: TaskSpec
    data: Any
    label: str = ""


@dataclass
class TaskStage:
    """A stage of a task graph: a task builder plus its dependencies.

    ``build`` receives the results of every dependency stage (a dict
    ``stage_id -> ordered result list``) and returns this stage's
    tasks — so downstream task *construction* can consume upstream
    results, which is what makes the scheduler dependency-driven
    rather than a flat fan-out.  Stages with disjoint dependencies
    (e.g. the two bucket stages of a repartition join whose sides the
    physical planner marked motion-``required``) have their tasks in
    flight simultaneously.
    """

    stage_id: str
    build: Callable[[dict[str, list[Any]]], list[PartitionTask]]
    deps: tuple[str, ...] = ()


def stage_of(tasks: list[PartitionTask], stage_id: str = "stage") -> TaskStage:
    """Wrap a fixed task list as a single dependency-free stage."""
    return TaskStage(stage_id, lambda _results: tasks)


# -- worker-process side ----------------------------------------------------

#: per-worker-process memo of built artifacts, keyed by spec fingerprint
_WORKER_MEMO: dict[tuple, Any] = {}


def _worker_init(paths: list[str]) -> None:
    """Process-pool initializer: mirror the driver's import path."""
    for p in paths:
        if p not in sys.path:
            sys.path.append(p)


def _prepare_memoized(spec: TaskSpec) -> tuple[Any, bool]:
    """Build (or memo-serve) a spec's artifact in this worker process."""
    key = (spec.kind, spec.fingerprint)
    hit = _WORKER_MEMO.get(key)
    if hit is not None:
        return hit, False
    built = spec.build()
    _WORKER_MEMO[key] = built
    return built, True


def _process_entry(payload: bytes) -> bytes:
    """Worker-side task body: unpickle, rehydrate, run, pickle back.

    Large partition data arrives as a :class:`~repro.engines.spill.
    SpillFileRef` instead of inline bytes (the file-backed shuffle):
    the worker resolves the ref against the shared host filesystem
    before running, so only the small ref ever crosses the pipe.
    """
    from repro.engines.spill import SpillFileRef, load_payload_file

    spec, data = pickle.loads(payload)
    if isinstance(data, SpillFileRef):
        data = load_payload_file(data)
    started = time.perf_counter()
    prepared, rehydrated = _prepare_memoized(spec)
    value = _RUNNERS[spec.kind](prepared, data)
    return pickle.dumps(
        (value, time.perf_counter() - started, rehydrated),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


# -- the shared process pool ------------------------------------------------

_POOL: ProcessPoolExecutor | None = None
_POOL_WIDTH = 0


def _shared_process_pool(width: int) -> ProcessPoolExecutor:
    """The module-wide spawn pool, grown (never shrunk) to ``width``.

    Spawning interpreters is expensive (each worker re-imports the
    package), so one pool is shared across engines, jobs, and tests
    for the life of the driver process.
    """
    global _POOL, _POOL_WIDTH
    if _POOL is not None and _POOL_WIDTH >= width:
        return _POOL
    import multiprocessing

    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
    _POOL = ProcessPoolExecutor(
        max_workers=width,
        mp_context=multiprocessing.get_context("spawn"),
        initializer=_worker_init,
        initargs=(list(sys.path),),
    )
    _POOL_WIDTH = width
    return _POOL


def _shutdown_pool() -> None:
    """``atexit`` hook: stop the shared pool's worker processes."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None


atexit.register(_shutdown_pool)


# -- serialization layer ----------------------------------------------------


def ship_task(spec: TaskSpec, data: Any, label: str = "") -> bytes:
    """Pickle one task payload, translating failures to EngineError.

    This is the only doorway through which work leaves the driver; a
    UDF that captured an unpicklable object (an open file, a lock, a
    lambda) surfaces here as a clear :class:`EngineError` naming the
    task — never as a raw ``PicklingError`` from deep inside the pool.
    """
    try:
        return pickle.dumps(
            (spec, data), protocol=pickle.HIGHEST_PROTOCOL
        )
    except Exception as exc:
        raise EngineError(
            f"task {label or spec.kind!r} cannot cross a process "
            f"boundary: its kernel/UDF closure or partition data is "
            f"not picklable ({type(exc).__name__}: {exc}); falling "
            f"back to in-process execution"
        ) from exc


# -- the scheduler ----------------------------------------------------------


class TaskScheduler:
    """Executes partition-task graphs in serial/threads/processes mode.

    The public surface is :meth:`run_stage` (one fan-out, results
    merged by task order) and :meth:`run_graph` (dependency-driven
    stages whose ready tasks interleave out of order).  Speculative
    re-execution of stragglers is controlled by the ``speculation*``
    knobs; ``events`` collects (name, attrs) pairs for the tracer.
    """

    def __init__(
        self,
        mode: str = "serial",
        max_parallel_tasks: int = 0,
        speculation: bool = True,
        speculation_quantile: float = 0.75,
        speculation_factor: float = 1.5,
        max_speculative_per_stage: int = 2,
        min_speculation_seconds: float = 0.05,
        spill: Any = None,
    ) -> None:
        if mode not in EXECUTION_MODES:
            raise EngineError(
                f"unknown execution mode {mode!r}: expected one of "
                f"{', '.join(EXECUTION_MODES)}"
            )
        self.mode = mode
        #: concurrent task slots (0 → one per host CPU)
        self.width = max_parallel_tasks or (os.cpu_count() or 1)
        self.speculation = speculation
        #: stage-completion fraction before stragglers are considered
        self.speculation_quantile = speculation_quantile
        #: how much slower than the median a task must be to speculate
        self.speculation_factor = speculation_factor
        self.max_speculative_per_stage = max_speculative_per_stage
        #: floor under which tasks are never worth duplicating
        self.min_speculation_seconds = min_speculation_seconds
        #: (name, attrs) pairs for the engine to drain into its tracer
        self.events: list[tuple[str, dict[str, Any]]] = []
        #: the engine's :class:`~repro.engines.spill.SpillManager` when
        #: a finite memory budget enables the file-backed shuffle —
        #: large processes-mode payloads then travel as spill-file refs
        self.spill = spill
        #: shuffle spill files shipped for the in-flight graph, deleted
        #: when the graph run finishes (speculative copies re-read them)
        self._shipped_refs: list[Any] = []
        self._thread_pool: ThreadPoolExecutor | None = None

    # -- public API --------------------------------------------------------

    def run_stage(
        self, tasks: list[PartitionTask], metrics: Any = None
    ) -> list[Any]:
        """Run one fan-out of tasks; results ordered by task position."""
        return self.run_graph([stage_of(tasks)], metrics=metrics)["stage"]

    def run_graph(
        self, stages: list[TaskStage], metrics: Any = None
    ) -> dict[str, list[Any]]:
        """Run a dependency-driven stage graph; see :class:`TaskStage`."""
        order = self._toposort(stages)
        if self.mode == "serial":
            return self._run_serial(order)
        try:
            return self._run_parallel(order, metrics)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            # Any parallel-path failure — unpicklable closures, a
            # broken pool — degrades to inline serial execution of the
            # same pure tasks.  A genuine task bug reproduces (and
            # raises) in the serial re-run, so nothing is masked.
            if metrics is not None:
                metrics.serial_fallbacks += 1
            self.events.append(
                (
                    "serial-fallback",
                    {
                        "mode": self.mode,
                        "reason": f"{type(exc).__name__}: {exc}"[:300],
                    },
                )
            )
            return self._run_serial(order)
        finally:
            if self._shipped_refs and self.spill is not None:
                for ref in self._shipped_refs:
                    self.spill.delete_ref(ref)
            self._shipped_refs.clear()

    def close(self) -> None:
        """Release the scheduler's thread pool (process pool is shared)."""
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=False, cancel_futures=True)
            self._thread_pool = None

    # -- execution paths ---------------------------------------------------

    @staticmethod
    def _toposort(stages: list[TaskStage]) -> list[TaskStage]:
        """Dependency-order the stages; reject unknown/cyclic deps."""
        by_id = {s.stage_id: s for s in stages}
        order: list[TaskStage] = []
        done: set[str] = set()
        pending = deque(stages)
        spins = 0
        while pending:
            stage = pending.popleft()
            missing = [d for d in stage.deps if d not in by_id]
            if missing:
                raise EngineError(
                    f"stage {stage.stage_id!r} depends on unknown "
                    f"stage(s) {missing}"
                )
            if all(d in done for d in stage.deps):
                order.append(stage)
                done.add(stage.stage_id)
                spins = 0
            else:
                pending.append(stage)
                spins += 1
                if spins > len(pending):
                    raise EngineError(
                        "cyclic dependencies in task-stage graph: "
                        + ", ".join(s.stage_id for s in pending)
                    )
        return order

    def _run_serial(
        self, order: list[TaskStage]
    ) -> dict[str, list[Any]]:
        """Inline execution, in order — the zero-overhead reference."""
        results: dict[str, list[Any]] = {}
        for stage in order:
            tasks = stage.build(results)
            results[stage.stage_id] = [
                _RUNNERS[t.spec.kind](t.spec.prepared(), t.data)
                for t in tasks
            ]
        return results

    def _pool(self) -> ThreadPoolExecutor | ProcessPoolExecutor:
        if self.mode == "threads":
            if self._thread_pool is None:
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=self.width,
                    thread_name_prefix="repro-task",
                )
            return self._thread_pool
        return _shared_process_pool(self.width)

    def _submit(
        self,
        pool: ThreadPoolExecutor | ProcessPoolExecutor,
        task: PartitionTask,
        metrics: Any,
    ) -> tuple[Future, bytes | None]:
        """Submit one task; returns the future plus its payload bytes
        (kept for speculative resubmission in processes mode)."""
        if self.mode == "processes":
            if self.spill is not None:
                payload, ref = self.spill.ship_task_payload(
                    task.spec, task.data, task.label
                )
                if ref is not None:
                    self._shipped_refs.append(ref)
                    # Counted once per task at submit (driver-side) so
                    # the metric stays deterministic under speculation.
                    self.spill.count_ref_read(ref)
            else:
                payload = ship_task(task.spec, task.data, task.label)
            if metrics is not None:
                metrics.ipc_bytes_shipped += len(payload)
            return pool.submit(_process_entry, payload), payload
        prepared = task.spec.prepared()
        runner = _RUNNERS[task.spec.kind]
        return pool.submit(runner, prepared, task.data), None

    def _run_parallel(
        self, order: list[TaskStage], metrics: Any
    ) -> dict[str, list[Any]]:
        """Out-of-order execution with speculative straggler re-runs."""
        pool = self._pool()
        results: dict[str, list[Any]] = {}
        collected: dict[str, dict[int, Any]] = {}
        stage_info: dict[str, dict[str, Any]] = {}
        remaining = deque(order)
        launched: set[str] = set()
        #: future -> (stage_id, position, attempt)
        in_flight: dict[Future, tuple[str, int, int]] = {}

        def launch_ready() -> None:
            while remaining and all(
                d in results for d in remaining[0].deps
            ):
                stage = remaining.popleft()
                tasks = stage.build(results)
                launched.add(stage.stage_id)
                collected[stage.stage_id] = {}
                info = {
                    "tasks": tasks,
                    "payloads": {},
                    "started": {},
                    "durations": [],
                    "speculated": set(),
                }
                stage_info[stage.stage_id] = info
                if metrics is not None and tasks:
                    metrics.parallel_stages += 1
                for pos, task in enumerate(tasks):
                    fut, payload = self._submit(pool, task, metrics)
                    in_flight[fut] = (stage.stage_id, pos, 0)
                    info["payloads"][pos] = (payload, task)
                    info["started"][pos] = time.perf_counter()
                    if metrics is not None:
                        metrics.parallel_tasks += 1
                if not tasks:
                    results[stage.stage_id] = []

        def record(stage_id: str, pos: int, attempt: int, fut: Future) -> None:
            info = stage_info[stage_id]
            got = collected[stage_id]
            raw = fut.result()
            if pos in got:
                return  # the other attempt won the race
            if self.mode == "processes":
                if metrics is not None:
                    metrics.ipc_bytes_returned += len(raw)
                value, task_seconds, rehydrated = pickle.loads(raw)
                if rehydrated and metrics is not None:
                    metrics.kernels_rehydrated += 1
            else:
                value, task_seconds = raw, 0.0
            got[pos] = value
            info["durations"].append(
                time.perf_counter() - info["started"][pos]
            )
            info["started"].pop(pos, None)
            if attempt > 0 and metrics is not None:
                metrics.speculative_wins += 1
                self.events.append(
                    (
                        "speculative-win",
                        {"stage": stage_id, "task": pos},
                    )
                )
            if len(got) == len(info["tasks"]):
                results[stage_id] = [
                    got[i] for i in range(len(info["tasks"]))
                ]

        def speculate() -> None:
            if not self.speculation:
                return
            now = time.perf_counter()
            for stage_id, info in stage_info.items():
                if stage_id in results or not info["tasks"]:
                    continue
                total = len(info["tasks"])
                done_n = len(collected[stage_id])
                if done_n < max(1, int(total * self.speculation_quantile)):
                    continue
                if len(info["speculated"]) >= self.max_speculative_per_stage:
                    continue
                durations = sorted(info["durations"])
                median = durations[len(durations) // 2] if durations else 0.0
                threshold = max(
                    self.min_speculation_seconds,
                    median * self.speculation_factor,
                )
                for pos, started in list(info["started"].items()):
                    if pos in info["speculated"]:
                        continue
                    if now - started <= threshold:
                        continue
                    payload, task = info["payloads"][pos]
                    if self.mode == "processes":
                        fut = pool.submit(_process_entry, payload)
                        if metrics is not None:
                            metrics.ipc_bytes_shipped += len(payload)
                    else:
                        fut = pool.submit(
                            _RUNNERS[task.spec.kind],
                            task.spec.prepared(),
                            task.data,
                        )
                    in_flight[fut] = (stage_id, pos, 1)
                    info["speculated"].add(pos)
                    if metrics is not None:
                        metrics.speculative_launches += 1
                    self.events.append(
                        (
                            "speculative-launch",
                            {"stage": stage_id, "task": pos},
                        )
                    )
                    if (
                        len(info["speculated"])
                        >= self.max_speculative_per_stage
                    ):
                        break

        launch_ready()
        while in_flight:
            done, _pending = wait(
                list(in_flight), timeout=0.05, return_when=FIRST_COMPLETED
            )
            for fut in done:
                stage_id, pos, attempt = in_flight.pop(fut)
                record(stage_id, pos, attempt, fut)
            speculate()
            launch_ready()
        launch_ready()
        missing = [s.stage_id for s in order if s.stage_id not in results]
        if missing:
            raise EngineError(
                f"task graph finished with incomplete stages: {missing}"
            )
        return results

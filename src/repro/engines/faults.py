"""Deterministic fault injection for the simulated cluster.

Real targets of the paper treat failure handling as an *engine* duty:
Spark recomputes lost partitions from lineage, Flink restores iterative
state from checkpoints.  This module gives the simulated engines the
same duty, deterministically, so that every recovery path can be
exercised under test and the chaos-differential suite can assert that a
faulty run is bit-identical to a fault-free one.

Three fault kinds, injected at task boundaries (every per-partition
unit of work the :class:`~repro.engines.executor.JobExecutor` charges,
plus each state-partition update of a
:class:`~repro.engines.stateful.DistributedStatefulBag`):

* **task crash** — the attempt fails; the scheduler retries it on the
  same worker with capped exponential backoff, re-charging the task's
  compute time per attempt (a fused chain kernel is *replayed* whole —
  the chain is one task).  A worker that accumulates failures is
  **blacklisted**: subsequent tasks for its partitions are charged to
  the next healthy worker.  A task that exhausts
  :attr:`RetryPolicy.max_attempts` fails the job with
  :class:`~repro.errors.TaskFailedError`.
* **worker loss** — the worker dies and is immediately replaced by a
  fresh node in the same slot (so the ``partition %% num_workers``
  placement is preserved).  Everything *cached in that worker's
  memory* is gone: in-memory :class:`~repro.engines.base.BagHandle`
  partitions are dropped (rebuilt lazily from lineage on next read)
  and stateful-bag partitions are restored from the last checkpoint
  plus the update log.  DFS-backed caches and checkpoints survive —
  they are the recovery barriers.
* **straggler** — the task completes but the worker is charged an
  extra delay, skewing the job's critical path.

Determinism: every decision is a pure function of the plan's ``seed``
and the injector's monotonically increasing task counter (via
:func:`~repro.engines.cluster.stable_hash`), so a given program on a
given engine sees the exact same fault schedule on every run.  This
holds under the host-parallel execution backend too: the
:class:`~repro.engines.executor.JobExecutor` fires ``on_task`` from its
driver-side charging loops, which walk partitions in ascending index
order *after* the :mod:`~repro.engines.scheduler` has collected the
(out-of-order, possibly multi-process) task results — the task counter
advances by logical task coordinate, never by wall-clock completion
order, so serial, threaded, and process-pool runs draw identical fault
schedules.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.engines.cluster import stable_hash
from repro.errors import EngineError, TaskFailedError

if TYPE_CHECKING:  # pragma: no cover
    from repro.engines.base import Engine
    from repro.engines.metrics import JobRun

#: fault kinds
CRASH = "crash"
WORKER_LOSS = "worker_loss"
STRAGGLER = "straggler"
#: chaos event for the out-of-core layer: shrink the driver memory
#: budget mid-run (forcing spills) without any simulated-time charge
MEMORY_SQUEEZE = "memory_squeeze"

_KINDS = frozenset({CRASH, WORKER_LOSS, STRAGGLER, MEMORY_SQUEEZE})


@dataclass(frozen=True)
class FaultEvent:
    """One explicitly targeted fault.

    Coordinates left as ``None`` are wildcards; the event fires (once)
    at the first task boundary matching every specified coordinate.
    ``attempts`` applies to crashes: how many consecutive attempts of
    the task fail before it succeeds (``attempts >=``
    :attr:`RetryPolicy.max_attempts` makes the task fail permanently).
    ``budget`` applies to memory squeezes: the new driver memory budget
    in bytes (spilling is host mechanics, so a squeeze changes no
    simulated observable — it just forces the spill machinery to work).
    """

    kind: str
    task: int | None = None
    job: int | None = None
    partition: int | None = None
    worker: int | None = None
    attempts: int = 1
    budget: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise EngineError(f"unknown fault kind {self.kind!r}")

    def matches(
        self, job: int, task: int, partition: int, worker: int
    ) -> bool:
        """Whether this event targets the given task coordinates."""
        return (
            (self.task is None or self.task == task)
            and (self.job is None or self.job == job)
            and (self.partition is None or self.partition == partition)
            and (self.worker is None or self.worker == worker)
        )


@dataclass(frozen=True)
class RetryPolicy:
    """How the simulated scheduler reacts to task failures."""

    #: attempts per task (first run + retries) before permanent failure
    max_attempts: int = 4
    #: base scheduling backoff before a retry, seconds
    backoff_seconds: float = 0.01
    #: exponential backoff growth per consecutive retry
    backoff_factor: float = 2.0
    #: failures on one worker before it is blacklisted
    blacklist_after: int = 3
    #: cap on the fraction of workers that may be blacklisted
    max_blacklisted_fraction: float = 0.5

    def backoff_total(self, attempts: int) -> float:
        """Total backoff paid across ``attempts`` consecutive retries."""
        return sum(
            self.backoff_seconds * self.backoff_factor**i
            for i in range(attempts)
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    Probabilistic rates draw from a hash of ``(seed, kind, task)`` —
    reproducible and independent of wall-clock or interpreter state.
    ``events`` adds explicitly targeted one-shot faults on top.  The
    ``max_*`` budgets bound the probabilistic injections (explicit
    events are exempt) so aggressive rates cannot starve a long run.
    """

    seed: int = 17
    task_crash_prob: float = 0.0
    worker_loss_prob: float = 0.0
    straggler_prob: float = 0.0
    #: extra busy time charged to a straggling worker, seconds
    straggler_delay_seconds: float = 0.05
    #: consecutive failed attempts per probabilistically injected crash
    crash_attempts: int = 1
    max_task_crashes: int | None = None
    max_worker_losses: int | None = None
    max_stragglers: int | None = None
    events: tuple[FaultEvent, ...] = ()

    @staticmethod
    def aggressive(seed: int = 17) -> "FaultPlan":
        """The chaos-suite default: every fault kind, guaranteed.

        Explicit early events make at least one crash, one worker
        loss, and one straggler certain even in short runs; the
        probabilistic background keeps long runs under steady fire.
        """
        return FaultPlan(
            seed=seed,
            task_crash_prob=0.03,
            worker_loss_prob=0.01,
            straggler_prob=0.03,
            max_task_crashes=64,
            max_worker_losses=8,
            max_stragglers=64,
            events=(
                FaultEvent(CRASH, task=3),
                FaultEvent(STRAGGLER, task=5),
                FaultEvent(WORKER_LOSS, task=11),
            ),
        )

    @staticmethod
    def spill_pressure(
        seed: int = 29, budget: int = 64 * 1024
    ) -> "FaultPlan":
        """Spill-under-pressure chaos: squeeze the budget, then crash.

        The memory budget collapses to ``budget`` bytes early in the
        run (evicting resident partitions to spill files), then the
        aggressive-style fault mix fires *while* the engine is
        operating out of core — crashes retried mid-spill, a worker
        lost while its cached partitions sit in spill files.  Results
        must still be bit-identical to an unconstrained fault-free run.
        """
        return FaultPlan(
            seed=seed,
            task_crash_prob=0.03,
            worker_loss_prob=0.01,
            straggler_prob=0.03,
            max_task_crashes=64,
            max_worker_losses=8,
            max_stragglers=64,
            events=(
                FaultEvent(MEMORY_SQUEEZE, task=2, budget=budget),
                FaultEvent(CRASH, task=4),
                FaultEvent(STRAGGLER, task=6),
                FaultEvent(WORKER_LOSS, task=12),
            ),
        )

    def uniform(self, kind: str, task: int) -> float:
        """Deterministic draw in ``[0, 1)`` for one decision point."""
        h = stable_hash((self.seed, kind, task))
        # One multiplicative mix so neighbouring task indices decorrelate.
        return ((h * 2654435761) & 0xFFFFFFFF) / 2**32


class FaultInjector:
    """Per-engine runtime state for one :class:`FaultPlan`.

    The plan is immutable configuration; the injector tracks what has
    actually been injected (budgets, per-worker failure counts, the
    blacklist) and is consulted by the executor and the stateful bags
    at every task boundary.
    """

    def __init__(
        self, plan: FaultPlan, policy: RetryPolicy, num_workers: int
    ) -> None:
        self.plan = plan
        self.policy = policy
        self.num_workers = num_workers
        self.task_seq = 0
        self.injected_crashes = 0
        self.injected_losses = 0
        self.injected_stragglers = 0
        self.worker_failures: Counter[int] = Counter()
        self.blacklisted: set[int] = set()
        self._fired_events: set[int] = set()
        self._suspended = 0

    # -- recovery re-entrancy guard ---------------------------------------

    @contextmanager
    def suspend(self) -> Iterator[None]:
        """No injection inside recovery work (bounded recovery)."""
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    @property
    def active(self) -> bool:
        return self._suspended == 0

    # -- worker placement --------------------------------------------------

    def effective_worker(self, worker: int) -> int:
        """Reroute a blacklisted worker's tasks to the next healthy one."""
        if not self.blacklisted:
            return worker
        w = worker % self.num_workers
        for _ in range(self.num_workers):
            if w not in self.blacklisted:
                return w
            w = (w + 1) % self.num_workers
        raise EngineError(
            "all simulated workers are blacklisted", worker=worker
        )

    # -- the task boundary -------------------------------------------------

    def on_task(
        self,
        engine: "Engine",
        job: "JobRun",
        partition: int,
        worker: int,
        task_seconds: float,
    ) -> None:
        """Consult the plan at one completed task attempt.

        May charge retry/straggler time into ``job``, blacklist the
        worker, trigger a worker loss on the engine, or raise
        :class:`TaskFailedError` for a permanently failing task.
        """
        if not self.active:
            return
        task = self.task_seq
        self.task_seq += 1
        job_index = engine.metrics.jobs_submitted
        plan = self.plan

        for idx, event in enumerate(plan.events):
            if idx in self._fired_events:
                continue
            if not event.matches(job_index, task, partition, worker):
                continue
            self._fired_events.add(idx)
            if event.kind == MEMORY_SQUEEZE:
                # Pure host-resource chaos: re-budget (and spill) now,
                # charging nothing — the simulation must not notice.
                if tracer := engine.tracer:
                    tracer.event(
                        f"fault:{MEMORY_SQUEEZE}",
                        ts=job.trace_ts(),
                        task=task,
                        budget=event.budget,
                    )
                engine.configure_memory(event.budget)
                continue
            self._apply(
                event.kind,
                engine,
                job,
                task,
                partition,
                worker,
                task_seconds,
                attempts=event.attempts,
            )

        if (
            plan.task_crash_prob
            and self._within(plan.max_task_crashes, self.injected_crashes)
            and plan.uniform(CRASH, task) < plan.task_crash_prob
        ):
            self._apply(
                CRASH,
                engine,
                job,
                task,
                partition,
                worker,
                task_seconds,
                attempts=plan.crash_attempts,
            )
        if (
            plan.worker_loss_prob
            and self._within(plan.max_worker_losses, self.injected_losses)
            and plan.uniform(WORKER_LOSS, task) < plan.worker_loss_prob
        ):
            self._apply(
                WORKER_LOSS, engine, job, task, partition, worker,
                task_seconds,
            )
        if (
            plan.straggler_prob
            and self._within(plan.max_stragglers, self.injected_stragglers)
            and plan.uniform(STRAGGLER, task) < plan.straggler_prob
        ):
            self._apply(
                STRAGGLER, engine, job, task, partition, worker,
                task_seconds,
            )

    @staticmethod
    def _within(budget: int | None, used: int) -> bool:
        return budget is None or used < budget

    # -- fault application -------------------------------------------------

    def _apply(
        self,
        kind: str,
        engine: "Engine",
        job: "JobRun",
        task: int,
        partition: int,
        worker: int,
        task_seconds: float,
        attempts: int = 1,
    ) -> None:
        tracer = engine.tracer
        if tracer is not None:
            tracer.event(
                f"fault:{kind}",
                ts=job.trace_ts(),
                task=task,
                partition=partition,
                worker=worker,
                attempts=attempts,
            )
        if kind == CRASH:
            self._crash(
                engine, job, task, partition, worker, task_seconds, attempts
            )
        elif kind == WORKER_LOSS:
            self._lose_worker(
                engine, job, partition, worker, task_seconds
            )
        elif kind == STRAGGLER:
            self.injected_stragglers += 1
            engine.metrics.stragglers_injected += 1
            job.charge_worker(worker, self.plan.straggler_delay_seconds)

    def _crash(
        self,
        engine: "Engine",
        job: "JobRun",
        task: int,
        partition: int,
        worker: int,
        task_seconds: float,
        attempts: int,
    ) -> None:
        metrics = engine.metrics
        if attempts >= self.policy.max_attempts:
            raise TaskFailedError(
                f"task {task} (partition {partition}, worker {worker}) "
                f"failed permanently after {attempts} attempts",
                job=metrics.jobs_submitted,
                task=task,
                partition=partition,
                worker=worker,
                metrics=metrics.snapshot(),
            )
        self.injected_crashes += 1
        metrics.tasks_retried += attempts
        # Each retry replays the task (for a fused chain: the whole
        # kernel) and pays the scheduler's backoff.
        extra = attempts * task_seconds + self.policy.backoff_total(attempts)
        job.charge_worker(worker, extra)
        metrics.recovery_seconds += extra
        self.worker_failures[worker] += attempts
        if (
            self.worker_failures[worker] >= self.policy.blacklist_after
            and worker not in self.blacklisted
            and (len(self.blacklisted) + 1)
            <= self.policy.max_blacklisted_fraction * self.num_workers
        ):
            self.blacklisted.add(worker)
            metrics.workers_blacklisted += 1

    def _lose_worker(
        self,
        engine: "Engine",
        job: "JobRun",
        partition: int,
        worker: int,
        task_seconds: float,
    ) -> None:
        self.injected_losses += 1
        metrics = engine.metrics
        metrics.workers_lost += 1
        with self.suspend():
            engine.on_worker_lost(worker, job)
        # A fresh node takes the dead worker's slot; the in-flight task
        # attempt is re-run there.
        metrics.tasks_retried += 1
        extra = task_seconds + self.policy.backoff_seconds
        job.charge_worker(worker, extra)
        metrics.recovery_seconds += extra
        # The replacement node starts with a clean failure record.
        self.worker_failures[worker] = 0

"""Distributed keyed state — the engine-side StatefulBag (paper §3.1).

A :class:`DistributedStatefulBag` keeps one element per key,
hash-partitioned across the simulated workers (partitioned *by key*, so
downstream joins/groupings on the key reuse the partitioning — the
reason PageRank benefits more from caching than k-means in Section 5.2:
"PageRank stores the vertices and their ranks already partitioned by
the vertex ID in-memory in a form that is ready to be consumed by the
next iteration").

It mirrors the :class:`repro.core.stateful.StatefulBag` API so the
driver IR nodes (``StatefulUpdate`` etc.) work polymorphically over the
local and distributed implementations:

* ``bag()`` — a zero-copy snapshot as a partitioned bag;
* ``update(u)`` — per-partition point-wise update, returns the delta;
* ``update_with_messages(messages, u)`` — messages are shuffled to the
  state partitions by key and applied; returns the delta.

Fault tolerance (Flink-style iterative-state checkpointing): the bag
always holds a *checkpoint* — initially the construction-time snapshot,
which is free because the records came from the driver — plus a log of
per-partition update deltas.  Updates are keyed value replacements
(keys are never added or removed), so checkpoint + delta replay is an
exact reconstruction.  With ``engine.checkpoint_interval = N`` the
checkpoint rolls forward to the DFS every N updates and the log
truncates, bounding replay work; a worker loss restores only the dead
worker's partitions and replays only their logged deltas.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.comprehension.exprs import Attr, Ref
from repro.core.databag import DataBag
from repro.core.stateful import _default_key
from repro.engines.cluster import (
    PartitionedBag,
    Partitioner,
    hash_partition_index,
)
from repro.errors import EmmaError
from repro.lowering.combinators import ScalarFn


def _key_scalar_fn(sample: Any) -> ScalarFn:
    """The key-access IR for partitioner bookkeeping, by sampling."""
    for attr in ("key", "id"):
        if hasattr(sample, attr):
            return ScalarFn(("_s",), Attr(Ref("_s"), attr))
    raise EmmaError(
        "stateful elements need a 'key' or 'id' attribute"
    )


class DistributedStatefulBag:
    """Keyed state partitioned across simulated workers."""

    def __init__(
        self,
        engine: Any,
        records: list[Any],
        key: Callable[[Any], Any] | None = None,
    ) -> None:
        self.engine = engine
        self._key = key or _default_key
        parallelism = engine.cluster.parallelism
        self._partitions: list[dict[Any, Any]] = [
            {} for _ in range(parallelism)
        ]
        self._key_ir = _key_scalar_fn(records[0]) if records else None
        for record in records:
            k = self._key(record)
            idx = hash_partition_index(k, parallelism)
            if k in self._partitions[idx]:
                raise EmmaError(
                    f"duplicate key {k!r} while constructing stateful bag"
                )
            self._partitions[idx][k] = record
        # Checkpoint 0: the initial state (driver-resident, free).
        self._checkpoint: list[dict[Any, Any]] = [
            dict(p) for p in self._partitions
        ]
        #: (update_seq, partition_index, {key: new}) since last checkpoint
        self._log: list[tuple[int, int, dict[Any, Any]]] = []
        self._update_seq = 0
        registry = getattr(engine, "_stateful_bags", None)
        if registry is not None:
            registry.add(self)

    # -- snapshot -----------------------------------------------------------

    def bag(self) -> PartitionedBag:
        """Snapshot as a partitioned bag (keeps the key partitioning)."""
        partitioner = (
            Partitioner(self._key_ir, len(self._partitions))
            if self._key_ir is not None
            else None
        )
        return PartitionedBag(
            [list(p.values()) for p in self._partitions], partitioner
        )

    def count(self) -> int:
        """Number of keyed elements currently held."""
        return sum(len(p) for p in self._partitions)

    def __len__(self) -> int:
        return self.count()

    # -- updates ---------------------------------------------------------------

    def update(self, u: Callable[[Any], Optional[Any]]) -> Any:
        """Point-wise update over all elements; returns the delta."""
        job = self.engine._new_job()
        tracer = self.engine.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                "StatefulUpdate",
                "operator",
                ts=job.trace_ts(),
                keys=self.count(),
            )
        self._update_seq += 1
        delta_parts: list[list[Any]] = []
        for i in range(len(self._partitions)):
            partition = self._partitions[i]
            changed: dict[Any, Any] = {}
            for k, element in list(partition.items()):
                new = u(element)
                if new is None:
                    continue
                self._require_same_key(k, new)
                partition[k] = new
                changed[k] = new
            delta_parts.append(list(changed.values()))
            # Log *before* the task boundary: a worker loss observed at
            # this boundary restores this partition from checkpoint +
            # log, which must include the update it just absorbed.
            if changed:
                self._log.append((self._update_seq, i, changed))
            seconds = self.engine.cost.cpu_seconds(len(partition))
            worker = self._worker_of(i)
            job.charge_worker(worker, seconds)
            self._task_boundary(job, i, worker, seconds)
        self._maybe_checkpoint(job)
        if span is not None:
            tracer.end(
                span,
                end_ts=job.trace_ts(),
                updated=sum(len(p) for p in delta_parts),
            )
        self.engine._finish_job(job)
        return self._delta_handle(delta_parts)

    def update_with_messages(
        self,
        messages: Any,
        u: Callable[[Any, Any], Optional[Any]],
        message_key: Callable[[Any], Any] | None = None,
    ) -> Any:
        """Apply keyed messages to the state; returns the delta.

        ``messages`` may be a DeferredBag/BagHandle/DataBag/local list —
        it is executed/collected as needed and shuffled to the state
        partitions by key.
        """
        mkey = message_key or _default_key
        message_bag = self._materialize_messages(messages)
        job = self.engine._new_job()
        tracer = self.engine.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                "StatefulUpdateWithMessages",
                "operator",
                ts=job.trace_ts(),
                keys=self.count(),
                messages=message_bag.count(),
            )
        parallelism = len(self._partitions)
        # Shuffle messages to the state partitions (by state key).
        routed: list[list[Any]] = [[] for _ in range(parallelism)]
        for partition in message_bag.partitions:
            for m in partition:
                routed[hash_partition_index(mkey(m), parallelism)].append(m)
        from repro.engines.sizes import estimate_bag_bytes

        aligned = (
            message_bag.partitioner is not None
            and self._key_ir is not None
            and message_bag.partitioner.matches(
                self._key_ir, parallelism
            )
        )
        if aligned:
            # Messages are already hash-partitioned on the state key;
            # the routing shuffle above is a local no-op.
            self.engine.metrics.shuffles_elided += 1
            if tracer is not None:
                tracer.event(
                    "shuffle-elided",
                    ts=job.trace_ts(),
                    key=self._key_ir.describe(),
                )
        else:
            moved = estimate_bag_bytes(message_bag.collect())
            job.charge_spread(self.engine.cost.network_seconds(moved))
            self.engine.metrics.shuffle_bytes += moved
            job.add_stage()
        self._update_seq += 1
        delta_parts: list[list[Any]] = []
        for i in range(len(self._partitions)):
            partition, msgs = self._partitions[i], routed[i]
            changed: dict[Any, Any] = {}
            for m in msgs:
                k = mkey(m)
                current = partition.get(k)
                if current is None:
                    continue
                new = u(current, m)
                if new is None:
                    continue
                self._require_same_key(k, new)
                partition[k] = new
                changed[k] = new
            delta_parts.append(list(changed.values()))
            if changed:
                self._log.append((self._update_seq, i, changed))
            seconds = self.engine.cost.cpu_seconds(len(msgs))
            worker = self._worker_of(i)
            job.charge_worker(worker, seconds)
            self._task_boundary(job, i, worker, seconds)
        self._maybe_checkpoint(job)
        if span is not None:
            tracer.end(
                span,
                end_ts=job.trace_ts(),
                updated=sum(len(p) for p in delta_parts),
            )
        self.engine._finish_job(job)
        return self._delta_handle(delta_parts)

    # -- fault tolerance -------------------------------------------------------

    def _worker_of(self, partition_index: int) -> int:
        worker = partition_index % self.engine.cluster.num_workers
        faults = self.engine.faults
        if faults is not None and faults.blacklisted:
            worker = faults.effective_worker(worker)
        return worker

    def _task_boundary(
        self, job: Any, partition_index: int, worker: int, seconds: float
    ) -> None:
        """Each state-partition update is one task attempt."""
        faults = self.engine.faults
        if faults is not None and faults.active:
            faults.on_task(
                self.engine, job, partition_index, worker, seconds
            )

    def _maybe_checkpoint(self, job: Any) -> None:
        """Roll the checkpoint forward and truncate the replay log."""
        interval = getattr(self.engine, "checkpoint_interval", 0)
        if not interval or self._update_seq % interval != 0:
            return
        from repro.engines.sizes import estimate_bag_bytes

        self._checkpoint = [dict(p) for p in self._partitions]
        self._log.clear()
        nbytes = sum(
            estimate_bag_bytes(list(p.values())) for p in self._checkpoint
        )
        job.charge_spread(self.engine.cost.dfs_write_seconds(nbytes))
        self.engine.metrics.dfs_write_bytes += nbytes
        self.engine.metrics.checkpoints_written += 1
        tracer = self.engine.tracer
        if tracer is not None:
            tracer.event(
                "checkpoint",
                ts=job.trace_ts(),
                bytes=nbytes,
                update_seq=self._update_seq,
            )

    def on_worker_lost(self, worker: int, job: Any) -> None:
        """Restore the dead worker's state partitions.

        Each lost partition is rebuilt from the checkpoint copy with its
        logged deltas replayed in order — an exact reconstruction, since
        updates only replace values under existing keys.  Called with
        fault injection suspended, so restoration cannot cascade.
        """
        from repro.engines.sizes import estimate_bag_bytes

        num_workers = self.engine.cluster.num_workers
        lost = [
            i
            for i in range(len(self._partitions))
            if i % num_workers == worker
        ]
        if not lost:
            return
        replayed = 0
        restored_bytes = 0
        for i in lost:
            restored = dict(self._checkpoint[i])
            for _seq, pi, delta in self._log:
                if pi == i:
                    restored.update(delta)
                    replayed += 1
            self._partitions[i] = restored
            restored_bytes += estimate_bag_bytes(list(restored.values()))
        seconds = self.engine.cost.dfs_read_seconds(
            restored_bytes
        ) + self.engine.cost.cpu_seconds(replayed)
        job.charge_worker(worker, seconds)
        metrics = self.engine.metrics
        metrics.dfs_read_bytes += restored_bytes
        metrics.checkpoint_restores += 1
        metrics.state_updates_replayed += replayed
        tracer = self.engine.tracer
        if tracer is not None:
            tracer.event(
                "recover:state-restore",
                ts=job.trace_ts(),
                partitions=len(lost),
                replayed=replayed,
                seconds=round(seconds, 9),
            )
        metrics.recovery_seconds += seconds

    # -- helpers ---------------------------------------------------------------

    def _materialize_messages(self, messages: Any) -> PartitionedBag:
        from repro.engines.base import BagHandle, DeferredBag
        from repro.engines.executor import JobExecutor

        if isinstance(messages, PartitionedBag):
            return messages
        if isinstance(messages, DeferredBag):
            job = self.engine._new_job()
            bag = JobExecutor(self.engine, messages.env, job).run_bag(
                messages.root
            )
            self.engine._finish_job(job)
            return bag
        if isinstance(messages, BagHandle):
            return messages.bag
        if isinstance(messages, DataBag):
            return PartitionedBag.from_records(
                messages.fetch(), len(self._partitions)
            )
        if isinstance(messages, (list, tuple)):
            return PartitionedBag.from_records(
                list(messages), len(self._partitions)
            )
        raise EmmaError(
            f"cannot use {type(messages).__name__} as update messages"
        )

    def _delta_handle(self, delta_parts: list[list[Any]]) -> Any:
        from repro.engines.base import BagHandle

        partitioner = (
            Partitioner(self._key_ir, len(self._partitions))
            if self._key_ir is not None
            else None
        )
        bag = PartitionedBag(delta_parts, partitioner)
        # Deltas are driver-originated (no dataflow lineage): keep a
        # driver replica so a cached delta survives worker loss.
        handle = BagHandle(
            self.engine,
            bag,
            "memory",
            recovery_partitions=[list(p) for p in delta_parts],
        )
        registry = getattr(self.engine, "_cached_handles", None)
        if registry is not None:
            registry.add(handle)
        return handle

    def _require_same_key(self, old_key: Any, new_element: Any) -> None:
        if self._key(new_element) != old_key:
            raise EmmaError(
                "point-wise updates must preserve element keys"
            )

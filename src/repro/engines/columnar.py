"""Columnar partition representation for vectorized chain kernels.

The physical layer normally walks partitions as Python lists of
records, row-at-a-time.  This module reifies a partition as a
:class:`ColumnBatch` — one contiguous column per record field plus a
:class:`ColumnSchema` — so that fused chain kernels can execute
batch-at-a-time (maps over whole columns, filters via selection masks)
instead of once per record.  The move follows "Reify Your Collection
Queries for Modularity and Speed!" (Giarrusso et al.), applied at the
partition level.

Storage is tiered per column:

* ``numpy`` arrays for ``float``/``bool`` columns when numpy is
  importable (``HAS_NUMPY``) — vector arithmetic runs in C;
* numpy ``<U`` unicode buffers for homogeneous ``str`` columns (date
  filters compare in C), unless a value embeds ``NUL`` — a ``<U``
  buffer would silently drop trailing ``"\\x00"`` characters;
* ``array.array`` typed buffers for numeric columns without numpy —
  still a compact, picklable representation for IPC;
* plain Python lists for ints (arbitrary precision is sacred) and
  everything else.

For kernel evaluation, non-numpy columns are wrapped in
:class:`PyColumn`, an element-wise operator-overloading shim whose
arithmetic is *exactly* Python's (arbitrary-precision ints included),
so columnar results are bit-identical to row-at-a-time results.

Integer columns deliberately avoid numpy: ``int64`` overflow would
silently diverge from Python's arbitrary-precision semantics.  Only
``float`` and ``bool`` columns take the numpy fast path.
"""

from __future__ import annotations

import dataclasses
import operator
import os
from array import array
from typing import Any, Callable, Iterable, Sequence

from repro.errors import EngineError

try:  # pragma: no cover - exercised indirectly by both CI variants
    import numpy as _np

    HAS_NUMPY = True
except Exception:  # pragma: no cover
    _np = None
    HAS_NUMPY = False

#: Valid values of the ``columnar`` execution knob.
COLUMNAR_MODES = ("auto", "on", "off")

#: Record layouts a batch can represent.
RECORD_KINDS = ("tuple", "dataclass", "scalar")


def default_columnar_mode() -> str:
    """The columnar mode from ``REPRO_COLUMNAR`` (default ``auto``).

    ``auto`` vectorizes eligible chains only when numpy is available;
    ``on`` forces the columnar path (pure-Python column fallback);
    ``off`` disables it entirely.
    """
    mode = os.environ.get("REPRO_COLUMNAR", "auto").strip().lower()
    if mode not in COLUMNAR_MODES:
        raise EngineError(
            f"REPRO_COLUMNAR={mode!r} is not one of {COLUMNAR_MODES}"
        )
    return mode


class PyColumn:
    """A list-backed column with element-wise Python operators.

    Every binary operator maps Python's own scalar operator over the
    elements, pairing element-wise against another column (or any
    sequence of equal length) and broadcasting scalars.  This is the
    semantics-preserving fallback used for ``str``/object columns and,
    without numpy, for numeric columns: results are exactly what a
    row-at-a-time loop would compute.
    """

    __slots__ = ("data",)

    #: numpy must never absorb a PyColumn operand into an object
    #: array: returning NotImplemented from ufuncs routes mixed
    #: ndarray/PyColumn operations through the reflected PyColumn
    #: operator, which keeps element-wise Python semantics.
    __array_ufunc__ = None

    def __init__(self, data: Sequence[Any]) -> None:
        self.data = data if isinstance(data, list) else list(data)

    def __len__(self) -> int:
        return len(self.data)

    def tolist(self) -> list:
        """The column values as a plain Python list."""
        return list(self.data)

    # -- element-wise combination ------------------------------------
    def _zip(self, other: Any, op: Callable[[Any, Any], Any]) -> "PyColumn":
        if isinstance(other, (PyColumn, StrColumn)):
            other = other.tolist()
        if _np is not None and isinstance(other, _np.ndarray):
            other = other.tolist()
        if isinstance(other, (list, array)):
            return PyColumn([op(a, b) for a, b in zip(self.data, other)])
        return PyColumn([op(a, other) for a in self.data])

    def _rzip(self, other: Any, op: Callable[[Any, Any], Any]) -> "PyColumn":
        if isinstance(other, (PyColumn, StrColumn)):
            other = other.tolist()
        if _np is not None and isinstance(other, _np.ndarray):
            other = other.tolist()
        if isinstance(other, (list, array)):
            return PyColumn([op(b, a) for a, b in zip(self.data, other)])
        return PyColumn([op(other, a) for a in self.data])

    def __add__(self, other: Any) -> "PyColumn":
        return self._zip(other, lambda a, b: a + b)

    def __radd__(self, other: Any) -> "PyColumn":
        return self._rzip(other, lambda a, b: a + b)

    def __sub__(self, other: Any) -> "PyColumn":
        return self._zip(other, lambda a, b: a - b)

    def __rsub__(self, other: Any) -> "PyColumn":
        return self._rzip(other, lambda a, b: a - b)

    def __mul__(self, other: Any) -> "PyColumn":
        return self._zip(other, lambda a, b: a * b)

    def __rmul__(self, other: Any) -> "PyColumn":
        return self._rzip(other, lambda a, b: a * b)

    def __truediv__(self, other: Any) -> "PyColumn":
        return self._zip(other, lambda a, b: a / b)

    def __rtruediv__(self, other: Any) -> "PyColumn":
        return self._rzip(other, lambda a, b: a / b)

    def __floordiv__(self, other: Any) -> "PyColumn":
        return self._zip(other, lambda a, b: a // b)

    def __rfloordiv__(self, other: Any) -> "PyColumn":
        return self._rzip(other, lambda a, b: a // b)

    def __mod__(self, other: Any) -> "PyColumn":
        return self._zip(other, lambda a, b: a % b)

    def __rmod__(self, other: Any) -> "PyColumn":
        return self._rzip(other, lambda a, b: a % b)

    def __neg__(self) -> "PyColumn":
        return PyColumn([-a for a in self.data])

    def __lt__(self, other: Any) -> "PyColumn":
        return self._zip(other, lambda a, b: a < b)

    def __le__(self, other: Any) -> "PyColumn":
        return self._zip(other, lambda a, b: a <= b)

    def __gt__(self, other: Any) -> "PyColumn":
        return self._zip(other, lambda a, b: a > b)

    def __ge__(self, other: Any) -> "PyColumn":
        return self._zip(other, lambda a, b: a >= b)

    def __eq__(self, other: Any) -> "PyColumn":  # type: ignore[override]
        return self._zip(other, lambda a, b: a == b)

    def __ne__(self, other: Any) -> "PyColumn":  # type: ignore[override]
        return self._zip(other, lambda a, b: a != b)

    __hash__ = None  # element-wise __eq__ makes instances unhashable

    def __repr__(self) -> str:
        return f"PyColumn({self.data!r})"


class StrColumn:
    """A numpy-``<U``-backed string column.

    The six comparisons run vectorized in C on the unicode buffer —
    numpy's per-code-point ordering is exactly Python's ``str``
    ordering, so a date filter like ``ship_date <= cutoff`` stays
    bit-identical while dropping the per-row Python dispatch.  Every
    other operator (concatenation, repetition, formatting, or any
    comparison against a non-string operand) falls back to element-wise
    Python through :class:`PyColumn`, so semantics never drift.
    """

    __slots__ = ("arr",)

    #: see :attr:`PyColumn.__array_ufunc__`
    __array_ufunc__ = None

    def __init__(self, arr: Any) -> None:
        self.arr = arr

    def __len__(self) -> int:
        return len(self.arr)

    def tolist(self) -> list:
        """The column values as exact Python strings."""
        return self.arr.tolist()

    def _py(self) -> PyColumn:
        return PyColumn(self.arr.tolist())

    def _cmp(self, other: Any, name: str) -> Any:
        if isinstance(other, StrColumn):
            other = other.arr
        elif not isinstance(other, str):
            # Mixed-type comparison: replay Python's own semantics
            # element-wise rather than trusting numpy's coercions.
            return getattr(self._py(), name)(other)
        return getattr(self.arr, name)(other)

    def __lt__(self, other: Any) -> Any:
        return self._cmp(other, "__lt__")

    def __le__(self, other: Any) -> Any:
        return self._cmp(other, "__le__")

    def __gt__(self, other: Any) -> Any:
        return self._cmp(other, "__gt__")

    def __ge__(self, other: Any) -> Any:
        return self._cmp(other, "__ge__")

    def __eq__(self, other: Any) -> Any:  # type: ignore[override]
        return self._cmp(other, "__eq__")

    def __ne__(self, other: Any) -> Any:  # type: ignore[override]
        return self._cmp(other, "__ne__")

    __hash__ = None  # element-wise __eq__ makes instances unhashable

    def __add__(self, other: Any) -> PyColumn:
        return self._py() + other

    def __radd__(self, other: Any) -> PyColumn:
        return self._py()._rzip(other, lambda a, b: a + b)

    def __mul__(self, other: Any) -> PyColumn:
        return self._py() * other

    def __rmul__(self, other: Any) -> PyColumn:
        return self._py()._rzip(other, lambda a, b: a * b)

    def __mod__(self, other: Any) -> PyColumn:
        return self._py() % other

    def __rmod__(self, other: Any) -> PyColumn:
        return self._py()._rzip(other, lambda a, b: a % b)

    def __repr__(self) -> str:
        return f"StrColumn({self.arr!r})"


@dataclasses.dataclass(frozen=True)
class ColumnSchema:
    """The record layout of a :class:`ColumnBatch`.

    ``kind`` is one of :data:`RECORD_KINDS`; ``fields`` names the
    columns (dataclass field names, or ``_0``/``_1``/... positions);
    ``ctor`` is the record class for ``dataclass`` batches (``None``
    otherwise).
    """

    kind: str
    fields: tuple[str, ...]
    ctor: type | None = None

    @property
    def arity(self) -> int:
        """Number of columns per record."""
        return len(self.fields)

    def signature(self) -> tuple:
        """A hashable, process-independent identity for kernel caches."""
        ctor_id = None
        if self.ctor is not None:
            ctor_id = (self.ctor.__module__, self.ctor.__qualname__)
        return (self.kind, self.fields, ctor_id)


def _dataclass_schema(rec_type: type) -> ColumnSchema | None:
    """A schema for a plain dataclass record type, or ``None``."""
    if not dataclasses.is_dataclass(rec_type):
        return None
    if hasattr(rec_type, "__post_init__"):
        return None
    flds = dataclasses.fields(rec_type)
    if not flds:
        return None
    if any(not f.init or getattr(f, "kw_only", False) for f in flds):
        return None
    return ColumnSchema(
        "dataclass", tuple(f.name for f in flds), rec_type
    )


def infer_schema(records: Sequence[Any]) -> tuple[ColumnSchema | None, str]:
    """Infer a column schema from a sample of a partition.

    Returns ``(schema, "")`` on success or ``(None, reason)`` when the
    records cannot be represented columnar (heterogeneous types,
    unsupported record class, ...).  The sample is the first record;
    homogeneity over the full partition is validated during the actual
    batch build.
    """
    if not records:
        return None, "empty partition"
    first = records[0]
    rec_type = type(first)
    if rec_type is tuple:
        if not first:
            return None, "zero-arity tuple records"
        fields = tuple(f"_{i}" for i in range(len(first)))
        return ColumnSchema("tuple", fields), ""
    if rec_type in (int, float, bool, str):
        return ColumnSchema("scalar", ("_0",)), ""
    schema = _dataclass_schema(rec_type)
    if schema is not None:
        return schema, ""
    return None, f"unsupported record type {rec_type.__name__}"


def _pack_column(values: list) -> Any:
    """Pick the tightest backing store for one column of values.

    numpy float64/bool arrays when available; ``array.array`` typed
    buffers for numerics otherwise; plain lists for ints (exact
    arbitrary-precision semantics), strings, and objects.
    """
    kinds = set(map(type, values))
    if kinds == {float}:
        if HAS_NUMPY:
            return _np.asarray(values, dtype=_np.float64)
        return array("d", values)
    if kinds == {bool}:
        if HAS_NUMPY:
            return _np.asarray(values, dtype=_np.bool_)
        return values
    if kinds == {int}:
        # Plain list: numpy int64 would silently overflow where Python
        # promotes to arbitrary precision.
        return values
    if kinds == {str} and HAS_NUMPY:
        # ``<U`` buffers drop *trailing* NULs on the way back out, so
        # any embedded NUL keeps the column a plain list.
        if not any("\x00" in v for v in values):
            return _np.asarray(values)
    return values


def build_batch(
    records: Sequence[Any],
    schema: ColumnSchema,
    needed: frozenset[int] | None = None,
) -> tuple["ColumnBatch | None", str]:
    """Build a :class:`ColumnBatch` from a partition of records.

    ``needed`` restricts the build to the column positions a kernel
    actually reads (projection pushdown); unneeded columns stay
    ``None``.  Returns ``(batch, "")`` or ``(None, reason)`` when the
    partition does not match ``schema`` (the caller falls back to the
    row-at-a-time kernel for this partition).
    """
    if not records:
        return None, "empty partition"
    rec_types = set(map(type, records))
    if schema.kind == "dataclass":
        if rec_types != {schema.ctor}:
            return None, "mixed record types in partition"
    elif schema.kind == "tuple":
        if rec_types != {tuple}:
            return None, "mixed record types in partition"
        if any(len(r) != schema.arity for r in records):
            return None, "ragged tuple arity in partition"
    else:  # scalar
        if not rec_types <= {int, float, bool, str}:
            return None, "non-scalar records in scalar partition"
    n = len(records)
    columns: list[Any] = [None] * schema.arity
    positions = (
        list(range(schema.arity))
        if needed is None
        else sorted(needed)
    )
    try:
        for i, values in zip(
            positions, _extract_columns(records, schema, positions)
        ):
            columns[i] = _pack_column(values)
    except (AttributeError, IndexError, TypeError, OverflowError) as exc:
        return None, f"column build failed: {exc}"
    return ColumnBatch(schema, tuple(columns), n), ""


def _extract_columns(
    records: Sequence[Any],
    schema: ColumnSchema,
    positions: list[int],
) -> list[list]:
    """Pull the requested column positions out of a partition.

    The transpose is the hot loop of batch building, so it stays at the
    C level: one ``attrgetter``/``itemgetter`` per record (returning
    all requested fields at once) and a ``zip(*...)`` to turn the
    record-major stream column-major.
    """
    if schema.kind == "scalar":
        return [list(records)]
    if not positions:
        return []
    if schema.kind == "dataclass":
        getter = operator.attrgetter(
            *(schema.fields[i] for i in positions)
        )
    else:
        getter = operator.itemgetter(*positions)
    if len(positions) == 1:
        return [list(map(getter, records))]
    return [list(col) for col in zip(*map(getter, records))]


def _column_list(col: Any) -> list:
    """One column's values back as exact Python scalars."""
    if col is None:
        raise EngineError("cannot materialize a projected-away column")
    if isinstance(col, PyColumn):
        return col.tolist()
    if isinstance(col, list):
        return col
    # numpy arrays and array.array both expose ``tolist`` returning
    # native Python ints/floats/bools.
    return col.tolist()


class ColumnBatch:
    """One partition, stored as columns.

    ``columns`` holds one backing store per schema field (``None`` for
    columns projected away at build time); ``nrows`` is the row count.
    Batches pickle as their typed buffers, which is what makes shipping
    them across the process-pool boundary cheaper than row lists.
    """

    def __init__(
        self,
        schema: ColumnSchema,
        columns: tuple[Any, ...],
        nrows: int,
    ) -> None:
        self.schema = schema
        self.columns = columns
        self.nrows = nrows

    def __len__(self) -> int:
        return self.nrows

    def to_records(self) -> list:
        """Reconstruct the exact row-at-a-time records."""
        lists = [_column_list(c) for c in self.columns]
        if self.schema.kind == "scalar":
            return lists[0]
        if self.schema.kind == "tuple":
            return list(zip(*lists)) if lists else []
        ctor = self.schema.ctor
        return [ctor(*vals) for vals in zip(*lists)]

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        """A contiguous row range — zero-copy for numpy columns."""
        cols = tuple(
            None if c is None else c[start:stop] for c in self.columns
        )
        n = max(0, min(stop, self.nrows) - max(start, 0))
        return ColumnBatch(self.schema, cols, n)

    def select(self, mask: Any) -> "ColumnBatch":
        """Rows where ``mask`` is true (a selection-mask filter)."""
        cols = tuple(
            None if c is None else select_column(c, mask)
            for c in self.columns
        )
        return ColumnBatch(self.schema, cols, mask_count(mask))

    def column_nbytes(self) -> tuple[int, ...]:
        """Actual buffer bytes per column (0 for projected columns)."""
        out = []
        for col in self.columns:
            if col is None:
                out.append(0)
            elif isinstance(col, StrColumn):
                out.append(int(col.arr.nbytes))
            elif _np is not None and isinstance(col, _np.ndarray):
                out.append(int(col.nbytes))
            elif isinstance(col, array):
                out.append(len(col) * col.itemsize)
            else:
                from repro.engines.sizes import estimate_column_bytes

                data = col.data if isinstance(col, PyColumn) else col
                out.append(estimate_column_bytes(data))
        return tuple(out)

    def nbytes(self) -> int:
        """Total buffer bytes across columns."""
        return sum(self.column_nbytes())

    def __repr__(self) -> str:
        return (
            f"ColumnBatch(kind={self.schema.kind!r}, "
            f"arity={self.schema.arity}, nrows={self.nrows})"
        )


def batch_from_records(
    records: Sequence[Any],
) -> tuple[ColumnBatch | None, str]:
    """Infer a schema and build a full (unprojected) batch in one go."""
    schema, reason = infer_schema(records)
    if schema is None:
        return None, reason
    return build_batch(records, schema)


# ---------------------------------------------------------------------------
# Vector-evaluation helpers (the namespace of generated vector kernels)
# ---------------------------------------------------------------------------


def as_vector(col: Any) -> Any:
    """A column as an operator-overloading vector (numpy or PyColumn)."""
    if _np is not None and isinstance(col, _np.ndarray):
        if col.dtype.kind in ("U", "S"):
            return StrColumn(col)
        return col
    if isinstance(col, (PyColumn, StrColumn)):
        return col
    return PyColumn(col)


def broadcast(value: Any, n: int) -> Any:
    """A constant as an ``n``-row column."""
    if _np is not None and isinstance(value, (float, bool)):
        return _np.full(n, value)
    return PyColumn([value] * n)


def as_mask(value: Any, n: int) -> Any:
    """Normalize a predicate result to a boolean selection mask.

    Row-at-a-time filters apply Python truthiness; this reproduces it
    element-wise for every column representation.
    """
    if _np is not None and isinstance(value, _np.ndarray):
        if value.dtype == _np.bool_:
            return value
        return value != 0
    if isinstance(value, StrColumn):
        return value.arr != ""  # str truthiness == non-emptiness
    if isinstance(value, PyColumn):
        return PyColumn([bool(v) for v in value.data])
    # A scalar predicate (constant filter): broadcast its truthiness.
    truth = bool(value)
    if _np is not None:
        return _np.full(n, truth)
    return PyColumn([truth] * n)


def mask_count(mask: Any) -> int:
    """Number of selected rows in a mask."""
    if _np is not None and isinstance(mask, _np.ndarray):
        return int(mask.sum())
    data = mask.data if isinstance(mask, PyColumn) else mask
    return sum(1 for v in data if v)


def select_column(col: Any, mask: Any) -> Any:
    """Apply a selection mask to one column."""
    if isinstance(col, StrColumn):
        return StrColumn(select_column(col.arr, mask))
    if _np is not None and isinstance(col, _np.ndarray):
        if isinstance(mask, PyColumn):
            mask = _np.asarray(mask.data, dtype=_np.bool_)
        return col[mask]
    data = col.data if isinstance(col, PyColumn) else col
    mdata = mask.data if isinstance(mask, PyColumn) else mask
    if _np is not None and isinstance(mdata, _np.ndarray):
        mdata = mdata.tolist()
    kept = [v for v, keep in zip(data, mdata) if keep]
    return PyColumn(kept) if isinstance(col, PyColumn) else kept


def mask_and(a: Any, b: Any) -> Any:
    """Element-wise conjunction of two boolean masks."""
    if (
        _np is not None
        and isinstance(a, _np.ndarray)
        and isinstance(b, _np.ndarray)
    ):
        return a & b
    adata = a.data if isinstance(a, PyColumn) else a
    bdata = b.data if isinstance(b, PyColumn) else b
    if _np is not None and isinstance(adata, _np.ndarray):
        adata = adata.tolist()
    if _np is not None and isinstance(bdata, _np.ndarray):
        bdata = bdata.tolist()
    return PyColumn([bool(x) and bool(y) for x, y in zip(adata, bdata)])


def mask_or(a: Any, b: Any) -> Any:
    """Element-wise disjunction of two boolean masks."""
    if (
        _np is not None
        and isinstance(a, _np.ndarray)
        and isinstance(b, _np.ndarray)
    ):
        return a | b
    adata = a.data if isinstance(a, PyColumn) else a
    bdata = b.data if isinstance(b, PyColumn) else b
    if _np is not None and isinstance(adata, _np.ndarray):
        adata = adata.tolist()
    if _np is not None and isinstance(bdata, _np.ndarray):
        bdata = bdata.tolist()
    return PyColumn([bool(x) or bool(y) for x, y in zip(adata, bdata)])


def mask_not(a: Any) -> Any:
    """Element-wise negation of a boolean mask."""
    if _np is not None and isinstance(a, _np.ndarray):
        return ~a
    data = a.data if isinstance(a, PyColumn) else a
    return PyColumn([not bool(v) for v in data])

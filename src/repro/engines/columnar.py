"""Columnar partition representation for vectorized chain kernels.

The physical layer normally walks partitions as Python lists of
records, row-at-a-time.  This module reifies a partition as a
:class:`ColumnBatch` — one contiguous column per record field plus a
:class:`ColumnSchema` — so that fused chain kernels can execute
batch-at-a-time (maps over whole columns, filters via selection masks)
instead of once per record.  The move follows "Reify Your Collection
Queries for Modularity and Speed!" (Giarrusso et al.), applied at the
partition level.

Storage is tiered per column:

* ``numpy`` arrays for ``float``/``bool`` columns when numpy is
  importable (``HAS_NUMPY``) — vector arithmetic runs in C;
* numpy ``<U`` unicode buffers for homogeneous ``str`` columns (date
  filters compare in C), unless a value embeds ``NUL`` — a ``<U``
  buffer would silently drop trailing ``"\\x00"`` characters;
* ``array.array`` typed buffers for numeric columns without numpy —
  still a compact, picklable representation for IPC;
* plain Python lists for ints (arbitrary precision is sacred) and
  everything else.

For kernel evaluation, non-numpy columns are wrapped in
:class:`PyColumn`, an element-wise operator-overloading shim whose
arithmetic is *exactly* Python's (arbitrary-precision ints included),
so columnar results are bit-identical to row-at-a-time results.

Integer columns deliberately avoid numpy: ``int64`` overflow would
silently diverge from Python's arbitrary-precision semantics.  Only
``float`` and ``bool`` columns take the numpy fast path.
"""

from __future__ import annotations

import dataclasses
import operator
import os
import zlib
from array import array
from typing import Any, Callable, Iterable, Sequence

from repro.errors import EngineError

try:  # pragma: no cover - exercised indirectly by both CI variants
    import numpy as _np

    HAS_NUMPY = True
except Exception:  # pragma: no cover
    _np = None
    HAS_NUMPY = False

#: Valid values of the ``columnar`` execution knob.
COLUMNAR_MODES = ("auto", "on", "off")

#: Record layouts a batch can represent.
RECORD_KINDS = ("tuple", "dataclass", "scalar")


def default_columnar_mode() -> str:
    """The columnar mode from ``REPRO_COLUMNAR`` (default ``auto``).

    ``auto`` vectorizes eligible chains only when numpy is available;
    ``on`` forces the columnar path (pure-Python column fallback);
    ``off`` disables it entirely.
    """
    mode = os.environ.get("REPRO_COLUMNAR", "auto").strip().lower()
    if mode not in COLUMNAR_MODES:
        raise EngineError(
            f"REPRO_COLUMNAR={mode!r} is not one of {COLUMNAR_MODES}"
        )
    return mode


def default_columnar_exchange() -> str:
    """The exchange-plane mode from ``REPRO_COLUMNAR_EXCHANGE``.

    Controls whether shuffles, hash joins, and group-bys run over
    :class:`ColumnBatch` payloads (``auto`` engages when numpy is
    available, ``on`` forces the batch path with the pure-Python
    column fallback, ``off`` keeps every exchange row-at-a-time).
    Independent of the chain-kernel ``columnar`` knob: a bag can take
    the columnar exchange even when its chains stayed row-mode.
    """
    mode = (
        os.environ.get("REPRO_COLUMNAR_EXCHANGE", "auto").strip().lower()
    )
    if mode not in COLUMNAR_MODES:
        raise EngineError(
            f"REPRO_COLUMNAR_EXCHANGE={mode!r} is not one of "
            f"{COLUMNAR_MODES}"
        )
    return mode


class PyColumn:
    """A list-backed column with element-wise Python operators.

    Every binary operator maps Python's own scalar operator over the
    elements, pairing element-wise against another column (or any
    sequence of equal length) and broadcasting scalars.  This is the
    semantics-preserving fallback used for ``str``/object columns and,
    without numpy, for numeric columns: results are exactly what a
    row-at-a-time loop would compute.
    """

    __slots__ = ("data",)

    #: numpy must never absorb a PyColumn operand into an object
    #: array: returning NotImplemented from ufuncs routes mixed
    #: ndarray/PyColumn operations through the reflected PyColumn
    #: operator, which keeps element-wise Python semantics.
    __array_ufunc__ = None

    def __init__(self, data: Sequence[Any]) -> None:
        self.data = data if isinstance(data, list) else list(data)

    def __len__(self) -> int:
        return len(self.data)

    def tolist(self) -> list:
        """The column values as a plain Python list."""
        return list(self.data)

    # -- element-wise combination ------------------------------------
    def _zip(self, other: Any, op: Callable[[Any, Any], Any]) -> "PyColumn":
        if isinstance(other, (PyColumn, StrColumn)):
            other = other.tolist()
        if _np is not None and isinstance(other, _np.ndarray):
            other = other.tolist()
        if isinstance(other, (list, array)):
            return PyColumn([op(a, b) for a, b in zip(self.data, other)])
        return PyColumn([op(a, other) for a in self.data])

    def _rzip(self, other: Any, op: Callable[[Any, Any], Any]) -> "PyColumn":
        if isinstance(other, (PyColumn, StrColumn)):
            other = other.tolist()
        if _np is not None and isinstance(other, _np.ndarray):
            other = other.tolist()
        if isinstance(other, (list, array)):
            return PyColumn([op(b, a) for a, b in zip(self.data, other)])
        return PyColumn([op(other, a) for a in self.data])

    def __add__(self, other: Any) -> "PyColumn":
        return self._zip(other, lambda a, b: a + b)

    def __radd__(self, other: Any) -> "PyColumn":
        return self._rzip(other, lambda a, b: a + b)

    def __sub__(self, other: Any) -> "PyColumn":
        return self._zip(other, lambda a, b: a - b)

    def __rsub__(self, other: Any) -> "PyColumn":
        return self._rzip(other, lambda a, b: a - b)

    def __mul__(self, other: Any) -> "PyColumn":
        return self._zip(other, lambda a, b: a * b)

    def __rmul__(self, other: Any) -> "PyColumn":
        return self._rzip(other, lambda a, b: a * b)

    def __truediv__(self, other: Any) -> "PyColumn":
        return self._zip(other, lambda a, b: a / b)

    def __rtruediv__(self, other: Any) -> "PyColumn":
        return self._rzip(other, lambda a, b: a / b)

    def __floordiv__(self, other: Any) -> "PyColumn":
        return self._zip(other, lambda a, b: a // b)

    def __rfloordiv__(self, other: Any) -> "PyColumn":
        return self._rzip(other, lambda a, b: a // b)

    def __mod__(self, other: Any) -> "PyColumn":
        return self._zip(other, lambda a, b: a % b)

    def __rmod__(self, other: Any) -> "PyColumn":
        return self._rzip(other, lambda a, b: a % b)

    def __neg__(self) -> "PyColumn":
        return PyColumn([-a for a in self.data])

    def __lt__(self, other: Any) -> "PyColumn":
        return self._zip(other, lambda a, b: a < b)

    def __le__(self, other: Any) -> "PyColumn":
        return self._zip(other, lambda a, b: a <= b)

    def __gt__(self, other: Any) -> "PyColumn":
        return self._zip(other, lambda a, b: a > b)

    def __ge__(self, other: Any) -> "PyColumn":
        return self._zip(other, lambda a, b: a >= b)

    def __eq__(self, other: Any) -> "PyColumn":  # type: ignore[override]
        return self._zip(other, lambda a, b: a == b)

    def __ne__(self, other: Any) -> "PyColumn":  # type: ignore[override]
        return self._zip(other, lambda a, b: a != b)

    __hash__ = None  # element-wise __eq__ makes instances unhashable

    def __repr__(self) -> str:
        return f"PyColumn({self.data!r})"


class StrColumn:
    """A numpy-``<U``-backed string column.

    The six comparisons run vectorized in C on the unicode buffer —
    numpy's per-code-point ordering is exactly Python's ``str``
    ordering, so a date filter like ``ship_date <= cutoff`` stays
    bit-identical while dropping the per-row Python dispatch.  Every
    other operator (concatenation, repetition, formatting, or any
    comparison against a non-string operand) falls back to element-wise
    Python through :class:`PyColumn`, so semantics never drift.
    """

    __slots__ = ("arr",)

    #: see :attr:`PyColumn.__array_ufunc__`
    __array_ufunc__ = None

    def __init__(self, arr: Any) -> None:
        self.arr = arr

    def __len__(self) -> int:
        return len(self.arr)

    def tolist(self) -> list:
        """The column values as exact Python strings."""
        return self.arr.tolist()

    def _py(self) -> PyColumn:
        return PyColumn(self.arr.tolist())

    def _cmp(self, other: Any, name: str) -> Any:
        if isinstance(other, StrColumn):
            other = other.arr
        elif not isinstance(other, str):
            # Mixed-type comparison: replay Python's own semantics
            # element-wise rather than trusting numpy's coercions.
            return getattr(self._py(), name)(other)
        return getattr(self.arr, name)(other)

    def __lt__(self, other: Any) -> Any:
        return self._cmp(other, "__lt__")

    def __le__(self, other: Any) -> Any:
        return self._cmp(other, "__le__")

    def __gt__(self, other: Any) -> Any:
        return self._cmp(other, "__gt__")

    def __ge__(self, other: Any) -> Any:
        return self._cmp(other, "__ge__")

    def __eq__(self, other: Any) -> Any:  # type: ignore[override]
        return self._cmp(other, "__eq__")

    def __ne__(self, other: Any) -> Any:  # type: ignore[override]
        return self._cmp(other, "__ne__")

    __hash__ = None  # element-wise __eq__ makes instances unhashable

    def __add__(self, other: Any) -> PyColumn:
        return self._py() + other

    def __radd__(self, other: Any) -> PyColumn:
        return self._py()._rzip(other, lambda a, b: a + b)

    def __mul__(self, other: Any) -> PyColumn:
        return self._py() * other

    def __rmul__(self, other: Any) -> PyColumn:
        return self._py()._rzip(other, lambda a, b: a * b)

    def __mod__(self, other: Any) -> PyColumn:
        return self._py() % other

    def __rmod__(self, other: Any) -> PyColumn:
        return self._py()._rzip(other, lambda a, b: a % b)

    def __repr__(self) -> str:
        return f"StrColumn({self.arr!r})"


@dataclasses.dataclass(frozen=True)
class ColumnSchema:
    """The record layout of a :class:`ColumnBatch`.

    ``kind`` is one of :data:`RECORD_KINDS`; ``fields`` names the
    columns (dataclass field names, or ``_0``/``_1``/... positions);
    ``ctor`` is the record class for ``dataclass`` batches (``None``
    otherwise).
    """

    kind: str
    fields: tuple[str, ...]
    ctor: type | None = None

    @property
    def arity(self) -> int:
        """Number of columns per record."""
        return len(self.fields)

    def signature(self) -> tuple:
        """A hashable, process-independent identity for kernel caches."""
        ctor_id = None
        if self.ctor is not None:
            ctor_id = (self.ctor.__module__, self.ctor.__qualname__)
        return (self.kind, self.fields, ctor_id)


def _dataclass_schema(rec_type: type) -> ColumnSchema | None:
    """A schema for a plain dataclass record type, or ``None``."""
    if not dataclasses.is_dataclass(rec_type):
        return None
    if hasattr(rec_type, "__post_init__"):
        return None
    flds = dataclasses.fields(rec_type)
    if not flds:
        return None
    if any(not f.init or getattr(f, "kw_only", False) for f in flds):
        return None
    return ColumnSchema(
        "dataclass", tuple(f.name for f in flds), rec_type
    )


def infer_schema(records: Sequence[Any]) -> tuple[ColumnSchema | None, str]:
    """Infer a column schema from a sample of a partition.

    Returns ``(schema, "")`` on success or ``(None, reason)`` when the
    records cannot be represented columnar (heterogeneous types,
    unsupported record class, ...).  The sample is the first record;
    homogeneity over the full partition is validated during the actual
    batch build.
    """
    if not records:
        return None, "empty partition"
    first = records[0]
    rec_type = type(first)
    if rec_type is tuple:
        if not first:
            return None, "zero-arity tuple records"
        fields = tuple(f"_{i}" for i in range(len(first)))
        return ColumnSchema("tuple", fields), ""
    if rec_type in (int, float, bool, str):
        return ColumnSchema("scalar", ("_0",)), ""
    schema = _dataclass_schema(rec_type)
    if schema is not None:
        return schema, ""
    return None, f"unsupported record type {rec_type.__name__}"


def _pack_column(values: list) -> Any:
    """Pick the tightest backing store for one column of values.

    numpy float64/bool arrays when available; ``array.array`` typed
    buffers for numerics otherwise; plain lists for ints (exact
    arbitrary-precision semantics), strings, and objects.
    """
    kinds = set(map(type, values))
    if kinds == {float}:
        if HAS_NUMPY:
            return _np.asarray(values, dtype=_np.float64)
        return array("d", values)
    if kinds == {bool}:
        if HAS_NUMPY:
            return _np.asarray(values, dtype=_np.bool_)
        return values
    if kinds == {int}:
        # Plain list: numpy int64 would silently overflow where Python
        # promotes to arbitrary precision.
        return values
    if kinds == {str} and HAS_NUMPY:
        # ``<U`` buffers drop *trailing* NULs on the way back out, so
        # any embedded NUL keeps the column a plain list.
        if not any("\x00" in v for v in values):
            return _np.asarray(values)
    return values


def build_batch(
    records: Sequence[Any],
    schema: ColumnSchema,
    needed: frozenset[int] | None = None,
) -> tuple["ColumnBatch | None", str]:
    """Build a :class:`ColumnBatch` from a partition of records.

    ``needed`` restricts the build to the column positions a kernel
    actually reads (projection pushdown); unneeded columns stay
    ``None``.  Returns ``(batch, "")`` or ``(None, reason)`` when the
    partition does not match ``schema`` (the caller falls back to the
    row-at-a-time kernel for this partition).
    """
    if not records:
        return None, "empty partition"
    rec_types = set(map(type, records))
    if schema.kind == "dataclass":
        if rec_types != {schema.ctor}:
            return None, "mixed record types in partition"
    elif schema.kind == "tuple":
        if rec_types != {tuple}:
            return None, "mixed record types in partition"
        arity = schema.arity
        if any(len(r) != arity for r in records):
            return None, "ragged tuple arity in partition"
    else:  # scalar
        if not rec_types <= {int, float, bool, str}:
            return None, "non-scalar records in scalar partition"
    n = len(records)
    columns: list[Any] = [None] * schema.arity
    positions = (
        list(range(schema.arity))
        if needed is None
        else sorted(needed)
    )
    try:
        for i, values in zip(
            positions, _extract_columns(records, schema, positions)
        ):
            columns[i] = _pack_column(values)
    except (AttributeError, IndexError, TypeError, OverflowError) as exc:
        return None, f"column build failed: {exc}"
    return ColumnBatch(schema, tuple(columns), n), ""


def _extract_columns(
    records: Sequence[Any],
    schema: ColumnSchema,
    positions: list[int],
) -> list[list]:
    """Pull the requested column positions out of a partition.

    The transpose is the hot loop of batch building, so it stays at the
    C level: one ``attrgetter``/``itemgetter`` per record (returning
    all requested fields at once) and a ``zip(*...)`` to turn the
    record-major stream column-major.
    """
    if schema.kind == "scalar":
        return [list(records)]
    if not positions:
        return []
    if schema.kind == "tuple" and len(positions) == schema.arity:
        # Full-width tuple batches (the exchange plane's shape)
        # transpose directly — no per-record itemgetter tuples.
        return [list(col) for col in zip(*records)]
    if schema.kind == "dataclass":
        getter = operator.attrgetter(
            *(schema.fields[i] for i in positions)
        )
    else:
        getter = operator.itemgetter(*positions)
    if len(positions) == 1:
        return [list(map(getter, records))]
    return [list(col) for col in zip(*map(getter, records))]


def _column_list(col: Any) -> list:
    """One column's values back as exact Python scalars."""
    if col is None:
        raise EngineError("cannot materialize a projected-away column")
    if isinstance(col, PyColumn):
        return col.tolist()
    if isinstance(col, list):
        return col
    # numpy arrays and array.array both expose ``tolist`` returning
    # native Python ints/floats/bools.
    return col.tolist()


class ColumnBatch:
    """One partition, stored as columns.

    ``columns`` holds one backing store per schema field (``None`` for
    columns projected away at build time); ``nrows`` is the row count.
    Batches pickle as their typed buffers, which is what makes shipping
    them across the process-pool boundary cheaper than row lists.
    """

    def __init__(
        self,
        schema: ColumnSchema,
        columns: tuple[Any, ...],
        nrows: int,
    ) -> None:
        self.schema = schema
        self.columns = columns
        self.nrows = nrows

    def __len__(self) -> int:
        return self.nrows

    def to_records(self) -> list:
        """Reconstruct the exact row-at-a-time records."""
        lists = [_column_list(c) for c in self.columns]
        if self.schema.kind == "scalar":
            return lists[0]
        if self.schema.kind == "tuple":
            return list(zip(*lists)) if lists else []
        ctor = self.schema.ctor
        return [ctor(*vals) for vals in zip(*lists)]

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        """A contiguous row range — zero-copy for numpy columns."""
        cols = tuple(
            None if c is None else c[start:stop] for c in self.columns
        )
        n = max(0, min(stop, self.nrows) - max(start, 0))
        return ColumnBatch(self.schema, cols, n)

    def select(self, mask: Any) -> "ColumnBatch":
        """Rows where ``mask`` is true (a selection-mask filter)."""
        cols = tuple(
            None if c is None else select_column(c, mask)
            for c in self.columns
        )
        return ColumnBatch(self.schema, cols, mask_count(mask))

    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        """Rows at ``indices``, in that order (gather).

        Fancy-indexes numpy columns in C; typed buffers and lists
        gather element-wise, preserving exact Python values.
        """
        cols = tuple(
            None if c is None else _take_column(c, indices)
            for c in self.columns
        )
        return ColumnBatch(self.schema, cols, len(indices))

    def column_nbytes(self) -> tuple[int, ...]:
        """Actual buffer bytes per column (0 for projected columns)."""
        out = []
        for col in self.columns:
            if col is None:
                out.append(0)
            elif isinstance(col, StrColumn):
                out.append(int(col.arr.nbytes))
            elif _np is not None and isinstance(col, _np.ndarray):
                out.append(int(col.nbytes))
            elif isinstance(col, array):
                out.append(len(col) * col.itemsize)
            else:
                from repro.engines.sizes import estimate_column_bytes

                data = col.data if isinstance(col, PyColumn) else col
                out.append(estimate_column_bytes(data))
        return tuple(out)

    def nbytes(self) -> int:
        """Total buffer bytes across columns."""
        return sum(self.column_nbytes())

    def __reduce__(self) -> tuple:
        """Pickle as packed typed buffers (see :func:`pack_column`)."""
        return (
            _rebuild_batch,
            (
                self.schema,
                tuple(pack_column(c) for c in self.columns),
                self.nrows,
            ),
        )

    def __repr__(self) -> str:
        return (
            f"ColumnBatch(kind={self.schema.kind!r}, "
            f"arity={self.schema.arity}, nrows={self.nrows})"
        )


def pack_column(col: Any) -> tuple[str, Any, Any]:
    """One column as a compact ``(tag, dtype, payload)`` triple.

    Numeric numpy columns dump their raw buffer (a memcpy both ways).
    Fixed-width ``<U`` unicode columns — numpy's UTF-32 layout, 4
    bytes per character padded to the widest string — would ship ~3x
    larger than the strings themselves, so they go as Python string
    tuples instead (short-string pickle opcodes plus memoization of
    repeated values, e.g. low-cardinality flag columns).  The dtype
    string rides along so the receiving side rebuilds the exact same
    array, keeping vectorized behaviour identical across the hop.
    """
    if col is None:
        return ("none", None, None)
    if _np is not None and isinstance(col, _np.ndarray):
        if col.dtype.kind == "U":
            return ("ustr", col.dtype.str, tuple(col.tolist()))
        return ("np", col.dtype.str, col.tobytes())
    if isinstance(col, StrColumn):
        return ("strcol", col.arr.dtype.str, tuple(col.arr.tolist()))
    if isinstance(col, array):
        return ("arr", col.typecode, col.tobytes())
    if isinstance(col, PyColumn):
        return ("py", None, col.data)
    return ("obj", None, col)


def unpack_column(tag: str, dtype: Any, payload: Any) -> Any:
    """Rebuild one column from :func:`pack_column` output."""
    if tag == "none":
        return None
    if tag in ("np", "ustr", "strcol") and _np is None:
        raise RuntimeError(
            "cannot unpack a numpy-typed column buffer without numpy"
        )
    if tag == "np":
        return _np.frombuffer(payload, dtype=dtype).copy()
    if tag == "ustr":
        return _np.array(payload, dtype=dtype)
    if tag == "strcol":
        return StrColumn(_np.array(payload, dtype=dtype))
    if tag == "arr":
        col = array(dtype)
        col.frombytes(payload)
        return col
    if tag == "py":
        return PyColumn(payload)
    return payload


def _rebuild_batch(
    schema: ColumnSchema, packed: tuple, nrows: int
) -> ColumnBatch:
    """Unpickle hook for :meth:`ColumnBatch.__reduce__`."""
    return ColumnBatch(
        schema, tuple(unpack_column(*p) for p in packed), nrows
    )


def batch_from_records(
    records: Sequence[Any],
) -> tuple[ColumnBatch | None, str]:
    """Infer a schema and build a full (unprojected) batch in one go."""
    schema, reason = infer_schema(records)
    if schema is None:
        return None, reason
    return build_batch(records, schema)


# ---------------------------------------------------------------------------
# Exchange helpers: batch-at-a-time partitioning
# ---------------------------------------------------------------------------


def _take_column(col: Any, indices: Sequence[int]) -> Any:
    """Gather one column at ``indices`` (order-preserving)."""
    if isinstance(col, StrColumn):
        return StrColumn(col.arr[indices])
    if _np is not None and isinstance(col, _np.ndarray):
        return col[indices]
    if _np is not None and type(col) is list and len(col) > 1024:
        # Large scalar lists round-trip through numpy: one C gather
        # plus ``tolist`` beats an element-wise Python loop, and the
        # values come back as the exact same Python ints/bools.
        try:
            arr = _np.asarray(col)
        except Exception:
            arr = None
        if (
            arr is not None
            and arr.ndim == 1
            and arr.dtype.kind in ("i", "b")
        ):
            return arr[indices].tolist()
    if _np is not None and isinstance(indices, _np.ndarray):
        # Element-wise gathers index far faster with native ints than
        # with numpy scalars.
        indices = indices.tolist()
    if isinstance(col, array):
        return array(col.typecode, [col[i] for i in indices])
    if isinstance(col, PyColumn):
        data = col.data
        return PyColumn([data[i] for i in indices])
    return [col[i] for i in indices]


def bucket_indices(keys: Any, n_parts: int) -> Any:
    """Destination partition per key, batch-at-a-time.

    Bit-identical to ``hash_partition_index(key, n_parts)`` for every
    key: the per-type branches below inline ``stable_hash``'s scalar
    cases (ints map to themselves, bools to 0/1, strings and float
    reprs through CRC32) so homogeneous key columns skip the isinstance
    ladder, with the numpy ``int64 %`` fast path for integer keys
    (Python and numpy agree on the sign of ``%`` with a positive
    divisor).  Mixed or structured keys fall back to the row hash.
    Accepts a raw key column store and may return an int64 array —
    :func:`scatter_batch` consumes either without a copy.
    """
    arr = _as_int_array(keys)
    if arr is not None:
        return arr % n_parts
    if not isinstance(keys, list):
        keys = _column_list(keys)
    kinds = set(map(type, keys))
    if kinds == {int}:
        return [k % n_parts for k in keys]
    if kinds == {bool}:
        return [int(k) % n_parts for k in keys]
    if kinds == {str}:
        crc = zlib.crc32
        return [crc(k.encode("utf-8")) % n_parts for k in keys]
    if kinds == {float}:
        crc = zlib.crc32
        return [crc(repr(k).encode("utf-8")) % n_parts for k in keys]
    from repro.engines.cluster import hash_partition_index

    return [hash_partition_index(k, n_parts) for k in keys]


def scatter_batch(
    batch: ColumnBatch, dests: Sequence[int], n_parts: int
) -> list[ColumnBatch]:
    """Split a batch into per-destination sub-batches.

    ``dests[i]`` is the destination partition of row ``i`` (from
    :func:`bucket_indices`).  Rows keep their source order within each
    destination — exactly the order per-row appends would produce —
    via a stable argsort + one gather + contiguous slices on the numpy
    path, or position lists + gathers in pure Python.
    """
    if HAS_NUMPY:
        arr = _np.asarray(dests, dtype=_np.int64)
        order = _np.argsort(arr, kind="stable")
        counts = _np.bincount(arr, minlength=n_parts).tolist()
        gathered = batch.take(order)
        out = []
        start = 0
        for count in counts:
            out.append(gathered.slice(start, start + count))
            start += count
        return out
    positions: list[list[int]] = [[] for _ in range(n_parts)]
    for pos, dest in enumerate(dests):
        positions[dest].append(pos)
    return [batch.take(p) for p in positions]


def _as_int_array(keys: Any) -> Any:
    """``keys`` as an int64 array, or None off the fast path.

    A single ``asarray`` pass replaces a Python-level type scan: the
    resulting dtype kind tells us whether every key was an int.  Bools
    promote to 0/1 ints, which hash and compare identically to the
    scalar path; oversized ints land in an object array and fall back.
    Accepts raw column stores so key columns flow straight from a
    kernel's output batch without a ``to_records`` round trip.
    """
    if not HAS_NUMPY or isinstance(keys, StrColumn):
        return None
    if isinstance(keys, PyColumn):
        keys = keys.data
    if isinstance(keys, _np.ndarray):
        arr = keys
    else:
        try:
            arr = _np.asarray(keys)
        except Exception:
            return None
    if arr.dtype.kind != "i" or arr.ndim != 1:
        return None
    return arr


def probe_join(
    lrows: list, lkeys: Any, rrows: list, rkeys: Any
) -> list:
    """All pairs ``(l, r)`` with equal keys, in row-probe order.

    Exactly equivalent to the hash-table probe — build
    ``table.setdefault(rkey, []).append(r)`` over the right side, then
    for each left row in order emit its matches in right-side order —
    but homogeneous int keys take a sorted-probe fast path: a stable
    argsort of the right keys plus two ``searchsorted`` sweeps find
    each left key's match range in C (stability keeps equal-keyed
    right rows in original order, so pair order is identical), leaving
    Python-level work proportional to the *output* instead of one hash
    probe per input row.  Anything else falls back to the dict probe.
    """
    rows: list = []
    if not lrows or not rrows:
        return rows
    append = rows.append
    la = _as_int_array(lkeys)
    ra = _as_int_array(rkeys) if la is not None else None
    if ra is None:
        # Dict probe needs exact Python scalars as hash keys.
        if not isinstance(lkeys, list):
            lkeys = _column_list(lkeys)
        if not isinstance(rkeys, list):
            rkeys = _column_list(rkeys)
    if ra is not None:
        order = _np.argsort(ra, kind="stable")
        rsorted = ra[order]
        lo = _np.searchsorted(rsorted, la, side="left")
        hi = _np.searchsorted(rsorted, la, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total:
            # Expand the match ranges into explicit (left, right)
            # index pairs in C; Python-level work is one append per
            # *output* pair.  Left indices repeat in left order;
            # within a left row, offsets walk ``lo[i]:hi[i]`` through
            # the stable sort order — exactly the dict probe's order.
            li = _np.repeat(_np.arange(counts.shape[0]), counts)
            starts = counts.cumsum() - counts
            offs = _np.arange(total) - _np.repeat(starts, counts)
            ri = order[_np.repeat(lo, counts) + offs]
            for i, j in zip(li.tolist(), ri.tolist()):
                append((lrows[i], rrows[j]))
        return rows
    table: dict = {}
    for r, k in zip(rrows, rkeys):
        table.setdefault(k, []).append(r)
    for x, k in zip(lrows, lkeys):
        for m in table.get(k, ()):
            append((x, m))
    return rows


def normalize_batch(batch: ColumnBatch) -> ColumnBatch:
    """``batch`` with at-rest backing stores only.

    Vector kernels may emit :class:`PyColumn`/:class:`StrColumn`
    operator wrappers; a batch kept *at rest* (cached for later
    exchange consumers) stores the plain list or ``<U`` array
    underneath instead, so slicing, scattering, and gathers see the
    same column types :func:`build_batch` produces.
    """
    if not any(
        isinstance(c, (PyColumn, StrColumn)) for c in batch.columns
    ):
        return batch
    cols = tuple(
        c.data
        if isinstance(c, PyColumn)
        else c.arr
        if isinstance(c, StrColumn)
        else c
        for c in batch.columns
    )
    return ColumnBatch(batch.schema, cols, batch.nrows)


def concat_batches(blocks: Sequence[ColumnBatch]) -> ColumnBatch:
    """One batch holding ``blocks``' rows back to back.

    Used to keep a shuffle's scatter output columnar-at-rest: the
    per-source sub-batches landing on one destination partition
    concatenate (in arrival order, matching the row-at-a-time merge
    exactly) into that partition's cached batch, so downstream
    exchange operators skip re-packing the very columns the scatter
    just produced.  Columns concatenate per backing store — numpy
    arrays in C (dtype promotion only ever widens ``<U`` strings,
    values unchanged), everything else through exact Python scalars.
    """
    if len(blocks) == 1:
        return blocks[0]
    schema = blocks[0].schema
    cols: list[Any] = []
    for j in range(schema.arity):
        pieces = [b.columns[j] for b in blocks]
        if any(p is None for p in pieces):
            cols.append(None)
        elif _np is not None and all(
            isinstance(p, _np.ndarray) for p in pieces
        ):
            cols.append(_np.concatenate(pieces))
        else:
            merged: list = []
            for p in pieces:
                merged.extend(p if type(p) is list else _column_list(p))
            cols.append(merged)
    return ColumnBatch(
        schema, tuple(cols), sum(b.nrows for b in blocks)
    )


# ---------------------------------------------------------------------------
# Vector-evaluation helpers (the namespace of generated vector kernels)
# ---------------------------------------------------------------------------


def as_vector(col: Any) -> Any:
    """A column as an operator-overloading vector (numpy or PyColumn)."""
    if _np is not None and isinstance(col, _np.ndarray):
        if col.dtype.kind in ("U", "S"):
            return StrColumn(col)
        return col
    if isinstance(col, (PyColumn, StrColumn)):
        return col
    return PyColumn(col)


def broadcast(value: Any, n: int) -> Any:
    """A constant as an ``n``-row column."""
    if _np is not None and isinstance(value, (float, bool)):
        return _np.full(n, value)
    return PyColumn([value] * n)


def as_mask(value: Any, n: int) -> Any:
    """Normalize a predicate result to a boolean selection mask.

    Row-at-a-time filters apply Python truthiness; this reproduces it
    element-wise for every column representation.
    """
    if _np is not None and isinstance(value, _np.ndarray):
        if value.dtype == _np.bool_:
            return value
        return value != 0
    if isinstance(value, StrColumn):
        return value.arr != ""  # str truthiness == non-emptiness
    if isinstance(value, PyColumn):
        return PyColumn([bool(v) for v in value.data])
    # A scalar predicate (constant filter): broadcast its truthiness.
    truth = bool(value)
    if _np is not None:
        return _np.full(n, truth)
    return PyColumn([truth] * n)


def mask_count(mask: Any) -> int:
    """Number of selected rows in a mask."""
    if _np is not None and isinstance(mask, _np.ndarray):
        return int(mask.sum())
    data = mask.data if isinstance(mask, PyColumn) else mask
    return sum(1 for v in data if v)


def select_column(col: Any, mask: Any) -> Any:
    """Apply a selection mask to one column."""
    if isinstance(col, StrColumn):
        return StrColumn(select_column(col.arr, mask))
    if _np is not None and isinstance(col, _np.ndarray):
        if isinstance(mask, PyColumn):
            mask = _np.asarray(mask.data, dtype=_np.bool_)
        return col[mask]
    data = col.data if isinstance(col, PyColumn) else col
    mdata = mask.data if isinstance(mask, PyColumn) else mask
    if _np is not None and isinstance(mdata, _np.ndarray):
        mdata = mdata.tolist()
    kept = [v for v, keep in zip(data, mdata) if keep]
    return PyColumn(kept) if isinstance(col, PyColumn) else kept


def mask_and(a: Any, b: Any) -> Any:
    """Element-wise conjunction of two boolean masks."""
    if (
        _np is not None
        and isinstance(a, _np.ndarray)
        and isinstance(b, _np.ndarray)
    ):
        return a & b
    adata = a.data if isinstance(a, PyColumn) else a
    bdata = b.data if isinstance(b, PyColumn) else b
    if _np is not None and isinstance(adata, _np.ndarray):
        adata = adata.tolist()
    if _np is not None and isinstance(bdata, _np.ndarray):
        bdata = bdata.tolist()
    return PyColumn([bool(x) and bool(y) for x, y in zip(adata, bdata)])


def mask_or(a: Any, b: Any) -> Any:
    """Element-wise disjunction of two boolean masks."""
    if (
        _np is not None
        and isinstance(a, _np.ndarray)
        and isinstance(b, _np.ndarray)
    ):
        return a | b
    adata = a.data if isinstance(a, PyColumn) else a
    bdata = b.data if isinstance(b, PyColumn) else b
    if _np is not None and isinstance(adata, _np.ndarray):
        adata = adata.tolist()
    if _np is not None and isinstance(bdata, _np.ndarray):
        bdata = bdata.tolist()
    return PyColumn([bool(x) or bool(y) for x, y in zip(adata, bdata)])


def mask_not(a: Any) -> Any:
    """Element-wise negation of a boolean mask."""
    if _np is not None and isinstance(a, _np.ndarray):
        return ~a
    data = a.data if isinstance(a, PyColumn) else a
    return PyColumn([not bool(v) for v in data])

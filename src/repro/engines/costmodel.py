"""The calibrated cost model shared by the simulated engines.

Constants are chosen to mirror the paper's cluster (40 nodes, 8 cores,
16 GB RAM, 1 GbE) *in relative terms*: what matters for reproducing the
experiment shapes is the ratio between CPU throughput, network
bandwidth, disk bandwidth, and fixed overheads — not their absolute
values.  Engine-specific behaviour (broadcast handling, caching medium,
per-stage overheads) is expressed as engine parameters referencing this
model, see :mod:`repro.engines.sparklike` / :mod:`repro.engines.flinklike`.

All converters return *seconds of busy time* for the given volume; the
caller decides which worker(s) to charge.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Bandwidths, throughputs, and overheads of the simulated cluster."""

    #: aggregate per-worker network bandwidth, bytes/second
    network_bandwidth: float = 100e6
    #: per-worker local disk bandwidth, bytes/second
    disk_bandwidth: float = 150e6
    #: DFS (HDFS-like) per-worker bandwidth, bytes/second (replication
    #: makes writes slower than reads)
    dfs_read_bandwidth: float = 120e6
    dfs_write_bandwidth: float = 60e6
    #: element operations per second per worker (a UDF call, a hash
    #: probe, an accumulator update each count as one element op)
    cpu_throughput: float = 2e6
    #: record bytes per extra element op for record-processing UDFs —
    #: parsing/feature-extracting a 2 KB record costs proportionally
    #: more CPU than probing an 8-byte key
    cpu_bytes_per_op: float = 16.0
    #: driver <-> cluster link bandwidth, bytes/second
    driver_bandwidth: float = 50e6

    #: fixed overhead per submitted dataflow job, seconds
    job_overhead: float = 0.2
    #: fixed overhead per stage (shuffle boundary), seconds
    stage_overhead: float = 0.05

    #: per-worker memory available for materializing groups, bytes
    memory_per_worker: int = 512 * 1024 * 1024

    # -- converters ------------------------------------------------------

    def network_seconds(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` over one worker's network link."""
        return nbytes / self.network_bandwidth

    def disk_seconds(self, nbytes: float) -> float:
        """Seconds to stream ``nbytes`` through one local disk."""
        return nbytes / self.disk_bandwidth

    def dfs_read_seconds(self, nbytes: float) -> float:
        """Seconds for one worker to read ``nbytes`` from the DFS."""
        return nbytes / self.dfs_read_bandwidth

    def dfs_write_seconds(self, nbytes: float) -> float:
        """Seconds for one worker to write ``nbytes`` to the DFS."""
        return nbytes / self.dfs_write_bandwidth

    def cpu_seconds(self, ops: float) -> float:
        """Seconds for one worker to perform ``ops`` element ops."""
        return ops / self.cpu_throughput

    def driver_seconds(self, nbytes: float) -> float:
        """Seconds to ship ``nbytes`` between driver and cluster."""
        return nbytes / self.driver_bandwidth

    # -- join strategy estimates ----------------------------------------

    def broadcast_join_seconds(
        self, small_bytes: float, factor: float = 1.0
    ) -> float:
        """Estimated per-worker critical-path seconds of a broadcast
        join's data motion: every worker receives the whole build side
        (times the engine's broadcast-handling ``factor``)."""
        return self.network_seconds(small_bytes * factor)

    def repartition_join_seconds(
        self, moved_bytes: float, num_workers: int
    ) -> float:
        """Estimated per-worker critical-path seconds of a repartition
        join's data motion: the moved bytes are sent and received once
        each, spread across the workers.  Bytes already delivered in
        the required partitioning (or served from the hoist cache)
        should be excluded by the caller."""
        return self.network_seconds(
            2.0 * moved_bytes / max(num_workers, 1)
        )


@dataclass(frozen=True)
class JoinObservation:
    """Observed sizes and the decision taken at one join site."""

    left_rows: int
    left_bytes: int
    right_rows: int
    right_bytes: int
    #: bytes the repartition realization would actually have to move
    #: (excludes co-partitioned and hoisted sides)
    moved_bytes: int
    #: the strategy chosen for this observation
    strategy: str


class StatsCache:
    """Per-run runtime statistics, keyed by plan ``node_id``.

    The physical planner's plan-time choices are made from static
    structure; at execution the observed cardinalities and byte sizes
    are recorded here, and the next execution of the same plan node
    (a later loop iteration) re-checks its strategy against the last
    observation — a disagreement is an *adaptive switch*.  Cleared at
    the start of every driver-program run, so runs stay deterministic
    and reproducible in isolation.
    """

    def __init__(self) -> None:
        #: last observation per join site
        self.joins: dict[int, JoinObservation] = {}
        #: last observed (rows, bytes) per shuffle-consumer input
        self.sizes: dict[int, tuple[int, int]] = {}

    def clear(self) -> None:
        """Forget all observations (start of a driver-program run)."""
        self.joins.clear()
        self.sizes.clear()

    def observe_size(self, node_id: int, rows: int, nbytes: int) -> None:
        """Record the observed cardinality/bytes of a plan node."""
        self.sizes[node_id] = (rows, nbytes)

    def observe_join(
        self, node_id: int, observation: JoinObservation
    ) -> None:
        """Record what a join site actually saw and chose."""
        self.joins[node_id] = observation

    def planned_strategy(self, node_id: int) -> str | None:
        """The strategy the last observation of this site settled on."""
        obs = self.joins.get(node_id)
        return obs.strategy if obs is not None else None

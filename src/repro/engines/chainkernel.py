"""Fused per-partition kernels for physical operator chains.

Given the steps of a :class:`~repro.lowering.combinators.CChain`, this
module generates *one* Python function for the whole chain and
``compile()``s it, so a fused run of maps/filters/flat-maps costs a
single Python-level loop per partition — no intermediate lists, no
per-operator dispatch, and (when every UDF body is in the natively
compilable scalar subset) no function call per record either, because
the bodies are inlined straight into the kernel source.

For ``Chain[Map(f) -> Filter(p) -> FlatMap(g)]`` the generated source
looks like::

    def _chain_kernel(_partition, _emit):
        _k0 = 0
        _k1 = 0
        for _x0 in _partition:
            _x1 = <body of f over _x0>
            if not (<body of p over _x1>):
                continue
            _k0 += 1
            for _x2 in _seq(<body of g over _x1>):
                _k1 += 1
                _emit(_x2)
        return (_k0, _k1)

Counters exist only at the count-changing steps: filters count their
survivors and flat-maps count produced records.  The executor
reconstructs every step's exact input count from those few integers,
so the fused chain charges the cost model precisely what the unfused
operators would have — minus the per-operator overheads it eliminates.

A step whose body cannot be inlined (exotic IR nodes, a free name that
conflicts with another step's binding, a multi-parameter UDF) degrades
gracefully to a call of its compiled closure; semantics are identical.

Kernels are *picklable by source re-hydration*: a
:class:`KernelStep` pickles its lifted IR body and resolved bindings
(never the compiled closure — code objects do not cross process
boundaries), and a :class:`ChainKernel` pickles as the recipe
``build_chain_kernel(steps)``, so unpickling in a worker process
regenerates and recompiles the exact same kernel source.  This is what
lets :mod:`repro.engines.scheduler` ship chain kernels to a
``ProcessPoolExecutor`` as source.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.comprehension.exprs import Expr, NativeCodegen, NotCompilable
from repro.core.databag import DataBag

#: step kinds, matching the narrow combinators they come from
MAP, FILTER, FLATMAP = "map", "filter", "flatmap"

#: names reserved by the generated kernel — a UDF free name matching
#: one of these cannot share the kernel namespace and forces the
#: closure fallback for its step
_RESERVED = re.compile(
    r"\A(_x\d+|_k\d+|_f\d+|_seq|_emit|_partition|_chain_kernel)\Z"
)


def _as_sequence(value: Any) -> Any:
    if isinstance(value, DataBag):
        return value.fetch()
    return value


@dataclass(frozen=True)
class KernelStep:
    """One operator of a chain, prepared for kernel generation.

    ``closure`` may be ``None`` after unpickling — it is rebuilt on
    demand from ``(params, body, bindings)`` by
    :meth:`resolve_closure`, so a step that crosses a process boundary
    carries only IR and data, never code objects.
    """

    kind: str  # "map" | "filter" | "flatmap"
    closure: Callable | None  # compiled UDF (native or interpreted)
    extra: int  # per-element broadcast-scan op weight
    params: tuple[str, ...] = ()
    body: Expr | None = None  # lifted body, for source inlining
    bindings: Mapping[str, Any] | None = None

    @property
    def counted(self) -> bool:
        """Whether this step changes the record count downstream."""
        return self.kind in (FILTER, FLATMAP)

    def resolve_closure(self) -> Callable:
        """The step's compiled UDF, rebuilding it from IR if needed.

        After a cross-process round trip the closure slot is empty;
        recompiling ``ScalarFn(params, body)`` over the shipped
        bindings reproduces the driver-side closure exactly (native
        compilation falls back to the interpreter the same way on both
        sides).  The rebuilt closure is cached on the step.
        """
        if self.closure is None:
            if self.body is None or self.bindings is None:
                from repro.errors import EngineError

                raise EngineError(
                    "chain step has neither a closure nor the "
                    "(body, bindings) source to rebuild one — it "
                    "cannot have crossed a process boundary intact"
                )
            from repro.lowering.combinators import ScalarFn

            closure, _native = ScalarFn(
                tuple(self.params), self.body
            ).compile_native(dict(self.bindings))
            object.__setattr__(self, "closure", closure)
        return self.closure

    def __getstate__(self) -> dict[str, Any]:
        """Pickle the step as IR + bindings, dropping the closure."""
        return {
            "kind": self.kind,
            "extra": self.extra,
            "params": tuple(self.params),
            "body": self.body,
            "bindings": (
                dict(self.bindings) if self.bindings is not None else None
            ),
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        """Restore fields; the closure is rebuilt lazily on first use."""
        for name, value in state.items():
            object.__setattr__(self, name, value)
        object.__setattr__(self, "closure", None)


class ChainKernel:
    """A compiled whole-chain per-partition kernel."""

    def __init__(
        self,
        steps: Sequence[KernelStep],
        run: Callable[[Any, Callable[[Any], Any]], tuple],
        inlined: int,
        source: str = "",
    ) -> None:
        self.steps = tuple(steps)
        #: ``run(partition, emit) -> counts`` streams every record of
        #: the partition through the chain, calling ``emit`` per output
        self.run = run
        #: how many step bodies were source-inlined (vs closure calls)
        self.inlined = inlined
        #: the generated kernel source (what ships between processes)
        self.source = source

    def __reduce__(self) -> tuple:
        """Pickle as the generation recipe, not the compiled function.

        Unpickling calls ``build_chain_kernel(steps)`` in the receiving
        process, which regenerates the kernel *source* from the shipped
        step IR and compiles it there — the kernel truly travels as
        source, and a worker that already built this kernel's
        fingerprint serves it from its local memo instead (see
        :mod:`repro.engines.scheduler`).
        """
        return (build_chain_kernel, (self.steps,))

    def entered_counts(
        self, n_in: int, counts: tuple
    ) -> tuple[list[int], int]:
        """Per-step input counts, plus the emitted-record count.

        ``counts`` is the tuple the kernel returned for a partition of
        ``n_in`` records; maps pass their input count through, filters
        and flat-maps reset it to their counter.
        """
        entered: list[int] = []
        cur = n_in
        ci = 0
        for step in self.steps:
            entered.append(cur)
            if step.counted:
                cur = counts[ci]
                ci += 1
        return entered, cur


def build_chain_kernel(steps: Sequence[KernelStep]) -> ChainKernel:
    """Generate, compile, and wrap the fused kernel for ``steps``."""
    codegen = NativeCodegen()
    namespace = codegen.globals_
    namespace["_seq"] = _as_sequence
    inlined = 0

    def step_source(i: int, step: KernelStep, var: str) -> str:
        nonlocal inlined
        if (
            step.body is not None
            and step.bindings is not None
            and len(step.params) == 1
        ):
            bindings = step.bindings

            def resolve(name: str) -> Any:
                if _RESERVED.match(name):
                    raise KeyError(name)
                return bindings[name]

            try:
                src = codegen.emit(
                    step.body, {step.params[0]: var}, resolve
                )
            except NotCompilable:
                pass
            else:
                inlined += 1
                return src
        name = f"_f{i}"
        namespace[name] = step.resolve_closure()
        return f"{name}({var})"

    counters: list[str] = []
    body: list[str] = ["    for _x0 in _partition:"]
    depth, var, vi = 2, "_x0", 1
    for i, step in enumerate(steps):
        ind = "    " * depth
        src = step_source(i, step, var)
        if step.kind == MAP:
            nxt = f"_x{vi}"
            vi += 1
            body.append(f"{ind}{nxt} = {src}")
            var = nxt
        elif step.kind == FILTER:
            counter = f"_k{len(counters)}"
            counters.append(counter)
            body.append(f"{ind}if not ({src}):")
            body.append(f"{ind}    continue")
            body.append(f"{ind}{counter} += 1")
        elif step.kind == FLATMAP:
            counter = f"_k{len(counters)}"
            counters.append(counter)
            nxt = f"_x{vi}"
            vi += 1
            body.append(f"{ind}for {nxt} in _seq({src}):")
            depth += 1
            body.append(f"{'    ' * depth}{counter} += 1")
            var = nxt
        else:
            raise ValueError(f"unknown chain step kind {step.kind!r}")
    body.append(f"{'    ' * depth}_emit({var})")

    lines = ["def _chain_kernel(_partition, _emit):"]
    lines.extend(f"    {c} = 0" for c in counters)
    lines.extend(body)
    tail = ", ".join(counters) + ("," if len(counters) == 1 else "")
    lines.append(f"    return ({tail})")
    source = "\n".join(lines)
    code = compile(source, "<chain-kernel>", "exec")
    exec(code, namespace)  # noqa: S102 - compiler-generated source
    return ChainKernel(
        steps, namespace["_chain_kernel"], inlined, source=source
    )

"""Fused per-partition kernels for physical operator chains.

Given the steps of a :class:`~repro.lowering.combinators.CChain`, this
module generates *one* Python function for the whole chain and
``compile()``s it, so a fused run of maps/filters/flat-maps costs a
single Python-level loop per partition — no intermediate lists, no
per-operator dispatch, and (when every UDF body is in the natively
compilable scalar subset) no function call per record either, because
the bodies are inlined straight into the kernel source.

For ``Chain[Map(f) -> Filter(p) -> FlatMap(g)]`` the generated source
looks like::

    def _chain_kernel(_partition, _emit):
        _k0 = 0
        _k1 = 0
        for _x0 in _partition:
            _x1 = <body of f over _x0>
            if not (<body of p over _x1>):
                continue
            _k0 += 1
            for _x2 in _seq(<body of g over _x1>):
                _k1 += 1
                _emit(_x2)
        return (_k0, _k1)

Counters exist only at the count-changing steps: filters count their
survivors and flat-maps count produced records.  The executor
reconstructs every step's exact input count from those few integers,
so the fused chain charges the cost model precisely what the unfused
operators would have — minus the per-operator overheads it eliminates.

A step whose body cannot be inlined (exotic IR nodes, a free name that
conflicts with another step's binding, a multi-parameter UDF) degrades
gracefully to a call of its compiled closure; semantics are identical.

Kernels are *picklable by source re-hydration*: a
:class:`KernelStep` pickles its lifted IR body and resolved bindings
(never the compiled closure — code objects do not cross process
boundaries), and a :class:`ChainKernel` pickles as the recipe
``build_chain_kernel(steps)``, so unpickling in a worker process
regenerates and recompiles the exact same kernel source.  This is what
lets :mod:`repro.engines.scheduler` ship chain kernels to a
``ProcessPoolExecutor`` as source.
"""

from __future__ import annotations

import dataclasses
import math
import re
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.comprehension.exprs import (
    Attr,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    Env,
    Expr,
    Index,
    NativeCodegen,
    NotCompilable,
    Ref,
    TupleExpr,
    UnaryOp,
)
from repro.core.databag import DataBag
from repro.engines.columnar import (
    ColumnBatch,
    ColumnSchema,
    _dataclass_schema,
    as_mask,
    as_vector,
    broadcast,
    mask_and,
    mask_count,
    mask_not,
    mask_or,
    select_column,
)

#: step kinds, matching the narrow combinators they come from
MAP, FILTER, FLATMAP = "map", "filter", "flatmap"

#: names reserved by the generated kernel — a UDF free name matching
#: one of these cannot share the kernel namespace and forces the
#: closure fallback for its step
_RESERVED = re.compile(
    r"\A(_x\d+|_k\d+|_f\d+|_seq|_emit|_partition|_chain_kernel)\Z"
)


def _as_sequence(value: Any) -> Any:
    if isinstance(value, DataBag):
        return value.fetch()
    return value


@dataclass(frozen=True)
class KernelStep:
    """One operator of a chain, prepared for kernel generation.

    ``closure`` may be ``None`` after unpickling — it is rebuilt on
    demand from ``(params, body, bindings)`` by
    :meth:`resolve_closure`, so a step that crosses a process boundary
    carries only IR and data, never code objects.
    """

    kind: str  # "map" | "filter" | "flatmap"
    closure: Callable | None  # compiled UDF (native or interpreted)
    extra: int  # per-element broadcast-scan op weight
    params: tuple[str, ...] = ()
    body: Expr | None = None  # lifted body, for source inlining
    bindings: Mapping[str, Any] | None = None

    @property
    def counted(self) -> bool:
        """Whether this step changes the record count downstream."""
        return self.kind in (FILTER, FLATMAP)

    def resolve_closure(self) -> Callable:
        """The step's compiled UDF, rebuilding it from IR if needed.

        After a cross-process round trip the closure slot is empty;
        recompiling ``ScalarFn(params, body)`` over the shipped
        bindings reproduces the driver-side closure exactly (native
        compilation falls back to the interpreter the same way on both
        sides).  The rebuilt closure is cached on the step.
        """
        if self.closure is None:
            if self.body is None or self.bindings is None:
                from repro.errors import EngineError

                raise EngineError(
                    "chain step has neither a closure nor the "
                    "(body, bindings) source to rebuild one — it "
                    "cannot have crossed a process boundary intact"
                )
            from repro.lowering.combinators import ScalarFn

            closure, _native = ScalarFn(
                tuple(self.params), self.body
            ).compile_native(dict(self.bindings))
            object.__setattr__(self, "closure", closure)
        return self.closure

    def __getstate__(self) -> dict[str, Any]:
        """Pickle the step as IR + bindings, dropping the closure."""
        return {
            "kind": self.kind,
            "extra": self.extra,
            "params": tuple(self.params),
            "body": self.body,
            "bindings": (
                dict(self.bindings) if self.bindings is not None else None
            ),
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        """Restore fields; the closure is rebuilt lazily on first use."""
        for name, value in state.items():
            object.__setattr__(self, name, value)
        object.__setattr__(self, "closure", None)


class ChainKernel:
    """A compiled whole-chain per-partition kernel."""

    def __init__(
        self,
        steps: Sequence[KernelStep],
        run: Callable[[Any, Callable[[Any], Any]], tuple],
        inlined: int,
        source: str = "",
    ) -> None:
        self.steps = tuple(steps)
        #: ``run(partition, emit) -> counts`` streams every record of
        #: the partition through the chain, calling ``emit`` per output
        self.run = run
        #: how many step bodies were source-inlined (vs closure calls)
        self.inlined = inlined
        #: the generated kernel source (what ships between processes)
        self.source = source

    def __reduce__(self) -> tuple:
        """Pickle as the generation recipe, not the compiled function.

        Unpickling calls ``build_chain_kernel(steps)`` in the receiving
        process, which regenerates the kernel *source* from the shipped
        step IR and compiles it there — the kernel truly travels as
        source, and a worker that already built this kernel's
        fingerprint serves it from its local memo instead (see
        :mod:`repro.engines.scheduler`).
        """
        return (build_chain_kernel, (self.steps,))

    def entered_counts(
        self, n_in: int, counts: tuple
    ) -> tuple[list[int], int]:
        """Per-step input counts, plus the emitted-record count.

        ``counts`` is the tuple the kernel returned for a partition of
        ``n_in`` records; maps pass their input count through, filters
        and flat-maps reset it to their counter.
        """
        entered: list[int] = []
        cur = n_in
        ci = 0
        for step in self.steps:
            entered.append(cur)
            if step.counted:
                cur = counts[ci]
                ci += 1
        return entered, cur


def build_chain_kernel(steps: Sequence[KernelStep]) -> ChainKernel:
    """Generate, compile, and wrap the fused kernel for ``steps``."""
    codegen = NativeCodegen()
    namespace = codegen.globals_
    namespace["_seq"] = _as_sequence
    inlined = 0

    def step_source(i: int, step: KernelStep, var: str) -> str:
        nonlocal inlined
        if (
            step.body is not None
            and step.bindings is not None
            and len(step.params) == 1
        ):
            bindings = step.bindings

            def resolve(name: str) -> Any:
                if _RESERVED.match(name):
                    raise KeyError(name)
                return bindings[name]

            try:
                src = codegen.emit(
                    step.body, {step.params[0]: var}, resolve
                )
            except NotCompilable:
                pass
            else:
                inlined += 1
                return src
        name = f"_f{i}"
        namespace[name] = step.resolve_closure()
        return f"{name}({var})"

    counters: list[str] = []
    body: list[str] = ["    for _x0 in _partition:"]
    depth, var, vi = 2, "_x0", 1
    for i, step in enumerate(steps):
        ind = "    " * depth
        src = step_source(i, step, var)
        if step.kind == MAP:
            nxt = f"_x{vi}"
            vi += 1
            body.append(f"{ind}{nxt} = {src}")
            var = nxt
        elif step.kind == FILTER:
            counter = f"_k{len(counters)}"
            counters.append(counter)
            body.append(f"{ind}if not ({src}):")
            body.append(f"{ind}    continue")
            body.append(f"{ind}{counter} += 1")
        elif step.kind == FLATMAP:
            counter = f"_k{len(counters)}"
            counters.append(counter)
            nxt = f"_x{vi}"
            vi += 1
            body.append(f"{ind}for {nxt} in _seq({src}):")
            depth += 1
            body.append(f"{'    ' * depth}{counter} += 1")
            var = nxt
        else:
            raise ValueError(f"unknown chain step kind {step.kind!r}")
    body.append(f"{'    ' * depth}_emit({var})")

    lines = ["def _chain_kernel(_partition, _emit):"]
    lines.extend(f"    {c} = 0" for c in counters)
    lines.extend(body)
    tail = ", ".join(counters) + ("," if len(counters) == 1 else "")
    lines.append(f"    return ({tail})")
    source = "\n".join(lines)
    code = compile(source, "<chain-kernel>", "exec")
    exec(code, namespace)  # noqa: S102 - compiler-generated source
    return ChainKernel(
        steps, namespace["_chain_kernel"], inlined, source=source
    )


# ---------------------------------------------------------------------------
# Vectorized (batch-at-a-time) kernels
# ---------------------------------------------------------------------------
#
# When every UDF of a chain is in the vectorizable subset below, the
# chain compiles to a *batch* kernel over a ColumnBatch: maps become
# whole-column expressions, filters become selection masks, and the
# per-record Python loop disappears.  For
# ``Chain[Filter(p) -> Map(f)]`` over a dataclass batch the generated
# source looks like::
#
#     def _vector_kernel(_cols, _n):
#         _c2 = _vcol(_cols[2])
#         _c5 = _vcol(_cols[5])
#         _m0 = _vmask((_c5 <= _cv0), _n)
#         _k0 = _vcount(_m0)
#         _c2 = _vsel(_c2, _m0)
#         _n = _k0
#         _v0 = (_c2 * 2.0)
#         return ((_v0,), _n, (_k0,))
#
# The counts tuple has exactly the shape and values of the row
# kernel's, so the executor charges the cost model identically — the
# vector path changes wall clock and bytes, never ``simulated_seconds``
# or results.

#: operators with element-wise semantics identical to Python's
_VEC_BIN = frozenset({"+", "-", "*", "/", "//", "%"})
#: division-like operators: only safe with a constant nonzero divisor
#: (a zero divisor must raise exactly where the row kernel raises)
_VEC_DIV = frozenset({"/", "//", "%"})
_VEC_CMP = frozenset({"==", "!=", "<", "<=", ">", ">="})


class NotVectorizable(Exception):
    """A chain (or one partition's schema) cannot run batch-at-a-time.

    The message is the human-readable reason, surfaced in the compile
    trace and in runtime fallback events.
    """


def _is_masky(expr: Expr) -> bool:
    """Whether ``expr`` statically evaluates to a boolean."""
    if isinstance(expr, (Compare, BoolOp)):
        return True
    if isinstance(expr, UnaryOp) and expr.op == "not":
        return True
    return isinstance(expr, Const) and isinstance(expr.value, bool)


def _contains_call(expr: Expr) -> bool:
    if isinstance(expr, Call):
        return True
    return any(_contains_call(c) for c in expr.children())


def _check_vec_expr(expr: Expr, param: str) -> str:
    """Reason ``expr`` cannot be a vector expression, or ``""``."""
    if param not in expr.free_vars():
        if _contains_call(expr):
            return "free function call (not provably pure)"
        return ""  # evaluated once at kernel-build time
    if isinstance(expr, Ref):
        return ""  # the record itself; kind-checked at build time
    if isinstance(expr, Attr):
        if isinstance(expr.obj, Ref):
            return ""
        return "nested attribute access"
    if isinstance(expr, Index):
        if (
            isinstance(expr.obj, TupleExpr)
            and isinstance(expr.index, Const)
            and isinstance(expr.index.value, int)
            and not isinstance(expr.index.value, bool)
            and -len(expr.obj.items)
            <= expr.index.value
            < len(expr.obj.items)
        ):
            # A constant index into a literal tuple — the shape filter
            # pushdown leaves behind.  Every element must stay in the
            # subset (the row kernel evaluates them all), but only the
            # selected one is live.
            for item in expr.obj.items:
                reason = _check_vec_expr(item, param)
                if reason:
                    return reason
            return ""
        if (
            isinstance(expr.obj, Ref)
            and isinstance(expr.index, Const)
            and isinstance(expr.index.value, int)
            and not isinstance(expr.index.value, bool)
        ):
            return ""
        return "non-constant or nested index"
    if isinstance(expr, BinOp):
        if expr.op not in _VEC_BIN:
            return f"operator {expr.op!r}"
        if _is_masky(expr.left) or _is_masky(expr.right):
            return "arithmetic over boolean operands"
        if expr.op in _VEC_DIV and param in expr.right.free_vars():
            return "data-dependent divisor"
        return _check_vec_expr(expr.left, param) or _check_vec_expr(
            expr.right, param
        )
    if isinstance(expr, UnaryOp):
        if expr.op == "-":
            if _is_masky(expr.operand):
                return "negating a boolean"
            return _check_vec_expr(expr.operand, param)
        if expr.op == "not":
            return _check_vec_expr(expr.operand, param)
        return f"operator {expr.op!r}"
    if isinstance(expr, Compare):
        if expr.op not in _VEC_CMP:
            return f"comparison {expr.op!r}"
        return _check_vec_expr(expr.left, param) or _check_vec_expr(
            expr.right, param
        )
    if isinstance(expr, BoolOp):
        for part in expr.operands:
            if param in part.free_vars() and not _is_masky(part):
                return "short-circuit over non-boolean operands"
            reason = _check_vec_expr(part, param)
            if reason:
                return reason
        return ""
    return f"{type(expr).__name__} in UDF body"


def _check_vec_step(
    kind: str, params: tuple[str, ...], body: Expr | None
) -> str:
    """Reason one chain step cannot vectorize, or ``""``."""
    if body is None:
        return "UDF body is not lifted IR"
    if len(params) != 1:
        return "multi-parameter UDF"
    if kind == FLATMAP:
        return "flat-map requires row-at-a-time emission"
    param = params[0]
    if kind == FILTER:
        return _check_vec_expr(body, param)
    # map: the output may be a scalar, a tuple of scalars, or a
    # record-constructor call over scalars
    if isinstance(body, Ref) and body.name == param:
        return ""
    if isinstance(body, TupleExpr):
        for item in body.items:
            reason = _check_vec_expr(item, param)
            if reason:
                return reason
        return ""
    if isinstance(body, Call):
        if body.kwargs:
            return "constructor keyword arguments"
        if not isinstance(body.func, Ref) or body.func.name == param:
            return "computed constructor"
        for arg in body.args:
            reason = _check_vec_expr(arg, param)
            if reason:
                return reason
        return ""
    return _check_vec_expr(body, param)


def vectorizable_reason(
    steps_desc: Sequence[tuple[str, tuple[str, ...], Expr | None]],
) -> str:
    """Why a chain of ``(kind, params, body)`` steps cannot vectorize.

    Returns ``""`` when every step is in the vectorizable subset — the
    static half of the kernel-selection rule the optimizer applies
    per chain.  The dynamic half (record kinds, binding values, zero
    divisors) is re-checked when :func:`build_vector_kernel` meets the
    actual partition schema, falling back to the row kernel per chain.
    """
    for kind, params, body in steps_desc:
        reason = _check_vec_step(kind, params, body)
        if reason:
            return reason
    return ""


def _is_scalar_value(value: Any) -> bool:
    return value is None or isinstance(value, (bool, int, float, str))


class _Rep:
    """The column layout of the record stream at one point of a chain."""

    __slots__ = ("kind", "vars", "fields", "ctor")

    def __init__(
        self,
        kind: str,
        vars_: list[str],
        fields: tuple[str, ...],
        ctor: type | None,
    ) -> None:
        self.kind = kind
        self.vars = vars_
        self.fields = fields
        self.ctor = ctor


class VectorKernel:
    """A compiled whole-chain batch-at-a-time kernel.

    ``run(columns, nrows)`` returns ``(out_columns, out_nrows,
    counts)`` where ``counts`` is value-identical to what the row
    kernel would return for the same partition.  Pickles as its
    generation recipe (steps + input schema), exactly like
    :class:`ChainKernel`.
    """

    def __init__(
        self,
        steps: Sequence[KernelStep],
        schema: ColumnSchema,
        run: Callable,
        source: str,
        out_schema: ColumnSchema,
        needed: frozenset[int],
        n_counters: int,
    ) -> None:
        self.steps = tuple(steps)
        self.schema = schema
        self.run = run
        self.source = source
        self.out_schema = out_schema
        #: input column positions the kernel actually reads — the
        #: batch builder projects every other column away
        self.needed = needed
        self.n_counters = n_counters

    def __reduce__(self) -> tuple:
        """Pickle as the generation recipe (see :class:`ChainKernel`)."""
        return (build_vector_kernel, (self.steps, self.schema))

    def zero_counts(self) -> tuple:
        """The counts tuple for an empty partition."""
        return (0,) * self.n_counters

    def run_batch(self, batch: ColumnBatch) -> tuple[ColumnBatch, tuple]:
        """Run the kernel over one batch: ``(out_batch, counts)``."""
        cols, n, counts = self.run(batch.columns, batch.nrows)
        return ColumnBatch(self.out_schema, tuple(cols), n), counts


def build_vector_kernel(
    steps: Sequence[KernelStep], schema: ColumnSchema
) -> VectorKernel:
    """Generate and compile the batch kernel for ``steps`` over ``schema``.

    Raises :exc:`NotVectorizable` (with the reason) when the chain, the
    record layout, or a binding value is outside the vectorizable
    subset; the caller falls back to the row kernel.
    """
    steps = tuple(steps)
    namespace: dict[str, Any] = {
        "_vcol": as_vector,
        "_bcast": broadcast,
        "_vmask": as_mask,
        "_vcount": mask_count,
        "_vsel": select_column,
        "_vand": mask_and,
        "_vor": mask_or,
        "_vnot": mask_not,
    }
    interned: dict[int, str] = {}

    def intern(value: Any) -> str:
        name = interned.get(id(value))
        if name is None:
            name = f"_cv{len(interned)}"
            interned[id(value)] = name
            namespace[name] = value
        return name

    def render_scalar(value: Any) -> str:
        if value is None or isinstance(value, (bool, int, str)):
            return repr(value)
        if isinstance(value, float) and math.isfinite(value):
            return repr(value)
        return intern(value)

    _UNKNOWN = object()

    def emit(
        expr: Expr, param: str, rep: _Rep, env: Env
    ) -> tuple[str, bool, bool, Any]:
        """Emit one scalar expression over the current column layout.

        Returns ``(source, is_column, is_mask, value)`` where ``value``
        is the build-time value for non-column operands.
        """
        if param not in expr.free_vars():
            if _contains_call(expr):
                raise NotVectorizable(
                    "free function call (not provably pure)"
                )
            try:
                value = expr.evaluate(env)
            except Exception as exc:
                raise NotVectorizable(
                    f"constant subexpression failed: {exc}"
                )
            if not _is_scalar_value(value):
                raise NotVectorizable(
                    "non-scalar operand of type "
                    f"{type(value).__name__}"
                )
            return (
                render_scalar(value),
                False,
                isinstance(value, bool),
                value,
            )
        if isinstance(expr, Ref):
            if rep.kind != "scalar":
                raise NotVectorizable(
                    "whole-record reference on composite records"
                )
            return rep.vars[0], True, False, _UNKNOWN
        if isinstance(expr, Attr):
            if not (
                isinstance(expr.obj, Ref) and expr.obj.name == param
            ):
                raise NotVectorizable("nested attribute access")
            if rep.kind != "dataclass" or expr.name not in rep.fields:
                raise NotVectorizable(
                    f"no column for field {expr.name!r}"
                )
            var = rep.vars[rep.fields.index(expr.name)]
            return var, True, False, _UNKNOWN
        if isinstance(expr, Index):
            if (
                isinstance(expr.obj, TupleExpr)
                and isinstance(expr.index, Const)
                and isinstance(expr.index.value, int)
                and not isinstance(expr.index.value, bool)
                and -len(expr.obj.items)
                <= expr.index.value
                < len(expr.obj.items)
            ):
                # Constant index into a literal tuple: emit every
                # element (all must be in the subset, mirroring the
                # row kernel's full evaluation) but wire up only the
                # selected one; dead emits never reach the source.
                picked = None
                for j, item in enumerate(expr.obj.items):
                    emitted = emit(item, param, rep, env)
                    if j == expr.index.value % len(expr.obj.items):
                        picked = emitted
                return picked
            if not (
                isinstance(expr.obj, Ref)
                and expr.obj.name == param
                and isinstance(expr.index, Const)
                and isinstance(expr.index.value, int)
                and not isinstance(expr.index.value, bool)
            ):
                raise NotVectorizable("non-constant or nested index")
            if rep.kind != "tuple":
                raise NotVectorizable(
                    "positional index on non-tuple records"
                )
            i = expr.index.value
            arity = len(rep.vars)
            if not (-arity <= i < arity):
                raise NotVectorizable(f"index {i} out of arity {arity}")
            return rep.vars[i], True, False, _UNKNOWN
        if isinstance(expr, BinOp):
            if expr.op not in _VEC_BIN:
                raise NotVectorizable(f"operator {expr.op!r}")
            if _is_masky(expr.left) or _is_masky(expr.right):
                raise NotVectorizable("arithmetic over boolean operands")
            lsrc, lcol, _lm, _lv = emit(expr.left, param, rep, env)
            rsrc, rcol, _rm, rvalue = emit(expr.right, param, rep, env)
            if expr.op in _VEC_DIV:
                if rcol:
                    raise NotVectorizable("data-dependent divisor")
                if (
                    not isinstance(rvalue, (int, float))
                    or isinstance(rvalue, bool)
                    or rvalue == 0
                ):
                    raise NotVectorizable(
                        "unsafe divisor for vector division"
                    )
            return (
                f"({lsrc} {expr.op} {rsrc})",
                lcol or rcol,
                False,
                _UNKNOWN,
            )
        if isinstance(expr, UnaryOp):
            if expr.op == "-":
                if _is_masky(expr.operand):
                    raise NotVectorizable("negating a boolean")
                osrc, ocol, _om, _ov = emit(expr.operand, param, rep, env)
                return f"(- {osrc})", ocol, False, _UNKNOWN
            if expr.op == "not":
                osrc, ocol, omask, _ov = emit(
                    expr.operand, param, rep, env
                )
                if not omask:
                    osrc = f"_vmask({osrc}, _n)"
                return f"_vnot({osrc})", True, True, _UNKNOWN
            raise NotVectorizable(f"operator {expr.op!r}")
        if isinstance(expr, Compare):
            if expr.op not in _VEC_CMP:
                raise NotVectorizable(f"comparison {expr.op!r}")
            lsrc, lcol, _lm, _lv = emit(expr.left, param, rep, env)
            rsrc, rcol, _rm, _rv = emit(expr.right, param, rep, env)
            return (
                f"({lsrc} {expr.op} {rsrc})",
                True,
                True,
                _UNKNOWN,
            )
        if isinstance(expr, BoolOp):
            if expr.op not in ("and", "or") or not expr.operands:
                raise NotVectorizable(f"operator {expr.op!r}")
            parts = []
            for part in expr.operands:
                psrc, pcol, pmask, pvalue = emit(part, param, rep, env)
                if not pcol and not isinstance(pvalue, bool):
                    raise NotVectorizable(
                        "short-circuit over non-boolean operands"
                    )
                if pcol and not pmask:
                    raise NotVectorizable(
                        "short-circuit over non-boolean operands"
                    )
                if not pcol:
                    psrc = f"_vmask({psrc}, _n)"
                parts.append(psrc)
            fn = "_vand" if expr.op == "and" else "_vor"
            src = parts[0]
            for part in parts[1:]:
                src = f"{fn}({src}, {part})"
            return src, True, True, _UNKNOWN
        raise NotVectorizable(f"{type(expr).__name__} in UDF body")

    rep = _Rep(
        schema.kind,
        [f"_c{i}" for i in range(schema.arity)],
        schema.fields,
        schema.ctor,
    )
    lines: list[Any] = []  # str | ("select", mask_var, live_candidates)
    counters: list[str] = []
    vi = mi = 0
    for step in steps:
        if step.body is None or step.bindings is None:
            raise NotVectorizable("UDF body is not lifted IR")
        if len(step.params) != 1:
            raise NotVectorizable("multi-parameter UDF")
        if step.extra:
            raise NotVectorizable("broadcast scan inside UDF")
        param = step.params[0]
        env = Env.of(dict(step.bindings))
        if step.kind == FLATMAP:
            raise NotVectorizable(
                "flat-map requires row-at-a-time emission"
            )
        if step.kind == FILTER:
            src, _is_col, _masky, _value = emit(
                step.body, param, rep, env
            )
            mask = f"_m{mi}"
            mi += 1
            counter = f"_k{len(counters)}"
            counters.append(counter)
            lines.append(f"{mask} = _vmask({src}, _n)")
            lines.append(f"{counter} = _vcount({mask})")
            lines.append(("select", mask, tuple(rep.vars)))
            lines.append(f"_n = {counter}")
            continue
        if step.kind != MAP:
            raise NotVectorizable(f"unknown step kind {step.kind!r}")
        body = step.body
        if isinstance(body, Ref) and body.name == param:
            continue  # identity map: layout unchanged
        if isinstance(body, TupleExpr):
            items = body.items
            out_kind, out_ctor = "tuple", None
        elif isinstance(body, Call):
            if body.kwargs:
                raise NotVectorizable("constructor keyword arguments")
            if (
                not isinstance(body.func, Ref)
                or body.func.name == param
            ):
                raise NotVectorizable("computed constructor")
            ctor = dict(step.bindings).get(body.func.name)
            cschema = (
                _dataclass_schema(ctor)
                if isinstance(ctor, type)
                else None
            )
            if cschema is None:
                raise NotVectorizable(
                    "constructor is not a plain dataclass"
                )
            if cschema.arity != len(body.args):
                raise NotVectorizable(
                    "constructor arity mismatch"
                )
            items = body.args
            out_kind, out_ctor = "dataclass", ctor
        else:
            items = (body,)
            out_kind, out_ctor = "scalar", None
        new_vars: list[str] = []
        for item in items:
            src, is_col, _masky, _value = emit(item, param, rep, env)
            var = f"_v{vi}"
            vi += 1
            if not is_col:
                src = f"_bcast({src}, _n)"
            lines.append(f"{var} = {src}")
            new_vars.append(var)
        if out_kind == "dataclass":
            fields = tuple(
                f.name for f in dataclasses.fields(out_ctor)
            )
        elif out_kind == "scalar":
            fields = ("_0",)
        else:
            fields = tuple(f"_{j}" for j in range(len(new_vars)))
        rep = _Rep(out_kind, new_vars, fields, out_ctor)

    out_tuple = ", ".join(rep.vars) + ("," if len(rep.vars) == 1 else "")
    ctr_tuple = ", ".join(counters) + ("," if len(counters) == 1 else "")
    lines.append(f"return (({out_tuple}), _n, ({ctr_tuple}))")

    # Resolve filter selections back-to-front: a column is re-selected
    # at a filter only if some later line (or the return) still reads
    # it — dead columns are never selected, and input columns never
    # read at all are never even built (projection pushdown).
    resolved_rev: list[str] = []
    tail_text = ""
    for entry in reversed(lines):
        if isinstance(entry, tuple):
            _tag, mask, candidates = entry
            live = [
                v
                for v in dict.fromkeys(candidates)
                if re.search(rf"{re.escape(v)}\b", tail_text)
            ]
            sel = [f"{v} = _vsel({v}, {mask})" for v in live]
            resolved_rev.extend(reversed(sel))
            tail_text = "\n".join(sel) + "\n" + tail_text
        else:
            resolved_rev.append(entry)
            tail_text = entry + "\n" + tail_text
    body_lines = list(reversed(resolved_rev))
    body_text = "\n".join(body_lines)
    needed = frozenset(
        i
        for i in range(schema.arity)
        if re.search(rf"_c{i}\b", body_text)
    )

    src_lines = ["def _vector_kernel(_cols, _n):"]
    src_lines.extend(
        f"    _c{i} = _vcol(_cols[{i}])" for i in sorted(needed)
    )
    src_lines.extend(f"    {line}" for line in body_lines)
    source = "\n".join(src_lines)
    code = compile(source, "<vector-kernel>", "exec")
    exec(code, namespace)  # noqa: S102 - compiler-generated source
    out_schema = ColumnSchema(rep.kind, rep.fields, rep.ctor)
    return VectorKernel(
        steps,
        schema,
        namespace["_vector_kernel"],
        source,
        out_schema,
        needed,
        len(counters),
    )


def build_key_kernel(
    key_step: KernelStep, schema: ColumnSchema
) -> VectorKernel:
    """The vector kernel evaluating one *key* UDF as a column.

    Exchange operators (shuffle, hash join, group-by) need the key of
    every record; wrapping the key's :class:`KernelStep` as a
    single-step MAP chain reuses the whole scalar-subset evaluator —
    same vectorizable subset, same bit-identical Python semantics — and
    yields a kernel whose output batch is the key column(s).  Raises
    :exc:`NotVectorizable` exactly like :func:`build_vector_kernel`.
    """
    if key_step.kind != MAP:
        raise NotVectorizable("key kernels must be MAP steps")
    return build_vector_kernel((key_step,), schema)

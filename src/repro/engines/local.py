"""The local engine — direct host-language execution.

This is the paper's rapid-prototyping mode: DataBag programs run as
plain Python with no parallel runtime, no partitions, and no cost
accounting.  The driver interpreter detects ``LocalEngine.direct`` and
evaluates the lifted IR directly via
:func:`repro.comprehension.exprs.evaluate` — a genuinely different code
path from the parallel engines, which makes it the differential-testing
oracle: every workload must produce identical results on the local,
Spark-like, and Flink-like backends.
"""

from __future__ import annotations

from repro.engines.base import Engine
from repro.engines.cluster import ClusterConfig
from repro.engines.costmodel import CostModel


class LocalEngine(Engine):
    """Direct evaluation, no simulation (see module docstring)."""

    name = "local"
    #: signals the driver interpreter to bypass lowering entirely
    direct = True

    def __init__(self) -> None:
        super().__init__(
            cluster=ClusterConfig(num_workers=1),
            cost=CostModel(job_overhead=0.0, stage_overhead=0.0),
        )

"""Partitioned datasets and cluster configuration.

A :class:`PartitionedBag` is the engines' runtime representation of a
distributed bag: a list of partitions (partition ``i`` lives on worker
``i % num_workers``) plus an optional :class:`Partitioner` recording
that the data is hash-partitioned on a key.  Partitioner equality is
*structural over the key's IR* — two dataflows that partition on the
same lifted key expression recognize each other's partitioning, which
is what makes the partition-pulling optimization able to elide
shuffles.
"""

from __future__ import annotations

import array as _array
import sys
import zlib
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.engines.sizes import estimate_bag_bytes
from repro.lowering.combinators import ScalarFn


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated cluster."""

    num_workers: int = 8
    #: partitions per dataflow (defaults to num_workers when 0)
    default_parallelism: int = 0

    @property
    def parallelism(self) -> int:
        return self.default_parallelism or self.num_workers


@dataclass(frozen=True)
class Partitioner:
    """Hash partitioning on a key function over a partition count."""

    key: ScalarFn
    num_partitions: int

    def matches(self, key: ScalarFn, num_partitions: int) -> bool:
        """Whether this partitioning satisfies the requested one
        (alpha-insensitive on the key's parameter names)."""
        if self.num_partitions != num_partitions:
            return False
        if self.key == key:
            return True
        return self.key.canonical() == key.canonical()


def _combine(tag: int, items: Any) -> int:
    acc = tag
    for item in items:
        acc = (acc * 1000003) ^ stable_hash(item)
        acc &= 0xFFFFFFFF
    return acc


def stable_hash(value: Any) -> int:
    """A process-independent hash for partitioning.

    Python's builtin ``hash`` is salted per process for strings (PEP
    456), which would make partition layouts — and therefore skew-
    sensitive experiment outcomes — vary between runs.  This hash is
    deterministic: integers map to themselves, strings/bytes through
    CRC32, sequences combine positionally, sets and dict items
    order-independently, and dataclass records field-wise (tagged with
    the class name, so two record types with equal field values
    partition differently).  Dicts hash as their ``(key, value)`` item
    set, which is what lets worker-shipped closure *bindings* (name →
    captured value mappings) be fingerprinted for the per-worker-process
    kernel memo of :mod:`repro.engines.scheduler`.

    Typed buffers hash by content: ``array.array`` over its typecode
    plus raw bytes, numpy arrays over dtype + shape + contiguous
    bytes, and :class:`~repro.engines.columnar.ColumnBatch` over its
    schema signature plus per-column Python values — which is what lets
    input *snapshots* (staged datasets, columnar partitions) be
    fingerprinted for the result cache of
    :mod:`repro.engines.plancache`.

    Values outside this closed set raise :class:`EngineError` rather
    than falling back to ``repr``: object reprs that embed ``id()``
    addresses would silently produce partition layouts that differ
    between runs — exactly the nondeterminism this hash exists to
    prevent.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, bytes):
        return zlib.crc32(value)
    if isinstance(value, float):
        return zlib.crc32(repr(value).encode("utf-8"))
    if isinstance(value, tuple):
        return _combine(0x345678, value)
    if isinstance(value, list):
        return _combine(0x2D5F1B, value)
    if isinstance(value, (set, frozenset)):
        acc = 0x1E7A93
        for item in value:  # xor: order-independent
            acc ^= stable_hash(item)
        return acc & 0xFFFFFFFF
    if isinstance(value, dict):
        # A dict is its item set: xor of per-item (key, value) hashes
        # so insertion order never matters, under a dict-specific tag
        # so {} and set() hash apart.
        acc = 0x6B43A9
        for item in value.items():
            acc ^= _combine(0x345678, item)
        return acc & 0xFFFFFFFF
    if value is None:
        return 0
    if isinstance(value, _array.array):
        return _combine(0x545950, (value.typecode, value.tobytes()))
    np = sys.modules.get("numpy")
    if np is not None and isinstance(value, np.ndarray):
        if not value.dtype.hasobject:
            contiguous = np.ascontiguousarray(value)
            return _combine(
                0x4E4441,
                (
                    str(contiguous.dtype),
                    contiguous.shape,
                    contiguous.tobytes(),
                ),
            )
    if is_dataclass(value) and not isinstance(value, type):
        tag = zlib.crc32(type(value).__qualname__.encode("utf-8"))
        return _combine(
            tag, (getattr(value, f.name) for f in fields(value))
        )
    from repro.engines.columnar import ColumnBatch, _column_list

    if isinstance(value, ColumnBatch):
        columns = tuple(
            None if col is None else _column_list(col)
            for col in value.columns
        )
        return _combine(
            0x434F4C,
            (value.schema.signature(), value.nrows, columns),
        )
    from repro.errors import EngineError

    raise EngineError(
        f"cannot compute a stable partition hash for a "
        f"{type(value).__name__}: partition keys must be "
        f"ints/floats/strings/bytes/tuples/lists/sets/dicts or dataclass "
        f"records composed of those (repr-based hashing of arbitrary "
        f"objects is not deterministic across runs)"
    )


def hash_partition_index(key_value: Any, num_partitions: int) -> int:
    """Deterministic partition index for a key value."""
    return stable_hash(key_value) % num_partitions


class PartitionedBag:
    """A distributed bag: one record list per partition."""

    __slots__ = ("partitions", "partitioner", "__weakref__")

    def __init__(
        self,
        partitions: Sequence[Sequence[Any]],
        partitioner: Partitioner | None = None,
    ) -> None:
        self.partitions: list[list[Any]] = [list(p) for p in partitions]
        self.partitioner = partitioner

    @staticmethod
    def from_records(
        records: Iterable[Any], num_partitions: int
    ) -> "PartitionedBag":
        """Round-robin distribute records over ``num_partitions``."""
        partitions: list[list[Any]] = [[] for _ in range(num_partitions)]
        for i, record in enumerate(records):
            partitions[i % num_partitions].append(record)
        return PartitionedBag(partitions)

    @staticmethod
    def by_key(
        records: Iterable[Any],
        key_fn: Callable[[Any], Any],
        key_ir: ScalarFn,
        num_partitions: int,
    ) -> "PartitionedBag":
        """Hash-partition records by ``key_fn``."""
        partitions: list[list[Any]] = [[] for _ in range(num_partitions)]
        for record in records:
            idx = hash_partition_index(key_fn(record), num_partitions)
            partitions[idx].append(record)
        return PartitionedBag(
            partitions, Partitioner(key_ir, num_partitions)
        )

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def count(self) -> int:
        """Total number of records across partitions."""
        return sum(len(p) for p in self.partitions)

    def records(self) -> Iterator[Any]:
        """Iterate all records, partition by partition."""
        for p in self.partitions:
            yield from p

    def collect(self) -> list[Any]:
        """All records as one list (driver-side materialization)."""
        return [r for p in self.partitions for r in p]

    def nbytes(self) -> int:
        """Estimated serialized bytes of the whole bag."""
        return sum(estimate_bag_bytes(p) for p in self.partitions)

    def partition_bytes(self) -> list[int]:
        """Estimated bytes per partition (skew diagnostics)."""
        return [estimate_bag_bytes(p) for p in self.partitions]

    def trace_attrs(self) -> dict[str, int]:
        """Size and skew measurements for a trace span.

        ``max_partition_bytes`` vs ``bytes_out / partitions`` exposes
        key skew directly in the span tree (the Figure 5c effect).
        """
        sizes = self.partition_bytes()
        return {
            "rows_out": self.count(),
            "bytes_out": sum(sizes),
            "partitions": self.num_partitions,
            "max_partition_bytes": max(sizes, default=0),
        }

    def copy(self) -> "PartitionedBag":
        """A deep-enough copy (fresh partition lists, same records)."""
        return PartitionedBag(
            [list(p) for p in self.partitions], self.partitioner
        )

    def __repr__(self) -> str:
        return (
            f"PartitionedBag({self.count()} records, "
            f"{self.num_partitions} partitions, "
            f"partitioner={self.partitioner is not None})"
        )

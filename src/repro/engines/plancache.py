"""The two-level cross-run fingerprint cache (plans and results).

Every run used to pay lift + optimize + codegen + execute in a fresh
driver even when the program and inputs were byte-identical to the
last run.  Because the deep embedding reifies plans as hashable values
(:mod:`repro.optimizer.fingerprint`), both levels of that redundancy
are cacheable:

* **Level 1 — plan cache.**  Keyed by the plan fingerprint (canonical
  lifted IR + plan-affecting ``EmmaConfig`` knobs), an entry holds the
  whole pickled :class:`~repro.optimizer.pipeline.CompiledProgram`:
  lowered combinator DAGs, fused chain kernels and vector-kernel
  selections, physical-planning annotations, partition keys, and the
  compile-provenance trace.  Entries are written through to disk, so a
  *fresh driver process* pointed at the same cache directory skips the
  entire optimizer/codegen pipeline on a hit.
* **Level 2 — result cache.**  Keyed by (plan fingerprint, input
  snapshot fingerprint), an entry memoizes a run's final value; a warm
  submission is answered without executing anything, and a batch
  submission with a partial hit *backfills* only its missing inputs
  (:meth:`repro.server.JobService.submit_batch`).

Entries resident in driver memory are pickled blobs; under a memory
limit (wired to the PR 7 ``memory_budget`` by
:meth:`~repro.engines.base.Engine.attach_plan_cache`) cold entries are
LRU-dropped to their disk tier and lazily reloaded — the same
monotone-clock discipline as :mod:`repro.engines.spill`.

Cache traffic is driver-host mechanics: hits skip host work but the
runs that *do* execute keep bit-identical results,
``simulated_seconds``, and fault schedules.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import threading
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.databag import DataBag
from repro.engines.metrics import Metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.frontend.parallelize import Algorithm
    from repro.optimizer.pipeline import CompiledProgram, EmmaConfig

_PLAN_PREFIX = "plan-"
_RESULT_PREFIX = "result-"
_SUFFIX = ".pkl"


@dataclass
class CacheStats:
    """Lifetime counters of one :class:`PlanCache` (across all jobs)."""

    plan_hits: int = 0
    plan_misses: int = 0
    plan_stores: int = 0
    result_hits: int = 0
    result_misses: int = 0
    result_stores: int = 0
    #: entries that could not be pickled and were left uncached
    store_skips: int = 0
    #: in-memory blobs dropped to the disk tier under the memory limit
    evictions: int = 0
    #: evicted/foreign entries re-read from their disk files
    disk_loads: int = 0
    #: host compile seconds skipped by plan hits
    compile_seconds_saved: float = 0.0

    def hit_rate(self) -> dict[str, float]:
        """Plan and result hit rates (0.0 when a level saw no lookups)."""
        plan_total = self.plan_hits + self.plan_misses
        result_total = self.result_hits + self.result_misses
        return {
            "plan": self.plan_hits / plan_total if plan_total else 0.0,
            "result": (
                self.result_hits / result_total if result_total else 0.0
            ),
        }


@dataclass
class _Entry:
    """One cached artifact: a pickled blob plus its disk residence."""

    path: str
    blob: bytes | None
    nbytes: int
    #: compile seconds the entry saves per hit (plan entries only)
    compile_seconds: float = 0.0
    last_used: int = 0


class PlanCache:
    """The two-level fingerprint cache (see module docstring).

    Thread-safe: the job service executes many concurrent jobs against
    one shared cache.  ``cache_dir`` is the persistence root — two
    driver processes pointed at the same directory share warm state;
    ``None`` creates a private temp directory (removed when the cache
    dies).  ``memory_limit`` bounds resident blob bytes (0 keeps
    everything resident).
    """

    def __init__(
        self,
        cache_dir: str | None = None,
        memory_limit: int = 0,
    ) -> None:
        if cache_dir is None:
            cache_dir = tempfile.mkdtemp(prefix="repro-plancache-")
            weakref.finalize(
                self, shutil.rmtree, cache_dir, ignore_errors=True
            )
        os.makedirs(cache_dir, exist_ok=True)
        self.cache_dir = cache_dir
        self.memory_limit = memory_limit
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._clock = 0
        self._plans: dict[str, _Entry] = {}
        self._results: dict[tuple[str, str], _Entry] = {}
        self._adopt_disk_entries()

    def _adopt_disk_entries(self) -> None:
        """Index pre-existing cache files (blobs stay on disk)."""
        for name in sorted(os.listdir(self.cache_dir)):
            if not name.endswith(_SUFFIX):
                continue
            path = os.path.join(self.cache_dir, name)
            stem = name[: -len(_SUFFIX)]
            if stem.startswith(_PLAN_PREFIX):
                fp = stem[len(_PLAN_PREFIX) :]
                self._plans[fp] = _Entry(
                    path=path, blob=None, nbytes=os.path.getsize(path)
                )
            elif stem.startswith(_RESULT_PREFIX):
                parts = stem[len(_RESULT_PREFIX) :].split("-")
                if len(parts) != 2:
                    continue
                self._results[(parts[0], parts[1])] = _Entry(
                    path=path, blob=None, nbytes=os.path.getsize(path)
                )

    # -- level 1: compiled plans -------------------------------------------

    def lookup_plan(
        self, fingerprint: str, metrics: Metrics | None = None
    ) -> "CompiledProgram | None":
        """The cached compiled program for a fingerprint, or ``None``.

        A hit returns a *fresh* unpickled object (safe to annotate per
        run), stamps it ``cache_origin="plan-cache"``, appends a
        provenance event to its compile trace, and charges the saved
        compile seconds to ``metrics.compile_seconds_saved``.
        """
        with self._lock:
            entry = self._plans.get(fingerprint)
            payload = self._entry_blob(entry) if entry else None
            if payload is None:
                self.stats.plan_misses += 1
                if metrics is not None:
                    metrics.plan_cache_misses += 1
                return None
            self.stats.plan_hits += 1
        try:
            compile_seconds, compiled = pickle.loads(payload)
        except Exception:
            # A corrupt or version-skewed file is a miss, not a crash.
            with self._lock:
                self._drop_entry(self._plans, fingerprint)
                self.stats.plan_hits -= 1
                self.stats.plan_misses += 1
            if metrics is not None:
                metrics.plan_cache_misses += 1
            return None
        with self._lock:
            entry.compile_seconds = compile_seconds
            self.stats.compile_seconds_saved += compile_seconds
        if metrics is not None:
            metrics.plan_cache_hits += 1
            metrics.compile_seconds_saved += compile_seconds
        _adopt_loaded_plan(compiled)
        compiled.cache_origin = "plan-cache"
        if compiled.trace is not None:
            compiled.trace.record(
                "fingerprint",
                "plan-cache",
                True,
                detail=(
                    f"compiled plan served from cache "
                    f"(saved {compile_seconds:.3f}s of compilation)"
                ),
            )
        return compiled

    def store_plan(self, compiled: "CompiledProgram") -> bool:
        """Persist a freshly compiled program under its fingerprint.

        Returns ``False`` (and caches nothing) when the program is not
        picklable — e.g. a UDF closed over an open file.
        """
        fingerprint = compiled.fingerprint
        if not fingerprint:
            return False
        try:
            blob = pickle.dumps(
                (compiled.compile_seconds, compiled),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception:
            self.stats.store_skips += 1
            return False
        path = os.path.join(
            self.cache_dir, f"{_PLAN_PREFIX}{fingerprint}{_SUFFIX}"
        )
        with self._lock:
            self._write_file(path, blob)
            self._plans[fingerprint] = self._new_entry(
                path, blob, compile_seconds=compiled.compile_seconds
            )
            self.stats.plan_stores += 1
            self._evict_to_limit()
        return True

    def compiled(
        self,
        algorithm: "Algorithm",
        config: "EmmaConfig | None" = None,
        metrics: Metrics | None = None,
    ) -> "CompiledProgram":
        """Lookup-or-compile: the plan-cache doorway used by
        :meth:`Algorithm.run <repro.frontend.parallelize.Algorithm.run>`.
        """
        from repro.optimizer.fingerprint import plan_fingerprint
        from repro.optimizer.pipeline import EmmaConfig

        config = config or EmmaConfig()
        fingerprint = plan_fingerprint(algorithm.lifted.program, config)
        hit = self.lookup_plan(fingerprint, metrics=metrics)
        if hit is not None:
            return hit
        compiled = algorithm.compiled(config)
        self.store_plan(compiled)
        return compiled

    # -- level 2: memoized results -----------------------------------------

    def lookup_result(
        self,
        plan_fp: str,
        snapshot_fp: str,
        metrics: Metrics | None = None,
    ) -> tuple[bool, Any]:
        """``(hit, value)`` for a (plan, input-snapshot) key.

        Hits decode a fresh copy of the memoized value (bags rehydrate
        as new ``DataBag`` objects), so callers can never corrupt the
        cache through the returned reference.
        """
        key = (plan_fp, snapshot_fp)
        with self._lock:
            entry = self._results.get(key)
            payload = self._entry_blob(entry) if entry else None
        if payload is None:
            self.stats.result_misses += 1
            if metrics is not None:
                metrics.result_cache_misses += 1
            return False, None
        try:
            value = _decode_result(pickle.loads(payload))
        except Exception:
            with self._lock:
                self._drop_entry(self._results, key)
            self.stats.result_misses += 1
            if metrics is not None:
                metrics.result_cache_misses += 1
            return False, None
        self.stats.result_hits += 1
        if metrics is not None:
            metrics.result_cache_hits += 1
        return True, value

    def store_result(
        self, plan_fp: str, snapshot_fp: str, value: Any
    ) -> bool:
        """Memoize one run's final value; ``False`` if unpicklable."""
        try:
            blob = pickle.dumps(
                _encode_result(value), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception:
            self.stats.store_skips += 1
            return False
        path = os.path.join(
            self.cache_dir,
            f"{_RESULT_PREFIX}{plan_fp}-{snapshot_fp}{_SUFFIX}",
        )
        with self._lock:
            self._write_file(path, blob)
            self._results[(plan_fp, snapshot_fp)] = self._new_entry(
                path, blob
            )
            self.stats.result_stores += 1
            self._evict_to_limit()
        return True

    # -- residency and eviction --------------------------------------------

    def set_memory_limit(
        self, limit: int, metrics: Metrics | None = None
    ) -> None:
        """Bound resident blob bytes (0 = unlimited); evicts eagerly."""
        with self._lock:
            self.memory_limit = limit
            self._evict_to_limit(metrics)

    def resident_bytes(self) -> int:
        """Pickled bytes currently held in driver memory."""
        with self._lock:
            return sum(
                e.nbytes
                for store in (self._plans, self._results)
                for e in store.values()
                if e.blob is not None
            )

    def _evict_to_limit(self, metrics: Metrics | None = None) -> None:
        """LRU-drop cold resident blobs until under the memory limit.

        The disk file *is* the spill tier — an evicted entry stays
        servable, the next hit just pays a file read (counted in
        ``stats.disk_loads``).
        """
        if not self.memory_limit:
            return
        resident = [
            e
            for store in (self._plans, self._results)
            for e in store.values()
            if e.blob is not None
        ]
        total = sum(e.nbytes for e in resident)
        resident.sort(key=lambda e: e.last_used)
        for entry in resident:
            if total <= self.memory_limit:
                break
            entry.blob = None
            total -= entry.nbytes
            self.stats.evictions += 1
            if metrics is not None:
                metrics.cache_entries_evicted += 1

    # -- internals ----------------------------------------------------------

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _new_entry(
        self, path: str, blob: bytes, compile_seconds: float = 0.0
    ) -> _Entry:
        return _Entry(
            path=path,
            blob=blob,
            nbytes=len(blob),
            compile_seconds=compile_seconds,
            last_used=self._tick(),
        )

    def _entry_blob(self, entry: _Entry) -> bytes | None:
        """The entry's blob, reloading the disk tier when evicted."""
        entry.last_used = self._tick()
        if entry.blob is not None:
            return entry.blob
        try:
            with open(entry.path, "rb") as f:
                blob = f.read()
        except OSError:
            return None
        self.stats.disk_loads += 1
        entry.blob = blob
        entry.nbytes = len(blob)
        self._evict_to_limit()
        return blob

    @staticmethod
    def _write_file(path: str, blob: bytes) -> None:
        tmp = path + ".tmp"
        with open(tmp, "wb") as f:
            f.write(blob)
        os.replace(tmp, path)

    def _drop_entry(self, store: dict, key: Any) -> None:
        entry = store.pop(key, None)
        if entry is not None:
            try:
                os.remove(entry.path)
            except OSError:
                pass

    def clear(self) -> None:
        """Forget every entry and delete the backing files."""
        with self._lock:
            for store in (self._plans, self._results):
                for key in list(store):
                    self._drop_entry(store, key)


def _encode_result(value: Any) -> tuple[str, Any]:
    """A pickle-friendly tagged payload for a run's final value."""
    if isinstance(value, DataBag):
        return ("bag", value.fetch())
    return ("value", value)


def _decode_result(payload: tuple[str, Any]) -> Any:
    """Rehydrate a stored payload as a fresh value."""
    kind, data = payload
    if kind == "bag":
        return DataBag(list(data))
    return data


def _adopt_loaded_plan(compiled: "CompiledProgram") -> None:
    """Keep future node ids clear of a loaded plan's ids.

    Engine hoist caches key on ``node_id``; advancing the global
    counter past every id in the loaded plan guarantees nodes compiled
    later in this driver never alias them.
    """
    from repro.lowering.combinators import (
        combinator_nodes,
        ensure_node_ids_above,
    )

    highest = -1
    for _, plan, _ in compiled.sites:
        for node in combinator_nodes(plan):
            highest = max(highest, node.node_id)
    if highest >= 0:
        ensure_node_ids_above(highest)


# -- the environment-default shared cache -----------------------------------

_DEFAULT_CACHE: PlanCache | None = None
_DEFAULT_DIR: str | None = None


def default_plan_cache() -> PlanCache | None:
    """The process-wide cache enabled by ``REPRO_PLAN_CACHE_DIR``.

    When the environment variable names a directory, every
    ``Algorithm.run`` on an engine without an explicitly attached cache
    shares this singleton — which is how CI runs the whole tier-1 suite
    cold-then-warm against one persistent cache.  Returns ``None``
    (caching off) when the variable is unset or empty.
    """
    global _DEFAULT_CACHE, _DEFAULT_DIR
    directory = os.environ.get("REPRO_PLAN_CACHE_DIR", "").strip()
    if not directory:
        return None
    if _DEFAULT_CACHE is None or _DEFAULT_DIR != directory:
        _DEFAULT_CACHE = PlanCache(cache_dir=directory)
        _DEFAULT_DIR = directory
    return _DEFAULT_CACHE

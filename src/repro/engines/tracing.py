"""Structured tracing for the compiler pipeline and the simulated runtime.

Two collectors, one module:

* :class:`CompileTrace` — the compiler's provenance record.  Every pass
  of :func:`repro.optimizer.pipeline.compile_program` (inlining,
  caching, resugaring, normalization, fold-group fusion, the Figure 3a
  lowering states, operator chaining, partition pulling) appends a
  :class:`PassEvent` saying whether it fired, why (or why not), and the
  IR term before/after.  ``explain(trace=True)`` renders the whole
  record as a per-phase report — the answer to "why does my program
  run as *this* plan?".
* :class:`RuntimeTracer` — hierarchical spans over **simulated time**.
  The engines emit ``run → job → operator/stage`` spans (operators nest
  along the dataflow tree, since the executor recurses through its
  inputs) carrying wall/compute seconds, rows and bytes out, shuffle
  and broadcast volumes, plus point events for fault injections,
  recoveries, and checkpoints attached to the span where they occurred.

Span timestamps are *simulated seconds*, the engines' own clock: a
job's position is the engine's ``metrics.simulated_seconds`` when it
starts, and within a job the clock is the job's critical path
(``max(worker_seconds) + driver_seconds``), which only grows — so spans
nest correctly and a job's children always sum within its duration.
Because each finished job adds exactly its span duration into
``metrics.simulated_seconds``, the per-job wall times of a trace sum to
the metrics total by construction.

Exports: JSON lines (one span per line, depth-first), Chrome
``chrome://tracing`` format (complete ``"X"`` events, microsecond
units, one ``tid`` row per job), and an indented ASCII tree for docs
and terminals.

IR objects captured by :class:`PassEvent` are stored by reference and
pretty-printed only at render time, so collecting a compile trace is
O(passes) regardless of program size — cheap enough to be always on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator

# ---------------------------------------------------------------------------
# Compile-side provenance
# ---------------------------------------------------------------------------


@dataclass
class PassEvent:
    """One compiler-pass decision: what fired (or did not), and on what.

    ``before``/``after`` hold IR objects (driver programs, comprehension
    expressions, combinator trees) or plain strings; rendering resolves
    the right pretty-printer lazily.
    """

    phase: str
    rule: str
    fired: bool
    detail: str = ""
    site: int | None = None
    before: Any = None
    after: Any = None

    def render(self, indent: str = "") -> str:
        """One ``[fired]``/``[skip ]`` line plus lazy before/after IR."""
        mark = "fired" if self.fired else "skip "
        where = f" [site {self.site}]" if self.site is not None else ""
        lines = [f"{indent}[{mark}] {self.rule}{where}: {self.detail}"]
        for tag, obj in (("before", self.before), ("after", self.after)):
            if obj is None:
                continue
            text = _render_ir(obj)
            if "\n" in text:
                body = "\n".join(
                    f"{indent}    {line}" for line in text.splitlines()
                )
                lines.append(f"{indent}  {tag}:\n{body}")
            else:
                lines.append(f"{indent}  {tag}: {text}")
        return "\n".join(lines)


def _render_ir(obj: Any) -> str:
    """Pretty-print an IR object with whichever printer fits it."""
    if isinstance(obj, str):
        return obj
    from repro.lowering.combinators import Combinator, explain

    if isinstance(obj, Combinator):
        return explain(obj)
    from repro.frontend.driver_ir import DriverProgram, pretty_program

    if isinstance(obj, DriverProgram):
        return pretty_program(obj)
    from repro.comprehension.exprs import Expr
    from repro.comprehension.pretty import pretty

    if isinstance(obj, Expr):
        return pretty(obj)
    return repr(obj)


class CompileTrace:
    """The ordered record of every compiler-pass decision."""

    def __init__(self) -> None:
        self.events: list[PassEvent] = []

    def record(
        self,
        phase: str,
        rule: str,
        fired: bool,
        detail: str = "",
        site: int | None = None,
        before: Any = None,
        after: Any = None,
    ) -> None:
        """Append one pass decision (IR objects stored by reference)."""
        self.events.append(
            PassEvent(
                phase=phase,
                rule=rule,
                fired=fired,
                detail=detail,
                site=site,
                before=before,
                after=after,
            )
        )

    def fired_rules(self) -> list[str]:
        """Names of all rules that fired, in order, duplicates kept."""
        return [e.rule for e in self.events if e.fired]

    def for_phase(self, phase: str) -> list[PassEvent]:
        """All events recorded under one compiler phase, in order."""
        return [e for e in self.events if e.phase == phase]

    def render(self) -> str:
        """The per-phase provenance report, human-readable."""
        lines = ["== compile provenance =="]
        phases: list[str] = []
        for event in self.events:
            if event.phase not in phases:
                phases.append(event.phase)
        for phase in phases:
            lines.append(f"phase {phase}:")
            for event in self.for_phase(phase):
                lines.append(event.render(indent="  "))
        if not phases:
            lines.append("(no passes recorded)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)


# ---------------------------------------------------------------------------
# Runtime spans
# ---------------------------------------------------------------------------


@dataclass
class TraceEvent:
    """A point event (fault, recovery, checkpoint) inside a span."""

    name: str
    ts: float
    attrs: dict[str, Any] = field(default_factory=dict)


@dataclass
class TraceSpan:
    """One timed interval of simulated execution.

    ``cat`` is the span family: ``"run"``, ``"job"``, ``"operator"``,
    or ``"stage"`` (shuffles/broadcasts).  ``ts``/``dur`` are simulated
    seconds; ``attrs`` carries per-span measurements (rows_out,
    bytes_out, compute_seconds, shuffle_bytes, ...).
    """

    name: str
    cat: str
    ts: float
    dur: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["TraceSpan"] = field(default_factory=list)
    events: list[TraceEvent] = field(default_factory=list)

    def walk(self) -> Iterator["TraceSpan"]:
        """Depth-first over this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, cat: str) -> list["TraceSpan"]:
        """All descendant spans (inclusive) of one category."""
        return [s for s in self.walk() if s.cat == cat]

    def to_dict(self) -> dict[str, Any]:
        """A flat JSON-ready view of this span (children excluded)."""
        out: dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "ts": round(self.ts, 9),
            "dur": round(self.dur, 9),
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.events:
            out["events"] = [
                {"name": e.name, "ts": round(e.ts, 9), **(
                    {"attrs": dict(e.attrs)} if e.attrs else {}
                )}
                for e in self.events
            ]
        return out


class RuntimeTracer:
    """Collects a forest of :class:`TraceSpan` over simulated time.

    The engines drive it with explicit timestamps read off their own
    simulated clock; the tracer only maintains the open-span stack.
    All hot-path call sites guard with ``if tracer is not None`` — a
    disabled run pays one attribute load per operator, nothing more.
    """

    def __init__(self, engine: str = "engine") -> None:
        self.engine = engine
        self.roots: list[TraceSpan] = []
        self._stack: list[TraceSpan] = []
        self._job_seq = 0

    # -- span lifecycle ----------------------------------------------------

    def begin(
        self, name: str, cat: str, ts: float, **attrs: Any
    ) -> TraceSpan:
        """Open a span at simulated time ``ts`` under the current span."""
        span = TraceSpan(name=name, cat=cat, ts=ts, attrs=dict(attrs))
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self, span: TraceSpan, end_ts: float, **attrs: Any) -> None:
        """Close a span, setting duration from its start timestamp.

        Out-of-order ends (an inner span outliving a tool-managed
        outer one) are tolerated: everything above ``span`` on the
        stack is popped with it.
        """
        span.dur = max(0.0, end_ts - span.ts)
        span.attrs.update(attrs)
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    def end_at_duration(
        self, span: TraceSpan, dur: float, **attrs: Any
    ) -> None:
        """Close a span with an explicit duration (job accounting)."""
        self.end(span, span.ts + dur, **attrs)

    def event(self, name: str, ts: float, **attrs: Any) -> None:
        """Attach a point event to the innermost open span."""
        evt = TraceEvent(name=name, ts=ts, attrs=dict(attrs))
        if self._stack:
            self._stack[-1].events.append(evt)
        elif self.roots:
            self.roots[-1].events.append(evt)
        else:
            # No open span (direct engine use outside a run): keep the
            # event as a zero-length root so nothing is lost.
            self.roots.append(
                TraceSpan(
                    name=name, cat="event", ts=ts, events=[evt]
                )
            )

    def next_job_index(self) -> int:
        """The next sequential job number (0-based, per tracer)."""
        self._job_seq += 1
        return self._job_seq - 1

    # -- queries -----------------------------------------------------------

    def spans(self) -> Iterator[TraceSpan]:
        """All spans in the forest, depth-first."""
        for root in self.roots:
            yield from root.walk()

    def job_spans(self) -> list[TraceSpan]:
        """The per-job spans, in execution order."""
        return [s for s in self.spans() if s.cat == "job"]

    # -- exports -----------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per span (depth-first), parent-annotated."""
        lines = []
        for root in self.roots:
            for span, depth, parent in _walk_with_parents(root):
                record = span.to_dict()
                record["depth"] = depth
                if parent is not None:
                    record["parent"] = parent.name
                lines.append(json.dumps(record, default=str))
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome(self) -> dict[str, Any]:
        """The Chrome ``chrome://tracing`` / Perfetto JSON document.

        Complete (``ph: "X"``) events with microsecond timestamps; each
        job gets its own ``tid`` row so nested jobs (a broadcast forcing
        a thunk mid-job) do not overlap on one track.
        """
        trace_events: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": f"repro:{self.engine}"},
            }
        ]
        for root in self.roots:
            self._chrome_walk(root, tid=0, out=trace_events)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def _chrome_walk(
        self, span: TraceSpan, tid: int, out: list[dict[str, Any]]
    ) -> None:
        if span.cat == "job":
            tid = span.attrs.get("job_index", tid) + 1
        out.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": span.ts * 1e6,
                "dur": span.dur * 1e6,
                "args": {
                    k: v
                    for k, v in span.attrs.items()
                    if isinstance(v, (int, float, str, bool))
                },
            }
        )
        for evt in span.events:
            out.append(
                {
                    "name": evt.name,
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": tid,
                    "ts": evt.ts * 1e6,
                    "args": {
                        k: v
                        for k, v in evt.attrs.items()
                        if isinstance(v, (int, float, str, bool))
                    },
                }
            )
        for child in span.children:
            self._chrome_walk(child, tid, out)

    def write_jsonl(self, path: Any) -> None:
        """Write the JSON-lines export to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())

    def write_chrome(self, path: Any) -> None:
        """Write the ``chrome://tracing`` document to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh, indent=1)

    def render(self) -> str:
        """All root spans as indented ASCII trees."""
        return "\n".join(render_span_tree(root) for root in self.roots)


def _walk_with_parents(
    root: TraceSpan,
    depth: int = 0,
    parent: TraceSpan | None = None,
) -> Iterator[tuple[TraceSpan, int, TraceSpan | None]]:
    yield root, depth, parent
    for child in root.children:
        yield from _walk_with_parents(child, depth + 1, root)


def render_span_tree(span: TraceSpan, indent: int = 0) -> str:
    """An indented, human-readable view of one span tree."""
    pad = "  " * indent
    stats = _span_stats(span)
    lines = [f"{pad}{span.name} [{span.cat}] {stats}"]
    for evt in span.events:
        extra = " ".join(f"{k}={v}" for k, v in evt.attrs.items())
        lines.append(
            f"{pad}  ! {evt.name} @{evt.ts:.4f}s"
            + (f" {extra}" if extra else "")
        )
    for child in span.children:
        lines.append(render_span_tree(child, indent + 1))
    return "\n".join(lines)


def _span_stats(span: TraceSpan) -> str:
    parts = [f"t={span.ts:.4f}s", f"dur={span.dur:.4f}s"]
    for key in (
        "rows_out",
        "bytes_out",
        "compute_seconds",
        "shuffle_bytes",
        "broadcast_bytes",
        "columnar_parts",
        "stages",
        "records",
        "keys",
        "messages",
        "updated",
        "wall_clock_seconds",
    ):
        if key in span.attrs:
            value = span.attrs[key]
            if isinstance(value, float):
                parts.append(f"{key}={value:.4f}")
            else:
                parts.append(f"{key}={value}")
    return " ".join(parts)


# ---------------------------------------------------------------------------
# The run-level result wrapper
# ---------------------------------------------------------------------------


@dataclass
class TracedRun:
    """What ``Algorithm.run`` returns under ``EmmaConfig(tracing=True)``.

    ``result`` is the program's ordinary return value; ``trace`` is the
    run's root span; ``compile_trace`` the compiler provenance for the
    configuration that ran; ``metrics`` the engine's live metrics
    object.
    """

    result: Any
    trace: TraceSpan
    metrics: Any
    compile_trace: CompileTrace | None = None
    tracer: RuntimeTracer | None = None

    def render(self) -> str:
        """The runtime span tree, human-readable."""
        return render_span_tree(self.trace)

    def job_spans(self) -> list[TraceSpan]:
        """The per-job spans under this run, in execution order."""
        return self.trace.find("job")

    def write_chrome(self, path: Any) -> None:
        """Write the whole tracer's Chrome-format trace document."""
        if self.tracer is None:
            raise ValueError("run was traced without a tracer attached")
        self.tracer.write_chrome(path)

    def write_jsonl(self, path: Any) -> None:
        """Write the whole tracer's JSON-lines export to ``path``."""
        if self.tracer is None:
            raise ValueError("run was traced without a tracer attached")
        self.tracer.write_jsonl(path)

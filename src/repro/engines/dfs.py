"""A simulated distributed filesystem (the HDFS substitute).

Workload generators *stage* datasets into the DFS with :meth:`put`;
dataflow ``Source`` operators read them back, charging DFS read time to
the cost model.  Engines without in-memory caching (the Flink-like one)
also spill cached intermediates here, which is how the paper explains
Flink's missing caching benefit in Section 5.2.

Files store Python records plus their estimated serialized size; reads
hand out the record list without copying (operators must not mutate
records — they never do, records are treated as immutable throughout).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import weakref
from dataclasses import dataclass
from typing import Any, Sequence

from repro.engines.sizes import estimate_bag_bytes
from repro.errors import EngineError


@dataclass
class DfsFile:
    """One stored file: records plus estimated serialized bytes."""

    records: list[Any]
    nbytes: int


class SimulatedDFS:
    """A path -> file mapping with byte-size bookkeeping.

    Besides the simulated record store, the DFS owns a **spill tier**:
    a lazily created host temp directory holding *real* byte files for
    the out-of-core layer (evicted partitions, external-merge runs,
    file-backed shuffle payloads).  Spill files are host-resource
    mechanics, not simulated cluster state — reads and writes through
    the spill tier charge no simulated time and are accounted only in
    the engine's ``spill_bytes_written``/``spill_bytes_read`` metrics.
    The directory is removed when the DFS object dies.
    """

    def __init__(self) -> None:
        self._files: dict[str, DfsFile] = {}
        self._spill_dir: str | None = None
        self._spill_seq = 0

    # -- the real-file spill tier -----------------------------------------

    def spill_dir(self) -> str:
        """The host temp directory backing spill files (lazily made)."""
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="repro-spill-")
            weakref.finalize(
                self, shutil.rmtree, self._spill_dir, ignore_errors=True
            )
        return self._spill_dir

    def spill_put_bytes(self, data: bytes, tag: str = "part") -> str:
        """Write one spill file; returns its absolute host path."""
        self._spill_seq += 1
        path = os.path.join(
            self.spill_dir(), f"{tag}-{self._spill_seq}.bin"
        )
        with open(path, "wb") as f:
            f.write(data)
        return path

    def spill_get_bytes(self, path: str) -> bytes:
        """Read one spill file back (raises EngineError if gone)."""
        try:
            with open(path, "rb") as f:
                return f.read()
        except OSError as exc:
            raise EngineError(
                f"spill file vanished: {path!r} ({exc})"
            ) from exc

    def spill_delete(self, path: str) -> None:
        """Remove one spill file if present (idempotent)."""
        try:
            os.remove(path)
        except OSError:
            pass

    def spill_file_count(self) -> int:
        """Live spill files on disk (0 before any spill happened)."""
        if self._spill_dir is None:
            return 0
        return len(os.listdir(self._spill_dir))

    def put(self, path: str, records: Sequence[Any]) -> DfsFile:
        """Stage a dataset (no cost accounting — setup, not execution)."""
        stored = DfsFile(records=list(records), nbytes=estimate_bag_bytes(records))
        self._files[path] = stored
        return stored

    def get(self, path: str) -> DfsFile:
        """The stored file at ``path`` (raises EngineError if absent)."""
        if path not in self._files:
            raise EngineError(f"no such DFS file: {path!r}")
        return self._files[path]

    def exists(self, path: str) -> bool:
        """Whether a file is staged at ``path``."""
        return path in self._files

    def delete(self, path: str) -> None:
        """Remove ``path`` if present (idempotent)."""
        self._files.pop(path, None)

    def listdir(self) -> list[str]:
        """All staged paths, sorted."""
        return sorted(self._files)

    def total_bytes(self) -> int:
        """Total estimated bytes across all staged files."""
        return sum(f.nbytes for f in self._files.values())

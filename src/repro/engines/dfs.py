"""A simulated distributed filesystem (the HDFS substitute).

Workload generators *stage* datasets into the DFS with :meth:`put`;
dataflow ``Source`` operators read them back, charging DFS read time to
the cost model.  Engines without in-memory caching (the Flink-like one)
also spill cached intermediates here, which is how the paper explains
Flink's missing caching benefit in Section 5.2.

Files store Python records plus their estimated serialized size; reads
hand out the record list without copying (operators must not mutate
records — they never do, records are treated as immutable throughout).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.engines.sizes import estimate_bag_bytes
from repro.errors import EngineError


@dataclass
class DfsFile:
    """One stored file: records plus estimated serialized bytes."""

    records: list[Any]
    nbytes: int


class SimulatedDFS:
    """A path -> file mapping with byte-size bookkeeping."""

    def __init__(self) -> None:
        self._files: dict[str, DfsFile] = {}

    def put(self, path: str, records: Sequence[Any]) -> DfsFile:
        """Stage a dataset (no cost accounting — setup, not execution)."""
        stored = DfsFile(records=list(records), nbytes=estimate_bag_bytes(records))
        self._files[path] = stored
        return stored

    def get(self, path: str) -> DfsFile:
        """The stored file at ``path`` (raises EngineError if absent)."""
        if path not in self._files:
            raise EngineError(f"no such DFS file: {path!r}")
        return self._files[path]

    def exists(self, path: str) -> bool:
        """Whether a file is staged at ``path``."""
        return path in self._files

    def delete(self, path: str) -> None:
        """Remove ``path`` if present (idempotent)."""
        self._files.pop(path, None)

    def listdir(self) -> list[str]:
        """All staged paths, sorted."""
        return sorted(self._files)

    def total_bytes(self) -> int:
        """Total estimated bytes across all staged files."""
        return sum(f.nbytes for f in self._files.values())

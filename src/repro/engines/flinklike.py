"""The Flink-like engine (simulates Apache Flink v0.8 semantics).

Execution model mirrored from Flink:

* **Pipelined operator chains.**  Operators within a stage stream
  records; per-task scheduling cost is negligible compared to Spark's
  centralized scheduler (runtime stays flat under weak scaling,
  Figure 5).
* **Expensive broadcast handling.**  Flink v0.8 rematerializes
  broadcast sets per consuming task; the paper attributes the much
  larger unnesting speedup on Flink (6.56x vs 1.5x, Figure 4) to this.
  Modelled as ``broadcast_factor > 1``.
* **No in-memory cache.**  Emma's caching on Flink writes intermediates
  to the DFS, so "the benefits of caching are eliminated by the cost of
  the additional I/O" (Section 5.2) — ``cache_storage = "dfs"``.
* **Sort-based grouping.**  Grouping streams through sorted disk
  spills; it degrades with skew but does not hit a memory wall, which
  is why Flink completes the Pareto aggregation without fold-group
  fusion where Spark cannot.
"""

from __future__ import annotations

from repro.engines.base import Engine


class FlinkLikeEngine(Engine):
    """See module docstring."""

    name = "flink"
    broadcast_factor = 12.0
    cache_storage = "dfs"
    shuffle_via_disk = False
    task_overhead = 0.00003
    # The execution model the chaining layer is modelled after:
    # record-wise operators stream through one pipelined task chain.
    pipelined_chains = True
    group_materialize_factor = 4.0
    group_memory_bound = False
    group_spill_to_disk = True

"""Execution metrics for simulated engines.

A :class:`Metrics` object accumulates, over a whole driver-program run:

* ``simulated_seconds`` — the modelled wall-clock time.  Each submitted
  dataflow job contributes ``max`` over the workers of their busy time
  (compute + I/O + network), plus fixed job/stage overheads; jobs are
  serial from the driver's perspective, so job times add up.
* byte counters — shuffled, broadcast, DFS read/written, driver
  collected/shipped;
* element operation counters per operator family.

Per-job accounting goes through :class:`JobRun`: operators charge
per-worker busy seconds into the job; ``finish()`` folds the job into
the engine metrics.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Metrics:
    """Aggregate counters for one engine over one program run."""

    simulated_seconds: float = 0.0
    jobs_submitted: int = 0
    stages_run: int = 0

    shuffle_bytes: int = 0
    broadcast_bytes: int = 0
    dfs_read_bytes: int = 0
    dfs_write_bytes: int = 0
    driver_collect_bytes: int = 0
    driver_ship_bytes: int = 0
    cache_write_bytes: int = 0
    cache_read_bytes: int = 0

    element_ops: int = 0
    udf_invocations: int = 0
    records_shuffled: int = 0
    records_broadcast: int = 0

    #: physical join strategy decisions (the paper's JIT choice between
    #: a broadcast and a repartition realization, Section 4.2.1)
    broadcast_joins: int = 0
    repartition_joins: int = 0

    # -- partitioning-aware physical planning ------------------------------
    #: shuffles skipped because the producer already delivered the
    #: required hash partitioning (interesting-properties elision)
    shuffles_elided: int = 0
    #: loop-invariant shuffle inputs served from the per-run hoist
    #: cache instead of being recomputed and re-shuffled
    shuffles_hoisted: int = 0
    #: joins whose runtime strategy differed from the plan-time choice
    #: after the adaptive re-check against observed sizes
    adaptive_switches: int = 0

    #: operators executed inside fused chains (physical pipelining)
    chained_operators: int = 0
    #: per-operator task-overhead charges eliminated by chaining
    tasks_saved: int = 0
    #: UDFs compiled to native Python closures (vs interpreter fallback)
    udfs_compiled: int = 0
    #: shared subplans reused from the per-job DAG memo instead of
    #: re-executed (diamond plans, repeated lazy lineages)
    dag_memo_hits: int = 0

    #: peak bytes materialized on any single worker (group building etc.)
    peak_worker_bytes: int = 0

    # -- fault injection and recovery accounting --------------------------
    #: task attempts re-run after an injected crash or worker loss
    tasks_retried: int = 0
    #: cached in-memory partitions rebuilt from lineage after worker loss
    partitions_recomputed: int = 0
    #: workers lost (and replaced by fresh nodes) during the run
    workers_lost: int = 0
    #: workers blacklisted after repeated task failures
    workers_blacklisted: int = 0
    #: straggler delays injected into task attempts
    stragglers_injected: int = 0
    #: periodic stateful-bag checkpoints written to the DFS
    checkpoints_written: int = 0
    #: stateful-bag restores performed after a worker loss
    checkpoint_restores: int = 0
    #: logged state updates replayed on top of restored checkpoints
    state_updates_replayed: int = 0
    #: simulated seconds spent on retries, recomputation, and restores
    recovery_seconds: float = 0.0

    # -- host-parallel execution backend -----------------------------------
    #: *measured* host wall-clock seconds across jobs — the one metric
    #: that may legitimately differ between execution modes (and between
    #: runs); everything else above stays bit-identical
    wall_clock_seconds: float = 0.0
    #: partition tasks executed through the task scheduler
    parallel_tasks: int = 0
    #: scheduler stage launches (one per fan-out of partition tasks)
    parallel_stages: int = 0
    #: pickled bytes shipped to worker processes (task specs + data)
    ipc_bytes_shipped: int = 0
    #: pickled bytes returned from worker processes (task results)
    ipc_bytes_returned: int = 0
    #: kernels/UDFs rebuilt from source in a worker process (memo miss)
    kernels_rehydrated: int = 0
    #: straggler tasks speculatively re-launched
    speculative_launches: int = 0
    #: speculative copies that beat the original attempt
    speculative_wins: int = 0
    #: parallel stages that fell back to in-process serial execution
    serial_fallbacks: int = 0

    # -- columnar batch data plane ------------------------------------------
    #: partitions converted to ColumnBatch form for a vector kernel
    columnar_batches_built: int = 0
    #: vectorized (batch-at-a-time) chain kernels compiled
    columnar_kernels: int = 0
    #: chains or partitions that fell back to the row kernel at runtime
    #: (unsupported record layout, binding values, mixed partitions)
    columnar_fallbacks: int = 0
    # Fallbacks broken down by reason family (they sum to
    # ``columnar_fallbacks``), so exchange fallbacks are diagnosable
    # from the summary line alone:
    #: ... because the UDF is outside the vectorizable scalar subset
    columnar_fallbacks_udf: int = 0
    #: ... because the partition's record layout defeated the batch
    #: build (mixed record types, ragged tuples, column build errors)
    columnar_fallbacks_schema: int = 0
    #: ... because the input was not columnar-at-rest (empty partition,
    #: unsupported record type, no batch available)
    columnar_fallbacks_input: int = 0

    # -- columnar exchange plane --------------------------------------------
    #: shuffles that partitioned batch-at-a-time over a key column
    columnar_shuffles: int = 0
    #: repartition joins that built/probed over key columns
    columnar_joins: int = 0
    #: group-bys that grouped over a key column
    columnar_groups: int = 0
    #: exchange payloads shipped to process-pool workers as typed
    #: column buffers instead of pickled row lists
    columnar_blocks_shipped: int = 0

    # -- UDF-aware operator reordering --------------------------------------
    # Compile-time decisions copied from the OptimizationReport by
    # ``Algorithm.run`` so one metrics object tells the whole story;
    # identical across execution modes (compilation is mode-independent).
    #: UDF read/write-set analyses performed by the reordering pass
    udfs_analyzed: int = 0
    #: operator reorderings applied (filters pushed below joins,
    #: groupings, distincts; filters swapped before maps)
    reorders_applied: int = 0
    #: reorderings rejected on cost grounds (would invalidate a
    #: hoisted loop-invariant shuffle)
    reorders_rejected: int = 0

    # -- memory-budgeted out-of-core execution ------------------------------
    # Spill traffic is host-resource mechanics: these counters (and wall
    # clock) are the only things a finite memory budget is allowed to
    # move — results, simulated_seconds, and fault schedules stay
    # bit-identical spill-on vs spill-off.
    #: real bytes written to the DFS spill tier (evictions, external
    #: merge runs, file-backed shuffle payloads)
    spill_bytes_written: int = 0
    #: real bytes read back from the spill tier (reloads, merges,
    #: worker-side shuffle-file resolution)
    spill_bytes_read: int = 0
    #: resident partitions evicted to spill files under budget pressure
    partitions_spilled: int = 0
    #: spilled partitions lazily reloaded on their next access
    partitions_reloaded: int = 0
    #: group-by partitions grouped through external run-merge instead
    #: of all-in-memory materialization (graceful degradation)
    external_merge_passes: int = 0
    #: budget-pressure evictions performed (any owner kind)
    budget_evictions: int = 0

    # -- cross-run fingerprint caching --------------------------------------
    # Cache traffic is driver mechanics, like spill: hits skip host
    # work (compilation, whole executions) without moving results or
    # ``simulated_seconds`` of the runs that do execute.
    #: compiled plans served from the fingerprint plan cache
    plan_cache_hits: int = 0
    #: plan-cache lookups that fell through to a fresh compile
    plan_cache_misses: int = 0
    #: submissions answered from the memoized result cache (no job ran)
    result_cache_hits: int = 0
    #: result-cache lookups that fell through to a real execution
    result_cache_misses: int = 0
    #: host compile seconds skipped thanks to plan-cache hits
    compile_seconds_saved: float = 0.0
    #: batch-submission members executed to backfill a partial
    #: result-cache hit (the rest were served memoized)
    backfill_partitions: int = 0
    #: cold cache entries dropped from driver memory to their disk tier
    cache_entries_evicted: int = 0

    def snapshot(self) -> "Metrics":
        """A copy of the current counters (for before/after deltas)."""
        return Metrics(**vars(self))

    def delta_since(self, earlier: "Metrics") -> "Metrics":
        """Counter-wise difference ``self - earlier``."""
        out = Metrics()
        for name, value in vars(self).items():
            setattr(out, name, value - getattr(earlier, name))
        # Peaks do not subtract meaningfully; report the later peak.
        out.peak_worker_bytes = self.peak_worker_bytes
        return out

    def merge(self, other: "Metrics") -> None:
        """Counter-wise accumulate ``other`` into this object.

        The aggregation the job service uses to roll per-job metrics
        up into service totals; peaks take the max rather than adding.
        """
        for name, value in vars(other).items():
            if name == "peak_worker_bytes":
                self.peak_worker_bytes = max(self.peak_worker_bytes, value)
            else:
                setattr(self, name, getattr(self, name) + value)

    def summary(self) -> str:
        """A compact human-readable summary line."""
        base = (
            f"t={self.simulated_seconds:.3f}s jobs={self.jobs_submitted} "
            f"shuffle={_fmt_bytes(self.shuffle_bytes)} "
            f"bcast={_fmt_bytes(self.broadcast_bytes)} "
            f"dfs_r={_fmt_bytes(self.dfs_read_bytes)} "
            f"dfs_w={_fmt_bytes(self.dfs_write_bytes)} "
            f"ops={self.element_ops}"
        )
        if self.shuffles_elided or self.shuffles_hoisted or self.adaptive_switches:
            base += (
                f" elided={self.shuffles_elided} "
                f"hoisted={self.shuffles_hoisted} "
                f"adaptive={self.adaptive_switches}"
            )
        if self.parallel_tasks:
            base += (
                f" | ptasks={self.parallel_tasks} "
                f"wall={self.wall_clock_seconds:.3f}s "
                f"ipc={_fmt_bytes(self.ipc_bytes_shipped)}/"
                f"{_fmt_bytes(self.ipc_bytes_returned)} "
                f"spec={self.speculative_launches}"
                f"({self.speculative_wins} won) "
                f"fallbacks={self.serial_fallbacks}"
            )
        if self.reorders_applied or self.reorders_rejected:
            base += (
                f" | reorders={self.reorders_applied}"
                f"(-{self.reorders_rejected} rejected) "
                f"udfs_analyzed={self.udfs_analyzed}"
            )
        if self.columnar_kernels or self.columnar_fallbacks:
            base += (
                f" | col_kernels={self.columnar_kernels} "
                f"col_batches={self.columnar_batches_built} "
                f"col_fallbacks={self.columnar_fallbacks}"
            )
            if self.columnar_fallbacks:
                base += (
                    f"(udf={self.columnar_fallbacks_udf}"
                    f" schema={self.columnar_fallbacks_schema}"
                    f" input={self.columnar_fallbacks_input})"
                )
        if (
            self.columnar_shuffles
            or self.columnar_joins
            or self.columnar_groups
        ):
            base += (
                f" | col_shuffles={self.columnar_shuffles} "
                f"col_joins={self.columnar_joins} "
                f"col_groups={self.columnar_groups} "
                f"col_blocks={self.columnar_blocks_shipped}"
            )
        if self.spill_happened:
            base += " | " + self.spill_summary()
        if self.cache_happened:
            base += " | " + self.cache_summary()
        if self.recovery_happened:
            base += " | " + self.recovery_summary()
        return base

    @property
    def cache_happened(self) -> bool:
        """Whether the fingerprint cache layer saw any traffic."""
        return bool(
            self.plan_cache_hits
            or self.plan_cache_misses
            or self.result_cache_hits
            or self.result_cache_misses
            or self.backfill_partitions
            or self.cache_entries_evicted
        )

    def cache_summary(self) -> str:
        """The fingerprint-cache accounting as one human-readable line."""
        return (
            f"plan_cache={self.plan_cache_hits}/"
            f"{self.plan_cache_hits + self.plan_cache_misses} "
            f"result_cache={self.result_cache_hits}/"
            f"{self.result_cache_hits + self.result_cache_misses} "
            f"compile_saved={self.compile_seconds_saved:.3f}s "
            f"backfill={self.backfill_partitions} "
            f"cache_evict={self.cache_entries_evicted}"
        )

    @property
    def spill_happened(self) -> bool:
        """Whether the out-of-core layer did any work this run."""
        return bool(
            self.spill_bytes_written
            or self.spill_bytes_read
            or self.partitions_spilled
            or self.partitions_reloaded
            or self.external_merge_passes
            or self.budget_evictions
        )

    def spill_summary(self) -> str:
        """The out-of-core accounting as one human-readable line."""
        return (
            f"spill_w={_fmt_bytes(self.spill_bytes_written)} "
            f"spill_r={_fmt_bytes(self.spill_bytes_read)} "
            f"spilled={self.partitions_spilled} "
            f"reloaded={self.partitions_reloaded} "
            f"ext_merges={self.external_merge_passes} "
            f"evictions={self.budget_evictions}"
        )

    @property
    def recovery_happened(self) -> bool:
        """Whether any fault was injected or any recovery performed."""
        return bool(
            self.tasks_retried
            or self.partitions_recomputed
            or self.workers_lost
            or self.workers_blacklisted
            or self.stragglers_injected
            or self.checkpoints_written
            or self.checkpoint_restores
        )

    def recovery_summary(self) -> str:
        """The fault/recovery accounting as one human-readable line."""
        return (
            f"retried={self.tasks_retried} "
            f"recomputed={self.partitions_recomputed} "
            f"lost={self.workers_lost} "
            f"blacklisted={self.workers_blacklisted} "
            f"stragglers={self.stragglers_injected} "
            f"ckpt_w={self.checkpoints_written} "
            f"ckpt_r={self.checkpoint_restores} "
            f"replayed={self.state_updates_replayed} "
            f"recovery_t={self.recovery_seconds:.3f}s"
        )


def _fmt_bytes(n: int) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024 or unit == "GB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024  # type: ignore[assignment]
    return f"{n}B"


class JobRun:
    """Per-worker busy-time accounting for a single dataflow job."""

    def __init__(
        self,
        num_workers: int,
        metrics: Metrics,
        start_ts: float = 0.0,
    ) -> None:
        self.num_workers = num_workers
        self.metrics = metrics
        self.worker_seconds = [0.0] * num_workers
        self.driver_seconds = 0.0
        self.stages = 0
        #: position of the job on the simulated clock (the engine's
        #: ``metrics.simulated_seconds`` when the job was created)
        self.start_ts = start_ts
        #: the job's trace span when tracing is enabled
        self.span = None
        #: host ``perf_counter`` at job start, for the *measured*
        #: ``wall_clock_seconds`` (distinct from the simulated clock)
        self.wall_started = 0.0
        #: columnar counter snapshot (batches, kernels, fallbacks) at
        #: job start — the job span reports the per-job deltas
        self.columnar_start = (0, 0, 0)
        #: exchange counter snapshot (shuffles, joins, groups, shipped
        #: blocks) at job start — the job span reports per-job deltas
        self.exchange_start = (0, 0, 0, 0)
        #: spill counter snapshot (bytes written, bytes read, spilled,
        #: reloaded, external merges, evictions) at job start — the job
        #: span reports the per-job deltas
        self.spill_start = (0, 0, 0, 0, 0, 0)

    def charge_worker(self, worker: int, seconds: float) -> None:
        """Add busy time to one worker (index wraps)."""
        self.worker_seconds[worker % self.num_workers] += seconds

    def charge_all_workers(self, seconds_each: float) -> None:
        """Add the same busy time to every worker (e.g. a broadcast)."""
        for w in range(self.num_workers):
            self.worker_seconds[w] += seconds_each

    def charge_spread(self, total_seconds: float) -> None:
        """Charge work that parallelizes perfectly across workers."""
        self.charge_all_workers(total_seconds / self.num_workers)

    def charge_driver(self, seconds: float) -> None:
        """Add serial driver-side time to the job."""
        self.driver_seconds += seconds

    def add_stage(self) -> None:
        """Record a stage boundary (shuffle/broadcast) for overheads."""
        self.stages += 1

    def total_seconds(self) -> float:
        """Sum of all busy time charged so far (recovery deltas)."""
        return sum(self.worker_seconds) + self.driver_seconds

    def elapsed(self) -> float:
        """The job's critical path so far: its simulated clock.

        Monotone under every charge, so trace spans timestamped with it
        nest correctly (a child opened later never starts earlier).
        """
        busy = max(self.worker_seconds) if self.worker_seconds else 0.0
        return busy + self.driver_seconds

    def trace_ts(self) -> float:
        """Current absolute simulated time within this job."""
        return self.start_ts + self.elapsed()

    def finish(self, fixed_overhead: float, stage_overhead: float) -> float:
        """Fold this job into the metrics; return the job's time."""
        busy = max(self.worker_seconds) if self.worker_seconds else 0.0
        job_time = (
            fixed_overhead
            + self.stages * stage_overhead
            + busy
            + self.driver_seconds
        )
        self.metrics.simulated_seconds += job_time
        self.metrics.jobs_submitted += 1
        self.metrics.stages_run += self.stages
        return job_time

"""Record size estimation for the cost model.

The engines operate on real Python records but the cost model charges
*serialized* bytes, estimated from the record structure: fixed widths
for numbers, content length for strings, recursion for containers and
dataclass-like records.  For large homogeneous collections
:func:`estimate_bag_bytes` samples a prefix and extrapolates, which
keeps accounting cheap relative to the simulated work itself.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Sequence

_SAMPLE = 32
_RECORD_OVERHEAD = 8


def estimate_record_bytes(record: Any) -> int:
    """Estimated serialized size of one record, in bytes."""
    return _estimate(record, depth=0)


def _estimate(value: Any, depth: int) -> int:
    # Scalars are type-dispatched at any depth: their width is known
    # without recursion, so the depth cap (which exists to bound
    # traversal of pathologically nested containers) must not flatten
    # a deeply nested bool/str to the generic record overhead.
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return 4 + len(value)
    if isinstance(value, bytes):
        return 4 + len(value)
    if depth > 6:
        return _RECORD_OVERHEAD
    if isinstance(value, (tuple, list)):
        return _RECORD_OVERHEAD + sum(
            _estimate(v, depth + 1) for v in value
        )
    if isinstance(value, (set, frozenset)):
        return _RECORD_OVERHEAD + sum(
            _estimate(v, depth + 1) for v in value
        )
    if isinstance(value, dict):
        return _RECORD_OVERHEAD + sum(
            _estimate(k, depth + 1) + _estimate(v, depth + 1)
            for k, v in value.items()
        )
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _RECORD_OVERHEAD + sum(
            _estimate(getattr(value, f.name), depth + 1)
            for f in dataclasses.fields(value)
        )
    # Grp / AggResult / other slotted records.
    slots = getattr(type(value), "__slots__", None)
    if slots:
        return _RECORD_OVERHEAD + sum(
            _estimate(getattr(value, s), depth + 1)
            for s in slots
            if hasattr(value, s)
        )
    attrs = getattr(value, "__dict__", None)
    if attrs is not None:
        return _RECORD_OVERHEAD + sum(
            _estimate(v, depth + 1) for v in attrs.values()
        )
    return _RECORD_OVERHEAD


def estimate_bag_bytes(records: Sequence[Any]) -> int:
    """Estimated serialized size of a collection, via prefix sampling."""
    n = len(records)
    if n == 0:
        return 0
    if n <= _SAMPLE:
        return sum(estimate_record_bytes(r) for r in records)
    sample = records[:_SAMPLE]
    avg = sum(estimate_record_bytes(r) for r in sample) / len(sample)
    return int(avg * n)


def estimate_partitions_bytes(partitions: Iterable[Sequence[Any]]) -> int:
    """Estimated total size across partitions."""
    return sum(estimate_bag_bytes(p) for p in partitions)


def estimate_column_bytes(values: Sequence[Any]) -> int:
    """Estimated serialized size of one column of scalar values.

    Columns hold one field per record, so each value is charged as it
    would be inside a record (``depth=1``) — no per-record overhead,
    which is what makes the columnar plane's byte accounting cheaper
    than the row estimate for the same data.  Long columns are sampled
    by prefix like :func:`estimate_bag_bytes`.
    """
    n = len(values)
    if n == 0:
        return 0
    if n <= _SAMPLE:
        return sum(_estimate(v, depth=1) for v in values)
    avg = sum(_estimate(v, depth=1) for v in values[:_SAMPLE]) / _SAMPLE
    return int(avg * n)


def estimate_blocks_bytes(blocks: Iterable[Any]) -> int:
    """Estimated serialized size of a set of columnar exchange blocks.

    A block is either a :class:`~repro.engines.columnar.ColumnBatch`
    (which reports its own typed-buffer footprint via ``nbytes()``) or
    a row-mode fallback record list.  Feeds the executor's exchange
    trace events only — never the cost model, whose charges stay on
    the row estimators so simulated seconds cannot move with the plane.
    """
    total = 0
    for block in blocks:
        nbytes = getattr(block, "nbytes", None)
        if callable(nbytes):
            total += int(nbytes())
        else:
            total += estimate_bag_bytes(block)
    return total


def estimate_batch_bytes(column_nbytes: Sequence[int], nrows: int) -> int:
    """Estimated serialized size of a column batch.

    Takes the per-column byte counts (typed buffers report their exact
    ``nbytes``; object columns go through
    :func:`estimate_column_bytes`) plus one batch-level overhead —
    *not* one per record, since the batch ships as a handful of
    contiguous buffers.
    """
    if nrows == 0:
        return 0
    return _RECORD_OVERHEAD + sum(column_nbytes)

"""Simulated parallel runtime engines.

The paper evaluates on Spark v1.2 and Flink v0.8 clusters; neither is
available here, so this subpackage implements both execution models
from scratch as single-process simulators that really move tuples
between simulated workers and charge every byte and element operation
to a calibrated cost model:

* :class:`repro.engines.local.LocalEngine` — direct host-language
  execution (the development/debugging mode and the test oracle);
* :class:`repro.engines.sparklike.SparkLikeEngine` — lazy acyclic
  dataflows with lineage recomputation, stage-per-shuffle overheads,
  in-memory caching, and cheap broadcasts;
* :class:`repro.engines.flinklike.FlinkLikeEngine` — pipelined operator
  chains, costly per-task broadcast materialization, and *no* in-memory
  cache (cached results spill to the simulated DFS), matching the
  paper's observations about Flink v0.8.

Engines execute combinator dataflows (:mod:`repro.lowering`) and return
driver-side values; a :class:`repro.engines.metrics.Metrics` object
accumulates simulated seconds, shuffled/broadcast/DFS bytes, and element
operations.
"""

from repro.engines.base import BagHandle, DeferredBag, Engine
from repro.engines.cluster import ClusterConfig, PartitionedBag, Partitioner
from repro.engines.costmodel import CostModel
from repro.engines.dfs import SimulatedDFS
from repro.engines.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
)
from repro.engines.flinklike import FlinkLikeEngine
from repro.engines.local import LocalEngine
from repro.engines.metrics import Metrics
from repro.engines.plancache import (
    CacheStats,
    PlanCache,
    default_plan_cache,
)
from repro.engines.scheduler import (
    EXECUTION_MODES,
    PartitionTask,
    TaskScheduler,
    TaskStage,
)
from repro.engines.sparklike import SparkLikeEngine
from repro.engines.tracing import (
    CompileTrace,
    RuntimeTracer,
    TracedRun,
    TraceEvent,
    TraceSpan,
    render_span_tree,
)

__all__ = [
    "BagHandle",
    "DeferredBag",
    "Engine",
    "ClusterConfig",
    "PartitionedBag",
    "Partitioner",
    "CostModel",
    "SimulatedDFS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
    "FlinkLikeEngine",
    "LocalEngine",
    "Metrics",
    "CacheStats",
    "PlanCache",
    "default_plan_cache",
    "EXECUTION_MODES",
    "PartitionTask",
    "TaskScheduler",
    "TaskStage",
    "SparkLikeEngine",
    "CompileTrace",
    "RuntimeTracer",
    "TracedRun",
    "TraceEvent",
    "TraceSpan",
    "render_span_tree",
]

"""Figure 5 / Appendix B.1 — effect of fold-group fusion on scalability.

A grouped ``min`` aggregation runs at increasing degrees of parallelism
(the paper: DOP 80-640 with 5M tuples per execution unit — weak
scaling) over three key distributions, with fold-group fusion on and
off, on both engines.  The paper's observations:

* with fusion, both engines compute the aggregation on all
  distributions "almost without any overhead" — mapper-side partial
  aggregation ships exactly one tuple per key per mapper;
* without fusion the engines need more time (Gaussian slightly more
  than uniform), and under the Pareto distribution — ~35% of all tuples
  on one hot key — the Spark-like engine *fails entirely* (the hot
  reducer materializes a group that outgrows its memory), while the
  Flink-like engine's sort-based grouping survives, slowly;
* with fusion the Flink-like engine scales linearly (flat under weak
  scaling) while the Spark-like engine exhibits superlinear runtime
  growth — its centralized per-task scheduling cost grows with the
  total number of tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engines.dfs import SimulatedDFS
from repro.experiments.runner import (
    DNF,
    ENGINE_KINDS,
    ExperimentResult,
    bench_cost_model,
    make_engine,
    run_with_budget,
)
from repro.optimizer.pipeline import EmmaConfig
from repro.workloads import datagen
from repro.workloads.groupagg import group_min

FUSION = EmmaConfig(
    fold_group_fusion=True,
    caching=False,
    partition_pulling=False,
    physical_planning=False,
)
NO_FUSION = EmmaConfig(
    fold_group_fusion=False,
    caching=False,
    partition_pulling=False,
    physical_planning=False,
)


@dataclass
class Figure5Scale:
    """Weak-scaling sweep sizing (paper: DOP 80-640, 5M tuples/unit)."""

    dops: tuple = (8, 16, 32, 64)
    tuples_per_unit: int = 1200
    num_keys: int = 200
    memory_per_worker: int = 100 * 1024
    time_budget: float = 30.0


@dataclass
class Figure5Result:
    scale: Figure5Scale
    #: (engine, distribution, fused, dop) -> result
    runs: dict[tuple[str, str, bool, int], ExperimentResult] = field(
        default_factory=dict
    )

    def series(
        self, engine: str, distribution: str, fused: bool
    ) -> list[tuple[int, float | object]]:
        """One plotted line: (DOP, simulated seconds or DNF) pairs."""
        return [
            (dop, self.runs[(engine, distribution, fused, dop)].seconds)
            for dop in self.scale.dops
        ]

    def render(self) -> str:
        """The three per-distribution tables as printable text."""
        lines = ["Figure 5 — grouped aggregation runtime vs DOP"]
        for distribution in datagen.DISTRIBUTIONS:
            lines.append(f"-- {distribution} --")
            header = f"{'series':14}" + "".join(
                f"{f'DOP {d}':>10}" for d in self.scale.dops
            )
            lines.append(header)
            for engine in ENGINE_KINDS:
                for fused in (True, False):
                    label = f"{engine} {'GF' if fused else 'noGF'}"
                    cells = []
                    for _dop, seconds in self.series(
                        engine, distribution, fused
                    ):
                        cells.append(
                            f"{'DNF':>10}"
                            if seconds is DNF
                            else f"{seconds:9.3f}s"
                        )
                    lines.append(f"{label:14}" + "".join(cells))
        return "\n".join(lines)


def run_figure5(scale: Figure5Scale | None = None) -> Figure5Result:
    """Execute the full DOP x distribution x fusion sweep."""
    scale = scale or Figure5Scale()
    result = Figure5Result(scale=scale)
    cost = bench_cost_model(
        memory_per_worker=scale.memory_per_worker,
        job_overhead=0.0005,
        stage_overhead=0.0001,
        cpu_throughput=1e6,
        network_bandwidth=40e6,
    )
    for distribution in datagen.DISTRIBUTIONS:
        for dop in scale.dops:
            dfs = SimulatedDFS()
            path = datagen.stage_keyed_tuples(
                dfs,
                n=scale.tuples_per_unit * dop,
                num_keys=scale.num_keys,
                distribution=distribution,
                seed=73 + dop,
            )
            for engine_kind in ENGINE_KINDS:
                for fused in (True, False):
                    engine = make_engine(
                        engine_kind,
                        dfs,
                        num_workers=dop,
                        cost=cost,
                        time_budget=scale.time_budget,
                    )
                    config = FUSION if fused else NO_FUSION
                    run = run_with_budget(
                        engine, group_min, config, tuples_path=path
                    )
                    result.runs[
                        (engine_kind, distribution, fused, dop)
                    ] = run
    return result

"""Regenerate EXPERIMENTS.md from fresh runs of every experiment.

Usage:  python -m repro.experiments.report [output-path]

Runs Table 1, Figure 4, Section 5.2 (iterative + TPC-H), and Figure 5
end to end on the simulated engines and renders a paper-vs-measured
record for each artifact.  Everything is deterministic, so the file is
reproducible bit for bit.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.runner import DNF
from repro.experiments.section52 import (
    PAPER_CACHING_SPEEDUP,
    run_section52,
)
from repro.experiments.table1 import run_table1
from repro.experiments.tpch_exp import run_tpch

_HEADER = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of *Implicit Parallelism through Deep Language
Embedding* (SIGMOD 2015), regenerated on this library's simulated
engines.  Absolute numbers are **simulated seconds** from the cost
model described in DESIGN.md — the authors ran a 40-node cluster on
real data; we run a deterministic simulator on laptop-scale synthetic
data with the same *relative* proportions.  The reproduction target is
therefore the **shape** of each result: who wins, by roughly what
factor, and which configurations fail outright.  `DNF` marks a run that
exceeded the simulated-time budget or a worker's memory allowance (the
paper's "did not finish within one hour" / "memory issues").

Regenerate this file with `python -m repro.experiments.report`; the
benchmark suite (`pytest benchmarks/ --benchmark-only`) asserts the
same shapes on every run.
"""


def _fmt(seconds) -> str:
    return "DNF" if seconds is DNF else f"{seconds:.3f}s"


def build_report() -> str:
    """Run every experiment and render the full markdown report."""
    sections = [_HEADER]

    # ----- Table 1 ------------------------------------------------------
    t1 = run_table1()
    lines = [
        "## Table 1 — optimization applicability",
        "",
        "The compiler's own optimization reports, cell for cell against"
        " the paper (X = applies):",
        "",
        "| program | unnesting | fold-group fusion | caching |"
        " partition pulling | matches paper |",
        "|---|---|---|---|---|---|",
    ]
    for program, row in t1.rows.items():
        from repro.experiments.table1 import PAPER_TABLE_1

        cells = " | ".join(
            "X" if row[c] else "–"
            for c in (
                "unnesting",
                "fold_group_fusion",
                "caching",
                "partition_pulling",
            )
        )
        ok = "yes" if row == PAPER_TABLE_1[program] else "**NO**"
        lines.append(f"| {program} | {cells} | {ok} |")
    lines.append("")
    lines.append(
        "Result: **5/5 rows match the paper exactly.**"
        if t1.matches_paper()
        else "Result: MISMATCH — see rows above."
    )
    sections.append("\n".join(lines))

    # ----- Figure 4 -----------------------------------------------------
    f4 = run_figure4()
    lines = [
        "## Figure 4 — optimization effects on the data-parallel"
        " workflow",
        "",
        "Speedup of each configuration relative to the unoptimized"
        " baseline (broadcast blacklist, no caching):",
        "",
        "| engine | configuration | measured | paper |",
        "|---|---|---|---|",
    ]
    for engine, label, factor, paper in f4.rows():
        paper_s = f"{paper:.2f}x" if paper else "–"
        lines.append(
            f"| {engine} | {label} | {factor:.2f}x | {paper_s} |"
        )
    lines += [
        "",
        "Shapes reproduced: every optimized configuration beats the"
        " baseline; partitioning alone adds nothing (lazy re-evaluation"
        " re-partitions anyway); caching gives the big second jump;"
        " partitioning+caching adds a further gain on top of caching;"
        " and the Flink-like engine's speedups dwarf the Spark-like"
        " engine's because its baseline suffers far more from broadcast"
        " handling — the paper's stated explanation for 6.56x vs 1.5x.",
        "",
        "Known divergence: the paper's Flink caching gains (12.07x,"
        " 18.16x) exceed ours — our simulated Flink pays DFS I/O on"
        " every cached read, which caps how much caching can help it.",
    ]
    sections.append("\n".join(lines))

    # ----- Section 5.2 iterative -----------------------------------------
    s52 = run_section52()
    lines = [
        "## Section 5.2 — iterative algorithms (k-means, PageRank)",
        "",
        "| engine | algorithm | configuration | simulated |",
        "|---|---|---|---|",
    ]
    for (engine, algo, label), run in sorted(s52.runs.items()):
        lines.append(
            f"| {engine} | {algo} | {label} | {_fmt(run.seconds)} |"
        )
    lines += [
        "",
        "Caching speedups (fusion vs fusion+caching):",
        "",
        "| engine | algorithm | measured | paper |",
        "|---|---|---|---|",
    ]
    for engine in ("spark", "flink"):
        for algo in ("kmeans", "pagerank"):
            measured = s52.caching_speedup(engine, algo)
            paper = PAPER_CACHING_SPEEDUP[(engine, algo)]
            lines.append(
                f"| {engine} | {algo} | {measured:.2f}x |"
                f" ~{paper:.2f}x |"
            )
    lines += [
        "",
        "Shapes reproduced: without fold-group fusion *nothing*"
        " finishes — the Spark-like engine dies materializing the"
        " skewed groups in memory, the Flink-like engine exceeds the"
        " budget sorting and spilling them (the paper's 1-hour"
        " timeout).  With fusion, caching helps the Spark-like engine"
        " (k-means lands near the paper's ~1.5x) and is a wash on the"
        " Flink-like engine (DFS-backed cache).",
        "",
        "Known divergence: the paper's Spark PageRank caching gain"
        " (3.13x) exceeds ours (~1.3x).  The authors' cached vertices"
        " stayed co-partitioned with the in-memory rank state, so"
        " caching also eliminated the per-iteration join shuffle; our"
        " simulated join re-shuffles the cached-but-unpartitioned"
        " vertex side every iteration (partition pulling is off for"
        " PageRank, per Table 1), so only the read is saved.",
    ]
    sections.append("\n".join(lines))

    # ----- Section 5.2 TPC-H ---------------------------------------------
    tq = run_tpch()
    lines = [
        "## Section 5.2 — TPC-H Q1 and Q4",
        "",
        "| engine | query | configuration | simulated | paper |",
        "|---|---|---|---|---|",
    ]
    from repro.experiments.tpch_exp import PAPER_SECONDS

    for (engine, query, label), run in sorted(tq.runs.items()):
        paper = (
            f"{PAPER_SECONDS[(engine, query)]:.0f}s"
            if label == "optimized"
            else "DNF (>1h)"
        )
        lines.append(
            f"| {engine} | {query} | {label} |"
            f" {_fmt(run.seconds)} | {paper} |"
        )
    lines += [
        "",
        "Shapes reproduced exactly: both queries fail on both engines"
        " without the logical optimizations (group materialization for"
        " Q1, the broadcast-EXISTS for Q4) and finish with them; the"
        " optimized engine ordering also matches (Flink under Spark"
        " for Q1, close for Q4 — paper: 240s vs 466s and 569s vs"
        " 577s).",
    ]
    sections.append("\n".join(lines))

    # ----- Figure 5 -------------------------------------------------------
    f5 = run_figure5()
    lines = [
        "## Figure 5 — fold-group fusion and scalability",
        "",
        "Grouped `min` aggregation under weak scaling (constant data"
        " per execution unit), three key distributions, fusion on/off:",
        "",
    ]
    for distribution in ("uniform", "gaussian", "pareto"):
        lines.append(f"### {distribution}")
        lines.append("")
        header = (
            "| series | "
            + " | ".join(f"DOP {d}" for d in f5.scale.dops)
            + " |"
        )
        lines.append(header)
        lines.append("|---|" + "---|" * len(f5.scale.dops))
        for engine in ("spark", "flink"):
            for fused in (True, False):
                label = f"{engine} {'GF' if fused else 'no GF'}"
                cells = " | ".join(
                    _fmt(sec)
                    for _d, sec in f5.series(
                        engine, distribution, fused
                    )
                )
                lines.append(f"| {label} | {cells} |")
        lines.append("")
    lines += [
        "Shapes reproduced: fusion is never slower and always"
        " finishes; under the Pareto skew (~35% of tuples on one key)"
        " the Spark-like engine fails at *every* DOP without fusion —"
        " exactly the paper's observation — while the Flink-like"
        " engine's sort-based grouping survives but degrades linearly"
        " with the (weak-scaled) total data volume; with fusion the"
        " Flink-like engine stays near-flat while the Spark-like"
        " engine's runtime grows with the DOP (its centralized"
        " per-task scheduling — the paper's superlinear trend).",
    ]
    sections.append("\n".join(lines))

    sections.append(
        "## Reading the numbers\n\n"
        "Simulated seconds come from the calibrated cost model in"
        " `repro/experiments/runner.py` (bandwidths, CPU throughput,"
        " per-job/stage/task overheads) plus per-experiment overrides"
        " documented in each harness module.  The engines execute the"
        " real tuples — counts, bytes, skew, and partition layouts are"
        " measured, not assumed; only the *conversion to seconds* is"
        " modelled.  The executor runs fused operator chains: a maximal"
        " run of narrow record-wise operators is one generated"
        " per-partition kernel and pays *one* task-overhead charge, not"
        " one per operator (`tasks_saved` in `Metrics` counts the"
        " difference; `EmmaConfig(operator_chaining=False)` restores"
        " per-operator execution).  All runs are deterministic (stable"
        " hashing, fixed seeds), and every charge is auditable: run any"
        " experiment with `EmmaConfig(tracing=True)` and the per-job"
        " span durations sum exactly to the reported simulated seconds"
        " (see `docs/observability.md`)."
    )
    return "\n\n".join(sections) + "\n"


def main() -> None:
    """CLI entry point: write the report to the given path."""
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("EXPERIMENTS.md")
    out.write_text(build_report())
    print(f"wrote {out}")


if __name__ == "__main__":
    main()

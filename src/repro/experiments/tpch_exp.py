"""Section 5.2 — TPC-H Q1 and Q4 with and without logical optimizations.

The paper: "without the logical optimizations, none of the queries was
executed within the limit of one hour.  With logical optimizations
enabled, both queries managed to finish their execution within 10
minutes (466s for Q1 on Spark and 240s on Flink; 577s for Q4 on Spark
and 569s for Flink)."

Shapes to reproduce:

* Q1 without fold-group fusion and Q4 without {fold-group fusion,
  unnesting} exceed the budget (group materialization for Q1, whole-
  ``lineitem`` broadcast for Q4's un-unnested EXISTS);
* with the logical optimizations both queries finish comfortably.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engines.dfs import SimulatedDFS
from repro.experiments.runner import (
    DNF,
    ENGINE_KINDS,
    ExperimentResult,
    bench_cost_model,
    make_engine,
    run_with_budget,
)
from repro.optimizer.pipeline import EmmaConfig
from repro.workloads.tpch import stage_tpch, tpch_q1, tpch_q4

OPTIMIZED = EmmaConfig(
    unnesting=True,
    fold_group_fusion=True,
    caching=False,
    partition_pulling=False,
    physical_planning=False,
)
UNOPTIMIZED = EmmaConfig.none()

PAPER_SECONDS = {
    ("spark", "q1"): 466.0,
    ("flink", "q1"): 240.0,
    ("spark", "q4"): 577.0,
    ("flink", "q4"): 569.0,
}


@dataclass
class TpchScale:
    scale_factor: float = 4.0
    num_workers: int = 16
    memory_per_worker: int = 192 * 1024
    time_budget: float = 0.2
    ship_date_max: str = "1996-12-01"
    date_min: str = "1994-01-01"
    date_max: str = "1994-04-01"


@dataclass
class TpchResult:
    scale: TpchScale
    runs: dict[tuple[str, str, str], ExperimentResult] = field(
        default_factory=dict
    )

    def render(self) -> str:
        """The paper-vs-measured TPC-H table as printable text."""
        lines = [
            "Section 5.2 — TPC-H (DNF = exceeded memory or budget; "
            "paper times are cluster wall-clock, ours simulated)",
            f"{'engine':8} {'query':6} {'configuration':14} "
            f"{'simulated':>10} {'paper':>8}",
        ]
        for (engine, query, label), run in sorted(self.runs.items()):
            t = (
                "DNF"
                if run.seconds is DNF
                else f"{run.seconds:8.3f}s"
            )
            paper = (
                f"{PAPER_SECONDS[(engine, query)]:.0f}s"
                if label == "optimized"
                else "DNF"
            )
            lines.append(
                f"{engine:8} {query:6} {label:14} {t:>10} {paper:>8}"
            )
        return "\n".join(lines)


def run_tpch(scale: TpchScale | None = None) -> TpchResult:
    """Run Q1 and Q4, optimized and unoptimized, on both engines."""
    scale = scale or TpchScale()
    dfs = SimulatedDFS()
    orders_path, lineitem_path = stage_tpch(
        dfs, sf=scale.scale_factor, seed=71
    )
    # Analytical queries are CPU- and shuffle-bound at this scale:
    # slower per-record processing and a contended network make the
    # unoptimized plans' materialization/broadcast costs bite.
    cost = bench_cost_model(
        memory_per_worker=scale.memory_per_worker,
        job_overhead=0.0005,
        stage_overhead=0.0001,
        cpu_throughput=1e6,
        network_bandwidth=40e6,
    )
    result = TpchResult(scale=scale)
    configs = {"optimized": OPTIMIZED, "unoptimized": UNOPTIMIZED}
    for kind in ENGINE_KINDS:
        for label, config in configs.items():
            engine = make_engine(
                kind,
                dfs,
                num_workers=scale.num_workers,
                cost=cost,
                time_budget=scale.time_budget,
                broadcast_join_threshold=16 * 1024,
            )
            result.runs[(kind, "q1", label)] = run_with_budget(
                engine,
                tpch_q1,
                config,
                lineitem_path=lineitem_path,
                ship_date_max=scale.ship_date_max,
            )
            engine = make_engine(
                kind,
                dfs,
                num_workers=scale.num_workers,
                cost=cost,
                time_budget=scale.time_budget,
                broadcast_join_threshold=16 * 1024,
            )
            result.runs[(kind, "q4", label)] = run_with_budget(
                engine,
                tpch_q4,
                config,
                orders_path=orders_path,
                lineitem_path=lineitem_path,
                date_min=scale.date_min,
                date_max=scale.date_max,
            )
    return result

"""Reproduction harnesses for every table and figure in the paper.

Each module reproduces one evaluation artifact at laptop scale on the
simulated engines and returns structured results that the benchmark
suite asserts *shapes* over (who wins, by roughly what factor, where
failures occur) and that ``repro.experiments.report`` renders into
EXPERIMENTS.md:

* :mod:`repro.experiments.table1` — the optimization applicability
  matrix (Table 1);
* :mod:`repro.experiments.figure4` — the data-parallel workflow
  speedups under {unnesting, +partitioning, +caching, +both} on the
  Spark-like and Flink-like engines (Figure 4);
* :mod:`repro.experiments.section52` — the iterative algorithms
  (k-means, PageRank): no-fusion failure, caching speedups (Sec. 5.2);
* :mod:`repro.experiments.tpch_exp` — TPC-H Q1/Q4 with and without the
  logical optimizations (Sec. 5.2);
* :mod:`repro.experiments.figure5` — the grouped-aggregation DOP sweep
  over uniform/Gaussian/Pareto key distributions with fold-group fusion
  on and off (Figure 5 / Appendix B.1).
"""

from repro.experiments.runner import (
    DNF,
    BenchEngines,
    ExperimentResult,
    bench_cost_model,
    make_engine,
    run_with_budget,
)

__all__ = [
    "DNF",
    "BenchEngines",
    "ExperimentResult",
    "bench_cost_model",
    "make_engine",
    "run_with_budget",
]

"""Shared infrastructure for the experiment harnesses.

The experiments use a *benchmark cost model* whose constants mirror the
paper's cluster in relative terms at laptop data scales: DFS reads are
the slow path (spinning disks + replication), shuffles are cheaper than
reads, fixed overheads are small relative to data terms.  Absolute
simulated seconds are meaningless; ratios are the reproduction target.

``run_with_budget`` executes one algorithm configuration on a fresh
engine and classifies the outcome: a simulated time, or :data:`DNF`
("did not finish") when the run exceeds the simulated-time budget or a
worker exceeds its memory allowance — the paper's two failure modes for
unoptimized plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.engines.cluster import ClusterConfig
from repro.engines.costmodel import CostModel
from repro.engines.dfs import SimulatedDFS
from repro.engines.faults import FaultPlan, RetryPolicy
from repro.engines.flinklike import FlinkLikeEngine
from repro.engines.sparklike import SparkLikeEngine
from repro.errors import (
    SimulatedMemoryError,
    SimulatedTimeout,
    TaskFailedError,
)


class _DNF:
    """Sentinel: the configuration did not finish (timeout / memory)."""

    def __repr__(self) -> str:
        return "DNF"


DNF = _DNF()


def bench_cost_model(**overrides: Any) -> CostModel:
    """The experiments' calibrated cost model (see module docstring)."""
    params: dict[str, Any] = dict(
        network_bandwidth=100e6,
        disk_bandwidth=150e6,
        dfs_read_bandwidth=15e6,
        dfs_write_bandwidth=8e6,
        cpu_throughput=5e6,
        driver_bandwidth=40e6,
        job_overhead=0.004,
        stage_overhead=0.001,
        memory_per_worker=512 * 1024,
    )
    params.update(overrides)
    return CostModel(**params)


ENGINE_KINDS = ("spark", "flink")


def make_engine(
    kind: str,
    dfs: SimulatedDFS,
    num_workers: int = 8,
    cost: CostModel | None = None,
    time_budget: float | None = None,
    broadcast_join_threshold: int | None = None,
    task_overhead: float | None = None,
    fault_plan: FaultPlan | None = None,
    retry_policy: RetryPolicy | None = None,
    checkpoint_interval: int = 0,
):
    """A fresh engine of the given kind, wired to the shared DFS."""
    cluster = ClusterConfig(num_workers=num_workers)
    cost = cost or bench_cost_model()
    cls = {"spark": SparkLikeEngine, "flink": FlinkLikeEngine}[kind]
    engine = cls(
        cluster=cluster,
        cost=cost,
        dfs=dfs,
        time_budget=time_budget,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
        checkpoint_interval=checkpoint_interval,
    )
    if broadcast_join_threshold is not None:
        engine.broadcast_join_threshold = broadcast_join_threshold
    if task_overhead is not None:
        engine.task_overhead = task_overhead
    return engine


@dataclass
class ExperimentResult:
    """One (engine, configuration) measurement."""

    engine: str
    label: str
    seconds: float | _DNF
    metrics_summary: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.seconds is not DNF

    def __repr__(self) -> str:
        time = (
            "DNF"
            if self.seconds is DNF
            else f"{self.seconds:.3f}s"
        )
        return f"{self.engine}/{self.label}: {time}"


def run_with_budget(engine, algorithm, config, **params) -> ExperimentResult:
    """Run one configuration; classify timeout/memory failures as DNF."""
    label = config.label() if config is not None else "default"
    try:
        algorithm.run(engine, config=config, **params)
        seconds: float | _DNF = engine.metrics.simulated_seconds
    except (
        SimulatedTimeout,
        SimulatedMemoryError,
        TaskFailedError,
    ) as failure:
        extra: dict[str, Any] = {"failure": type(failure).__name__}
        site = failure.failure_site()
        if site:
            extra["failure_site"] = site
        if failure.metrics is not None:
            extra["failure_metrics"] = failure.metrics
        return ExperimentResult(
            engine=engine.name,
            label=label,
            seconds=DNF,
            metrics_summary=engine.metrics.summary(),
            extra=extra,
        )
    return ExperimentResult(
        engine=engine.name,
        label=label,
        seconds=seconds,
        metrics_summary=engine.metrics.summary(),
    )


def speedup(baseline: ExperimentResult, run: ExperimentResult) -> float:
    """Relative speedup of ``run`` over ``baseline`` (inf if baseline DNF)."""
    if baseline.seconds is DNF:
        return float("inf")
    if run.seconds is DNF:
        return 0.0
    return baseline.seconds / run.seconds


@dataclass
class BenchEngines:
    """Convenience bundle: one fresh DFS shared by per-run engines."""

    dfs: SimulatedDFS = field(default_factory=SimulatedDFS)

    def fresh(self, kind: str, **kwargs):
        """A new engine of ``kind`` sharing this bundle's DFS."""
        return make_engine(kind, self.dfs, **kwargs)

"""Figure 4 — optimization effects on the data-parallel workflow.

The paper runs the spam-classifier selection workflow (Listing 5) under
five configurations and reports speedups relative to the unoptimized
baseline (no unnesting — the blacklist is broadcast to every worker and
scanned per email):

    configuration              Spark   Flink
    unnesting                  1.50x    6.56x
    unnesting + partitioning   1.50x    6.56x
    unnesting + caching        3.86x   12.07x
    unnesting + part + cache   4.18x   18.16x

The shapes this harness must reproduce (see EXPERIMENTS.md for the
measured numbers):

* every optimized configuration beats the baseline;
* partitioning *alone* adds nothing over unnesting (lazy re-evaluation
  re-partitions anyway);
* caching gives a large additional gain (read + extractFeatures paid
  once); partitioning + caching adds a further, smaller gain (the
  semi-join's shuffle is paid once, outside the loop);
* the Flink-like engine's speedups are much larger than the Spark-like
  engine's, because its baseline suffers far more from broadcast
  handling (the paper's stated reason for the 6.56x vs 1.5x gap).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engines.dfs import SimulatedDFS
from repro.experiments.runner import (
    ENGINE_KINDS,
    ExperimentResult,
    make_engine,
    speedup,
)
from repro.optimizer.pipeline import EmmaConfig
from repro.workloads import datagen
from repro.workloads.spam import default_classifiers, select_classifier

#: the Figure 4 configurations, in presentation order
CONFIGURATIONS: dict[str, EmmaConfig] = {
    "baseline": EmmaConfig.none(),
    "unnesting": EmmaConfig(
        unnesting=True,
        fold_group_fusion=False,
        caching=False,
        partition_pulling=False,
        physical_planning=False,
    ),
    "unnesting+partitioning": EmmaConfig(
        unnesting=True,
        fold_group_fusion=False,
        caching=False,
        partition_pulling=True,
        physical_planning=False,
    ),
    "unnesting+caching": EmmaConfig(
        unnesting=True,
        fold_group_fusion=False,
        caching=True,
        partition_pulling=False,
        physical_planning=False,
    ),
    "unnesting+partitioning+caching": EmmaConfig(
        unnesting=True,
        fold_group_fusion=False,
        caching=True,
        partition_pulling=True,
        physical_planning=False,
    ),
}

PAPER_SPEEDUPS = {
    "spark": {
        "unnesting": 1.50,
        "unnesting+partitioning": 1.50,
        "unnesting+caching": 3.86,
        "unnesting+partitioning+caching": 4.18,
    },
    "flink": {
        "unnesting": 6.56,
        "unnesting+partitioning": 6.56,
        "unnesting+caching": 12.07,
        "unnesting+partitioning+caching": 18.16,
    },
}


@dataclass
class Figure4Scale:
    """Input sizing for the workflow (relative sizes mirror the paper:
    a large email corpus vs a much smaller — but broadcast-expensive —
    blacklist)."""

    num_emails: int = 2400
    body_chars: int = 2400
    num_blacklisted: int = 400
    blacklist_payload_chars: int = 20000
    num_ips: int = 900
    num_classifiers: int = 8
    num_workers: int = 8
    #: keys of the blacklist exceed this, forcing repartition semi-joins
    broadcast_join_threshold: int = 1024


@dataclass
class Figure4Result:
    scale: Figure4Scale
    runs: dict[str, dict[str, ExperimentResult]] = field(
        default_factory=dict
    )

    def speedups(self, engine: str) -> dict[str, float]:
        """Per-configuration speedups relative to the baseline."""
        baseline = self.runs[engine]["baseline"]
        return {
            label: speedup(baseline, run)
            for label, run in self.runs[engine].items()
            if label != "baseline"
        }

    def rows(self) -> list[tuple[str, str, float, float | None]]:
        """(engine, configuration, measured speedup, paper speedup)."""
        out = []
        for engine in self.runs:
            for label, factor in self.speedups(engine).items():
                out.append(
                    (
                        engine,
                        label,
                        factor,
                        PAPER_SPEEDUPS.get(engine, {}).get(label),
                    )
                )
        return out

    def render(self) -> str:
        """The paper-style speedup table as printable text."""
        lines = [
            "Figure 4 — workflow speedups relative to the unoptimized "
            "baseline",
            f"{'engine':8} {'configuration':34} "
            f"{'measured':>9} {'paper':>7}",
        ]
        for engine, label, factor, paper in self.rows():
            paper_s = f"{paper:.2f}x" if paper else "-"
            lines.append(
                f"{engine:8} {label:34} {factor:8.2f}x {paper_s:>7}"
            )
        return "\n".join(lines)


def _stage(dfs: SimulatedDFS, scale: Figure4Scale) -> tuple[str, str]:
    emails = datagen.generate_emails(
        scale.num_emails,
        num_ips=scale.num_ips,
        body_chars=scale.body_chars,
        seed=41,
    )
    blacklist = datagen.generate_blacklist(
        scale.num_blacklisted, scale.num_ips, seed=43
    )
    # Pad the blacklist entries: the paper's blacklist carries ~20KB of
    # metadata per server (2 GB / 100k entries), which is exactly what
    # makes broadcasting it painful.
    blacklist = [
        datagen.BlacklistEntry(
            ip=b.ip,
            owner=b.owner,
            reason=b.reason * (scale.blacklist_payload_chars // max(len(b.reason), 1)),
        )
        for b in blacklist
    ]
    emails_path, blacklist_path = "fig4/emails", "fig4/blacklist"
    dfs.put(emails_path, emails)
    dfs.put(blacklist_path, blacklist)
    return emails_path, blacklist_path


def run_figure4(scale: Figure4Scale | None = None) -> Figure4Result:
    """Execute all Figure 4 configurations on both engines."""
    scale = scale or Figure4Scale()
    dfs = SimulatedDFS()
    emails_path, blacklist_path = _stage(dfs, scale)
    classifiers = default_classifiers(scale.num_classifiers)
    result = Figure4Result(scale=scale)
    for kind in ENGINE_KINDS:
        result.runs[kind] = {}
        for label, config in CONFIGURATIONS.items():
            engine = make_engine(
                kind,
                dfs,
                num_workers=scale.num_workers,
                broadcast_join_threshold=scale.broadcast_join_threshold,
            )
            run = _run_one(
                engine, config, emails_path, blacklist_path, classifiers
            )
            run = ExperimentResult(
                engine=kind,
                label=label,
                seconds=run.seconds,
                metrics_summary=run.metrics_summary,
            )
            result.runs[kind][label] = run
    return result


def _run_one(engine, config, emails_path, blacklist_path, classifiers):
    from repro.experiments.runner import run_with_budget

    return run_with_budget(
        engine,
        select_classifier,
        config,
        emails_path=emails_path,
        blacklist_path=blacklist_path,
        classifiers=classifiers,
    )

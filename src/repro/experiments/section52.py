"""Section 5.2 — iterative algorithms (k-means, PageRank).

The paper's findings to reproduce:

* **Without fold-group fusion neither algorithm finishes** — the
  grouping materializes huge per-key groups (k-means groups 1.6B points
  into k=3 clusters), which blows past worker memory on the Spark-like
  engine and past the time budget on the Flink-like engine (sort-based
  grouping survives in memory but pays enormous skewed shuffle + spill
  time).
* **With fusion, caching helps the Spark-like engine** — 1.52x on
  k-means (only the re-read of the points is saved; the nearest-
  centroid computation still dominates) and 3.13x on PageRank (the
  adjacency lists are the bulk of the data *and* the rank state stays
  partitioned in memory between iterations).
* **Caching does not help the Flink-like engine** — its cache spills to
  the DFS, so the saved read is replaced by another read (Section 5.2:
  "the benefits of caching are eliminated by the cost of the additional
  I/O").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engines.dfs import SimulatedDFS
from repro.experiments.runner import (
    DNF,
    ENGINE_KINDS,
    ExperimentResult,
    bench_cost_model,
    make_engine,
    run_with_budget,
    speedup,
)
from repro.optimizer.pipeline import EmmaConfig
from repro.workloads import datagen, graphs
from repro.workloads.kmeans import initial_centroids, kmeans
from repro.workloads.pagerank import pagerank

NO_FUSION = EmmaConfig(
    fold_group_fusion=False,
    caching=True,
    partition_pulling=False,
    physical_planning=False,
)
FUSION_NO_CACHE = EmmaConfig(
    fold_group_fusion=True,
    caching=False,
    partition_pulling=False,
    physical_planning=False,
)
FUSION_CACHE = EmmaConfig(
    fold_group_fusion=True,
    caching=True,
    partition_pulling=False,
    physical_planning=False,
)

PAPER_CACHING_SPEEDUP = {
    ("spark", "kmeans"): 1.52,
    ("spark", "pagerank"): 3.13,
    ("flink", "kmeans"): 1.0,
    ("flink", "pagerank"): 1.0,
}


@dataclass
class Section52Scale:
    """Sizing for the iterative experiments."""

    num_points: int = 10000
    point_dim: int = 10
    kmeans_clusters: int = 6
    kmeans_iterations: int = 5
    num_vertices: int = 3000
    edges_per_vertex: int = 20
    vertex_payload_chars: int = 1200
    pagerank_iterations: int = 5
    num_workers: int = 16
    #: worker memory for the no-fusion group materialization check
    memory_per_worker: int = 96 * 1024
    #: simulated-seconds budget standing in for the paper's 1-hour cap
    time_budget: float = 0.5


@dataclass
class Section52Result:
    scale: Section52Scale
    runs: dict[tuple[str, str, str], ExperimentResult] = field(
        default_factory=dict
    )

    def caching_speedup(self, engine: str, algorithm: str) -> float:
        """fusion-time / fusion+caching-time for one (engine, algo)."""
        return speedup(
            self.runs[(engine, algorithm, "fusion")],
            self.runs[(engine, algorithm, "fusion+caching")],
        )

    def render(self) -> str:
        """The runs and caching-speedup tables as printable text."""
        lines = [
            "Section 5.2 — iterative algorithms "
            "(DNF = exceeded memory or the time budget)",
            f"{'engine':8} {'algorithm':10} {'configuration':18} "
            f"{'simulated':>10}",
        ]
        for (engine, algo, label), run in sorted(self.runs.items()):
            t = (
                "DNF"
                if run.seconds is DNF
                else f"{run.seconds:8.3f}s"
            )
            lines.append(
                f"{engine:8} {algo:10} {label:18} {t:>10}"
            )
        lines.append("")
        lines.append("caching speedups (fusion vs fusion+caching):")
        for engine in ENGINE_KINDS:
            for algo in ("kmeans", "pagerank"):
                factor = self.caching_speedup(engine, algo)
                paper = PAPER_CACHING_SPEEDUP[(engine, algo)]
                lines.append(
                    f"  {engine:8} {algo:10} measured "
                    f"{factor:5.2f}x   paper ~{paper:.2f}x"
                )
        return "\n".join(lines)


def run_section52(
    scale: Section52Scale | None = None,
) -> Section52Result:
    """Run k-means and PageRank under all three configurations."""
    scale = scale or Section52Scale()
    dfs = SimulatedDFS()
    points_path = "s52/points"
    dfs.put(
        points_path,
        datagen.generate_points(
            scale.num_points,
            centers=scale.kmeans_clusters,
            dim=scale.point_dim,
            seed=61,
        ),
    )
    graph_path = "s52/graph"
    dfs.put(
        graph_path,
        graphs.generate_follower_graph(
            scale.num_vertices,
            scale.edges_per_vertex,
            seed=67,
            payload_chars=scale.vertex_payload_chars,
        ),
    )
    init = initial_centroids(
        dfs.get(points_path).records, scale.kmeans_clusters
    )

    # Iterative algorithms run on locality-friendly storage (fast
    # data-local DFS reads) with the network as the scarce resource —
    # the regime in which un-fused grouping hurts most.
    cost = bench_cost_model(
        memory_per_worker=scale.memory_per_worker,
        dfs_read_bandwidth=20e6,
        dfs_write_bandwidth=10e6,
        network_bandwidth=40e6,
        job_overhead=0.0005,
        stage_overhead=0.0001,
    )
    result = Section52Result(scale=scale)

    configs = {
        "no-fusion": NO_FUSION,
        "fusion": FUSION_NO_CACHE,
        "fusion+caching": FUSION_CACHE,
    }
    for kind in ENGINE_KINDS:
        for label, config in configs.items():
            engine = make_engine(
                kind,
                dfs,
                num_workers=scale.num_workers,
                cost=cost,
                time_budget=scale.time_budget,
                task_overhead=0.00005 if kind == "spark" else None,
            )
            result.runs[(kind, "kmeans", label)] = run_with_budget(
                engine,
                kmeans,
                config,
                points_path=points_path,
                initial=init,
                epsilon=-1.0,  # fixed-iteration runs
                max_iterations=scale.kmeans_iterations,
            )
            engine = make_engine(
                kind,
                dfs,
                num_workers=scale.num_workers,
                cost=cost,
                time_budget=scale.time_budget,
                task_overhead=0.00005 if kind == "spark" else None,
            )
            result.runs[(kind, "pagerank", label)] = run_with_budget(
                engine,
                pagerank,
                config,
                graph_path=graph_path,
                num_pages=scale.num_vertices,
                max_iterations=scale.pagerank_iterations,
            )
    return result

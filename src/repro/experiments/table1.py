"""Table 1 — which optimizations apply to which program.

Unlike the timing experiments, this one needs no engine: the compiler
itself is the measurement instrument.  Each workload is compiled with
everything enabled and the optimization report says which passes fired.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.kmeans import kmeans
from repro.workloads.pagerank import pagerank
from repro.workloads.spam import select_classifier
from repro.workloads.tpch import tpch_q1, tpch_q4

#: the paper's Table 1 (True = marked X)
PAPER_TABLE_1 = {
    "data-parallel workflow": {
        "unnesting": True,
        "fold_group_fusion": False,
        "caching": True,
        "partition_pulling": True,
    },
    "k-means": {
        "unnesting": False,
        "fold_group_fusion": True,
        "caching": True,
        "partition_pulling": False,
    },
    "pagerank": {
        "unnesting": False,
        "fold_group_fusion": True,
        "caching": True,
        "partition_pulling": False,
    },
    "tpc-h q1": {
        "unnesting": False,
        "fold_group_fusion": True,
        "caching": False,
        "partition_pulling": False,
    },
    "tpc-h q4": {
        "unnesting": True,
        "fold_group_fusion": True,
        "caching": False,
        "partition_pulling": False,
    },
}

ALGORITHMS = {
    "data-parallel workflow": select_classifier,
    "k-means": kmeans,
    "pagerank": pagerank,
    "tpc-h q1": tpch_q1,
    "tpc-h q4": tpch_q4,
}

_COLUMNS = (
    "unnesting",
    "fold_group_fusion",
    "caching",
    "partition_pulling",
)


@dataclass
class Table1Result:
    rows: dict[str, dict[str, bool]] = field(default_factory=dict)

    def matches_paper(self) -> bool:
        """Whether every row equals the paper's Table 1."""
        return self.rows == PAPER_TABLE_1

    def render(self) -> str:
        """The applicability matrix as printable text."""
        lines = [
            "Table 1 — optimization applicability "
            "(compiler-reported; must equal the paper's table)",
            f"{'program':24} {'unnest':>7} {'fusion':>7} "
            f"{'cache':>7} {'part.':>7}   paper-match",
        ]
        for program, row in self.rows.items():
            cells = " ".join(
                f"{'X' if row[c] else '-':>7}" for c in _COLUMNS
            )
            ok = "yes" if row == PAPER_TABLE_1[program] else "NO"
            lines.append(f"{program:24} {cells}   {ok}")
        return "\n".join(lines)


def run_table1() -> Table1Result:
    """Compile all five programs and collect their Table 1 rows."""
    result = Table1Result()
    for program, algorithm in ALGORITHMS.items():
        result.rows[program] = algorithm.report().table1_row()
    return result

"""Driver IR — the lifted statement-level view of a parallelized program.

The program is a sequence of statements over lifted expressions
(:mod:`repro.comprehension.exprs`).  DataBag expressions stay embedded
in the statements; the optimizer and code generator later identify the
maximal dataflow sites, rewrite them, and replace them with compiled
plans.  Control flow stays host-level — exactly the paper's point that
a plain ``while`` loop should work on every backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.comprehension.exprs import Expr
from repro.lowering.combinators import ScalarFn


@dataclass(frozen=True)
class Stmt:
    """Base class for driver statements."""

    #: source line in the user's function (for error messages)
    line: int = field(default=0, compare=False)

    def children(self) -> tuple["Stmt", ...]:
        """Nested statement blocks (loop/branch bodies)."""
        return ()


@dataclass(frozen=True)
class SAssign(Stmt):
    """``name = expr`` (also the lowering of ``name op= expr``)."""

    name: str = ""
    value: Expr = None  # type: ignore[assignment]
    #: whether the assigned value is DataBag-typed (set by the lifter)
    bag_typed: bool = False
    #: whether the value is a StatefulBag
    stateful: bool = False


@dataclass(frozen=True)
class SExpr(Stmt):
    """An expression evaluated for effect (e.g. a ``write`` sink)."""

    value: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class SWhile(Stmt):
    """``while cond: body`` — host-level control flow."""

    cond: Expr = None  # type: ignore[assignment]
    body: tuple[Stmt, ...] = ()

    def children(self) -> tuple[Stmt, ...]:
        return self.body


@dataclass(frozen=True)
class SIf(Stmt):
    """``if cond: then else: orelse``."""

    cond: Expr = None  # type: ignore[assignment]
    then: tuple[Stmt, ...] = ()
    orelse: tuple[Stmt, ...] = ()

    def children(self) -> tuple[Stmt, ...]:
        return self.then + self.orelse


@dataclass(frozen=True)
class SFor(Stmt):
    """``for var in iterable: body`` over a *host* iterable.

    Driver-level iteration (e.g. over a list of classifiers); bags are
    iterated inside comprehensions, never by driver ``for`` loops.
    """

    var: str = ""
    iterable: Expr = None  # type: ignore[assignment]
    body: tuple[Stmt, ...] = ()

    def children(self) -> tuple[Stmt, ...]:
        return self.body


@dataclass(frozen=True)
class SReturn(Stmt):
    """``return expr`` (bag values are fetched to the driver)."""

    value: Expr | None = None


@dataclass(frozen=True)
class SCache(Stmt):
    """Optimizer-inserted: materialize ``name`` per the engine's policy.

    ``partition_key`` additionally enforces a hash partitioning before
    storing (partition pulling).  Never produced by the lifter.
    """

    name: str = ""
    partition_key: ScalarFn | None = None


@dataclass(frozen=True)
class DriverProgram:
    """The lifted function: parameters plus the statement sequence."""

    name: str
    params: tuple[str, ...]
    body: tuple[Stmt, ...]
    #: parameter names declared DataBag-typed
    bag_params: frozenset[str] = frozenset()

    def walk(self) -> Iterator[Stmt]:
        """All statements, outer-to-inner."""

        def _walk(stmts: tuple[Stmt, ...]) -> Iterator[Stmt]:
            for s in stmts:
                yield s
                yield from _walk(s.children())

        return _walk(self.body)

    def with_body(self, body: tuple[Stmt, ...]) -> "DriverProgram":
        """A copy of the program with a rewritten statement list."""
        return replace(self, body=body)


def pretty_program(program: DriverProgram) -> str:
    """Render a driver program as indented pseudo-code.

    Expressions print in the comprehension pretty notation, so the
    output shows exactly what the compiler sees at each stage (used by
    the compiler-walkthrough example and the test suite).
    """
    from repro.comprehension.pretty import pretty

    lines = [f"def {program.name}({', '.join(program.params)}):"]

    def emit(stmts: tuple[Stmt, ...], depth: int) -> None:
        pad = "    " * depth
        if not stmts:
            lines.append(f"{pad}pass")
            return
        for stmt in stmts:
            if isinstance(stmt, SAssign):
                marker = ""
                if stmt.stateful:
                    marker = "  # stateful"
                elif stmt.bag_typed:
                    marker = "  # bag"
                lines.append(
                    f"{pad}{stmt.name} = {pretty(stmt.value)}{marker}"
                )
            elif isinstance(stmt, SExpr):
                lines.append(f"{pad}{pretty(stmt.value)}")
            elif isinstance(stmt, SCache):
                suffix = (
                    f" partitioned[{stmt.partition_key.describe()}]"
                    if stmt.partition_key is not None
                    else ""
                )
                lines.append(f"{pad}cache {stmt.name}{suffix}")
            elif isinstance(stmt, SWhile):
                lines.append(f"{pad}while {pretty(stmt.cond)}:")
                emit(stmt.body, depth + 1)
            elif isinstance(stmt, SIf):
                lines.append(f"{pad}if {pretty(stmt.cond)}:")
                emit(stmt.then, depth + 1)
                if stmt.orelse:
                    lines.append(f"{pad}else:")
                    emit(stmt.orelse, depth + 1)
            elif isinstance(stmt, SFor):
                lines.append(
                    f"{pad}for {stmt.var} in {pretty(stmt.iterable)}:"
                )
                emit(stmt.body, depth + 1)
            elif isinstance(stmt, SReturn):
                value = (
                    pretty(stmt.value) if stmt.value is not None else ""
                )
                lines.append(f"{pad}return {value}".rstrip())
            else:
                lines.append(f"{pad}<{type(stmt).__name__}>")

    emit(program.body, 1)
    return "\n".join(lines)

"""Lifting Python functions into driver IR (the ``parallelize`` macro).

This is the Python analogue of Emma's Scala-macro frontend: the
decorated function's *source* is parsed with :mod:`ast` and translated
into :class:`~repro.frontend.driver_ir.DriverProgram` — statements over
lifted IR expressions in which every DataBag operation is a first-class
node.  Generator expressions over bags lift directly into monad
comprehensions (Scala's for-comprehensions never even get this direct
a path — they must be re-sugared from operator chains).

The supported subset covers the data-analysis programs of the paper:
assignments, ``while``/``if``/host-``for`` control flow, arithmetic and
boolean expressions, lambdas, generator/list comprehensions, method
chains on bags, the ``read``/``write``/``stateful``/``DataBag`` intrinsic
calls, and arbitrary *opaque* host calls (record constructors, math
helpers) which are captured from the function's closure and globals.
Anything outside the subset raises :class:`~repro.errors.LiftError`
naming the construct and source line.
"""

from __future__ import annotations

import ast
import builtins
import inspect
import textwrap
from dataclasses import dataclass
from typing import Any, Callable

from repro.comprehension.exprs import (
    FOLD_ALIASES,
    AlgebraSpec,
    Attr,
    BagLiteral,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    DistinctCall,
    Expr,
    FetchCall,
    FilterCall,
    FlatMapCall,
    FoldCall,
    GroupByCall,
    IfElse,
    Index,
    Lambda,
    ListExpr,
    MapCall,
    MinusCall,
    PlusCall,
    ReadCall,
    Ref,
    StatefulBagOf,
    StatefulCreate,
    StatefulUpdate,
    StatefulUpdateWithMessages,
    TupleExpr,
    UnaryOp,
    WriteCall,
)
from repro.comprehension.ir import BAG, Comprehension, Generator, Guard
from repro.core.databag import DataBag
from repro.errors import LiftError
from repro.frontend.driver_ir import (
    DriverProgram,
    SAssign,
    SExpr,
    SFor,
    SIf,
    SReturn,
    SWhile,
    Stmt,
)

_UNAMBIGUOUS_BAG_METHODS = frozenset(
    {
        "flat_map",
        "with_filter",
        "group_by",
        "fold",
        "min_by",
        "max_by",
        "exists",
        "forall",
        "distinct",
        "plus",
        "minus",
        "fetch",
        "is_empty",
        "non_empty",
    }
)

# These also exist on common host types; they lift to bag operators on
# receivers of known or unknown bag-ness, which in practice means
# "anything that is not a tracked scalar".
_COMMON_BAG_METHODS = frozenset(
    {"map", "filter", "sum", "count", "size", "product", "min", "max"}
)

_STATEFUL_METHODS = frozenset({"bag", "update", "update_with_messages"})

_INTRINSIC_FUNCTIONS = frozenset(
    {"read", "write", "stateful", "DataBag"}
)

_BIN_OPS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "//",
    ast.Mod: "%",
    ast.Pow: "**",
}

_CMP_OPS = {
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.In: "in",
    ast.NotIn: "not in",
}


@dataclass
class LiftedFunction:
    """The result of lifting: the driver IR plus the captured host env."""

    program: DriverProgram
    captured: dict[str, Any]
    source: str


def lift_function(
    fn: Callable, bag_params: tuple[str, ...] | None = None
) -> LiftedFunction:
    """Lift a Python function into driver IR.

    Args:
        fn: the function to lift; its source must be available.
        bag_params: names of parameters that carry DataBags.  Parameters
            annotated ``DataBag`` are recognized automatically.
    """
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise LiftError(
            f"cannot read source of {fn!r}; @parallelize needs "
            "source access"
        ) from exc
    tree = ast.parse(source)
    func_defs = [
        node for node in tree.body if isinstance(node, ast.FunctionDef)
    ]
    if len(func_defs) != 1:
        raise LiftError("expected exactly one function definition")
    func = func_defs[0]

    params = tuple(a.arg for a in func.args.args)
    annotated_bags = {
        a.arg
        for a in func.args.args
        if a.annotation is not None and _is_databag_annotation(a.annotation)
    }
    bags = set(bag_params or ()) | annotated_bags

    lifter = _Lifter(initial_bags=bags, initial_stateful=set())
    body = lifter.lift_block(func.body)
    program = DriverProgram(
        name=func.name,
        params=params,
        body=body,
        bag_params=frozenset(bags),
    )
    captured = _capture_environment(fn, program, params)
    return LiftedFunction(program=program, captured=captured, source=source)


def _is_databag_annotation(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "DataBag"
    if isinstance(node, ast.Attribute):
        return node.attr == "DataBag"
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return "DataBag" in node.value
    if isinstance(node, ast.Subscript):
        return _is_databag_annotation(node.value)
    return False


def _capture_environment(
    fn: Callable, program: DriverProgram, params: tuple[str, ...]
) -> dict[str, Any]:
    """Resolve the program's free names from closure, globals, builtins."""
    assigned = {
        s.name for s in program.walk() if isinstance(s, SAssign)
    }
    free: set[str] = set()
    for stmt in program.walk():
        for expr in _stmt_exprs(stmt):
            free |= expr.free_vars()
    free -= assigned
    free -= set(params)
    for stmt in program.walk():
        if isinstance(stmt, SFor):
            free.discard(stmt.var)

    closure: dict[str, Any] = {}
    if fn.__closure__:
        closure = dict(
            zip(fn.__code__.co_freevars, (c.cell_contents for c in fn.__closure__))
        )
    captured: dict[str, Any] = {}
    missing: list[str] = []
    for name in sorted(free):
        if name in closure:
            captured[name] = closure[name]
        elif name in fn.__globals__:
            captured[name] = fn.__globals__[name]
        elif hasattr(builtins, name):
            captured[name] = getattr(builtins, name)
        else:
            missing.append(name)
    if missing:
        raise LiftError(
            f"unresolved names in parallelized function: {missing}"
        )
    return captured


def _stmt_exprs(stmt: Stmt) -> tuple[Expr, ...]:
    if isinstance(stmt, SAssign):
        return (stmt.value,)
    if isinstance(stmt, SExpr):
        return (stmt.value,)
    if isinstance(stmt, SWhile):
        return (stmt.cond,)
    if isinstance(stmt, SIf):
        return (stmt.cond,)
    if isinstance(stmt, SFor):
        return (stmt.iterable,)
    if isinstance(stmt, SReturn):
        return (stmt.value,) if stmt.value is not None else ()
    return ()


# ---------------------------------------------------------------------------
# The lifter
# ---------------------------------------------------------------------------


class _Lifter:
    """Stateful lifter tracking bag-typed and stateful-typed names."""

    def __init__(
        self, initial_bags: set[str], initial_stateful: set[str]
    ) -> None:
        self.bag_names: set[str] = set(initial_bags)
        self.stateful_names: set[str] = set(initial_stateful)

    # -- statements --------------------------------------------------------

    def lift_block(self, body: list[ast.stmt]) -> tuple[Stmt, ...]:
        out: list[Stmt] = []
        for node in body:
            lifted = self.lift_stmt(node)
            if lifted is not None:
                out.append(lifted)
        return tuple(out)

    def lift_stmt(self, node: ast.stmt) -> Stmt | None:
        if isinstance(node, ast.Assign):
            return self._lift_assign(node)
        if isinstance(node, ast.AnnAssign):
            if node.value is None:
                return None
            return self._lift_simple_assign(
                node.target, node.value, node.lineno
            )
        if isinstance(node, ast.AugAssign):
            return self._lift_aug_assign(node)
        if isinstance(node, ast.While):
            if node.orelse:
                raise LiftError(
                    f"line {node.lineno}: while/else is not supported"
                )
            cond = self.lift_expr(node.test)
            body = self.lift_block(node.body)
            return SWhile(cond=cond, body=body, line=node.lineno)
        if isinstance(node, ast.If):
            cond = self.lift_expr(node.test)
            then = self.lift_block(node.body)
            orelse = self.lift_block(node.orelse)
            return SIf(
                cond=cond, then=then, orelse=orelse, line=node.lineno
            )
        if isinstance(node, ast.For):
            if node.orelse:
                raise LiftError(
                    f"line {node.lineno}: for/else is not supported"
                )
            if not isinstance(node.target, ast.Name):
                raise LiftError(
                    f"line {node.lineno}: for-loop target must be a name"
                )
            iterable = self.lift_expr(node.iter)
            if self._is_bag(iterable):
                raise LiftError(
                    f"line {node.lineno}: driver for-loops over DataBags "
                    "are not allowed; use a comprehension instead"
                )
            body = self.lift_block(node.body)
            return SFor(
                var=node.target.id,
                iterable=iterable,
                body=body,
                line=node.lineno,
            )
        if isinstance(node, ast.Return):
            value = (
                self.lift_expr(node.value)
                if node.value is not None
                else None
            )
            return SReturn(value=value, line=node.lineno)
        if isinstance(node, ast.Expr):
            return SExpr(
                value=self.lift_expr(node.value), line=node.lineno
            )
        if isinstance(node, ast.Pass):
            return None
        raise LiftError(
            f"line {node.lineno}: unsupported statement "
            f"{type(node).__name__} in parallelized code"
        )

    def _lift_assign(self, node: ast.Assign) -> Stmt:
        if len(node.targets) != 1:
            raise LiftError(
                f"line {node.lineno}: multiple assignment targets are "
                "not supported"
            )
        return self._lift_simple_assign(
            node.targets[0], node.value, node.lineno
        )

    def _lift_simple_assign(
        self, target: ast.expr, value: ast.expr, line: int
    ) -> Stmt:
        if not isinstance(target, ast.Name):
            raise LiftError(
                f"line {line}: assignment target must be a simple name"
            )
        expr = self.lift_expr(value)
        name = target.id
        is_stateful = isinstance(expr, StatefulCreate)
        is_bag = self._is_bag(expr)
        if is_stateful:
            self.stateful_names.add(name)
            self.bag_names.discard(name)
        elif is_bag:
            self.bag_names.add(name)
            self.stateful_names.discard(name)
        else:
            self.bag_names.discard(name)
            self.stateful_names.discard(name)
        return SAssign(
            name=name,
            value=expr,
            bag_typed=is_bag,
            stateful=is_stateful,
            line=line,
        )

    def _lift_aug_assign(self, node: ast.AugAssign) -> Stmt:
        if not isinstance(node.target, ast.Name):
            raise LiftError(
                f"line {node.lineno}: augmented assignment target must "
                "be a simple name"
            )
        op = _BIN_OPS.get(type(node.op))
        if op is None:
            raise LiftError(
                f"line {node.lineno}: unsupported augmented operator"
            )
        value = BinOp(
            op, Ref(node.target.id), self.lift_expr(node.value)
        )
        return SAssign(
            name=node.target.id,
            value=value,
            bag_typed=False,
            line=node.lineno,
        )

    # -- expressions ----------------------------------------------------------

    def lift_expr(self, node: ast.expr) -> Expr:
        method = getattr(
            self, f"_lift_{type(node).__name__.lower()}", None
        )
        if method is None:
            raise LiftError(
                f"line {node.lineno}: unsupported expression "
                f"{type(node).__name__} in parallelized code"
            )
        return method(node)

    def _lift_constant(self, node: ast.Constant) -> Expr:
        return Const(node.value)

    def _lift_name(self, node: ast.Name) -> Expr:
        return Ref(node.id)

    def _lift_attribute(self, node: ast.Attribute) -> Expr:
        return Attr(self.lift_expr(node.value), node.attr)

    def _lift_subscript(self, node: ast.Subscript) -> Expr:
        if isinstance(node.slice, (ast.Slice, ast.Tuple)):
            raise LiftError(
                f"line {node.lineno}: slicing is not supported"
            )
        return Index(
            self.lift_expr(node.value), self.lift_expr(node.slice)
        )

    def _lift_tuple(self, node: ast.Tuple) -> Expr:
        return TupleExpr(tuple(self.lift_expr(e) for e in node.elts))

    def _lift_list(self, node: ast.List) -> Expr:
        return ListExpr(tuple(self.lift_expr(e) for e in node.elts))

    def _lift_binop(self, node: ast.BinOp) -> Expr:
        op = _BIN_OPS.get(type(node.op))
        if op is None:
            raise LiftError(
                f"line {node.lineno}: unsupported binary operator "
                f"{type(node.op).__name__}"
            )
        return BinOp(
            op, self.lift_expr(node.left), self.lift_expr(node.right)
        )

    def _lift_unaryop(self, node: ast.UnaryOp) -> Expr:
        operand = self.lift_expr(node.operand)
        if isinstance(node.op, ast.USub):
            return UnaryOp("-", operand)
        if isinstance(node.op, ast.Not):
            return UnaryOp("not", operand)
        if isinstance(node.op, ast.UAdd):
            return operand
        raise LiftError(
            f"line {node.lineno}: unsupported unary operator"
        )

    def _lift_compare(self, node: ast.Compare) -> Expr:
        parts: list[Expr] = []
        left = self.lift_expr(node.left)
        for op_node, comparator in zip(node.ops, node.comparators):
            op = _CMP_OPS.get(type(op_node))
            if op is None:
                raise LiftError(
                    f"line {node.lineno}: unsupported comparison "
                    f"{type(op_node).__name__}"
                )
            right = self.lift_expr(comparator)
            parts.append(Compare(op, left, right))
            left = right
        if len(parts) == 1:
            return parts[0]
        return BoolOp("and", tuple(parts))

    def _lift_boolop(self, node: ast.BoolOp) -> Expr:
        op = "and" if isinstance(node.op, ast.And) else "or"
        return BoolOp(
            op, tuple(self.lift_expr(v) for v in node.values)
        )

    def _lift_ifexp(self, node: ast.IfExp) -> Expr:
        return IfElse(
            cond=self.lift_expr(node.test),
            then=self.lift_expr(node.body),
            orelse=self.lift_expr(node.orelse),
        )

    def _lift_lambda(self, node: ast.Lambda) -> Expr:
        args = node.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.defaults:
            raise LiftError(
                f"line {node.lineno}: lambdas must use plain positional "
                "parameters"
            )
        params = tuple(a.arg for a in args.args)
        return Lambda(params, self.lift_expr(node.body))

    def _lift_generatorexp(self, node: ast.GeneratorExp) -> Expr:
        return self._lift_comprehension(node.elt, node.generators, node)

    def _lift_listcomp(self, node: ast.ListComp) -> Expr:
        return self._lift_comprehension(node.elt, node.generators, node)

    def _lift_comprehension(
        self,
        elt: ast.expr,
        generators: list[ast.comprehension],
        node: ast.expr,
    ) -> Expr:
        qualifiers: list[Generator | Guard] = []
        for gen in generators:
            if gen.is_async:
                raise LiftError(
                    f"line {node.lineno}: async comprehensions are not "
                    "supported"
                )
            if not isinstance(gen.target, ast.Name):
                raise LiftError(
                    f"line {node.lineno}: comprehension targets must be "
                    "simple names"
                )
            source = self.lift_expr(gen.iter)
            qualifiers.append(Generator(gen.target.id, source))
            for if_node in gen.ifs:
                qualifiers.append(Guard(self.lift_expr(if_node)))
        head = self.lift_expr(elt)
        return Comprehension(
            head=head, qualifiers=tuple(qualifiers), kind=BAG
        )

    # -- calls ---------------------------------------------------------------

    def _lift_call(self, node: ast.Call) -> Expr:
        func = node.func
        intrinsic = self._intrinsic_name(func)
        if intrinsic is not None:
            return self._lift_intrinsic(intrinsic, node)
        if isinstance(func, ast.Attribute):
            lifted = self._try_lift_method(func, node)
            if lifted is not None:
                return lifted
        # ``**mapping`` expansion lifts as a ``("**", expr)`` kwargs
        # entry; ``Call.evaluate`` splices the mapping at call time.
        # The read/write-set analysis treats a ``**`` over UDF data as
        # its conservative TOP element.
        return Call(
            func=self.lift_expr(func),
            args=tuple(self.lift_expr(a) for a in node.args),
            kwargs=tuple(
                (k.arg if k.arg is not None else "**",
                 self.lift_expr(k.value))
                for k in node.keywords
            ),
        )

    def _intrinsic_name(self, func: ast.expr) -> str | None:
        """Recognize ``read``/``write``/``stateful``/``DataBag`` calls,
        optionally qualified by a module alias (``emma.read``)."""
        if isinstance(func, ast.Name) and func.id in _INTRINSIC_FUNCTIONS:
            return func.id
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _INTRINSIC_FUNCTIONS
            and isinstance(func.value, ast.Name)
        ):
            # Only module-qualified forms count as intrinsics; attribute
            # access on data stays an opaque call.
            return func.attr
        return None

    def _lift_intrinsic(self, name: str, node: ast.Call) -> Expr:
        args = [self.lift_expr(a) for a in node.args]
        line = node.lineno
        if name == "read":
            if len(args) != 2:
                raise LiftError(
                    f"line {line}: read(path, format) takes 2 arguments"
                )
            return ReadCall(path=args[0], fmt=args[1])
        if name == "write":
            if len(args) != 3:
                raise LiftError(
                    f"line {line}: write(path, format, bag) takes "
                    "3 arguments"
                )
            return WriteCall(path=args[0], fmt=args[1], source=args[2])
        if name == "stateful":
            if len(args) not in (1, 2):
                raise LiftError(
                    f"line {line}: stateful(bag[, key]) takes 1 or 2 "
                    "arguments"
                )
            key = args[1] if len(args) == 2 else None
            return StatefulCreate(source=args[0], key=key)
        if name == "DataBag":
            if len(args) != 1:
                raise LiftError(
                    f"line {line}: DataBag(seq) takes 1 argument"
                )
            return BagLiteral(seq=args[0])
        raise LiftError(f"line {line}: unknown intrinsic {name!r}")

    def _try_lift_method(
        self, func: ast.Attribute, node: ast.Call
    ) -> Expr | None:
        """Lift ``receiver.method(args)`` to a bag/stateful operator,
        or return ``None`` to fall through to an opaque call."""
        method = func.attr
        receiver_node = func.value
        if method in _STATEFUL_METHODS and self._is_stateful_node(
            receiver_node
        ):
            receiver = self.lift_expr(receiver_node)
            return self._lift_stateful_method(method, receiver, node)
        if (
            method not in _UNAMBIGUOUS_BAG_METHODS
            and method not in _COMMON_BAG_METHODS
        ):
            return None
        receiver = self.lift_expr(receiver_node)
        if method in _COMMON_BAG_METHODS and not self._is_bagish(receiver):
            return None
        if (
            method in _UNAMBIGUOUS_BAG_METHODS
            and not self._is_bagish(receiver)
            and not self._could_be_bag(receiver)
        ):
            return None
        return self._lift_bag_method(method, receiver, node)

    def _lift_stateful_method(
        self, method: str, receiver: Expr, node: ast.Call
    ) -> Expr:
        args = [self.lift_expr(a) for a in node.args]
        line = node.lineno
        if method == "bag":
            if args:
                raise LiftError(f"line {line}: bag() takes no arguments")
            return StatefulBagOf(state=receiver)
        if method == "update":
            if len(args) != 1:
                raise LiftError(
                    f"line {line}: update(u) takes 1 argument"
                )
            return StatefulUpdate(state=receiver, update_fn=args[0])
        if len(args) != 2:
            raise LiftError(
                f"line {line}: update_with_messages(messages, u) takes "
                "2 arguments"
            )
        return StatefulUpdateWithMessages(
            state=receiver, messages=args[0], update_fn=args[1]
        )

    def _lift_bag_method(
        self, method: str, receiver: Expr, node: ast.Call
    ) -> Expr:
        args = [self.lift_expr(a) for a in node.args]
        line = node.lineno

        def require_lambda(i: int) -> Lambda:
            if i >= len(args):
                raise LiftError(
                    f"line {line}: {method}() expects a function argument"
                )
            arg = args[i]
            if isinstance(arg, Lambda):
                return arg
            # Eta-expand named function references: map(f) == map(x -> f(x)).
            return Lambda(("_eta",), Call(func=arg, args=(Ref("_eta"),)))

        if method == "map":
            return MapCall(source=receiver, fn=require_lambda(0))
        if method == "flat_map":
            return FlatMapCall(source=receiver, fn=require_lambda(0))
        if method in ("with_filter", "filter"):
            return FilterCall(source=receiver, fn=require_lambda(0))
        if method == "group_by":
            return GroupByCall(source=receiver, key=require_lambda(0))
        if method == "plus":
            _require_args(method, args, 1, line)
            return PlusCall(left=receiver, right=args[0])
        if method == "minus":
            _require_args(method, args, 1, line)
            return MinusCall(left=receiver, right=args[0])
        if method == "distinct":
            _require_args(method, args, 0, line)
            return DistinctCall(source=receiver)
        if method == "fetch":
            _require_args(method, args, 0, line)
            return FetchCall(source=receiver)
        if method == "size":
            method = "count"
        if method in FOLD_ALIASES:
            arity = FOLD_ALIASES[method][0]
            _require_args(method, args, arity, line)
            return FoldCall(
                source=receiver,
                spec=AlgebraSpec(method, tuple(args)),
            )
        raise LiftError(
            f"line {line}: unhandled bag method {method!r}"
        )  # pragma: no cover - dispatch table covers all names

    # -- bag-ness analysis --------------------------------------------------

    def _is_bag(self, expr: Expr) -> bool:
        if expr.is_bag_typed():
            return True
        if isinstance(expr, Ref):
            return expr.name in self.bag_names
        if isinstance(expr, (StatefulUpdate, StatefulUpdateWithMessages)):
            return True  # updates return the changed delta as a bag
        if isinstance(expr, IfElse):
            return self._is_bag(expr.then) and self._is_bag(expr.orelse)
        return False

    def _is_bagish(self, expr: Expr) -> bool:
        """Bag-typed, or plausibly bag-typed (group values)."""
        if self._is_bag(expr):
            return True
        if isinstance(expr, Attr) and expr.name == "values":
            return True
        return False

    def _could_be_bag(self, expr: Expr) -> bool:
        """Unknown-typed receivers get the benefit of the doubt for
        methods that exist only on DataBag."""
        return not isinstance(expr, Const)

    def _is_stateful_node(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Name)
            and node.id in self.stateful_names
        )


def _require_args(
    method: str, args: list, arity: int, line: int
) -> None:
    if len(args) != arity:
        raise LiftError(
            f"line {line}: {method}() takes {arity} argument(s), "
            f"got {len(args)}"
        )

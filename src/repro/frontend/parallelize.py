"""The ``@parallelize`` decorator and the ``Algorithm`` object.

This is the user-facing entry point of the deep embedding (the Python
counterpart of the paper's ``parallelize`` Scala macro and ``Algorithm``
object, Listing 4):

    from repro.api import DataBag, parallelize, read, write

    @parallelize
    def kmeans(points: DataBag, k: int):
        ...
        return ctrds

    result = kmeans.run(SparkLikeEngine(), points=..., k=3)

The decorated function is lifted at decoration time; compilation per
optimization configuration is cached; ``run`` selects the direct or
compiled path based on the engine.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.engines.base import Engine
from repro.engines.local import LocalEngine
from repro.errors import EmmaError
from repro.frontend.lift import LiftedFunction, lift_function
from repro.frontend.runtime import run_compiled, run_direct

# repro.optimizer.pipeline imports repro.frontend.driver_ir, so the
# pipeline import happens lazily (inside methods) to break the package-
# level cycle frontend.__init__ -> parallelize -> pipeline ->
# frontend.driver_ir -> frontend.__init__.
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.optimizer.pipeline import (
        CompiledProgram,
        EmmaConfig,
        OptimizationReport,
    )


class Algorithm:
    """A lifted, compilable, multi-backend data-analysis program."""

    def __init__(self, lifted: LiftedFunction) -> None:
        self.lifted = lifted
        self._compiled: dict = {}

    @property
    def name(self) -> str:
        return self.lifted.program.name

    @property
    def params(self) -> tuple[str, ...]:
        return self.lifted.program.params

    def compiled(
        self, config: "EmmaConfig | None" = None
    ) -> "CompiledProgram":
        """Compile (and cache) the program for a configuration."""
        from repro.optimizer.pipeline import EmmaConfig, compile_program

        config = config or EmmaConfig()
        if config not in self._compiled:
            self._compiled[config] = compile_program(
                self.lifted.program, config
            )
        return self._compiled[config]

    def report(self, config: "EmmaConfig | None" = None) -> "OptimizationReport":
        """Which optimizations fired for this program (Table 1 row)."""
        return self.compiled(config).report

    def explain(
        self,
        config: "EmmaConfig | None" = None,
        comprehensions: bool = False,
        trace: bool = False,
    ) -> str:
        """The compiled dataflow plans, human-readable.

        With ``comprehensions=True`` each site also shows its rewritten
        comprehension view in Grust notation.  With ``trace=True`` the
        plans are followed by the compile-provenance report: every
        optimizer/lowering pass that fired (or was skipped, and why),
        with the IR before and after.
        """
        return self.compiled(config).explain(
            comprehensions=comprehensions, trace=trace
        )

    def run(
        self,
        engine: Engine | None = None,
        config: "EmmaConfig | None" = None,
        **params: Any,
    ) -> Any:
        """Execute on a backend engine (LocalEngine by default).

        Parameters are passed by keyword and must match the function's
        parameter list exactly.  On the LocalEngine the *unoptimized*
        program runs directly (the development/oracle mode), so
        ``config`` has no effect there.
        """
        engine = engine or LocalEngine()
        expected = set(self.params)
        provided = set(params)
        if expected != provided:
            missing = sorted(expected - provided)
            surplus = sorted(provided - expected)
            raise EmmaError(
                f"algorithm {self.name!r} parameter mismatch: "
                f"missing={missing} unexpected={surplus}"
            )
        if getattr(engine, "direct", False):
            return run_direct(
                self.lifted.program, engine, self.lifted.captured, params
            )
        if config is not None and hasattr(engine, "apply_runtime_config"):
            engine.apply_runtime_config(config)
        metrics = getattr(engine, "metrics", None)
        from repro.engines.plancache import default_plan_cache

        plan_cache = getattr(engine, "plan_cache", None) or default_plan_cache()
        if plan_cache is not None:
            compiled = plan_cache.compiled(self, config, metrics=metrics)
        else:
            compiled = self.compiled(config)
        if metrics is not None:
            # Surface the compile-time reordering decisions alongside
            # the runtime counters; compilation is mode-independent, so
            # these stay identical across execution backends.
            metrics.udfs_analyzed += compiled.report.udfs_analyzed
            metrics.reorders_applied += compiled.report.reorders_applied
            metrics.reorders_rejected += (
                compiled.report.reorders_rejected
            )
        tracer = getattr(engine, "tracer", None)
        if tracer is None:
            return run_compiled(
                compiled, engine, self.lifted.captured, params
            )
        run_span = tracer.begin(
            f"run {self.name}",
            "run",
            ts=engine.metrics.simulated_seconds,
            algorithm=self.name,
            engine=engine.name,
        )
        try:
            result = run_compiled(
                compiled, engine, self.lifted.captured, params
            )
        finally:
            tracer.end(
                run_span, end_ts=engine.metrics.simulated_seconds
            )
        if config is not None and config.tracing:
            from repro.engines.tracing import TracedRun

            return TracedRun(
                result=result,
                trace=run_span,
                metrics=engine.metrics,
                compile_trace=compiled.trace,
                tracer=tracer,
            )
        return result

    def __repr__(self) -> str:
        return f"Algorithm({self.name}, params={self.params})"


def parallelize(
    fn: Callable | None = None,
    *,
    bags: tuple[str, ...] | None = None,
) -> Algorithm | Callable[[Callable], Algorithm]:
    """Lift a function into an :class:`Algorithm`.

    Usable bare or with arguments::

        @parallelize
        def algo(points: DataBag): ...

        @parallelize(bags=("points",))
        def algo(points): ...

    ``bags`` names the DataBag-typed parameters when annotations are
    not used.
    """

    def wrap(f: Callable) -> Algorithm:
        return Algorithm(lift_function(f, bag_params=bags))

    if fn is not None:
        return wrap(fn)
    return wrap

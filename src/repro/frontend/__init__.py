"""The deep-embedding frontend (paper Sections 3.2 and 4, Figure 1).

``@parallelize`` is the Python counterpart of Emma's Scala macro: it
takes the *source* of the decorated function, parses it with the host
``ast`` module, and lifts the full program — assignments, ``while``
loops, ``if`` statements, and every expression — into driver IR whose
DataBag expressions are first-class comprehension terms.  The holistic
view over the whole program is what enables the logical and physical
optimizations of Section 4; nothing in the user's code mentions
parallelism.

Python generator expressions over bags play the role of Scala
for-comprehensions::

    clusters = DataBag(
        (nearest(ctrds, p), p) for p in points
    )  # conceptually; see examples/ for runnable forms

The decorator returns an :class:`~repro.frontend.parallelize.Algorithm`
whose ``run(engine)`` executes on any backend — direct host-language
evaluation on :class:`~repro.engines.local.LocalEngine`, compiled
combinator dataflows on the simulated Spark-like/Flink-like engines.
"""

from repro.frontend.driver_ir import (
    DriverProgram,
    SAssign,
    SExpr,
    SFor,
    SIf,
    SReturn,
    SWhile,
    Stmt,
)
from repro.frontend.lift import LiftedFunction, lift_function
from repro.frontend.parallelize import Algorithm, parallelize

__all__ = [
    "DriverProgram",
    "SAssign",
    "SExpr",
    "SFor",
    "SIf",
    "SReturn",
    "SWhile",
    "Stmt",
    "LiftedFunction",
    "lift_function",
    "Algorithm",
    "parallelize",
]

"""The driver interpreter — executes lifted programs on a backend.

Two execution paths, selected by the engine:

* **Direct** (``LocalEngine``) — interprets the *original, unoptimized*
  driver IR with plain host-language evaluation.  This is the paper's
  "develop, test, debug locally as a pure Scala program" mode and the
  semantic oracle for differential tests.
* **Compiled** — interprets the optimized program from
  :func:`repro.optimizer.pipeline.compile_program`, in which every
  dataflow site is a :class:`~repro.optimizer.pipeline.PlanExpr`.  Bag
  assignments become lazy thunks, folds submit jobs, ``SCache``
  statements materialize bags (with partition pulling applied), and
  stateful bags run as engine-side keyed state.

The driver environment is a flat dict of the function's captured names,
parameters, and locals, plus the reserved ``__engine__``/``__denv__``/
``__dfs__`` entries that let IR nodes reach the backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.comprehension.exprs import Env, Expr, StatefulCreate
from repro.core.databag import DataBag
from repro.engines.base import BagHandle, DeferredBag, Engine
from repro.engines.stateful import DistributedStatefulBag
from repro.errors import EmmaError
from repro.frontend.driver_ir import (
    DriverProgram,
    SAssign,
    SCache,
    SExpr,
    SFor,
    SIf,
    SReturn,
    SWhile,
    Stmt,
)
from repro.lowering.combinators import ScalarFn

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.optimizer.pipeline import CompiledProgram


class _Return(Exception):
    """Internal control flow for SReturn."""

    def __init__(self, value: Any) -> None:
        self.value = value


_MAX_LOOP_ITERATIONS = 1_000_000


def run_direct(
    program: DriverProgram,
    engine: Engine,
    captured: Mapping[str, Any],
    params: Mapping[str, Any],
) -> Any:
    """Interpret the unoptimized program with host-language semantics."""
    env: dict[str, Any] = {
        **captured,
        **params,
        "__dfs__": engine.dfs,
    }
    try:
        _run_block(program.body, env)
    except _Return as ret:
        return ret.value
    return None


def run_compiled(
    compiled: "CompiledProgram",
    engine: Engine,
    captured: Mapping[str, Any],
    params: Mapping[str, Any],
) -> Any:
    """Interpret the compiled program against a parallel engine."""
    begin_run = getattr(engine, "begin_run", None)
    if begin_run is not None:
        begin_run()
    env: dict[str, Any] = {**captured, **params}
    env["__engine__"] = engine
    env["__denv__"] = env
    env["__dfs__"] = engine.dfs
    interpreter = _CompiledInterpreter(
        engine=engine, partition_keys=compiled.partition_keys
    )
    try:
        interpreter.run_block(compiled.program.body, env)
    except _Return as ret:
        value = ret.value
        if isinstance(value, (DeferredBag, BagHandle)):
            return DataBag(engine.collect(value))
        return value
    return None


# ---------------------------------------------------------------------------
# Direct interpretation
# ---------------------------------------------------------------------------


def _eval(expr: Expr, env: dict[str, Any]) -> Any:
    return expr.evaluate(Env.of(env))


def _run_block(stmts: tuple[Stmt, ...], env: dict[str, Any]) -> None:
    for stmt in stmts:
        _run_stmt(stmt, env)


def _run_stmt(stmt: Stmt, env: dict[str, Any]) -> None:
    if isinstance(stmt, SAssign):
        env[stmt.name] = _eval(stmt.value, env)
        return
    if isinstance(stmt, SExpr):
        _eval(stmt.value, env)
        return
    if isinstance(stmt, SWhile):
        iterations = 0
        while _eval(stmt.cond, env):
            _run_block(stmt.body, env)
            iterations += 1
            if iterations > _MAX_LOOP_ITERATIONS:
                raise EmmaError("driver while-loop exceeded iteration cap")
        return
    if isinstance(stmt, SIf):
        if _eval(stmt.cond, env):
            _run_block(stmt.then, env)
        else:
            _run_block(stmt.orelse, env)
        return
    if isinstance(stmt, SFor):
        for item in _eval(stmt.iterable, env):
            env[stmt.var] = item
            _run_block(stmt.body, env)
        return
    if isinstance(stmt, SReturn):
        raise _Return(
            _eval(stmt.value, env) if stmt.value is not None else None
        )
    if isinstance(stmt, SCache):
        # Caching is a physical no-op in direct mode.
        return
    raise EmmaError(f"cannot interpret {type(stmt).__name__}")


# ---------------------------------------------------------------------------
# Compiled interpretation
# ---------------------------------------------------------------------------


class _CompiledInterpreter:
    def __init__(
        self,
        engine: Engine,
        partition_keys: dict[str, ScalarFn],
    ) -> None:
        self.engine = engine
        self.partition_keys = partition_keys

    def run_block(
        self, stmts: tuple[Stmt, ...], env: dict[str, Any]
    ) -> None:
        for stmt in stmts:
            self.run_stmt(stmt, env)

    def run_stmt(self, stmt: Stmt, env: dict[str, Any]) -> None:
        if isinstance(stmt, SAssign):
            if isinstance(stmt.value, StatefulCreate):
                env[stmt.name] = self._create_stateful(stmt.value, env)
            else:
                env[stmt.name] = _eval(stmt.value, env)
            return
        if isinstance(stmt, SExpr):
            _eval(stmt.value, env)
            return
        if isinstance(stmt, SCache):
            if stmt.name not in env:
                raise EmmaError(
                    f"cache statement for unbound name {stmt.name!r}"
                )
            env[stmt.name] = self.engine.cache(
                env[stmt.name],
                partition_key=self.partition_keys.get(stmt.name),
            )
            return
        if isinstance(stmt, SWhile):
            iterations = 0
            while _eval(stmt.cond, env):
                self.run_block(stmt.body, env)
                iterations += 1
                if iterations > _MAX_LOOP_ITERATIONS:
                    raise EmmaError(
                        "driver while-loop exceeded iteration cap"
                    )
            return
        if isinstance(stmt, SIf):
            if _eval(stmt.cond, env):
                self.run_block(stmt.then, env)
            else:
                self.run_block(stmt.orelse, env)
            return
        if isinstance(stmt, SFor):
            for item in _eval(stmt.iterable, env):
                env[stmt.var] = item
                self.run_block(stmt.body, env)
            return
        if isinstance(stmt, SReturn):
            raise _Return(
                _eval(stmt.value, env)
                if stmt.value is not None
                else None
            )
        raise EmmaError(f"cannot interpret {type(stmt).__name__}")

    def _create_stateful(
        self, node: StatefulCreate, env: dict[str, Any]
    ) -> DistributedStatefulBag:
        source = _eval(node.source, env)
        if isinstance(source, (DeferredBag, BagHandle)):
            records = self.engine.collect(source)
        elif isinstance(source, DataBag):
            records = source.fetch()
        elif isinstance(source, list):
            records = source
        else:
            raise EmmaError(
                "stateful() expects a bag, got "
                f"{type(source).__name__}"
            )
        key = (
            node.key.evaluate(Env.of(env))
            if node.key is not None
            else None
        )
        return DistributedStatefulBag(self.engine, records, key=key)

"""Semi-naive Connected Components (paper Appendix A.1.2, Listing 7).

Every vertex starts in its own component (labelled by its id); in each
round, vertices that changed in the previous round (the *delta*) send
their component label to their neighbors; each vertex adopts the
maximum label it hears about, and the loop runs while the delta is
non-empty — the semi-naive evaluation pattern that ``StatefulBag``
updates support natively (the delta returned by ``update_with_messages``
*is* the next round's frontier).

Applicable optimizations: **fold-group fusion** (the per-receiver
``max`` becomes an ``agg_by``) and **caching** of the loop-invariant
adjacency in the message expansion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import parallelize, read, stateful
from repro.core.io import JsonLinesFormat
from repro.workloads.graphs import Vertex


@dataclass(frozen=True)
class ComponentState:
    """Per-vertex state: id, adjacency, current component label."""

    id: int
    neighbors: tuple
    component: int


@dataclass(frozen=True)
class LabelMessage:
    """A component label sent to vertex ``id``."""

    id: int
    component: int


@dataclass(frozen=True)
class ComponentUpdate:
    """The maximum label heard by vertex ``id`` this round."""

    id: int
    component: int


_GRAPH_FORMAT = JsonLinesFormat(Vertex)


@parallelize
def connected_components(graph_path):
    """Listing 7: iterate while the changed delta is non-empty."""
    vertices = read(graph_path, _GRAPH_FORMAT)
    initial = (
        ComponentState(v.id, v.neighbors, v.id) for v in vertices
    )
    state = stateful(initial)
    delta = state.bag()
    while delta.non_empty():
        messages = (
            LabelMessage(n, s.component)
            for s in delta
            for n in s.neighbors
        )
        updates = (
            ComponentUpdate(g.key, g.values.map(lambda m: m.component).max())
            for g in messages.group_by(lambda m: m.id)
        )
        delta = state.update_with_messages(
            updates,
            lambda s, u: (
                ComponentState(s.id, s.neighbors, u.component)
                if u.component > s.component
                else None
            ),
        )
    return state.bag()

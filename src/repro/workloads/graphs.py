"""Synthetic follower-graph generator (PageRank / Connected Components).

The paper uses the Twitter follower graph of Cha et al. [12] (~2B
edges).  That dataset is not available here, so this module generates a
scale-free graph by **preferential attachment**: new vertices attach to
existing ones with probability proportional to their current in-degree,
producing the heavy-tailed degree distribution that makes follower
graphs interesting for PageRank (a few very popular vertices).

Vertices are emitted in adjacency-list form — ``Vertex(id, neighbors)``
— the shape the PageRank and Connected Components programs consume.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.engines.dfs import SimulatedDFS


@dataclass(frozen=True)
class Vertex:
    """A vertex with its out-neighbor adjacency list.

    ``payload`` carries per-vertex metadata (profile data in a follower
    graph); it inflates the record size without changing the topology,
    which experiments use to control the read-vs-compute balance.
    """

    id: int
    neighbors: tuple
    payload: str = ""


def generate_follower_graph(
    num_vertices: int,
    edges_per_vertex: int = 3,
    seed: int = 23,
    payload_chars: int = 0,
) -> list[Vertex]:
    """A scale-free directed graph via preferential attachment.

    Every vertex gets ``edges_per_vertex`` out-edges; targets are chosen
    preferentially by in-degree (plus one smoothing), yielding a
    power-law in-degree distribution.  Self-loops are avoided; at least
    one out-edge per vertex is guaranteed so PageRank mass never sinks.
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = random.Random(seed)
    # Repeated-target list implements proportional sampling cheaply.
    targets_pool: list[int] = [0, 1]
    adjacency: dict[int, set[int]] = {i: set() for i in range(num_vertices)}
    adjacency[0].add(1)
    adjacency[1].add(0)
    for v in range(2, num_vertices):
        for _ in range(edges_per_vertex):
            target = targets_pool[rng.randrange(len(targets_pool))]
            if target == v:
                target = (v + 1) % num_vertices
            adjacency[v].add(target)
            targets_pool.append(target)
        targets_pool.append(v)
    # Guarantee an out-edge for the seed vertices and any stragglers.
    for v in range(num_vertices):
        if not adjacency[v]:
            adjacency[v].add((v + 1) % num_vertices)
    payload = "x" * payload_chars
    return [
        Vertex(
            id=v,
            neighbors=tuple(sorted(adjacency[v])),
            payload=payload,
        )
        for v in range(num_vertices)
    ]


def generate_component_graph(
    num_vertices: int,
    num_components: int = 4,
    extra_edges: int = 2,
    seed: int = 29,
) -> list[Vertex]:
    """An undirected graph with a known number of connected components.

    Vertices are split round-robin into ``num_components`` groups; each
    group is chained (guaranteeing connectivity) and then densified with
    ``extra_edges`` random intra-group edges per vertex.  Adjacency
    lists are symmetric, as Connected Components expects.
    """
    if num_components < 1 or num_vertices < num_components:
        raise ValueError("invalid component configuration")
    rng = random.Random(seed)
    groups: list[list[int]] = [[] for _ in range(num_components)]
    for v in range(num_vertices):
        groups[v % num_components].append(v)
    adjacency: dict[int, set[int]] = {v: set() for v in range(num_vertices)}
    for members in groups:
        for a, b in zip(members, members[1:]):
            adjacency[a].add(b)
            adjacency[b].add(a)
        for v in members:
            for _ in range(extra_edges):
                w = rng.choice(members)
                if w != v:
                    adjacency[v].add(w)
                    adjacency[w].add(v)
    return [
        Vertex(id=v, neighbors=tuple(sorted(adjacency[v])))
        for v in range(num_vertices)
    ]


def stage_follower_graph(
    dfs: SimulatedDFS,
    num_vertices: int = 2000,
    edges_per_vertex: int = 3,
    seed: int = 23,
) -> str:
    """Stage a follower graph into a DFS; returns the path."""
    path = f"data/graph-{num_vertices}"
    dfs.put(
        path,
        generate_follower_graph(num_vertices, edges_per_vertex, seed),
    )
    return path

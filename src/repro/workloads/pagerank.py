"""PageRank with stateful bags (paper Appendix A.1.1, Listing 6).

Each iteration (1) joins the current ranks (read from a ``StatefulBag``)
with the vertex adjacency lists and emits one ``RankMessage`` per
neighbor carrying ``rank / out_degree``; (2) groups the messages by
receiving vertex, sums the incoming ranks, applies the damping formula;
(3) point-wise updates the rank state with the results.

Applicable optimizations (Table 1): **fold-group fusion** (the per-
vertex rank sum becomes an ``agg_by``) and **caching** (the vertex
adjacency bag is loop-invariant).  The rank state itself stays
hash-partitioned by vertex id across iterations, which is why caching
pays off more here than in k-means (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import parallelize, read, stateful
from repro.core.io import JsonLinesFormat
from repro.workloads.graphs import Vertex

#: the damping factor of the rank formula
DAMPING = 0.85


@dataclass(frozen=True)
class VertexRank:
    """The rank state of one vertex (keyed by ``id``)."""

    id: int
    rank: float


@dataclass(frozen=True)
class RankMessage:
    """A rank contribution sent to vertex ``id``."""

    id: int
    rank: float


_GRAPH_FORMAT = JsonLinesFormat(Vertex)


@parallelize
def pagerank(graph_path, num_pages, max_iterations):
    """Listing 6: fixed-iteration PageRank over a follower graph."""
    vertices = read(graph_path, _GRAPH_FORMAT)
    initial = (VertexRank(v.id, 1.0 / num_pages) for v in vertices)
    ranks = stateful(initial)
    iteration = 0
    while iteration < max_iterations:
        messages = (
            RankMessage(n, p.rank / len(v.neighbors))
            for p in ranks.bag()
            for v in vertices
            if p.id == v.id
            for n in v.neighbors
        )
        updates = (
            VertexRank(
                g.key,
                (1 - DAMPING) / num_pages
                + DAMPING * g.values.map(lambda m: m.rank).sum(),
            )
            for g in messages.group_by(lambda m: m.id)
        )
        ranks.update_with_messages(
            updates, lambda s, u: VertexRank(s.id, u.rank)
        )
        iteration = iteration + 1
    return ranks.bag()

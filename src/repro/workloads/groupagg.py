"""The Figure 5 micro-benchmark: a grouped ``min`` aggregation.

    for (g <- dataset.groupBy(_.key))
        yield (g.key, g.values.map(_.value).min())

Run over the synthetic keyed tuples of
:func:`repro.workloads.datagen.generate_keyed_tuples` at varying
degrees of parallelism and key distributions, with fold-group fusion on
or off — the four series of Figure 5.  With fusion the shuffle carries
one partial ``min`` per key per mapper; without it, every tuple crosses
the network and the reducer holding a hot key (Pareto) materializes a
huge group.
"""

from __future__ import annotations

from repro.api import parallelize, read
from repro.core.io import JsonLinesFormat
from repro.workloads.datagen import KeyedTuple

_TUPLES_FORMAT = JsonLinesFormat(KeyedTuple)


@parallelize
def group_min(tuples_path):
    """The aggregation query of Section B.1."""
    dataset = read(tuples_path, _TUPLES_FORMAT)
    result = (
        (g.key, g.values.map(lambda t: t.value).min())
        for g in dataset.group_by(lambda t: t.key)
    )
    return result

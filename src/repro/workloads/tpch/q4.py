"""TPC-H Query 4 in Emma style (paper Appendix A.2.2, Listing 9).

Count, per order priority, the orders in a date window that have at
least one late line item (``commit_date < receipt_date``).  The
``EXISTS`` is written declaratively as ``lineitems.exists(...)``; the
**exists-unnesting** rule flattens it into a semi-join (the dataflow
compiler then picks broadcast vs repartition), and the per-priority
count is **fold-group fused** into an ``agg_by`` — both logical
optimizations of Table 1 apply.
"""

from __future__ import annotations

from repro.api import parallelize, read
from repro.core.io import JsonLinesFormat
from repro.workloads.tpch.schema import LineItem, Order

_LINEITEM_FORMAT = JsonLinesFormat(LineItem)
_ORDERS_FORMAT = JsonLinesFormat(Order)


@parallelize
def tpch_q4(orders_path, lineitem_path, date_min, date_max):
    """Listing 9: the order priority checking query."""
    lineitems = read(lineitem_path, _LINEITEM_FORMAT)
    orders = read(orders_path, _ORDERS_FORMAT)
    matching = (
        o
        for o in orders
        if o.order_date >= date_min
        if o.order_date < date_max
        if lineitems.exists(
            lambda li: li.order_key == o.order_key
            and li.commit_date < li.receipt_date
        )
    )
    result = (
        (g.key, g.values.count())
        for g in matching.group_by(lambda o: o.order_priority)
    )
    return result


@parallelize
def tpch_q4_udf(orders_path, lineitem_path, date_min, date_max):
    """Q4 written imperatively, with the selections as chained UDFs.

    Semantically identical to :func:`tpch_q4`, but every predicate is
    a black-box lambda applied *after* the join: the comprehension
    calculus cannot push any of them (each lambda's body mentions the
    whole join pair), so with ``udf_reordering="off"`` the full
    orders × lineitems join shuffles unfiltered.  The UDF-aware
    reordering pass proves via read-set inference that each filter
    reads one pair side only and pushes all three below the join —
    the workload behind the PR 8 shuffle-volume gate.
    """
    lineitems = read(lineitem_path, _LINEITEM_FORMAT)
    orders = read(orders_path, _ORDERS_FORMAT)
    pairs = (
        (o, li)
        for o in orders
        for li in lineitems
        if o.order_key == li.order_key
    )
    late = pairs.with_filter(
        lambda p: p[1].commit_date < p[1].receipt_date
    )
    in_window = late.with_filter(
        lambda p: p[0].order_date >= date_min
    ).with_filter(lambda p: p[0].order_date < date_max)
    candidates = in_window.map(lambda p: p[0]).distinct()
    result = (
        (g.key, g.values.count())
        for g in candidates.group_by(lambda o: o.order_priority)
    )
    return result

"""TPC-H Query 4 in Emma style (paper Appendix A.2.2, Listing 9).

Count, per order priority, the orders in a date window that have at
least one late line item (``commit_date < receipt_date``).  The
``EXISTS`` is written declaratively as ``lineitems.exists(...)``; the
**exists-unnesting** rule flattens it into a semi-join (the dataflow
compiler then picks broadcast vs repartition), and the per-priority
count is **fold-group fused** into an ``agg_by`` — both logical
optimizations of Table 1 apply.
"""

from __future__ import annotations

from repro.api import parallelize, read
from repro.core.io import JsonLinesFormat
from repro.workloads.tpch.schema import LineItem, Order

_LINEITEM_FORMAT = JsonLinesFormat(LineItem)
_ORDERS_FORMAT = JsonLinesFormat(Order)


@parallelize
def tpch_q4(orders_path, lineitem_path, date_min, date_max):
    """Listing 9: the order priority checking query."""
    lineitems = read(lineitem_path, _LINEITEM_FORMAT)
    orders = read(orders_path, _ORDERS_FORMAT)
    matching = (
        o
        for o in orders
        if o.order_date >= date_min
        if o.order_date < date_max
        if lineitems.exists(
            lambda li: li.order_key == o.order_key
            and li.commit_date < li.receipt_date
        )
    )
    result = (
        (g.key, g.values.count())
        for g in matching.group_by(lambda o: o.order_priority)
    )
    return result

"""A from-scratch TPC-H data generator (``orders`` + ``lineitem``).

Follows the official generator's shape at reduced scale: at scale
factor ``sf`` there are ``1500 * sf`` orders and an average of four
line items per order; dates fall in 1992-1998; prices, discounts, taxes
and flags follow the spec's ranges.  Only the columns Q1 and Q4 consume
are generated (see :mod:`repro.workloads.tpch.schema`).

Everything is deterministic given the seed.
"""

from __future__ import annotations

import datetime
import random

from repro.engines.dfs import SimulatedDFS
from repro.workloads.tpch.schema import (
    LINE_STATUSES,
    ORDER_PRIORITIES,
    RETURN_FLAGS,
    LineItem,
    Order,
)

_EPOCH = datetime.date(1992, 1, 1)
_DATE_RANGE_DAYS = (datetime.date(1998, 8, 2) - _EPOCH).days

#: orders per unit scale factor (the spec uses 1 500 000; we keep the
#: spec's ratios at a laptop-sized base)
ORDERS_PER_SF = 1500


def _date(days: int) -> str:
    return (_EPOCH + datetime.timedelta(days=days)).isoformat()


def generate_tpch(
    sf: float, seed: int = 31
) -> tuple[list[Order], list[LineItem]]:
    """Generate ``orders`` and ``lineitem`` at scale factor ``sf``."""
    rng = random.Random(seed)
    num_orders = max(int(ORDERS_PER_SF * sf), 1)
    orders: list[Order] = []
    lineitems: list[LineItem] = []
    for order_key in range(1, num_orders + 1):
        order_days = rng.randrange(_DATE_RANGE_DAYS - 151)
        orders.append(
            Order(
                order_key=order_key,
                order_date=_date(order_days),
                order_priority=rng.choice(ORDER_PRIORITIES),
            )
        )
        for _line in range(rng.randint(1, 7)):
            ship_days = order_days + rng.randint(1, 121)
            commit_days = order_days + rng.randint(30, 90)
            receipt_days = ship_days + rng.randint(1, 30)
            quantity = float(rng.randint(1, 50))
            extended_price = round(quantity * rng.uniform(900, 100000) / 50, 2)
            lineitems.append(
                LineItem(
                    order_key=order_key,
                    quantity=quantity,
                    extended_price=extended_price,
                    discount=round(rng.uniform(0.0, 0.10), 2),
                    tax=round(rng.uniform(0.0, 0.08), 2),
                    return_flag=rng.choice(RETURN_FLAGS),
                    line_status=rng.choice(LINE_STATUSES),
                    ship_date=_date(min(ship_days, _DATE_RANGE_DAYS)),
                    commit_date=_date(min(commit_days, _DATE_RANGE_DAYS)),
                    receipt_date=_date(min(receipt_days, _DATE_RANGE_DAYS)),
                )
            )
    return orders, lineitems


def stage_tpch(
    dfs: SimulatedDFS, sf: float, seed: int = 31
) -> tuple[str, str]:
    """Stage a TPC-H instance into a DFS; returns (orders, lineitem)."""
    orders, lineitems = generate_tpch(sf, seed)
    orders_path = f"data/tpch-{sf}/orders"
    lineitem_path = f"data/tpch-{sf}/lineitem"
    dfs.put(orders_path, orders)
    dfs.put(lineitem_path, lineitems)
    return orders_path, lineitem_path

"""TPC-H Query 1 in Emma style (paper Appendix A.2.1, Listing 8).

Filter ``lineitem`` by ship date, group by (return_flag, line_status),
and compute six aggregates plus three derived averages per group.  The
aggregate expressions are written as plain folds over the group values;
**fold-group fusion** turns the lot into a single ``agg_by`` whose
product algebra computes all aggregates in one pass with mapper-side
pre-aggregation — the rewrite other dataflow APIs make the programmer
perform by hand (see the Listing 8 commentary in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import parallelize, read
from repro.core.io import JsonLinesFormat
from repro.workloads.tpch.schema import LineItem

_LINEITEM_FORMAT = JsonLinesFormat(LineItem)


@dataclass(frozen=True)
class Q1Result:
    """One output row of Q1."""

    return_flag: str
    line_status: str
    sum_qty: float
    sum_base_price: float
    sum_disc_price: float
    sum_charge: float
    avg_qty: float
    avg_price: float
    avg_disc: float
    count_order: int


@parallelize
def tpch_q1(lineitem_path, ship_date_max):
    """Listing 8: the pricing summary report query."""
    filtered = (
        l
        for l in read(lineitem_path, _LINEITEM_FORMAT)
        if l.ship_date <= ship_date_max
    )
    result = (
        Q1Result(
            g.key[0],
            g.key[1],
            g.values.map(lambda l: l.quantity).sum(),
            g.values.map(lambda l: l.extended_price).sum(),
            g.values.map(
                lambda l: l.extended_price * (1 - l.discount)
            ).sum(),
            g.values.map(
                lambda l: l.extended_price
                * (1 - l.discount)
                * (1 + l.tax)
            ).sum(),
            g.values.map(lambda l: l.quantity).sum()
            / g.values.count(),
            g.values.map(lambda l: l.extended_price).sum()
            / g.values.count(),
            g.values.map(lambda l: l.discount).sum()
            / g.values.count(),
            g.values.count(),
        )
        for g in filtered.group_by(
            lambda l: (l.return_flag, l.line_status)
        )
    )
    return result

"""TPC-H record schemas (the columns Q1 and Q4 touch).

Dates are ISO-8601 strings — lexicographic comparison coincides with
chronological comparison, which is exactly how the queries use them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LineItem:
    """One ``lineitem`` row (Q1/Q4-relevant columns)."""

    order_key: int
    quantity: float
    extended_price: float
    discount: float
    tax: float
    return_flag: str
    line_status: str
    ship_date: str
    commit_date: str
    receipt_date: str


@dataclass(frozen=True)
class Order:
    """One ``orders`` row (Q4-relevant columns)."""

    order_key: int
    order_date: str
    order_priority: str


RETURN_FLAGS = ("A", "N", "R")
LINE_STATUSES = ("F", "O")
ORDER_PRIORITIES = (
    "1-URGENT",
    "2-HIGH",
    "3-MEDIUM",
    "4-NOT SPECIFIED",
    "5-LOW",
)

"""TPC-H workloads (paper Appendix A.2): Q1 and Q4 plus a generator.

The paper runs Q1 and Q4 at scale factors 50 and 100 on the cluster;
here a from-scratch generator produces schema-correct ``lineitem`` and
``orders`` relations at laptop scale factors.  Q1 exercises fold-group
fusion over six aggregates; Q4 additionally exercises exists-unnesting
(the correlated ``EXISTS`` subquery becomes a semi-join).
"""

from repro.workloads.tpch.datagen import generate_tpch, stage_tpch
from repro.workloads.tpch.q1 import Q1Result, tpch_q1
from repro.workloads.tpch.q4 import tpch_q4, tpch_q4_udf
from repro.workloads.tpch.schema import LineItem, Order

__all__ = [
    "generate_tpch",
    "stage_tpch",
    "Q1Result",
    "tpch_q1",
    "tpch_q4",
    "tpch_q4_udf",
    "LineItem",
    "Order",
]

"""A small immutable vector type for the numeric workloads.

K-means carries point positions through folds (``sum`` of vectors, then
a scalar division), so the vector type must:

* be hashable and structurally comparable (records containing it live
  in bags);
* support ``vec + vec``, ``scalar * vec``, ``vec / scalar``;
* absorb ``0 + vec`` (the generic ``sum`` fold starts from ``0``).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator


class Vec:
    """An immutable, tuple-backed numeric vector."""

    __slots__ = ("components",)

    def __init__(self, components: Iterable[float]) -> None:
        object.__setattr__(
            self, "components", tuple(float(c) for c in components)
        )

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Vec is immutable")

    def __reduce__(self) -> tuple:
        """Pickle by reconstruction: the blocking ``__setattr__`` above
        defeats the default slot-state protocol, and vectors must cross
        process boundaries under ``execution_mode="processes"``."""
        return (Vec, (self.components,))

    @staticmethod
    def zeros(dim: int) -> "Vec":
        return Vec((0.0,) * dim)

    @staticmethod
    def of(*components: float) -> "Vec":
        return Vec(components)

    # -- arithmetic ----------------------------------------------------

    def __add__(self, other: "Vec") -> "Vec":
        if not isinstance(other, Vec):
            return NotImplemented
        return Vec(a + b for a, b in zip(self.components, other.components))

    def __radd__(self, other: object) -> "Vec":
        # ``sum``-style folds start from 0; absorb it.
        if other == 0:
            return self
        return NotImplemented  # type: ignore[return-value]

    def __sub__(self, other: "Vec") -> "Vec":
        if not isinstance(other, Vec):
            return NotImplemented
        return Vec(a - b for a, b in zip(self.components, other.components))

    def __mul__(self, scalar: float) -> "Vec":
        if not isinstance(scalar, (int, float)):
            return NotImplemented
        return Vec(a * scalar for a in self.components)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec":
        if not isinstance(scalar, (int, float)):
            return NotImplemented
        return Vec(a / scalar for a in self.components)

    # -- geometry -------------------------------------------------------

    def dot(self, other: "Vec") -> float:
        """The inner product with ``other``."""
        return sum(
            a * b for a, b in zip(self.components, other.components)
        )

    def norm(self) -> float:
        """The Euclidean norm."""
        return math.sqrt(self.dot(self))

    def distance_to(self, other: "Vec") -> float:
        """Euclidean distance to ``other``."""
        return (self - other).norm()

    def squared_distance_to(self, other: "Vec") -> float:
        """Squared Euclidean distance (no sqrt; for argmin use)."""
        diff = self - other
        return diff.dot(diff)

    # -- protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.components)

    def __iter__(self) -> Iterator[float]:
        return iter(self.components)

    def __getitem__(self, i: int) -> float:
        return self.components[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vec):
            return NotImplemented
        return self.components == other.components

    def __hash__(self) -> int:
        return hash(("Vec", self.components))

    def __repr__(self) -> str:
        inner = ", ".join(f"{c:g}" for c in self.components)
        return f"Vec({inner})"

"""The paper's evaluation workloads (Section 5 and Appendix A).

Each module pairs an ``@parallelize`` algorithm with its record schema
and a data generator that stages synthetic input into a simulated DFS:

* :mod:`repro.workloads.spam` — the data-parallel workflow of
  Listing 5 (spam-classifier selection; Figure 4);
* :mod:`repro.workloads.kmeans` — Lloyd's algorithm (Listing 4);
* :mod:`repro.workloads.pagerank` — PageRank with stateful bags
  (Appendix A.1.1);
* :mod:`repro.workloads.connected_components` — semi-naive connected
  components (Appendix A.1.2);
* :mod:`repro.workloads.tpch` — TPC-H Q1 and Q4 (Appendix A.2) plus a
  from-scratch ``lineitem``/``orders`` generator;
* :mod:`repro.workloads.datagen` — the synthetic email corpus,
  blacklist, clustered points, and the keyed tuples of Figure 5
  (uniform / Gaussian / Pareto key distributions);
* :mod:`repro.workloads.graphs` — a preferential-attachment follower
  graph standing in for the Twitter graph [12].
"""

from repro.workloads import (
    connected_components,
    datagen,
    graphs,
    groupagg,
    kmeans,
    pagerank,
    spam,
    tpch,
)
from repro.workloads.linalg import Vec

__all__ = [
    "Vec",
    "connected_components",
    "datagen",
    "graphs",
    "groupagg",
    "kmeans",
    "pagerank",
    "spam",
    "tpch",
]

"""Lloyd's k-means clustering — the paper's running example (Listing 4).

The program is written with *zero* parallelism annotations: a plain
``while`` loop over a convergence criterion, generator expressions for
the cluster assignment, and ``group_by`` + folds for the new centroids.
The compiler pipeline discovers:

* **fold-group fusion** — the per-cluster ``sum``/``count`` folds fuse
  into an ``agg_by`` (a ``reduceByKey``), without which the engines
  shuffle and materialize full per-cluster point groups (the paper's
  "did not finish within one hour" configuration);
* **caching** — the loop-invariant ``points`` are materialized once;
* broadcasting of the small ``ctrds`` bag into the nearest-centroid UDF
  (transparent data motion, Section 4.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import DataBag, parallelize, read
from repro.core.io import JsonLinesFormat
from repro.workloads.datagen import Point
from repro.workloads.linalg import Vec


@dataclass(frozen=True)
class Centroid:
    """A cluster centroid with its id and position."""

    cid: int
    pos: Vec


@dataclass(frozen=True)
class Solution:
    """A point assigned to its nearest centroid."""

    cid: int
    p: Point


def squared_distance(c: Centroid, p: Point) -> float:
    """Squared distance between a centroid and a point."""
    return c.pos.squared_distance_to(p.pos)


def initial_centroids(points: list[Point], k: int) -> list[Centroid]:
    """Deterministic initialization: every (n//k)-th point."""
    if k < 1 or len(points) < k:
        raise ValueError("need at least k points")
    stride = len(points) // k
    return [
        Centroid(cid=i, pos=points[i * stride].pos) for i in range(k)
    ]


_POINTS_FORMAT = JsonLinesFormat(Point)


@parallelize
def kmeans(points_path, initial, epsilon, max_iterations):
    """Listing 4: iterate until centroid movement drops below epsilon."""
    points = read(points_path, _POINTS_FORMAT)
    ctrds = DataBag(initial)
    change = epsilon + 1.0
    iterations = 0
    while change > epsilon and iterations < max_iterations:
        clusters = (
            Solution(ctrds.min_by(lambda c: squared_distance(c, p)).cid, p)
            for p in points
        ).group_by(lambda s: s.cid)
        new_ctrds = (
            Centroid(
                g.key,
                g.values.map(lambda s: s.p.pos).sum()
                / g.values.count(),
            )
            for g in clusters
        )
        distances = (
            x.pos.distance_to(y.pos)
            for x in ctrds
            for y in new_ctrds
            if x.cid == y.cid
        )
        change = distances.sum()
        ctrds = new_ctrds
        iterations = iterations + 1
    return ctrds


@parallelize
def kmeans_assign(points_path, centroids):
    """The final assignment pass (Listing 4, lines 37-42)."""
    points = read(points_path, _POINTS_FORMAT)
    ctrds = DataBag(centroids)
    solution = (
        Solution(ctrds.min_by(lambda c: squared_distance(c, p)).cid, p)
        for p in points
    )
    return solution

"""Synthetic dataset generators for the evaluation workloads.

All generators are deterministic given a seed.  Scales are laptop-sized
stand-ins for the paper's datasets with the *relative* proportions
preserved (the cost model is linear in bytes, so ratios — which is what
the experiments claim — survive scaling; see DESIGN.md).

* :func:`generate_emails` / :func:`generate_blacklist` — the Figure 4
  workflow inputs (paper: 1M emails / 100 GB vs 100k blacklisted IPs /
  2 GB; here the email corpus stays ~50x larger than the blacklist).
* :func:`generate_points` — clustered points for k-means (paper: 1.6B
  points around 3 centers).
* :func:`generate_keyed_tuples` — the Figure 5 aggregation input:
  (key, value, payload) tuples with uniform / Gaussian / Pareto key
  distributions; the Pareto variant assigns ~35% of all tuples to a
  single hot key, as in the paper.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass

from repro.engines.dfs import SimulatedDFS
from repro.workloads.linalg import Vec


# ---------------------------------------------------------------------------
# Emails + blacklist (Figure 4 / Listing 5)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RawEmail:
    """An unprocessed email as read from storage."""

    id: int
    ip: int
    subject: str
    body: str


@dataclass(frozen=True)
class Email:
    """A featurized email (the output of ``extract_features``)."""

    id: int
    ip: int
    features: tuple


@dataclass(frozen=True)
class BlacklistEntry:
    """A blacklisted mail server with descriptive payload."""

    ip: int
    owner: str
    reason: str


def extract_features(raw: RawEmail) -> Email:
    """The feature-extraction UDF of the workflow (Listing 5, line 1).

    Deliberately produces a deterministic feature vector from the text;
    re-running it per loop iteration is what caching amortizes.
    """
    subject_len = float(len(raw.subject))
    body_len = float(len(raw.body))
    caps = float(sum(1 for ch in raw.subject if ch.isupper()))
    digits = float(sum(1 for ch in raw.body if ch.isdigit()))
    exclaim = float(raw.subject.count("!") + raw.body.count("!"))
    return Email(
        id=raw.id,
        ip=raw.ip,
        features=(subject_len, body_len, caps, digits, exclaim),
    )


def generate_emails(
    n: int,
    num_ips: int = 0,
    body_chars: int = 64,
    seed: int = 7,
) -> list[RawEmail]:
    """Synthetic email corpus; IPs drawn uniformly from ``num_ips``."""
    rng = random.Random(seed)
    num_ips = num_ips or max(n // 4, 1)
    alphabet = string.ascii_letters + string.digits + "  !!"
    out = []
    for i in range(n):
        subject = "".join(
            rng.choice(alphabet) for _ in range(rng.randint(8, 24))
        )
        body = "".join(rng.choice(alphabet) for _ in range(body_chars))
        out.append(
            RawEmail(
                id=i,
                ip=rng.randrange(num_ips),
                subject=subject,
                body=body,
            )
        )
    return out


def generate_blacklist(
    n: int, num_ips: int, seed: int = 11
) -> list[BlacklistEntry]:
    """Blacklisted servers: ``n`` distinct IPs out of ``num_ips``."""
    rng = random.Random(seed)
    ips = rng.sample(range(num_ips), min(n, num_ips))
    reasons = ("open-relay", "botnet", "phishing", "spamtrap")
    return [
        BlacklistEntry(
            ip=ip,
            owner=f"as{rng.randrange(65536)}.example.net",
            reason=rng.choice(reasons),
        )
        for ip in ips
    ]


def stage_spam_inputs(
    dfs: SimulatedDFS,
    num_emails: int = 4000,
    num_blacklisted: int = 100,
    num_ips: int = 1000,
    seed: int = 7,
) -> tuple[str, str]:
    """Stage emails + blacklist into a DFS; returns their paths."""
    emails_path = "data/emails"
    blacklist_path = "data/blacklist"
    dfs.put(emails_path, generate_emails(num_emails, num_ips, seed=seed))
    dfs.put(
        blacklist_path,
        generate_blacklist(num_blacklisted, num_ips, seed=seed + 1),
    )
    return emails_path, blacklist_path


# ---------------------------------------------------------------------------
# Clustered points (k-means, Section 5.2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Point:
    """A point with an id and a position vector."""

    id: int
    pos: Vec


def generate_points(
    n: int,
    centers: int = 3,
    dim: int = 3,
    spread: float = 1.0,
    seed: int = 13,
) -> list[Point]:
    """Points drawn around ``centers`` well-separated cluster centers."""
    rng = random.Random(seed)
    center_positions = [
        Vec(rng.uniform(-50, 50) for _ in range(dim))
        for _ in range(centers)
    ]
    out = []
    for i in range(n):
        center = center_positions[i % centers]
        pos = Vec(
            c + rng.gauss(0.0, spread) for c in center
        )
        out.append(Point(id=i, pos=pos))
    return out


def stage_points(
    dfs: SimulatedDFS,
    n: int = 3000,
    centers: int = 3,
    dim: int = 3,
    seed: int = 13,
) -> str:
    """Stage k-means points into a DFS; returns the path."""
    path = "data/points"
    dfs.put(path, generate_points(n, centers, dim, seed=seed))
    return path


# ---------------------------------------------------------------------------
# Keyed tuples (Figure 5)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KeyedTuple:
    """One record of the Figure 5 aggregation input."""

    key: int
    value: int
    payload: str


DISTRIBUTIONS = ("uniform", "gaussian", "pareto")

#: fraction of all tuples assigned to the hot key under "pareto"
PARETO_HOT_FRACTION = 0.35


def generate_keyed_tuples(
    n: int,
    num_keys: int = 100,
    distribution: str = "uniform",
    seed: int = 17,
) -> list[KeyedTuple]:
    """Keyed tuples whose key frequencies follow the named distribution.

    * ``uniform`` — keys drawn uniformly from ``num_keys``;
    * ``gaussian`` — keys from a clipped normal centered mid-range
      (moderately hot middle keys);
    * ``pareto`` — ~35% of tuples land on key 0, the rest follow a
      heavy-tailed rank distribution (the paper's skew case).
    """
    if distribution not in DISTRIBUTIONS:
        raise ValueError(
            f"distribution must be one of {DISTRIBUTIONS}, "
            f"got {distribution!r}"
        )
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        if distribution == "uniform":
            key = rng.randrange(num_keys)
        elif distribution == "gaussian":
            key = int(rng.gauss(num_keys / 2, num_keys / 8))
            key = max(0, min(num_keys - 1, key))
        else:  # pareto
            if rng.random() < PARETO_HOT_FRACTION:
                key = 0
            else:
                # Heavy tail over the remaining ranks.
                rank = int(rng.paretovariate(1.2))
                key = 1 + (rank % (num_keys - 1))
        payload = "".join(
            rng.choice(string.ascii_letters)
            for _ in range(rng.randint(3, 10))
        )
        out.append(
            KeyedTuple(key=key, value=rng.randrange(1_000_000), payload=payload)
        )
    return out


def stage_keyed_tuples(
    dfs: SimulatedDFS,
    n: int,
    num_keys: int = 100,
    distribution: str = "uniform",
    seed: int = 17,
) -> str:
    """Stage Figure 5 input into a DFS; returns the path."""
    path = f"data/tuples-{distribution}-{n}"
    dfs.put(
        path,
        generate_keyed_tuples(n, num_keys, distribution, seed=seed),
    )
    return path

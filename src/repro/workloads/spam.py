"""The data-parallel workflow of Listing 5 (Figure 4's experiment).

Select, among a set of trained spam classifiers, the one whose non-spam
predictions include the fewest emails originating from blacklisted mail
servers.  The program mixes dataflows with driver-side control flow (a
``for`` loop over classifiers and an ``if`` tracking the minimum), and
is subject to **unnesting** (the ``blacklist.exists`` becomes a
semi-join instead of a broadcast filter), **caching** (``emails`` and
``blacklist`` are loop-invariant), and **partition pulling** (both can
be pre-partitioned on ``ip`` so the per-iteration semi-join never
shuffles) — but *not* fold-group fusion (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import parallelize, read
from repro.core.io import JsonLinesFormat
from repro.workloads.datagen import Email, RawEmail, extract_features


@dataclass(frozen=True)
class Classifier:
    """A trained linear spam classifier over the email feature vector.

    The feature vector is (subject_len, body_len, caps, digits,
    exclaim); classifiers score shouting and exclamation marks and
    differ in their decision threshold (the bias), which spreads their
    selectivities — the point of the selection workflow.
    """

    name: str
    weights: tuple
    bias: float

    def is_spam(self, email: Email) -> bool:
        """Whether the weighted feature score crosses the threshold."""
        score = sum(
            w * f for w, f in zip(self.weights, email.features)
        )
        return score + self.bias > 0


def default_classifiers(count: int = 5) -> list[Classifier]:
    """Classifiers from permissive to aggressive.

    With the synthetic corpus of :mod:`repro.workloads.datagen` (random
    alphanumeric text with ~3% exclamation marks), the weighted score
    lands around 0.5 body-length-normalized units with moderate spread;
    the thresholds below step through that distribution so each
    classifier flags a different fraction of the corpus as spam.
    """
    # The body-length weight centers the digit/exclaim counts (whose
    # expectations grow linearly with body length), which keeps the
    # score distribution stable across corpus scales.
    weights = (0.0, -0.0015625, 0.15, 0.004, 0.03)
    classifiers = []
    for i in range(count):
        fraction = (i + 1) / (count + 1)
        # Thresholds sweep the bulk of the score distribution.
        threshold = 0.2 + 1.6 * fraction
        classifiers.append(
            Classifier(
                name=f"clf-{i}",
                weights=weights,
                bias=-threshold,
            )
        )
    return classifiers


_RAW_FORMAT = JsonLinesFormat(RawEmail)
_BL_FORMAT = JsonLinesFormat(dict)


@parallelize
def select_classifier(emails_path, blacklist_path, classifiers):
    """Listing 5: pick the classifier minimizing non-spam-from-blacklist."""
    emails = read(emails_path, _RAW_FORMAT).map(extract_features)
    blacklist = read(blacklist_path, _BL_FORMAT)
    min_hits = -1
    min_classifier = None
    for c in classifiers:
        non_spam = (e for e in emails if not c.is_spam(e))
        from_blacklisted = (
            e
            for e in non_spam
            if blacklist.exists(lambda b: b.ip == e.ip)
        )
        hits = from_blacklisted.count()
        if min_hits < 0 or hits < min_hits:
            min_hits = hits
            min_classifier = c
    return (min_classifier, min_hits)

"""Monad-comprehension intermediate representation (paper Section 2.2.3).

The IR has two layers:

* :mod:`repro.comprehension.exprs` — a small expression language that
  Python expressions are lifted into: constants, references, attribute
  access, arithmetic, calls, lambdas, and the *bag operator* nodes
  (``MapCall``, ``FoldCall``, ``GroupByCall``, ...) that method chains on
  DataBags lift to.
* :mod:`repro.comprehension.ir` — the comprehension nodes themselves:
  ``Comprehension(head | qualifiers)^kind`` with generator and guard
  qualifiers, over either the ``Bag`` monad or a ``fold(e, s, u)``
  algebra.

:mod:`repro.comprehension.resugar` recovers comprehensions from operator
chains (the paper's ``MC⁻¹`` scheme) and
:mod:`repro.comprehension.normalize` applies the unnesting rules
(head-unnest, generator-unnest a.k.a. fusion, exists-unnest).

Every node is *evaluable* with host-language semantics via
:func:`repro.comprehension.exprs.evaluate` — that interpreter is the
semantic oracle the parallel lowering is tested against.
"""

from repro.comprehension.exprs import (
    AlgebraSpec,
    Attr,
    BagLiteral,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    DistinctCall,
    Expr,
    FetchCall,
    FilterCall,
    FlatMapCall,
    FoldCall,
    GroupByCall,
    IfElse,
    Index,
    Lambda,
    ListExpr,
    MapCall,
    MinusCall,
    PlusCall,
    ReadCall,
    Ref,
    TupleExpr,
    UnaryOp,
    evaluate,
    free_vars,
    substitute,
    transform,
    walk,
)
from repro.comprehension.ir import (
    BAG,
    Comprehension,
    Flatten,
    FoldKind,
    GenMode,
    Generator,
    Guard,
    MonadKind,
    Qualifier,
)
from repro.comprehension.normalize import normalize
from repro.comprehension.pretty import pretty
from repro.comprehension.resugar import resugar

__all__ = [
    "AlgebraSpec",
    "Attr",
    "BagLiteral",
    "BinOp",
    "BoolOp",
    "Call",
    "Compare",
    "Const",
    "DistinctCall",
    "Expr",
    "FetchCall",
    "FilterCall",
    "FlatMapCall",
    "FoldCall",
    "GroupByCall",
    "IfElse",
    "Index",
    "Lambda",
    "ListExpr",
    "MapCall",
    "MinusCall",
    "PlusCall",
    "ReadCall",
    "Ref",
    "TupleExpr",
    "UnaryOp",
    "evaluate",
    "free_vars",
    "substitute",
    "transform",
    "walk",
    "BAG",
    "Comprehension",
    "Flatten",
    "FoldKind",
    "GenMode",
    "Generator",
    "Guard",
    "MonadKind",
    "Qualifier",
    "normalize",
    "pretty",
    "resugar",
]

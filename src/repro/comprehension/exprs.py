"""The lifted expression language.

Python expressions inside a ``@parallelize`` bracket are lifted into the
node types defined here.  The language has three strata:

1. **Scalar expressions** — constants, references, attribute/index
   access, arithmetic, boolean logic, calls, conditionals, lambdas.
2. **Bag operator calls** — the DataBag API surface as first-class IR
   nodes (``MapCall``, ``FlatMapCall``, ``FilterCall``, ``FoldCall``,
   ``GroupByCall``, ``PlusCall``, ``MinusCall``, ``DistinctCall``,
   ``ReadCall``, ``WriteCall``, ``BagLiteral``, ``FetchCall``).
3. **Comprehensions** — defined in :mod:`repro.comprehension.ir`; they
   are also ``Expr`` subclasses so they can nest inside heads and
   predicates, which is what makes the unnesting rewrites expressible.

Every node supports:

* ``evaluate(env)`` — direct host-language semantics (the oracle);
* ``free_vars()`` — free variable set, respecting binders;
* ``substitute(mapping)`` — capture-avoiding substitution (binders
  shadow);
* generic traversal via :func:`walk` / :func:`transform`.

Nodes are immutable; transformations build new trees.
"""

from __future__ import annotations

import dataclasses
import keyword
import math
import operator
from dataclasses import dataclass, fields
from typing import Any, Callable, Iterator, Mapping

from repro.algebra.fold import FoldAlgebra, product_algebra
from repro.core.databag import DataBag
from repro.errors import ComprehensionError


class Env:
    """A chained evaluation environment (innermost scope first)."""

    __slots__ = ("_scopes",)

    def __init__(self, *scopes: Mapping[str, Any]) -> None:
        self._scopes: tuple[Mapping[str, Any], ...] = scopes or ({},)

    def lookup(self, name: str) -> Any:
        """Resolve ``name`` in the innermost scope that binds it."""
        for scope in self._scopes:
            if name in scope:
                return scope[name]
        raise ComprehensionError(f"unbound variable {name!r}")

    def __contains__(self, name: str) -> bool:
        return any(name in scope for scope in self._scopes)

    def child(self, bindings: Mapping[str, Any]) -> "Env":
        """A new environment with ``bindings`` as the innermost scope."""
        return Env(bindings, *self._scopes)

    @staticmethod
    def of(mapping: Mapping[str, Any] | "Env" | None) -> "Env":
        if mapping is None:
            return Env({})
        if isinstance(mapping, Env):
            return mapping
        return Env(mapping)


@dataclass(frozen=True)
class Expr:
    """Base class for all IR expression nodes."""

    # -- generic structure --------------------------------------------

    def children(self) -> Iterator["Expr"]:
        """Yield direct sub-expressions (generic, field-driven)."""
        for value in self._field_values():
            yield from _exprs_in(value)

    def _field_values(self) -> Iterator[Any]:
        for f in fields(self):
            yield getattr(self, f.name)

    def rebuild(self, fn: Callable[["Expr"], "Expr"]) -> "Expr":
        """Rebuild this node with ``fn`` applied to each direct child."""
        changes: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            new_value = _map_exprs(value, fn)
            if new_value is not value:
                changes[f.name] = new_value
        if not changes:
            return self
        return dataclasses.replace(self, **changes)

    # -- binding structure ---------------------------------------------

    def bound_vars(self) -> frozenset[str]:
        """Variables this node binds in (some of) its children."""
        return frozenset()

    def free_vars(self) -> frozenset[str]:
        """Free variables of this expression."""
        inner: frozenset[str] = frozenset()
        for child in self.children():
            inner |= child.free_vars()
        return inner - self.bound_vars()

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        """Capture-avoiding substitution of free references.

        Bound names shadow: entries of ``mapping`` whose key this node
        binds are not propagated into the children.
        """
        live = {
            k: v for k, v in mapping.items() if k not in self.bound_vars()
        }
        if not live:
            return self
        return self.rebuild(lambda c: c.substitute(live))

    # -- semantics -------------------------------------------------------

    def evaluate(self, env: Env) -> Any:
        """Evaluate with host-language semantics against ``env``."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement evaluate"
        )

    def is_bag_typed(self) -> bool:
        """Whether this expression denotes a DataBag value."""
        return False


def _exprs_in(value: Any) -> Iterator[Expr]:
    if isinstance(value, Expr):
        yield value
    elif isinstance(value, tuple):
        for item in value:
            yield from _exprs_in(item)
    elif isinstance(value, AlgebraSpec):
        for item in value.args:
            yield from _exprs_in(item)


def _map_exprs(value: Any, fn: Callable[[Expr], Expr]) -> Any:
    if isinstance(value, Expr):
        return fn(value)
    if isinstance(value, tuple):
        mapped = tuple(_map_exprs(item, fn) for item in value)
        return mapped if any(
            m is not o for m, o in zip(mapped, value)
        ) else value
    if isinstance(value, AlgebraSpec):
        new_args = tuple(_map_exprs(a, fn) for a in value.args)
        if all(n is o for n, o in zip(new_args, value.args)):
            return value
        return dataclasses.replace(value, args=new_args)
    return value


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and all nodes below it, pre-order."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def transform(expr: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Bottom-up transformation: apply ``fn`` to every rebuilt node."""
    rebuilt = expr.rebuild(lambda c: transform(c, fn))
    return fn(rebuilt)


def free_vars(expr: Expr) -> frozenset[str]:
    """Module-level alias for :meth:`Expr.free_vars`."""
    return expr.free_vars()


def substitute(expr: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Module-level alias for :meth:`Expr.substitute`."""
    return expr.substitute(mapping)


def evaluate(expr: Expr, env: Mapping[str, Any] | Env | None = None) -> Any:
    """Evaluate with host-language semantics against ``env``."""
    return expr.evaluate(Env.of(env))


# ---------------------------------------------------------------------------
# Scalar expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Const(Expr):
    """A literal or an opaque host value (including host callables)."""

    value: Any

    def evaluate(self, env: Env) -> Any:
        return self.value

    def __repr__(self) -> str:
        name = getattr(self.value, "__name__", None)
        return f"Const({name or self.value!r})"


@dataclass(frozen=True)
class Ref(Expr):
    """A variable reference, resolved in the environment."""

    name: str

    def free_vars(self) -> frozenset[str]:
        return frozenset((self.name,))

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return mapping.get(self.name, self)

    def evaluate(self, env: Env) -> Any:
        return env.lookup(self.name)


@dataclass(frozen=True)
class Attr(Expr):
    """Attribute access ``obj.name``."""

    obj: Expr
    name: str

    def evaluate(self, env: Env) -> Any:
        return getattr(self.obj.evaluate(env), self.name)


@dataclass(frozen=True)
class Index(Expr):
    """Subscript access ``obj[index]``."""

    obj: Expr
    index: Expr

    def evaluate(self, env: Env) -> Any:
        return self.obj.evaluate(env)[self.index.evaluate(env)]


@dataclass(frozen=True)
class TupleExpr(Expr):
    """Tuple construction ``(a, b, ...)``."""

    items: tuple[Expr, ...]

    def evaluate(self, env: Env) -> tuple:
        return tuple(item.evaluate(env) for item in self.items)


@dataclass(frozen=True)
class ListExpr(Expr):
    """List construction ``[a, b, ...]``."""

    items: tuple[Expr, ...]

    def evaluate(self, env: Env) -> list:
        return [item.evaluate(env) for item in self.items]


_BIN_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "//": operator.floordiv,
    "%": operator.mod,
    "**": operator.pow,
}

_CMP_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "in": lambda a, b: a in b,
    "not in": lambda a, b: a not in b,
}


@dataclass(frozen=True)
class BinOp(Expr):
    """Arithmetic binary operation."""

    op: str
    left: Expr
    right: Expr

    def evaluate(self, env: Env) -> Any:
        return _BIN_OPS[self.op](
            self.left.evaluate(env), self.right.evaluate(env)
        )


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operation: ``-x`` or ``not x``."""

    op: str
    operand: Expr

    def evaluate(self, env: Env) -> Any:
        value = self.operand.evaluate(env)
        if self.op == "-":
            return -value
        if self.op == "not":
            return not value
        raise ComprehensionError(f"unknown unary operator {self.op!r}")


@dataclass(frozen=True)
class Compare(Expr):
    """Comparison ``left <op> right``."""

    op: str
    left: Expr
    right: Expr

    def evaluate(self, env: Env) -> bool:
        return _CMP_OPS[self.op](
            self.left.evaluate(env), self.right.evaluate(env)
        )


@dataclass(frozen=True)
class BoolOp(Expr):
    """Short-circuiting ``and`` / ``or`` over two or more operands."""

    op: str  # "and" | "or"
    operands: tuple[Expr, ...]

    def evaluate(self, env: Env) -> Any:
        if self.op == "and":
            result: Any = True
            for part in self.operands:
                result = part.evaluate(env)
                if not result:
                    return result
            return result
        if self.op == "or":
            result = False
            for part in self.operands:
                result = part.evaluate(env)
                if result:
                    return result
            return result
        raise ComprehensionError(f"unknown boolean operator {self.op!r}")


@dataclass(frozen=True)
class IfElse(Expr):
    """Conditional expression ``then if cond else orelse``."""

    cond: Expr
    then: Expr
    orelse: Expr

    def evaluate(self, env: Env) -> Any:
        if self.cond.evaluate(env):
            return self.then.evaluate(env)
        return self.orelse.evaluate(env)


@dataclass(frozen=True)
class Call(Expr):
    """A call of a host function/constructor: ``func(*args, **kwargs)``."""

    func: Expr
    args: tuple[Expr, ...] = ()
    kwargs: tuple[tuple[str, Expr], ...] = ()

    def evaluate(self, env: Env) -> Any:
        fn = self.func.evaluate(env)
        args = [a.evaluate(env) for a in self.args]
        kwargs: dict[str, Any] = {}
        for k, v in self.kwargs:
            if k == "**":
                # A lifted ``**mapping`` expansion: splice the mapping
                # in place, preserving Python's call-site ordering.
                kwargs.update(v.evaluate(env))
            else:
                kwargs[k] = v.evaluate(env)
        return fn(*args, **kwargs)


def fresh_name(base: str, avoid: frozenset[str] | set[str]) -> str:
    """A variant of ``base`` not occurring in ``avoid``."""
    if base not in avoid:
        return base
    i = 1
    while f"{base}_{i}" in avoid:
        i += 1
    return f"{base}_{i}"


@dataclass(frozen=True)
class Lambda(Expr):
    """An anonymous function with lifted body."""

    params: tuple[str, ...]
    body: Expr

    def bound_vars(self) -> frozenset[str]:
        return frozenset(self.params)

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        live = {k: v for k, v in mapping.items() if k not in self.params}
        if not live:
            return self
        # Alpha-rename any parameter that a substituted value would
        # capture.
        incoming: frozenset[str] = frozenset()
        for value in live.values():
            incoming |= value.free_vars()
        params, body = self.params, self.body
        if incoming & frozenset(params):
            renames: dict[str, Expr] = {}
            new_params: list[str] = []
            taken = set(incoming) | set(params) | body.free_vars()
            for p in params:
                if p in incoming:
                    new_p = fresh_name(p, taken)
                    taken.add(new_p)
                    renames[p] = Ref(new_p)
                    new_params.append(new_p)
                else:
                    new_params.append(p)
            body = body.substitute(renames)
            params = tuple(new_params)
        return Lambda(params, body.substitute(live))

    def evaluate(self, env: Env) -> Callable:
        params, body = self.params, self.body

        def closure(*values: Any) -> Any:
            if len(values) != len(params):
                raise ComprehensionError(
                    f"lambda expects {len(params)} arguments, "
                    f"got {len(values)}"
                )
            return body.evaluate(env.child(dict(zip(params, values))))

        return closure


# ---------------------------------------------------------------------------
# Native compilation of scalar expressions
#
# The tree-walking ``evaluate`` above is the semantic oracle, but it is
# far too slow for the per-element hot path of the simulated engines: a
# UDF applied to a million records re-walks its AST a million times.
# ``compile_scalar`` renders the scalar subset of the language as Python
# source and compiles it with ``compile()`` into a plain function, so
# the hot path runs at host speed.  Anything outside the subset (bag
# operators, comprehensions) — or a free name that cannot be resolved
# eagerly — makes compilation return ``None`` and callers fall back to
# the interpreting closure; semantics are identical either way.
# ---------------------------------------------------------------------------


class NotCompilable(Exception):
    """An expression outside the natively compilable scalar subset."""


#: operators whose IR spelling is also their Python spelling
_PY_BIN = frozenset(_BIN_OPS)
_PY_CMP = frozenset(_CMP_OPS)
_CONST_PREFIX = "_cv"


def _is_plain_name(name: str) -> bool:
    return name.isidentifier() and not keyword.iskeyword(name)


class NativeCodegen:
    """Renders scalar ``Expr`` trees as Python source fragments.

    Host values (constants, resolved free names) are interned into
    ``globals_`` — the namespace the generated code is compiled
    against.  One codegen instance may serve several expressions (the
    chain kernel builder relies on this to share one namespace), so
    interned constants get collision-free ``_cv<N>`` names and free
    names are checked for conflicting bindings.
    """

    def __init__(self) -> None:
        self.globals_: dict[str, Any] = {}
        self._const_names: dict[int, str] = {}

    # -- host-value interning ---------------------------------------------

    def intern_const(self, value: Any) -> str:
        """Expose a host constant under a fresh ``_cv{N}`` global name."""
        name = self._const_names.get(id(value))
        if name is None:
            name = f"{_CONST_PREFIX}{len(self._const_names)}"
            self._const_names[id(value)] = name
            self.globals_[name] = value
        return name

    def bind_free(self, name: str, value: Any) -> None:
        """Bind a free name into the namespace; reject conflicts."""
        if not _is_plain_name(name) or name.startswith(_CONST_PREFIX):
            raise NotCompilable(name)
        if name in self.globals_ and self.globals_[name] is not value:
            raise NotCompilable(f"conflicting binding for {name!r}")
        self.globals_[name] = value

    # -- source emission --------------------------------------------------

    def emit(self, expr: Expr, bound: Mapping[str, str], resolve) -> str:
        """Python source for ``expr``.

        ``bound`` maps bound variable names to the local names they
        carry in the generated code; ``resolve(name)`` supplies the
        value of a free name (raising ``KeyError``/``ComprehensionError``
        when unbound aborts compilation).
        """
        if isinstance(expr, Const):
            value = expr.value
            # Literal-render the common immutable scalars (non-finite
            # floats have no literal spelling); intern the rest.
            if value is None or isinstance(value, (bool, int, str)):
                return repr(value)
            if isinstance(value, float) and math.isfinite(value):
                return repr(value)
            return self.intern_const(value)
        if isinstance(expr, Ref):
            target = bound.get(expr.name)
            if target is not None:
                return target
            try:
                value = resolve(expr.name)
            except (KeyError, ComprehensionError):
                raise NotCompilable(expr.name)
            self.bind_free(expr.name, value)
            return expr.name
        if isinstance(expr, Attr):
            if not _is_plain_name(expr.name):
                raise NotCompilable(expr.name)
            return f"({self.emit(expr.obj, bound, resolve)}).{expr.name}"
        if isinstance(expr, Index):
            obj = self.emit(expr.obj, bound, resolve)
            index = self.emit(expr.index, bound, resolve)
            return f"({obj})[{index}]"
        if isinstance(expr, TupleExpr):
            items = [self.emit(i, bound, resolve) for i in expr.items]
            inner = ", ".join(items) + ("," if len(items) == 1 else "")
            return f"({inner})"
        if isinstance(expr, ListExpr):
            items = [self.emit(i, bound, resolve) for i in expr.items]
            return f"[{', '.join(items)}]"
        if isinstance(expr, BinOp):
            if expr.op not in _PY_BIN:
                raise NotCompilable(expr.op)
            left = self.emit(expr.left, bound, resolve)
            right = self.emit(expr.right, bound, resolve)
            return f"({left} {expr.op} {right})"
        if isinstance(expr, UnaryOp):
            if expr.op not in ("-", "not"):
                raise NotCompilable(expr.op)
            operand = self.emit(expr.operand, bound, resolve)
            return f"({expr.op} {operand})"
        if isinstance(expr, Compare):
            if expr.op not in _PY_CMP:
                raise NotCompilable(expr.op)
            left = self.emit(expr.left, bound, resolve)
            right = self.emit(expr.right, bound, resolve)
            return f"({left} {expr.op} {right})"
        if isinstance(expr, BoolOp):
            if expr.op not in ("and", "or") or not expr.operands:
                raise NotCompilable(expr.op)
            parts = [
                self.emit(p, bound, resolve) for p in expr.operands
            ]
            return f"({f' {expr.op} '.join(parts)})"
        if isinstance(expr, IfElse):
            then = self.emit(expr.then, bound, resolve)
            cond = self.emit(expr.cond, bound, resolve)
            orelse = self.emit(expr.orelse, bound, resolve)
            return f"({then} if {cond} else {orelse})"
        if isinstance(expr, Call):
            func = self.emit(expr.func, bound, resolve)
            parts = [self.emit(a, bound, resolve) for a in expr.args]
            for k, v in expr.kwargs:
                if not _is_plain_name(k):
                    raise NotCompilable(k)
                parts.append(f"{k}={self.emit(v, bound, resolve)}")
            return f"({func})({', '.join(parts)})"
        if isinstance(expr, Lambda):
            for p in expr.params:
                if not _is_plain_name(p) or p.startswith(_CONST_PREFIX):
                    raise NotCompilable(p)
            inner = dict(bound)
            inner.update({p: p for p in expr.params})
            body = self.emit(expr.body, inner, resolve)
            return f"(lambda {', '.join(expr.params)}: {body})"
        raise NotCompilable(type(expr).__name__)


def compile_scalar(
    params: tuple[str, ...],
    body: Expr,
    env: "Env | Mapping[str, Any] | None",
) -> Callable | None:
    """Compile ``lambda params: body`` into a plain Python function.

    Free names are resolved *eagerly* from ``env`` and closed over via
    the compiled function's globals.  Returns ``None`` when the body
    falls outside the scalar subset or a free name is unbound — the
    caller keeps the interpreting closure in that case.
    """
    env = Env.of(env)
    codegen = NativeCodegen()
    try:
        for p in params:
            if not _is_plain_name(p) or p.startswith(_CONST_PREFIX):
                return None
        bound = {p: p for p in params}
        src = codegen.emit(body, bound, env.lookup)
    except NotCompilable:
        return None
    return compile_scalar_source(params, src, codegen.globals_)


def compile_scalar_source(
    params: tuple[str, ...], body_src: str, namespace: dict[str, Any]
) -> Callable:
    """``compile()`` an already-rendered body over ``namespace``."""
    source = f"lambda {', '.join(params)}: {body_src}"
    code = compile(source, "<scalarfn>", "eval")
    return eval(code, namespace)  # noqa: S307 - compiler-generated source


# ---------------------------------------------------------------------------
# Fold algebra specifications
# ---------------------------------------------------------------------------


def _as_zero_factory(value: Any) -> Callable[[], Any]:
    """Interpret a fold zero argument: 0-ary callables act as factories."""
    if callable(value):
        return value
    return lambda: value


def _build_fold(zero: Any, sng: Callable, uni: Callable) -> FoldAlgebra:
    return FoldAlgebra(
        zero=_as_zero_factory(zero), singleton=sng, union=uni, name="fold"
    )


#: alias name -> (argument count, algebra builder over evaluated args)
FOLD_ALIASES: dict[str, tuple[int, Callable[..., FoldAlgebra]]] = {
    "fold": (3, _build_fold),
    "sum": (
        0,
        lambda: FoldAlgebra(
            lambda: 0, lambda x: x, lambda a, b: a + b, name="sum"
        ),
    ),
    "product": (
        0,
        lambda: FoldAlgebra(
            lambda: 1, lambda x: x, lambda a, b: a * b, name="product"
        ),
    ),
    "count": (
        0,
        lambda: FoldAlgebra(
            lambda: 0, lambda _x: 1, lambda a, b: a + b, name="count"
        ),
    ),
    "is_empty": (
        0,
        lambda: FoldAlgebra(
            lambda: True,
            lambda _x: False,
            lambda a, b: a and b,
            name="is_empty",
        ),
    ),
    "non_empty": (
        0,
        lambda: FoldAlgebra(
            lambda: False,
            lambda _x: True,
            lambda a, b: a or b,
            name="non_empty",
        ),
    ),
    "min": (
        0,
        lambda: FoldAlgebra(
            lambda: None,
            lambda x: x,
            lambda a, b: b if a is None else a if b is None else min(a, b),
            name="min",
        ),
    ),
    "max": (
        0,
        lambda: FoldAlgebra(
            lambda: None,
            lambda x: x,
            lambda a, b: b if a is None else a if b is None else max(a, b),
            name="max",
        ),
    ),
    "exists": (
        1,
        lambda p: FoldAlgebra(
            lambda: False,
            lambda x: bool(p(x)),
            lambda a, b: a or b,
            name="exists",
        ),
    ),
    "forall": (
        1,
        lambda p: FoldAlgebra(
            lambda: True,
            lambda x: bool(p(x)),
            lambda a, b: a and b,
            name="forall",
        ),
    ),
    "min_by": (
        1,
        lambda key: FoldAlgebra(
            lambda: None,
            lambda x: x,
            lambda a, b: (
                b
                if a is None
                else a
                if b is None
                else (a if key(a) <= key(b) else b)
            ),
            name="min_by",
        ),
    ),
    "max_by": (
        1,
        lambda key: FoldAlgebra(
            lambda: None,
            lambda x: x,
            lambda a, b: (
                b
                if a is None
                else a
                if b is None
                else (a if key(a) >= key(b) else b)
            ),
            name="max_by",
        ),
    ),
}


@dataclass(frozen=True)
class AlgebraSpec:
    """A symbolic fold algebra: an alias name plus lifted arguments.

    ``alias`` selects an entry of :data:`FOLD_ALIASES`; ``args`` are the
    lifted argument expressions (e.g. the key function of a ``min_by``).
    The concrete :class:`FoldAlgebra` is produced at execution time via
    :meth:`make_algebra`, after the arguments are evaluated in scope —
    compile-time rewrites (banana split) never need the concrete
    functions, only the spec.

    ``head`` and ``guards``, when present, record a map/filter pipeline
    fused *into* the fold by normalization: the effective singleton
    becomes ``s(head(x)) if all guards else zero`` — legal because the
    well-definedness equations make the zero a unit.
    """

    alias: str
    args: tuple[Expr, ...] = ()
    head: Expr | None = None
    guards: tuple[Expr, ...] = ()
    var: str | None = None

    def __post_init__(self) -> None:
        if self.alias not in FOLD_ALIASES:
            raise ComprehensionError(f"unknown fold alias {self.alias!r}")
        arity = FOLD_ALIASES[self.alias][0]
        if len(self.args) != arity:
            raise ComprehensionError(
                f"fold alias {self.alias!r} expects {arity} arguments, "
                f"got {len(self.args)}"
            )

    @property
    def name(self) -> str:
        return self.alias

    def free_vars(self) -> frozenset[str]:
        """Free variables of the argument and fused-pipeline exprs."""
        out: frozenset[str] = frozenset()
        for arg in self.args:
            out |= arg.free_vars()
        bound = frozenset((self.var,)) if self.var else frozenset()
        if self.head is not None:
            out |= self.head.free_vars() - bound
        for g in self.guards:
            out |= g.free_vars() - bound
        return out

    def substitute(self, mapping: Mapping[str, Expr]) -> "AlgebraSpec":
        """Substitute free references (the fused var shadows)."""
        live_inner = {
            k: v for k, v in mapping.items() if k != self.var
        }
        return dataclasses.replace(
            self,
            args=tuple(a.substitute(mapping) for a in self.args),
            head=(
                self.head.substitute(live_inner)
                if self.head is not None
                else None
            ),
            guards=tuple(g.substitute(live_inner) for g in self.guards),
        )

    def make_algebra(self, env: Env) -> FoldAlgebra:
        """Evaluate the spec into a concrete :class:`FoldAlgebra`."""
        _arity, builder = FOLD_ALIASES[self.alias]
        base = builder(*(a.evaluate(env) for a in self.args))
        if self.head is None and not self.guards:
            return base
        var = self.var or "_x"
        head, guards = self.head, self.guards

        def singleton(x: Any) -> Any:
            inner = env.child({var: x})
            if any(not g.evaluate(inner) for g in guards):
                return base.zero()
            value = head.evaluate(inner) if head is not None else x
            return base.singleton(value)

        return FoldAlgebra(
            zero=base.zero,
            singleton=singleton,
            union=base.union,
            name=base.name,
        )

    def fused_with(
        self, var: str, head: Expr | None, guards: tuple[Expr, ...]
    ) -> "AlgebraSpec":
        """Record a comprehension body fused into this fold's singleton."""
        if self.head is not None or self.guards:
            raise ComprehensionError(
                "algebra spec already carries a fused pipeline"
            )
        return dataclasses.replace(
            self, var=var, head=head, guards=guards
        )


def make_product_spec_algebra(
    specs: tuple[AlgebraSpec, ...], env: Env
) -> FoldAlgebra:
    """Banana-split at runtime: product of the specs' concrete algebras."""
    return product_algebra([spec.make_algebra(env) for spec in specs])


# ---------------------------------------------------------------------------
# Bag operator calls
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BagExpr(Expr):
    """Marker base for expressions that denote a DataBag value."""

    def is_bag_typed(self) -> bool:
        return True


def _as_databag(value: Any, context: str) -> DataBag:
    if isinstance(value, DataBag):
        return value
    if isinstance(value, (list, tuple, set, range)):
        return DataBag(value)
    raise ComprehensionError(
        f"{context} expects a DataBag, got {type(value).__name__}"
    )


@dataclass(frozen=True)
class MapCall(BagExpr):
    """``source.map(fn)``."""

    source: Expr
    fn: Lambda

    def evaluate(self, env: Env) -> DataBag:
        bag = _as_databag(self.source.evaluate(env), "map")
        return bag.map(self.fn.evaluate(env))


@dataclass(frozen=True)
class FlatMapCall(BagExpr):
    """``source.flat_map(fn)``."""

    source: Expr
    fn: Lambda

    def evaluate(self, env: Env) -> DataBag:
        bag = _as_databag(self.source.evaluate(env), "flat_map")
        return bag.flat_map(self.fn.evaluate(env))


@dataclass(frozen=True)
class FilterCall(BagExpr):
    """``source.with_filter(p)``."""

    source: Expr
    fn: Lambda

    def evaluate(self, env: Env) -> DataBag:
        bag = _as_databag(self.source.evaluate(env), "with_filter")
        return bag.with_filter(self.fn.evaluate(env))


@dataclass(frozen=True)
class GroupByCall(BagExpr):
    """``source.group_by(key)``."""

    source: Expr
    key: Lambda

    def evaluate(self, env: Env) -> DataBag:
        bag = _as_databag(self.source.evaluate(env), "group_by")
        return bag.group_by(self.key.evaluate(env))


@dataclass(frozen=True)
class AggByCall(BagExpr):
    """``source.agg_by(key, spec_1, ..., spec_n)`` — the fused operator.

    Produced by fold-group fusion (never written by users): replaces a
    ``group_by`` whose group values are consumed exclusively by folds.
    Emits one ``AggResult(key, (a_1, ..., a_n))`` record per distinct
    key; on a parallel engine the aggregates are pre-computed on the
    mapper side so only partial aggregates cross the network.
    """

    source: Expr
    key: Lambda = None  # type: ignore[assignment]
    specs: tuple[AlgebraSpec, ...] = ()

    def free_vars(self) -> frozenset[str]:
        out = self.source.free_vars() | self.key.free_vars()
        for spec in self.specs:
            out |= spec.free_vars()
        return out

    def substitute(self, mapping: Mapping[str, "Expr"]) -> "Expr":
        return AggByCall(
            source=self.source.substitute(mapping),
            key=self.key.substitute(mapping),  # type: ignore[arg-type]
            specs=tuple(s.substitute(mapping) for s in self.specs),
        )

    def evaluate(self, env: Env) -> DataBag:
        from repro.lowering.combinators import AggResult

        bag = _as_databag(self.source.evaluate(env), "agg_by")
        key_fn = self.key.evaluate(env)
        algebras = [spec.make_algebra(env) for spec in self.specs]
        acc: dict[Any, list[Any]] = {}
        for x in bag:
            k = key_fn(x)
            entry = acc.get(k)
            if entry is None:
                acc[k] = [
                    a.union(a.zero(), a.singleton(x)) for a in algebras
                ]
            else:
                for i, a in enumerate(algebras):
                    entry[i] = a.union(entry[i], a.singleton(x))
        return DataBag(
            AggResult(k, tuple(v)) for k, v in acc.items()
        )


@dataclass(frozen=True)
class FoldCall(Expr):
    """``source.fold(...)`` or any fold alias (``sum``, ``count``, ...).

    Scalar-typed: evaluates to the fold result, not a bag.
    """

    source: Expr
    spec: AlgebraSpec

    def free_vars(self) -> frozenset[str]:
        return self.source.free_vars() | self.spec.free_vars()

    def substitute(self, mapping: Mapping[str, Expr]) -> Expr:
        return FoldCall(
            source=self.source.substitute(mapping),
            spec=self.spec.substitute(mapping),
        )

    def evaluate(self, env: Env) -> Any:
        bag = _as_databag(self.source.evaluate(env), self.spec.alias)
        return bag.fold_algebra(self.spec.make_algebra(env))


@dataclass(frozen=True)
class PlusCall(BagExpr):
    """Bag union ``left.plus(right)``."""

    left: Expr
    right: Expr

    def evaluate(self, env: Env) -> DataBag:
        return _as_databag(self.left.evaluate(env), "plus").plus(
            _as_databag(self.right.evaluate(env), "plus")
        )


@dataclass(frozen=True)
class MinusCall(BagExpr):
    """Bag difference ``left.minus(right)``."""

    left: Expr
    right: Expr

    def evaluate(self, env: Env) -> DataBag:
        return _as_databag(self.left.evaluate(env), "minus").minus(
            _as_databag(self.right.evaluate(env), "minus")
        )


@dataclass(frozen=True)
class DistinctCall(BagExpr):
    """Duplicate elimination ``source.distinct()``."""

    source: Expr

    def evaluate(self, env: Env) -> DataBag:
        return _as_databag(self.source.evaluate(env), "distinct").distinct()


@dataclass(frozen=True)
class ReadCall(BagExpr):
    """``emma.read(path, fmt)`` — a dataflow source."""

    path: Expr
    fmt: Expr

    def evaluate(self, env: Env) -> DataBag:
        from repro.core.io import (
            CsvFormat,
            JsonLinesFormat,
            read_csv,
            read_jsonl,
        )

        path = self.path.evaluate(env)
        # Local-mode runs resolve reads against the engine's simulated
        # DFS when the path is staged there (the driver interpreter
        # installs it under ``__dfs__``); real files otherwise.
        if "__dfs__" in env:
            dfs = env.lookup("__dfs__")
            if dfs.exists(path):
                return DataBag(dfs.get(path).records)
        fmt = self.fmt.evaluate(env)
        if isinstance(fmt, CsvFormat):
            return read_csv(path, fmt)
        if isinstance(fmt, JsonLinesFormat):
            return read_jsonl(path, fmt)
        raise ComprehensionError(
            f"unsupported input format {type(fmt).__name__}"
        )


@dataclass(frozen=True)
class WriteCall(Expr):
    """``emma.write(path, fmt, bag)`` — a dataflow sink (evaluates to None)."""

    path: Expr
    fmt: Expr
    source: Expr

    def evaluate(self, env: Env) -> None:
        from repro.core.io import (
            CsvFormat,
            JsonLinesFormat,
            write_csv,
            write_jsonl,
        )

        path = self.path.evaluate(env)
        bag = _as_databag(self.source.evaluate(env), "write")
        # Local-mode runs write to the engine's simulated DFS when one
        # is installed (see ReadCall), keeping all backends comparable.
        if "__dfs__" in env:
            env.lookup("__dfs__").put(path, bag.fetch())
            return
        fmt = self.fmt.evaluate(env)
        if isinstance(fmt, CsvFormat):
            write_csv(path, fmt, bag)
        elif isinstance(fmt, JsonLinesFormat):
            write_jsonl(path, fmt, bag)
        else:
            raise ComprehensionError(
                f"unsupported output format {type(fmt).__name__}"
            )


@dataclass(frozen=True)
class BagLiteral(BagExpr):
    """``DataBag(seq)`` — lift a driver sequence into a bag.

    This is the "driver to dataflow" edge of Figure 3b: on a parallel
    engine it becomes a ``parallelize`` of local data.
    """

    seq: Expr

    def evaluate(self, env: Env) -> DataBag:
        value = self.seq.evaluate(env)
        if isinstance(value, DataBag):
            return value
        return DataBag(value)


@dataclass(frozen=True)
class FetchCall(Expr):
    """``bag.fetch()`` — materialize on the driver (collect)."""

    source: Expr

    def evaluate(self, env: Env) -> list:
        return _as_databag(self.source.evaluate(env), "fetch").fetch()


# ---------------------------------------------------------------------------
# Stateful bags (paper §3.1, "Stateful Bags")
#
# Stateful conversion and point-wise updates are runtime primitives, not
# comprehended dataflows — the paper makes the DataBag <-> StatefulBag
# conversion explicit precisely so the compiler does not have to reason
# about in-place mutation.  The nodes below give them direct local
# semantics via repro.core.stateful; the parallel driver interpreter
# handles them with engine-level keyed state.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StatefulCreate(Expr):
    """``stateful(bag)`` — convert a DataBag into keyed state."""

    source: Expr
    key: Expr | None = None

    def evaluate(self, env: Env) -> Any:
        from repro.core.stateful import StatefulBag

        bag = _as_databag(self.source.evaluate(env), "stateful")
        key = self.key.evaluate(env) if self.key is not None else None
        return StatefulBag(bag, key=key)


@dataclass(frozen=True)
class StatefulBagOf(BagExpr):
    """``state.bag()`` — a stateless snapshot of the current state."""

    state: Expr

    def evaluate(self, env: Env) -> DataBag:
        return self.state.evaluate(env).bag()


@dataclass(frozen=True)
class StatefulUpdate(Expr):
    """``state.update(u)`` — point-wise update; evaluates to the delta."""

    state: Expr
    update_fn: Expr

    def evaluate(self, env: Env) -> DataBag:
        return self.state.evaluate(env).update(
            self.update_fn.evaluate(env)
        )


@dataclass(frozen=True)
class StatefulUpdateWithMessages(Expr):
    """``state.update_with_messages(msgs, u)`` — keyed-message update."""

    state: Expr
    messages: Expr
    update_fn: Expr

    def evaluate(self, env: Env) -> DataBag:
        from repro.core.stateful import StatefulBag

        state = self.state.evaluate(env)
        messages = self.messages.evaluate(env)
        if isinstance(state, StatefulBag):
            messages = _as_databag(messages, "update_with_messages")
        # Distributed stateful bags accept deferred/handle messages and
        # shuffle them to the state partitions themselves.
        return state.update_with_messages(
            messages, self.update_fn.evaluate(env)
        )

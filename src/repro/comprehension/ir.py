"""Comprehension nodes — the declarative core of the IR (paper §2.2.3).

Following Grust's notation, a monad comprehension has the form::

    [[ e | qs ]]^T

where ``e`` is the *head*, ``qs`` a sequence of *qualifiers* (generators
``x <- xs`` and guards ``p``), and ``T`` the monad — here either the
``Bag`` monad (the result is a bag of head values) or an identity monad
with zero given by a fold algebra ``fold(e, s, u)`` (the generated head
values are folded into a scalar).

Comprehension nodes are ``Expr`` subclasses: they nest freely inside
heads and predicates, which is exactly what the normalization rules of
Section 4.1 exploit.

Generators carry a :class:`GenMode`.  ``EXISTS``-mode generators are
produced by the exists-unnesting rule: the generator variable may only
be consulted by subsequent guards, and the outer element survives iff
*some* binding satisfies them — bag-semantically a semi-join, which is
how the lowering realizes it.  (``NOT_EXISTS`` analogously yields an
anti-join for negated existentials.)
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterator, Mapping, Union

from repro.comprehension.exprs import (
    AlgebraSpec,
    BagExpr,
    DataBag,
    Env,
    Expr,
    Ref,
    fresh_name,
)
from repro.errors import ComprehensionError


class GenMode(Enum):
    """How a generator binds its variable (see module docstring)."""

    NORMAL = "normal"
    EXISTS = "exists"
    NOT_EXISTS = "not_exists"


@dataclass(frozen=True)
class Generator(Expr):
    """Qualifier ``var <- source``."""

    var: str
    source: Expr
    mode: GenMode = GenMode.NORMAL

    def evaluate(self, env: Env) -> Any:
        raise ComprehensionError(
            "generators are evaluated by their enclosing comprehension"
        )


@dataclass(frozen=True)
class Guard(Expr):
    """Qualifier ``p`` — a boolean filter over the bound variables."""

    predicate: Expr

    def evaluate(self, env: Env) -> bool:
        return bool(self.predicate.evaluate(env))


Qualifier = Union[Generator, Guard]


class _BagKind:
    """The ``Bag`` monad marker (singleton)."""

    def __repr__(self) -> str:
        return "Bag"


BAG = _BagKind()


@dataclass(frozen=True)
class FoldKind:
    """The identity-monad-with-zero marker: fold with the given algebra."""

    spec: AlgebraSpec

    def __repr__(self) -> str:
        return f"fold({self.spec.alias})"


MonadKind = Union[_BagKind, FoldKind]


@dataclass(frozen=True)
class Comprehension(Expr):
    """``[[ head | qualifiers ]]^kind``."""

    head: Expr
    qualifiers: tuple[Qualifier, ...]
    kind: MonadKind = BAG

    # -- structure -------------------------------------------------------

    def generators(self) -> tuple[Generator, ...]:
        """The generator qualifiers, in binding order."""
        return tuple(
            q for q in self.qualifiers if isinstance(q, Generator)
        )

    def guards(self) -> tuple[Guard, ...]:
        """The guard qualifiers, in source order."""
        return tuple(q for q in self.qualifiers if isinstance(q, Guard))

    def is_fold(self) -> bool:
        """Whether this comprehension evaluates through a fold."""
        return isinstance(self.kind, FoldKind)

    def is_bag_typed(self) -> bool:
        return not self.is_fold()

    # -- binding-aware generic operations ---------------------------------
    #
    # A comprehension's qualifier list binds *sequentially*: generator i
    # scopes over qualifiers i+1.. and over the head.  The generic
    # Expr methods cannot express that, so all three are overridden.

    def children(self) -> Iterator[Expr]:
        for q in self.qualifiers:
            if isinstance(q, Generator):
                yield q.source
            else:
                yield q.predicate
        yield self.head
        if isinstance(self.kind, FoldKind):
            for arg in self.kind.spec.args:
                yield arg

    def free_vars(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        bound: set[str] = set()
        for q in self.qualifiers:
            if isinstance(q, Generator):
                out |= q.source.free_vars() - bound
                bound.add(q.var)
            else:
                out |= q.predicate.free_vars() - bound
        out |= self.head.free_vars() - bound
        if isinstance(self.kind, FoldKind):
            out |= self.kind.spec.free_vars() - bound
        return out

    def substitute(self, mapping: Mapping[str, Expr]) -> "Comprehension":
        live = dict(mapping)
        if not live:
            return self
        incoming: frozenset[str] = frozenset()
        for value in live.values():
            incoming |= value.free_vars()

        new_quals: list[Qualifier] = []
        renames: dict[str, Expr] = {}
        taken = set(incoming) | {
            g.var for g in self.generators()
        } | self.free_vars()

        def subst_inner(e: Expr) -> Expr:
            combined = {**live, **renames}
            # Shadowed names were removed from `live` as binders were
            # crossed; `renames` handles alpha conversion.
            return e.substitute(combined) if combined else e

        for q in self.qualifiers:
            if isinstance(q, Generator):
                new_source = subst_inner(q.source)
                var = q.var
                live.pop(var, None)
                if var in incoming:
                    new_var = fresh_name(var, taken)
                    taken.add(new_var)
                    renames[var] = Ref(new_var)
                    var = new_var
                new_quals.append(
                    Generator(var=var, source=new_source, mode=q.mode)
                )
            else:
                new_quals.append(Guard(subst_inner(q.predicate)))

        new_head = subst_inner(self.head)
        new_kind: MonadKind = self.kind
        if isinstance(self.kind, FoldKind):
            combined = {**live, **renames}
            if combined:
                new_kind = FoldKind(self.kind.spec.substitute(combined))
        return Comprehension(
            head=new_head, qualifiers=tuple(new_quals), kind=new_kind
        )

    def rebuild_parts(
        self,
        head: Expr | None = None,
        qualifiers: tuple[Qualifier, ...] | None = None,
        kind: MonadKind | None = None,
    ) -> "Comprehension":
        """Convenience copy-with-changes."""
        return Comprehension(
            head=head if head is not None else self.head,
            qualifiers=(
                qualifiers if qualifiers is not None else self.qualifiers
            ),
            kind=kind if kind is not None else self.kind,
        )

    # -- semantics ---------------------------------------------------------

    def evaluate(self, env: Env) -> Any:
        """Direct nested-loop evaluation (the oracle semantics)."""
        items = list(self._generate(env, 0))
        if isinstance(self.kind, FoldKind):
            algebra = self.kind.spec.make_algebra(env)
            return algebra(items)
        return DataBag(items)

    def _generate(self, env: Env, index: int) -> Iterator[Any]:
        """Yield head values for qualifiers ``index..``, given ``env``."""
        if index == len(self.qualifiers):
            yield self.head.evaluate(env)
            return
        q = self.qualifiers[index]
        if isinstance(q, Guard):
            if q.predicate.evaluate(env):
                yield from self._generate(env, index + 1)
            return
        source = q.source.evaluate(env)
        if not isinstance(source, DataBag):
            if isinstance(source, (list, tuple, set, range)):
                source = DataBag(source)
            else:
                raise ComprehensionError(
                    f"generator {q.var!r} ranges over a non-bag "
                    f"({type(source).__name__})"
                )
        if q.mode is GenMode.NORMAL:
            for x in source:
                yield from self._generate(env.child({q.var: x}), index + 1)
            return
        # EXISTS / NOT_EXISTS: consume the guards that mention q.var,
        # decide existence, and continue without the binding.
        dependent, rest_start = self._dependent_guards(index)
        found = False
        for x in source:
            inner = env.child({q.var: x})
            if all(g.predicate.evaluate(inner) for g in dependent):
                found = True
                break
        keep = found if q.mode is GenMode.EXISTS else not found
        if keep:
            yield from self._generate(env, rest_start)

    def _dependent_guards(
        self, gen_index: int
    ) -> tuple[list[Guard], int]:
        """Guards immediately after an exists-generator that use its var.

        Returns the guard run and the index of the first qualifier after
        it.  The generator variable must not occur anywhere later — the
        exists-unnesting rule only produces this shape.
        """
        gen = self.qualifiers[gen_index]
        assert isinstance(gen, Generator)
        dependent: list[Guard] = []
        i = gen_index + 1
        while i < len(self.qualifiers):
            q = self.qualifiers[i]
            if isinstance(q, Guard) and gen.var in q.predicate.free_vars():
                dependent.append(q)
                i += 1
            else:
                break
        for q in self.qualifiers[i:]:
            names = (
                q.source.free_vars()
                if isinstance(q, Generator)
                else q.predicate.free_vars()
            )
            if gen.var in names:
                raise ComprehensionError(
                    f"exists-variable {gen.var!r} escapes its guard run"
                )
        if gen.var in self.head.free_vars():
            raise ComprehensionError(
                f"exists-variable {gen.var!r} occurs in the head"
            )
        return dependent, i


@dataclass(frozen=True)
class Flatten(BagExpr):
    """``flatten`` of a bag of bags — produced when resugaring flat_map.

    The head-unnesting normalization rule eliminates every ``Flatten``
    whose operand is a comprehension with a comprehension head; any
    remaining ``Flatten`` evaluates by unioning the inner bags.
    """

    source: Expr

    def evaluate(self, env: Env) -> DataBag:
        outer = self.source.evaluate(env)
        if not isinstance(outer, DataBag):
            raise ComprehensionError("flatten expects a bag of bags")
        out: list[Any] = []
        for inner in outer:
            if isinstance(inner, DataBag):
                out.extend(inner.fetch())
            elif isinstance(inner, (list, tuple, set)):
                out.extend(inner)
            else:
                raise ComprehensionError(
                    "flatten expects inner collections, got "
                    f"{type(inner).__name__}"
                )
        return DataBag(out)

"""Resugaring: the paper's ``MC⁻¹`` translation scheme (Section 4.1).

Scala's for-comprehensions desugar into ``map``/``flatMap``/
``withFilter`` chains at AST-construction time, and programmers also
hard-code such calls directly.  ``MC⁻¹`` recovers comprehensions from
the chains::

    t0.map(x => t)         =>  [[ t | x <- MC⁻¹(t0) ]]^Bag
    t0.withFilter(x => t)  =>  [[ x | x <- MC⁻¹(t0), t ]]^Bag
    t0.flatMap(x => t)     =>  flatten [[ t | x <- MC⁻¹(t0) ]]^Bag
    t0.fold(e, s, u)       =>  [[ x | x <- MC⁻¹(t0) ]]^fold(e,s,u)

The Python frontend lifts generator expressions straight into
comprehensions, so this module's job is the hard-coded chains (and the
chains the frontend produces for method-style code).  Resugaring applies
bottom-up across the whole expression, so chains nested inside heads,
predicates, and other operators are recovered too.
"""

from __future__ import annotations

import itertools

from repro.comprehension.exprs import (
    Expr,
    FilterCall,
    FlatMapCall,
    FoldCall,
    MapCall,
    Ref,
    transform,
)
from repro.comprehension.ir import (
    BAG,
    Comprehension,
    Flatten,
    FoldKind,
    Generator,
    Guard,
)

_fresh_counter = itertools.count()


def _gen_var(preferred: str | None) -> str:
    """Pick a generator variable name; synthesize one when needed."""
    if preferred:
        return preferred
    return f"_v{next(_fresh_counter)}"


def resugar(expr: Expr) -> Expr:
    """Recover comprehensions from monad-operator chains, bottom-up."""
    return transform(expr, _resugar_node)


def _resugar_node(node: Expr) -> Expr:
    if isinstance(node, MapCall):
        var = _gen_var(node.fn.params[0] if node.fn.params else None)
        head = node.fn.body.substitute({node.fn.params[0]: Ref(var)})
        return Comprehension(
            head=head,
            qualifiers=(Generator(var, node.source),),
            kind=BAG,
        )
    if isinstance(node, FilterCall):
        var = _gen_var(node.fn.params[0] if node.fn.params else None)
        predicate = node.fn.body.substitute({node.fn.params[0]: Ref(var)})
        return Comprehension(
            head=Ref(var),
            qualifiers=(Generator(var, node.source), Guard(predicate)),
            kind=BAG,
        )
    if isinstance(node, FlatMapCall):
        var = _gen_var(node.fn.params[0] if node.fn.params else None)
        head = node.fn.body.substitute({node.fn.params[0]: Ref(var)})
        return Flatten(
            Comprehension(
                head=head,
                qualifiers=(Generator(var, node.source),),
                kind=BAG,
            )
        )
    if isinstance(node, FoldCall):
        var = _gen_var(None)
        return Comprehension(
            head=Ref(var),
            qualifiers=(Generator(var, node.source),),
            kind=FoldKind(node.spec),
        )
    return node

"""Comprehension normalization — the unnesting rules of Section 4.1.

Three rewrite rules, applied to a fixpoint:

1. **Head unnesting** (flatten elimination)::

       flatten [[ [[ e | qs' ]] | qs ]]^T  =>  [[ e | qs, qs' ]]^T

2. **Generator unnesting** (fusion)::

       [[ t | qs, x <- [[ t' | qs' ]], qs'' ]]^T
           =>  [[ t[t'/x] | qs, qs', qs''[t'/x] ]]^T

   This performs map/fold fusion at compile time — chains that engines
   would otherwise pipeline through virtual function calls collapse into
   a single comprehension.

3. **Exists unnesting** (a generalization of Kim's type-N rewrite)::

       [[ e | qs, [[ p | qs'' ]]^exists, qs' ]]^T
           =>  [[ e | qs, qs'', p, qs' ]]^T

   The spliced generators are marked ``EXISTS`` mode, preserving bag
   multiplicities (the lowering realizes them as semi-joins and may pick
   a broadcast or repartition strategy).  Negated existentials produce
   ``NOT_EXISTS`` (anti-join) generators.  This rule is *toggleable*:
   with ``unnest_exists=False`` the existential stays a guard, which the
   lowering realizes as a filter with a broadcast of the inner bag —
   exactly the paper's unoptimized baseline in Figure 4.

All rules alpha-rename spliced generator variables as needed to avoid
capture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comprehension.exprs import (
    Expr,
    FoldCall,
    Lambda,
    Ref,
    UnaryOp,
    fresh_name,
    transform,
)
from repro.comprehension.ir import (
    BAG,
    Comprehension,
    Flatten,
    FoldKind,
    GenMode,
    Generator,
    Guard,
    Qualifier,
)

_MAX_PASSES = 64


@dataclass
class NormalizeStats:
    """Which rules fired during normalization (drives tests/reports)."""

    head_unnests: int = 0
    generator_unnests: int = 0
    exists_unnests: int = 0

    def total(self) -> int:
        """Total rule firings (fixpoint detection)."""
        return (
            self.head_unnests
            + self.generator_unnests
            + self.exists_unnests
        )


def normalize(
    expr: Expr,
    unnest_exists: bool = True,
    stats: NormalizeStats | None = None,
) -> Expr:
    """Apply the normalization rules to a fixpoint, bottom-up."""
    stats = stats if stats is not None else NormalizeStats()
    current = expr
    for _ in range(_MAX_PASSES):
        before = stats.total()
        current = transform(
            current, lambda node: _normalize_node(node, unnest_exists, stats)
        )
        if stats.total() == before:
            return current
    return current


def _normalize_node(
    node: Expr, unnest_exists: bool, stats: NormalizeStats
) -> Expr:
    if isinstance(node, Flatten):
        rewritten = _unnest_head(node, stats)
        if rewritten is not None:
            return rewritten
        return node
    if isinstance(node, Comprehension):
        rewritten = _unnest_generator(node, stats)
        if rewritten is not None:
            return rewritten
        if unnest_exists:
            rewritten = _unnest_exists(node, stats)
            if rewritten is not None:
                return rewritten
    return node


# ---------------------------------------------------------------------------
# Rule 1: head unnesting
# ---------------------------------------------------------------------------


def _unnest_head(node: Flatten, stats: NormalizeStats) -> Expr | None:
    outer = node.source
    if not isinstance(outer, Comprehension) or outer.is_fold():
        return None
    inner = outer.head
    if not isinstance(inner, Comprehension) or inner.is_fold():
        # ``flatten [[ b | qs ]]`` where b is any collection-valued
        # expression (flatten requires one): wrap b in a trivial
        # comprehension so the rule applies —
        # ``flatten [[ b | qs ]] == [[ y | qs, y <- b ]]``.
        var = fresh_name("_f", outer.free_vars() | _bound_vars(outer))
        inner = Comprehension(
            head=Ref(var),
            qualifiers=(Generator(var, inner),),
            kind=BAG,
        )
    inner = _avoid_collisions(
        inner, _bound_vars(outer) | outer.free_vars()
    )
    stats.head_unnests += 1
    return Comprehension(
        head=inner.head,
        qualifiers=outer.qualifiers + inner.qualifiers,
        kind=outer.kind,
    )


# ---------------------------------------------------------------------------
# Rule 2: generator unnesting (fusion)
# ---------------------------------------------------------------------------


def _unnest_generator(
    node: Comprehension, stats: NormalizeStats
) -> Expr | None:
    for i, q in enumerate(node.qualifiers):
        if not isinstance(q, Generator) or q.mode is not GenMode.NORMAL:
            continue
        source = q.source
        if not isinstance(source, Comprehension) or source.is_fold():
            continue
        taken = _bound_vars(node) | node.free_vars()
        source = _avoid_collisions(source, taken)
        replacement = {q.var: source.head}
        tail: list[Qualifier] = []
        for rest in node.qualifiers[i + 1 :]:
            if isinstance(rest, Generator):
                tail.append(
                    Generator(
                        rest.var,
                        rest.source.substitute(replacement),
                        rest.mode,
                    )
                )
            else:
                tail.append(Guard(rest.predicate.substitute(replacement)))
        new_head = node.head.substitute(replacement)
        new_kind = node.kind
        if isinstance(new_kind, FoldKind):
            new_kind = FoldKind(new_kind.spec.substitute(replacement))
        stats.generator_unnests += 1
        return Comprehension(
            head=new_head,
            qualifiers=(
                node.qualifiers[:i] + source.qualifiers + tuple(tail)
            ),
            kind=new_kind,
        )
    return None


# ---------------------------------------------------------------------------
# Rule 3: exists unnesting
# ---------------------------------------------------------------------------


def _unnest_exists(
    node: Comprehension, stats: NormalizeStats
) -> Expr | None:
    for i, q in enumerate(node.qualifiers):
        if not isinstance(q, Guard):
            continue
        match = _match_existential(q.predicate)
        if match is None:
            continue
        inner, negated = match
        outer_bound = frozenset(
            g.var
            for g in node.qualifiers[:i]
            if isinstance(g, Generator)
        )
        splice = _existential_qualifiers(
            inner,
            negated,
            _bound_vars(node) | node.free_vars(),
            outer_bound,
        )
        if splice is None:
            continue
        stats.exists_unnests += 1
        return Comprehension(
            head=node.head,
            qualifiers=(
                node.qualifiers[:i]
                + splice
                + node.qualifiers[i + 1 :]
            ),
            kind=node.kind,
        )
    return None


def _match_existential(
    predicate: Expr,
) -> tuple[Comprehension | FoldCall, bool] | None:
    """Recognize ``xs.exists(p)`` / ``not xs.exists(p)`` guard shapes."""
    negated = False
    if isinstance(predicate, UnaryOp) and predicate.op == "not":
        negated = True
        predicate = predicate.operand
    if (
        isinstance(predicate, Comprehension)
        and isinstance(predicate.kind, FoldKind)
        and predicate.kind.spec.alias == "exists"
    ):
        return predicate, negated
    if isinstance(predicate, FoldCall) and predicate.spec.alias == "exists":
        return predicate, negated
    return None


def _existential_qualifiers(
    inner: Comprehension | FoldCall,
    negated: bool,
    taken: frozenset[str] | set[str],
    outer_bound: frozenset[str],
) -> tuple[Qualifier, ...] | None:
    """Build the spliced ``EXISTS``-generator + guards for a matched
    existential.

    Returns ``None`` (rule does not fire; the guard stays a broadcast
    filter) when the inner shape is unsupported: more than one inner
    generator, or no predicate conjunct of equi-join form connecting the
    inner variable to the outer generators — the shape the lowering
    needs to realize the generator as a semi-join.
    """
    mode = GenMode.NOT_EXISTS if negated else GenMode.EXISTS
    if isinstance(inner, FoldCall):
        # xs.exists(lambda y: p(y)) with an arbitrary bag expression xs.
        (pred,) = inner.spec.args
        if not isinstance(pred, Lambda) or len(pred.params) != 1:
            return None
        var = fresh_name(pred.params[0], taken)
        guards = _conjuncts(
            pred.body.substitute({pred.params[0]: Ref(var)})
        )
        gen = Generator(var, inner.source, mode)
        if not _semi_joinable(guards, var, outer_bound):
            return None
        return (gen, *(Guard(g) for g in guards))
    # Comprehension form: [[ h | y <- ys, gs ]]^exists(p)
    generators = inner.generators()
    if len(generators) != 1:
        return None
    inner = _avoid_collisions(inner, taken)
    (gen,) = inner.generators()
    guards = [g.predicate for g in inner.guards()]
    kind = inner.kind
    assert isinstance(kind, FoldKind)
    (pred,) = kind.spec.args
    if not isinstance(pred, Lambda) or len(pred.params) != 1:
        return None
    # The exists predicate applies to the inner head.
    guards.extend(
        _conjuncts(pred.body.substitute({pred.params[0]: inner.head}))
    )
    if not _semi_joinable(guards, gen.var, outer_bound):
        return None
    return (
        Generator(gen.var, gen.source, mode),
        *(Guard(g) for g in guards),
    )


def _conjuncts(predicate: Expr) -> list[Expr]:
    """Split top-level ``and`` chains into conjunct predicates."""
    from repro.comprehension.exprs import BoolOp

    if isinstance(predicate, BoolOp) and predicate.op == "and":
        out: list[Expr] = []
        for part in predicate.operands:
            out.extend(_conjuncts(part))
        return out
    return [predicate]


def _semi_joinable(
    guards: list[Expr], inner_var: str, outer_bound: frozenset[str]
) -> bool:
    """Check the guard set lowers to a clean semi-join.

    Required: every guard references only the inner variable (pushable
    onto the inner source) except exactly one equality conjunct of form
    ``k_outer(outer vars) == k_inner(inner var)``.
    """
    from repro.comprehension.exprs import Compare

    equi_count = 0
    for g in guards:
        names = g.free_vars()
        inner_only = inner_var in names and not (names & outer_bound)
        if inner_only:
            continue
        if (
            isinstance(g, Compare)
            and g.op == "=="
            and inner_var in names
        ):
            lv, rv = g.left.free_vars(), g.right.free_vars()
            one_sided = (
                inner_var in lv
                and not (lv & outer_bound)
                and rv & outer_bound
                and inner_var not in rv
            ) or (
                inner_var in rv
                and not (rv & outer_bound)
                and lv & outer_bound
                and inner_var not in lv
            )
            if one_sided:
                equi_count += 1
                continue
        return False
    return equi_count == 1


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _bound_vars(comp: Comprehension) -> frozenset[str]:
    return frozenset(g.var for g in comp.generators())


def _avoid_collisions(
    comp: Comprehension, taken: frozenset[str] | set[str]
) -> Comprehension:
    """Alpha-rename the comprehension's generators away from ``taken``."""
    renames: dict[str, Expr] = {}
    avoid = set(taken) | set(_bound_vars(comp)) | set(comp.free_vars())
    new_quals: list[Qualifier] = []
    for q in comp.qualifiers:
        if isinstance(q, Generator):
            source = q.source.substitute(renames) if renames else q.source
            var = q.var
            if var in taken:
                var = fresh_name(var, avoid)
                avoid.add(var)
                renames[q.var] = Ref(var)
            new_quals.append(Generator(var, source, q.mode))
        else:
            pred = (
                q.predicate.substitute(renames) if renames else q.predicate
            )
            new_quals.append(Guard(pred))
    head = comp.head.substitute(renames) if renames else comp.head
    kind = comp.kind
    if renames and isinstance(kind, FoldKind):
        kind = FoldKind(kind.spec.substitute(renames))
    if not renames:
        return comp
    return Comprehension(head=head, qualifiers=tuple(new_quals), kind=kind)

"""Pretty-printer for the IR — renders Grust-style comprehension views.

Used by tests, documentation examples, and the compiler's ``explain``
output.  The notation follows the paper: ``[[ head | q1, q2 ]]^Bag`` for
bag comprehensions and ``[[ head | qs ]]^fold(name)`` for folds;
generators print as ``x <- xs`` (``x <~ xs`` for EXISTS mode, ``x </~ xs``
for NOT_EXISTS).
"""

from __future__ import annotations

from repro.comprehension.exprs import (
    AggByCall,
    AlgebraSpec,
    Attr,
    BagLiteral,
    BinOp,
    BoolOp,
    Call,
    Compare,
    Const,
    DistinctCall,
    Expr,
    FetchCall,
    FilterCall,
    FlatMapCall,
    FoldCall,
    GroupByCall,
    IfElse,
    Index,
    Lambda,
    ListExpr,
    MapCall,
    MinusCall,
    PlusCall,
    ReadCall,
    Ref,
    StatefulBagOf,
    StatefulCreate,
    StatefulUpdate,
    StatefulUpdateWithMessages,
    TupleExpr,
    UnaryOp,
    WriteCall,
)
from repro.comprehension.ir import (
    Comprehension,
    Flatten,
    FoldKind,
    GenMode,
    Generator,
    Guard,
)

_GEN_ARROWS = {
    GenMode.NORMAL: "<-",
    GenMode.EXISTS: "<~",
    GenMode.NOT_EXISTS: "</~",
}


def pretty(expr: Expr) -> str:
    """Render an IR expression as a single-line string."""
    if isinstance(expr, Comprehension):
        quals = ", ".join(_pretty_qualifier(q) for q in expr.qualifiers)
        kind = (
            f"fold({expr.kind.spec.alias})"
            if isinstance(expr.kind, FoldKind)
            else "Bag"
        )
        return f"[[ {pretty(expr.head)} | {quals} ]]^{kind}"
    if isinstance(expr, Flatten):
        return f"flatten {pretty(expr.source)}"
    if isinstance(expr, Const):
        name = getattr(expr.value, "__name__", None)
        return name if name else repr(expr.value)
    if isinstance(expr, Ref):
        return expr.name
    if isinstance(expr, Attr):
        return f"{pretty(expr.obj)}.{expr.name}"
    if isinstance(expr, Index):
        return f"{pretty(expr.obj)}[{pretty(expr.index)}]"
    if isinstance(expr, TupleExpr):
        inner = ", ".join(pretty(i) for i in expr.items)
        return f"({inner})"
    if isinstance(expr, ListExpr):
        inner = ", ".join(pretty(i) for i in expr.items)
        return f"[{inner}]"
    if isinstance(expr, BinOp):
        return f"({pretty(expr.left)} {expr.op} {pretty(expr.right)})"
    if isinstance(expr, UnaryOp):
        sep = " " if expr.op == "not" else ""
        return f"({expr.op}{sep}{pretty(expr.operand)})"
    if isinstance(expr, Compare):
        return f"({pretty(expr.left)} {expr.op} {pretty(expr.right)})"
    if isinstance(expr, BoolOp):
        inner = f" {expr.op} ".join(pretty(o) for o in expr.operands)
        return f"({inner})"
    if isinstance(expr, IfElse):
        return (
            f"({pretty(expr.then)} if {pretty(expr.cond)} "
            f"else {pretty(expr.orelse)})"
        )
    if isinstance(expr, Call):
        args = [pretty(a) for a in expr.args]
        args += [
            f"**{pretty(v)}" if k == "**" else f"{k}={pretty(v)}"
            for k, v in expr.kwargs
        ]
        return f"{pretty(expr.func)}({', '.join(args)})"
    if isinstance(expr, Lambda):
        params = ", ".join(expr.params)
        return f"(\\{params} -> {pretty(expr.body)})"
    if isinstance(expr, MapCall):
        return f"{pretty(expr.source)}.map{pretty(expr.fn)}"
    if isinstance(expr, FlatMapCall):
        return f"{pretty(expr.source)}.flat_map{pretty(expr.fn)}"
    if isinstance(expr, FilterCall):
        return f"{pretty(expr.source)}.with_filter{pretty(expr.fn)}"
    if isinstance(expr, GroupByCall):
        return f"{pretty(expr.source)}.group_by{pretty(expr.key)}"
    if isinstance(expr, FoldCall):
        return f"{pretty(expr.source)}.{_pretty_spec(expr.spec)}"
    if isinstance(expr, PlusCall):
        return f"({pretty(expr.left)} plus {pretty(expr.right)})"
    if isinstance(expr, MinusCall):
        return f"({pretty(expr.left)} minus {pretty(expr.right)})"
    if isinstance(expr, DistinctCall):
        return f"{pretty(expr.source)}.distinct()"
    if isinstance(expr, ReadCall):
        return f"read({pretty(expr.path)})"
    if isinstance(expr, WriteCall):
        return f"write({pretty(expr.path)}, {pretty(expr.source)})"
    if isinstance(expr, BagLiteral):
        return f"DataBag({pretty(expr.seq)})"
    if isinstance(expr, FetchCall):
        return f"{pretty(expr.source)}.fetch()"
    if isinstance(expr, AggByCall):
        specs = ", ".join(s.alias for s in expr.specs)
        return (
            f"{pretty(expr.source)}.agg_by{pretty(expr.key)}"
            f"[{specs}]"
        )
    if isinstance(expr, StatefulCreate):
        return f"stateful({pretty(expr.source)})"
    if isinstance(expr, StatefulBagOf):
        return f"{pretty(expr.state)}.bag()"
    if isinstance(expr, StatefulUpdate):
        return (
            f"{pretty(expr.state)}.update({pretty(expr.update_fn)})"
        )
    if isinstance(expr, StatefulUpdateWithMessages):
        return (
            f"{pretty(expr.state)}.update_with_messages("
            f"{pretty(expr.messages)}, {pretty(expr.update_fn)})"
        )
    # Compiled dataflow sites (PlanExpr) — matched structurally to
    # avoid importing the optimizer from the IR layer.
    plan = getattr(expr, "plan", None)
    kind = getattr(expr, "kind", None)
    if plan is not None and isinstance(kind, str):
        return f"<dataflow:{kind} {plan.describe()}>"
    return repr(expr)


def _pretty_qualifier(q: Generator | Guard) -> str:
    if isinstance(q, Generator):
        arrow = _GEN_ARROWS[q.mode]
        return f"{q.var} {arrow} {pretty(q.source)}"
    return pretty(q.predicate)


def _pretty_spec(spec: AlgebraSpec) -> str:
    args = ", ".join(pretty(a) for a in spec.args)
    return f"{spec.alias}({args})"

"""Setup shim so legacy editable installs work offline.

The canonical project metadata lives in ``pyproject.toml``; this file
exists only because PEP 517 editable installs need the ``wheel`` package,
which is unavailable in offline environments.  ``pip install -e .
--no-use-pep517 --no-build-isolation`` (or plain ``pip install -e .`` when
``wheel`` is present) both work.
"""

from setuptools import setup

setup()

"""Ablation — physical operator chaining (fused per-partition kernels).

Three views of the chaining layer:

* **Wall-clock**: a chain-heavy spam-scoring kernel loop (the Listing 5
  selection pattern stripped to its narrow-operator core) must run at
  least ~1.3x faster with fused kernels than with per-operator
  execution, at byte-identical results — the fused kernel replaces
  five interpreted per-operator passes with one generated loop.
* **Task accounting**: fused chains schedule as one task wave, so the
  simulated engines charge strictly fewer task overheads
  (``tasks_saved`` > 0) and strictly less simulated time.
* **End-to-end soundness**: full workflows compiled through
  ``EmmaConfig(operator_chaining=...)`` — the spam scorer, a flatmap
  tokenizer, and TPC-H Q1 — produce identical results with chaining on
  and off.  Q1's plan has no adjacent narrow run (the aggregation
  absorbs its surroundings), so it doubles as the no-chains/no-harm
  control.
"""

import time

from conftest import run_once

from repro.api import parallelize, read
from repro.comprehension.exprs import (
    Attr,
    BinOp,
    Compare,
    Const,
    Index,
    Ref,
)
from repro.core.io import JsonLinesFormat
from repro.engines.dfs import SimulatedDFS
from repro.engines.executor import JobExecutor
from repro.experiments.runner import bench_cost_model, make_engine
from repro.lowering.chaining import chain_operators
from repro.lowering.combinators import CBagRef, CFilter, CMap, ScalarFn
from repro.optimizer.pipeline import EmmaConfig
from repro.workloads import datagen
from repro.workloads.datagen import RawEmail, extract_features
from repro.workloads.tpch.datagen import stage_tpch
from repro.workloads.tpch.q1 import tpch_q1

_RAW = JsonLinesFormat(RawEmail)

CHAIN_ON = EmmaConfig(
    caching=False, partition_pulling=False, operator_chaining=True
)
CHAIN_OFF = EmmaConfig(
    caching=False, partition_pulling=False, operator_chaining=False
)


# ---------------------------------------------------------------------------
# Wall-clock: the chain-heavy spam kernel loop
# ---------------------------------------------------------------------------


def _feature(i: int):
    return Index(Attr(Ref("e"), "features"), Const(i))


_SCORE = BinOp(
    "+",
    BinOp(
        "+",
        BinOp("*", Const(-0.0015625), _feature(1)),
        BinOp("*", Const(0.15), _feature(2)),
    ),
    BinOp(
        "+",
        BinOp("*", Const(0.004), _feature(3)),
        BinOp("*", Const(0.03), _feature(4)),
    ),
)


def _kernel_plan(bias: float):
    """Score -> threshold -> rescale -> clip -> shift: a 7-op run."""
    p = CMap(fn=ScalarFn(("e",), _SCORE), input=CBagRef(name="emails"))
    p = CFilter(
        predicate=ScalarFn(
            ("s",),
            Compare("<=", BinOp("+", Ref("s"), Const(bias)), Const(0.0)),
        ),
        input=p,
    )
    p = CMap(
        fn=ScalarFn(("s",), BinOp("*", Ref("s"), Const(1000.0))), input=p
    )
    p = CFilter(
        predicate=ScalarFn(("s",), Compare(">", Ref("s"), Const(100.0))),
        input=p,
    )
    p = CMap(
        fn=ScalarFn(("s",), BinOp("-", Ref("s"), Const(100.0))), input=p
    )
    p = CFilter(
        predicate=ScalarFn(("s",), Compare("<", Ref("s"), Const(1e9))),
        input=p,
    )
    p = CMap(
        fn=ScalarFn(("s",), BinOp("+", Ref("s"), Const(1.0))), input=p
    )
    return p


_BIASES = [-(0.2 + 1.6 * (i + 1) / 6) for i in range(5)]


def _kernel_loop(engine, bag, chained: bool, reps: int = 3):
    """Run every classifier bias over the staged emails ``reps`` times."""
    job = engine._new_job()
    outputs = []
    started = time.perf_counter()
    for _ in range(reps):
        for bias in _BIASES:
            plan = _kernel_plan(bias)
            if chained:
                plan = chain_operators(plan)
            result = JobExecutor(engine, {"emails": bag}, job)._exec(plan)
            outputs.append(
                sorted(x for part in result.partitions for x in part)
            )
    return time.perf_counter() - started, outputs


def _run_kernel_ablation():
    emails = [
        extract_features(r)
        for r in datagen.generate_emails(30000, 500, seed=11)
    ]
    engine = make_engine(
        "spark", SimulatedDFS(), num_workers=8, cost=bench_cost_model()
    )
    bag = JobExecutor(engine, {}, engine._new_job()).parallelize_local(
        emails
    )
    # Warm both paths (kernel compilation, allocator, caches) ...
    _kernel_loop(engine, bag, True, reps=1)
    _kernel_loop(engine, bag, False, reps=1)
    engine.reset_metrics()
    # ... then take the best of three interleaved trials per side, so a
    # background-noise spike on either side cannot fake a result.
    unfused_times, fused_times = [], []
    unfused_out = fused_out = None
    for _ in range(3):
        t_unfused, unfused_out = _kernel_loop(engine, bag, False)
        t_fused, fused_out = _kernel_loop(engine, bag, True)
        unfused_times.append(t_unfused)
        fused_times.append(t_fused)
    return {
        "unfused_seconds": min(unfused_times),
        "fused_seconds": min(fused_times),
        "identical": fused_out == unfused_out,
        "tasks_saved": engine.metrics.tasks_saved,
        "chained_operators": engine.metrics.chained_operators,
    }


def test_chained_kernel_loop_wall_clock(benchmark):
    stats = run_once(benchmark, _run_kernel_ablation)
    speedup = stats["unfused_seconds"] / stats["fused_seconds"]
    print()
    print(
        f"kernel loop   unfused={stats['unfused_seconds']:.3f}s "
        f"fused={stats['fused_seconds']:.3f}s speedup={speedup:.2f}x "
        f"tasks_saved={stats['tasks_saved']}"
    )
    assert stats["identical"], "fusion changed the kernel loop results"
    assert stats["tasks_saved"] > 0
    assert stats["chained_operators"] > 0
    # The generated whole-chain kernel replaces 7 interpreted
    # per-operator passes; require a healthy real-time win.
    assert speedup >= 1.3


# ---------------------------------------------------------------------------
# End-to-end: workflows compiled with chaining on/off
# ---------------------------------------------------------------------------


@parallelize
def spam_scores(emails_path, threshold):
    """Rescaled suspicion scores of the probably-spam emails."""
    emails = read(emails_path, _RAW).map(extract_features)
    scores = (
        -0.0015625 * e.features[1]
        + 0.15 * e.features[2]
        + 0.004 * e.features[3]
        + 0.03 * e.features[4]
        for e in emails
    )
    suspicious = (s * 1000.0 - 100.0 for s in scores if s > threshold)
    return suspicious


@parallelize
def shouty_tokens(emails_path, min_len):
    """Lower-cased long tokens of every subject line (a flatmap run)."""
    tokens = (
        w for e in read(emails_path, _RAW) for w in e.subject.split()
    )
    shouty = (w.lower() for w in tokens if len(w) >= min_len)
    return shouty


def _run_workflow(algorithm, config, dfs, **params):
    engine = make_engine(
        "spark", dfs, num_workers=8, cost=bench_cost_model()
    )
    result = algorithm.run(engine, config=config, **params)
    rows = sorted(map(repr, result.fetch()))
    return rows, engine.metrics, algorithm.report(config)


def test_workflows_identical_and_cheaper_with_chaining():
    dfs = SimulatedDFS()
    dfs.put(
        "abl/emails", datagen.generate_emails(2400, 400, seed=7)
    )
    print()
    for algorithm, params, expect_chains in (
        (spam_scores, {"threshold": 0.5}, True),
        (shouty_tokens, {"min_len": 4}, True),
    ):
        on_rows, on_metrics, on_report = _run_workflow(
            algorithm, CHAIN_ON, dfs, emails_path="abl/emails", **params
        )
        off_rows, off_metrics, off_report = _run_workflow(
            algorithm, CHAIN_OFF, dfs, emails_path="abl/emails", **params
        )
        print(
            f"{algorithm.name:14} chains={on_report.operator_chains} "
            f"ops={on_report.chained_operators} "
            f"saved={on_metrics.tasks_saved} "
            f"t_on={on_metrics.simulated_seconds:.4f}s "
            f"t_off={off_metrics.simulated_seconds:.4f}s"
        )
        assert on_rows == off_rows, algorithm.name
        assert off_report.operator_chains == 0
        if expect_chains:
            assert on_report.operator_chains >= 1
            assert on_metrics.tasks_saved > 0
            assert (
                on_metrics.simulated_seconds
                < off_metrics.simulated_seconds
            )


def test_tpch_q1_is_the_no_chains_control():
    dfs = SimulatedDFS()
    _orders, lineitem_path = stage_tpch(dfs, sf=0.002, seed=19)
    results = {}
    metrics = {}
    for label, config in (("on", CHAIN_ON), ("off", CHAIN_OFF)):
        engine = make_engine(
            "spark", dfs, num_workers=8, cost=bench_cost_model()
        )
        rows = tpch_q1.run(
            engine,
            config=config,
            lineitem_path=lineitem_path,
            ship_date_max="1998-09-02",
        )
        results[label] = sorted(map(repr, rows.fetch()))
        metrics[label] = engine.metrics
    assert results["on"] == results["off"]
    # Q1's plan offers no adjacent narrow run, so chaining must be a
    # perfect no-op: nothing fused, nothing charged differently.
    assert tpch_q1.report(CHAIN_ON).operator_chains == 0
    assert metrics["on"].tasks_saved == 0
    assert (
        metrics["on"].simulated_seconds
        == metrics["off"].simulated_seconds
    )

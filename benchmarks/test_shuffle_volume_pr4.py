"""Shuffle-volume regression bench — partitioning-aware planning (PR 4).

Guards the physical planner's headline wins with hard floors, printed
as paper-style rows and exported to ``BENCH_pr4.json`` in CI:

* **PageRank (10 iterations)**: the planner's elision (ranks side
  co-partitioned with the join key) plus loop-invariant hoisting (the
  adjacency flat-map shuffled once, reused every iteration) must cut
  ``shuffle_bytes`` by at least 2x against the planner-off baseline,
  with a measurable ``simulated_seconds`` improvement — at
  byte-identical ranks.
* **Connected components, TPC-H Q1/Q4**: planner-on metric rows
  (bytes shuffled, elided/hoisted counts, simulated seconds) recorded
  so a regression that silently re-introduces data motion shows up in
  the artifact diff.

Both PageRank configurations run under a small broadcast threshold so
the baseline realizes its joins by repartitioning — the regime the
planner improves; with a huge threshold both configurations would
broadcast and the comparison would measure nothing.
"""

from conftest import run_once

from repro.engines.dfs import SimulatedDFS
from repro.engines.sparklike import SparkLikeEngine
from repro.optimizer.pipeline import EmmaConfig
from repro.workloads import graphs
from repro.workloads.connected_components import connected_components
from repro.workloads.pagerank import pagerank
from repro.workloads.tpch import stage_tpch, tpch_q1, tpch_q4

PLAN_ON = EmmaConfig()
PLAN_OFF = EmmaConfig(physical_planning=False)

#: below the per-iteration rank-state bytes — forces the baseline to
#: repartition instead of broadcasting every iteration
THRESHOLD = 32 * 1024

PAGERANK_VERTICES = 2000
PAGERANK_ITERATIONS = 10


def _metrics_row(name, m):
    row = {
        "workload": name,
        "bytes_shuffled": m.shuffle_bytes,
        "simulated_seconds": round(m.simulated_seconds, 6),
        "shuffles_elided": m.shuffles_elided,
        "shuffles_hoisted": m.shuffles_hoisted,
        "adaptive_switches": m.adaptive_switches,
    }
    print(
        f"{name:>18}: {m.shuffle_bytes:>10} bytes shuffled, "
        f"{m.simulated_seconds:8.3f} s, "
        f"elided={m.shuffles_elided} hoisted={m.shuffles_hoisted} "
        f"adaptive={m.adaptive_switches}"
    )
    return row


def _run_pagerank(config):
    dfs = SimulatedDFS()
    engine = SparkLikeEngine(dfs=dfs)
    engine.broadcast_join_threshold = THRESHOLD
    path = graphs.stage_follower_graph(
        dfs, num_vertices=PAGERANK_VERTICES, seed=7
    )
    result = pagerank.run(
        engine,
        config=config,
        graph_path=path,
        num_pages=PAGERANK_VERTICES,
        max_iterations=PAGERANK_ITERATIONS,
    )
    return engine.metrics, sorted((v.id, v.rank) for v in result)


class TestPageRankShuffleVolume:
    def test_planner_halves_bytes_shuffled(self, benchmark):
        def experiment():
            off, baseline_ranks = _run_pagerank(PLAN_OFF)
            on, planned_ranks = _run_pagerank(PLAN_ON)
            return off, on, baseline_ranks, planned_ranks

        off, on, baseline_ranks, planned_ranks = run_once(
            benchmark, experiment
        )
        print()
        _metrics_row("pagerank (off)", off)
        row = _metrics_row("pagerank (on)", on)
        ratio = off.shuffle_bytes / max(on.shuffle_bytes, 1)
        print(f"    bytes_shuffled reduction: {ratio:.2f}x")
        benchmark.extra_info.update(row)
        benchmark.extra_info["baseline_bytes_shuffled"] = off.shuffle_bytes
        benchmark.extra_info["baseline_simulated_seconds"] = round(
            off.simulated_seconds, 6
        )
        benchmark.extra_info["reduction_factor"] = round(ratio, 3)
        # The planner must never change the answer...
        assert planned_ranks == baseline_ranks
        # ...and must at least halve the bytes moved (acceptance
        # floor; the observed reduction is ~4x) while also saving
        # simulated time.
        assert on.shuffle_bytes * 2 <= off.shuffle_bytes
        assert on.simulated_seconds < off.simulated_seconds
        assert on.shuffles_hoisted == PAGERANK_ITERATIONS - 1


class TestPlannerMetricRows:
    def test_connected_components_row(self, benchmark):
        def experiment():
            dfs = SimulatedDFS()
            engine = SparkLikeEngine(dfs=dfs)
            path = "data/cc-graph"
            dfs.put(
                path,
                graphs.generate_component_graph(
                    400, num_components=8
                ),
            )
            connected_components.run(
                engine, config=PLAN_ON, graph_path=path
            )
            return engine.metrics

        metrics = run_once(benchmark, experiment)
        print()
        benchmark.extra_info.update(
            _metrics_row("connected-comp", metrics)
        )
        assert metrics.shuffle_bytes >= 0

    def test_tpch_rows(self, benchmark):
        def experiment():
            dfs = SimulatedDFS()
            orders_path, lineitem_path = stage_tpch(dfs, sf=0.1)
            q1_engine = SparkLikeEngine(dfs=dfs)
            tpch_q1.run(
                q1_engine,
                config=PLAN_ON,
                lineitem_path=lineitem_path,
                ship_date_max="1996-12-01",
            )
            q4_engine = SparkLikeEngine(dfs=dfs)
            tpch_q4.run(
                q4_engine,
                config=PLAN_ON,
                orders_path=orders_path,
                lineitem_path=lineitem_path,
                date_min="1994-01-01",
                date_max="1994-07-01",
            )
            return q1_engine.metrics, q4_engine.metrics

        q1, q4 = run_once(benchmark, experiment)
        print()
        for key, value in _metrics_row("tpch-q1", q1).items():
            benchmark.extra_info[f"q1_{key}"] = value
        for key, value in _metrics_row("tpch-q4", q4).items():
            benchmark.extra_info[f"q4_{key}"] = value
        assert q1.shuffle_bytes >= 0 and q4.shuffle_bytes >= 0

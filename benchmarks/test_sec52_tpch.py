"""Benchmark S52c — regenerate Section 5.2's TPC-H observations.

Shape assertions: without the logical optimizations neither Q1 nor Q4
finishes on either engine; with them both queries complete (the paper's
"within 10 minutes" vs "not within one hour").
"""

from conftest import run_once

from repro.experiments.runner import DNF
from repro.experiments.tpch_exp import run_tpch


def test_tpch_optimization_gate(benchmark):
    result = run_once(benchmark, run_tpch)
    print()
    print(result.render())

    for engine in ("spark", "flink"):
        for query in ("q1", "q4"):
            assert result.runs[
                (engine, query, "optimized")
            ].finished, (engine, query)
            assert (
                result.runs[(engine, query, "unoptimized")].seconds
                is DNF
            ), (engine, query)

    # The paper's optimized times order flink below spark for Q1
    # (240s vs 466s) and roughly equal for Q4 (569s vs 577s).
    q1_flink = result.runs[("flink", "q1", "optimized")].seconds
    q1_spark = result.runs[("spark", "q1", "optimized")].seconds
    assert q1_flink < q1_spark

"""Shared infrastructure for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures on the
simulated engines (see DESIGN.md's experiment index).  The experiments
are deterministic, so every benchmark runs ``rounds=1``; the interesting
output is the *shape assertions* plus the printed paper-style rows (run
pytest with ``-s`` to see them), not the wall-clock statistics.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow `import benchmarks.*`-free usage when invoked as `pytest benchmarks/`.
sys.path.insert(0, str(Path(__file__).parent))


def run_once(benchmark, fn):
    """Run a deterministic experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

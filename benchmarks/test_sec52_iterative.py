"""Benchmark S52a/b — regenerate Section 5.2 (k-means and PageRank).

Shape assertions:

* without fold-group fusion, *neither* algorithm finishes on *either*
  engine (worker memory on the Spark-like engine, the time budget on
  the Flink-like one) — the paper's one-hour-timeout observation;
* with fusion, caching speeds up the Spark-like engine on both
  algorithms (paper: 1.52x k-means, 3.13x PageRank);
* caching gives the Flink-like engine no real benefit (its cache is
  DFS-backed; paper Section 5.2).
"""

from conftest import run_once

from repro.experiments.runner import DNF
from repro.experiments.section52 import run_section52


def test_section52_iterative(benchmark):
    result = run_once(benchmark, run_section52)
    print()
    print(result.render())

    # Without fusion nothing finishes, on either engine.
    for engine in ("spark", "flink"):
        for algo in ("kmeans", "pagerank"):
            assert (
                result.runs[(engine, algo, "no-fusion")].seconds
                is DNF
            ), (engine, algo)
            # With fusion everything finishes.
            assert result.runs[(engine, algo, "fusion")].finished
            assert result.runs[
                (engine, algo, "fusion+caching")
            ].finished

    # Spark-like: caching helps on both algorithms.
    assert result.caching_speedup("spark", "kmeans") > 1.2
    assert result.caching_speedup("spark", "pagerank") > 1.1
    # ... and the k-means gain lands near the paper's 1.52x.
    assert 1.2 <= result.caching_speedup("spark", "kmeans") <= 2.2

    # Flink-like: caching is a wash (DFS-backed cache), within ±15%.
    assert 0.85 <= result.caching_speedup("flink", "kmeans") <= 1.15
    assert 0.85 <= result.caching_speedup("flink", "pagerank") <= 1.15

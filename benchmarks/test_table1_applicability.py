"""Benchmark T1 — regenerate Table 1 (optimization applicability).

The compiler compiles all five evaluation programs and reports which
optimizations fired; the resulting matrix must equal the paper's
Table 1 cell for cell.
"""

from conftest import run_once

from repro.experiments.table1 import PAPER_TABLE_1, run_table1


def test_table1_matrix(benchmark):
    result = run_once(benchmark, run_table1)
    print()
    print(result.render())
    assert result.rows == PAPER_TABLE_1

"""Ablation — union- vs insert-representation folds (paper §2.2/§6).

The paper argues for bags in *union* representation because their folds
are always partial-aggregation-legal: the combining function is
associative-commutative by the well-definedness conditions, so partial
results can be computed per partition and merged ("ship the partial
sums instead of the partial bags").  Insert-representation folds
(``foldr``) impose a sequential evaluation order — a system built on
them must ship and concatenate the *data* before folding (cf. the
Steno discussion in Related Work).

This micro-benchmark measures both the real wall-clock of the two
evaluation strategies (pytest-benchmark's own timing) and the bytes a
distributed engine would have to move: partials vs full partitions.
"""

import pytest

from repro.algebra.adt import ins_tree_of
from repro.algebra.fold import fold_ins_tree, sum_algebra
from repro.engines.sizes import estimate_record_bytes

N = 40_000
PARTITIONS = 16


@pytest.fixture(scope="module")
def partitions():
    return [
        list(range(i, N, PARTITIONS)) for i in range(PARTITIONS)
    ]


def test_union_fold_ships_partials(benchmark, partitions):
    algebra = sum_algebra()

    def run():
        partials = [algebra(p) for p in partitions]
        return algebra.merge(partials), partials

    total, partials = benchmark(run)
    assert total == sum(range(N))
    shipped = sum(estimate_record_bytes(p) for p in partials)
    # One number per partition crosses the network.
    assert shipped <= PARTITIONS * 8


def test_insert_fold_ships_data(benchmark, partitions):
    def run():
        # foldr needs a single sequential evaluation: materialize all
        # partitions in one place first (the shipped bytes), then fold.
        everything = [x for p in partitions for x in p]
        tree = ins_tree_of(everything)
        return fold_ins_tree(0, lambda x, acc: x + acc, tree), everything

    total, everything = benchmark(run)
    assert total == sum(range(N))
    shipped = len(everything) * 8
    # The full dataset crosses the network — orders of magnitude more.
    assert shipped > 1000 * PARTITIONS * 8

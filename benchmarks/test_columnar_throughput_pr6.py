"""Throughput ablation — the columnar batch data plane (PR 6).

A scan-heavy TPC-H Q1-style chain (a ship-date filter, a projection to
the four numeric columns, then a dozen arithmetic map/filter steps)
runs over ~150k synthesized line items on both execution planes and
two execution modes.  Everything observable must agree — bit-identical
output records and identical ``simulated_seconds`` across columnar
``on``/``off`` and ``serial``/``processes`` — while the *measured*
records/sec moves: with numpy available the vector plane must clear
**3x** the row plane's throughput on this ablation.  Without numpy
(the CI runners) the numbers are recorded but the speedup gate is
not enforced — the pure-Python column fallback is a correctness
configuration, not a fast path.  Results are exported to
``BENCH_pr6.json`` in CI.
"""

import time

from conftest import run_once

from repro.comprehension.exprs import (
    Attr,
    BinOp,
    Compare,
    Const,
    Index,
    Ref,
    TupleExpr,
)
from repro.engines.columnar import HAS_NUMPY
from repro.engines.dfs import SimulatedDFS
from repro.engines.executor import JobExecutor
from repro.experiments.runner import bench_cost_model, make_engine
from repro.lowering.chaining import chain_operators
from repro.lowering.combinators import CBagRef, CFilter, CMap, ScalarFn
from repro.optimizer.columnar_select import select_columnar
from repro.workloads.tpch.schema import (
    LINE_STATUSES,
    RETURN_FLAGS,
    LineItem,
)

NUM_ITEMS = 150_000
VARIANTS = (
    ("serial", "off"),
    ("serial", "on"),
    ("processes", "off"),
    ("processes", "on"),
)


def _make_items(n: int) -> list[LineItem]:
    """Deterministic synthesized line items (no staging round-trip)."""
    items = []
    for i in range(n):
        items.append(
            LineItem(
                order_key=i // 4,
                quantity=float(1 + i % 50),
                extended_price=900.0 + (i % 1000) * 1.5,
                discount=(i % 11) / 100.0,
                tax=(i % 9) / 100.0,
                return_flag=RETURN_FLAGS[i % 3],
                line_status=LINE_STATUSES[i % 2],
                ship_date=f"199{i % 7}-{1 + i % 12:02d}-{1 + i % 28:02d}",
                commit_date="1996-01-01",
                receipt_date="1996-01-01",
            )
        )
    return items


def _t(i: int):
    return Index(Ref("t"), Const(i))


def _q1_plan(cutoff: str):
    """Filter -> project -> arithmetic -> select -> project: Q1's
    shape writ long, 16 chained steps in the vectorizable subset."""
    p = CBagRef(name="items")
    p = CFilter(
        predicate=ScalarFn(
            ("li",),
            Compare("<=", Attr(Ref("li"), "ship_date"), Const(cutoff)),
        ),
        input=p,
    )
    p = CMap(
        fn=ScalarFn(
            ("li",),
            TupleExpr(
                (
                    Attr(Ref("li"), "quantity"),
                    Attr(Ref("li"), "extended_price"),
                    Attr(Ref("li"), "discount"),
                    Attr(Ref("li"), "tax"),
                )
            ),
        ),
        input=p,
    )
    for i in range(4):
        # disc_price = price * (1 - discount) * (1 + tax), with a
        # drifting correction per pass
        p = CMap(
            fn=ScalarFn(
                ("t",),
                TupleExpr(
                    (
                        BinOp("*", _t(0), Const(1.0000001)),
                        BinOp(
                            "+",
                            BinOp(
                                "*",
                                BinOp(
                                    "*",
                                    _t(1),
                                    BinOp("-", Const(1.0), _t(2)),
                                ),
                                BinOp("+", Const(1.0), _t(3)),
                            ),
                            BinOp("*", _t(0), Const(0.0001)),
                        ),
                        BinOp(
                            "+",
                            BinOp("*", _t(2), Const(0.99999)),
                            Const(1e-7),
                        ),
                        BinOp("*", _t(3), Const(1.0001 + i * 1e-4)),
                    )
                ),
            ),
            input=p,
        )
        p = CFilter(
            predicate=ScalarFn(
                ("t",), Compare("<", _t(1), Const(1e12))
            ),
            input=p,
        )
        # charge = disc_price * (1 + tax) - a discount rebate
        p = CMap(
            fn=ScalarFn(
                ("t",),
                TupleExpr(
                    (
                        BinOp("+", _t(0), Const(0.0)),
                        BinOp(
                            "-",
                            BinOp(
                                "*",
                                _t(1),
                                BinOp("+", Const(1.0), _t(3)),
                            ),
                            BinOp("*", _t(2), Const(0.001)),
                        ),
                        _t(2),
                        BinOp("*", _t(3), Const(0.99995)),
                    )
                ),
            ),
            input=p,
        )
    # Q1 ends in a tiny aggregate; this ablation cannot vectorize the
    # fold, so a selective tail filter (quantity <= 6 keeps 12% of
    # rows) plus a two-column projection stands in for "small output".
    p = CFilter(
        predicate=ScalarFn(
            ("t",), Compare("<=", _t(0), Const(6.5))
        ),
        input=p,
    )
    p = CMap(
        fn=ScalarFn(("t",), TupleExpr((_t(0), _t(1)))),
        input=p,
    )
    return p


def _engine(mode: str, plane: str):
    engine = make_engine(
        "spark", SimulatedDFS(), num_workers=8, cost=bench_cost_model()
    )
    engine.configure_execution(mode, max_parallel_tasks=4)
    engine.configure_columnar(plane)
    return engine


def _scan_loop(engine, bag, reps: int):
    """Run the chain for several cutoffs; return (seconds, outputs)."""
    job = engine._new_job()
    outputs = []
    started = time.perf_counter()
    for _rep in range(reps):
        for cutoff in ("1994-06-30", "1995-12-31"):
            plan = select_columnar(chain_operators(_q1_plan(cutoff)))
            result = JobExecutor(engine, {"items": bag}, job)._exec(plan)
            outputs.append(
                [x for part in result.partitions for x in part]
            )
    return time.perf_counter() - started, outputs


def _run_matrix():
    items = _make_items(NUM_ITEMS)
    reps = 2
    stats = {"records": NUM_ITEMS, "reps": reps, "numpy": HAS_NUMPY}
    outputs = {}
    for mode, plane in VARIANTS:
        engine = _engine(mode, plane)
        bag = JobExecutor(
            engine, {}, engine._new_job()
        ).parallelize_local(items)
        key = f"{mode}_{plane}"
        _scan_loop(engine, bag, reps=1)  # warm pools, kernels, caches
        # Packing happens during the warm pass; the timed passes reuse
        # the at-rest batch cache, so capture engagement counters here.
        stats[f"{key}_kernels"] = engine.metrics.columnar_kernels
        stats[f"{key}_batches"] = engine.metrics.columnar_batches_built
        stats[f"{key}_fallbacks"] = engine.metrics.columnar_fallbacks
        engine.reset_metrics()
        seconds, out = _scan_loop(engine, bag, reps=reps)
        outputs[key] = out
        scanned = NUM_ITEMS * reps * 2
        stats[f"{key}_seconds"] = seconds
        stats[f"{key}_records_per_sec"] = scanned / seconds
        stats[f"{key}_simulated"] = engine.metrics.simulated_seconds
    base = outputs["serial_off"]
    stats["identical"] = all(out == base for out in outputs.values())
    return stats


def test_columnar_scan_throughput(benchmark):
    stats = run_once(benchmark, _run_matrix)
    speedup = (
        stats["serial_off_seconds"] / stats["serial_on_seconds"]
    )
    print()
    for mode, plane in VARIANTS:
        key = f"{mode}_{plane}"
        print(
            f"q1-scan {key:<14} {stats[f'{key}_seconds']:.3f}s "
            f"{stats[f'{key}_records_per_sec']:>12,.0f} rec/s "
            f"kernels={stats[f'{key}_kernels']} "
            f"batches={stats[f'{key}_batches']}"
        )
    print(f"columnar speedup (serial) = {speedup:.2f}x numpy={HAS_NUMPY}")

    # Correctness is unconditional: planes and modes must agree bit
    # for bit, on results and on the simulated clock.
    assert stats["identical"], "columnar plane changed scan results"
    for mode, plane in VARIANTS:
        key = f"{mode}_{plane}"
        assert (
            stats[f"{key}_simulated"] == stats["serial_off_simulated"]
        ), f"{key} moved the simulated clock"
        if plane == "on":
            assert stats[f"{key}_kernels"] > 0
            assert stats[f"{key}_batches"] > 0
            assert stats[f"{key}_fallbacks"] == 0
        else:
            assert stats[f"{key}_kernels"] == 0

    # The throughput gate holds wherever the typed-buffer fast path
    # exists; the pure-Python fallback records numbers only.
    if HAS_NUMPY:
        assert speedup >= 3.0, f"columnar speedup {speedup:.2f}x < 3x"

"""Warm-cache speedup through the always-on job service (PR 9).

The acceptance experiment: submit TPC-H Q1 and PageRank to a *running*
:class:`repro.server.JobService` twice.  The cold submission pays
lift-compile-execute; the identical warm resubmission must be answered
from the two-level fingerprint cache — ``repr``-identical to the cold
answer and at least **5x** faster in wall-clock terms.  A third
variant warms only the *plan* level (same program, different inputs)
and reports the compile seconds skipped.

Unlike the wall-clock ablation (PR 5) this gate does not depend on
host core count: the warm path does strictly less work than the cold
path on any machine, so the speedup assertion is always enforced.
Results are exported to ``BENCH_pr9.json`` in CI.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.engines.cluster import ClusterConfig
from repro.engines.dfs import SimulatedDFS
from repro.engines.plancache import PlanCache
from repro.engines.sparklike import SparkLikeEngine
from repro.server import JobService
from repro.workloads import graphs
from repro.workloads.pagerank import pagerank
from repro.workloads.tpch import stage_tpch, tpch_q1

#: the acceptance threshold: warm must beat cold by at least this
SPEEDUP_FLOOR = 5.0


def _engine_factory(dfs):
    return SparkLikeEngine(
        cluster=ClusterConfig(num_workers=8), dfs=dfs
    )


def _service(dfs, tmp_path):
    return JobService(
        _engine_factory,
        dfs=dfs,
        cache=PlanCache(cache_dir=str(tmp_path)),
        max_concurrent=2,
    )


def _forget_compiles(*algos):
    """Clear the in-process compile memos so cold is genuinely cold.

    The workload ``Algorithm`` objects are module globals whose
    per-config compile cache may already be warm from earlier
    benchmark files in the same pytest process; a fresh driver would
    not have it.
    """
    for algo in algos:
        algo._compiled.clear()


def _timed_submit(service, algo, params):
    """Submit one job to the running service; (seconds, result, handle)."""
    started = time.perf_counter()
    handle = service.submit(algo, params)
    result = handle.result(timeout=300)
    return time.perf_counter() - started, result, handle


def _cold_warm_rows(service, algo, params, label):
    cold_s, cold, cold_handle = _timed_submit(service, algo, params)
    warm_s, warm, warm_handle = _timed_submit(service, algo, params)
    assert not cold_handle.served_from_cache
    assert warm_handle.served_from_cache, warm_handle.cache
    assert repr(warm) == repr(cold), f"{label}: warm answer diverged"
    speedup = cold_s / warm_s if warm_s else float("inf")
    print(
        f"  {label:<10} cold={cold_s * 1e3:8.1f}ms "
        f"warm={warm_s * 1e3:8.1f}ms speedup={speedup:6.1f}x "
        f"cache={warm_handle.cache}"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"{label}: warm resubmission only {speedup:.1f}x faster "
        f"(cold {cold_s:.3f}s, warm {warm_s:.3f}s); "
        f"floor is {SPEEDUP_FLOOR}x"
    )
    return {
        "label": label,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "speedup": speedup,
    }


def test_warm_resubmission_speedup(benchmark, tmp_path):
    """Identical Q1 + PageRank resubmissions served >= 5x faster."""
    dfs = SimulatedDFS()
    _, lineitem = stage_tpch(dfs, sf=0.05)
    graph = graphs.stage_follower_graph(dfs, num_vertices=120)
    n = len(dfs.get(graph).records)

    def experiment():
        _forget_compiles(tpch_q1, pagerank)
        service = _service(dfs, tmp_path)
        try:
            print("\nwarm-cache speedup through the running service:")
            rows = [
                _cold_warm_rows(
                    service,
                    tpch_q1,
                    {
                        "lineitem_path": lineitem,
                        "ship_date_max": "1996-12-01",
                    },
                    "tpch_q1",
                ),
                _cold_warm_rows(
                    service,
                    pagerank,
                    {
                        "graph_path": graph,
                        "num_pages": n,
                        "max_iterations": 5,
                    },
                    "pagerank",
                ),
            ]
            stats = service.stats()
            print(
                f"  service: result_hit_rate="
                f"{stats['result_cache_hit_rate']:.2f} "
                f"admission_p50={stats['admission_latency_p50'] * 1e3:.1f}ms "
                f"admission_p99={stats['admission_latency_p99'] * 1e3:.1f}ms"
            )
            assert stats["result_cache_hit_rate"] == 0.5
            return rows
        finally:
            service.shutdown()

    rows = run_once(benchmark, experiment)
    assert all(r["speedup"] >= SPEEDUP_FLOOR for r in rows)


def test_plan_cache_skips_compilation(benchmark, tmp_path):
    """Plan-level warmth alone: same program, new inputs, no recompile."""
    dfs = SimulatedDFS()
    graph_a = graphs.stage_follower_graph(dfs, num_vertices=80, seed=5)
    graph_b = graphs.stage_follower_graph(dfs, num_vertices=60, seed=6)

    def experiment():
        _forget_compiles(pagerank)
        service = _service(dfs, tmp_path)
        try:
            na = len(dfs.get(graph_a).records)
            nb = len(dfs.get(graph_b).records)
            cold = service.submit(
                pagerank,
                {
                    "graph_path": graph_a,
                    "num_pages": na,
                    "max_iterations": 4,
                },
            )
            cold.result(timeout=300)
            fresh_inputs = service.submit(
                pagerank,
                {
                    "graph_path": graph_b,
                    "num_pages": nb,
                    "max_iterations": 4,
                },
            )
            fresh_inputs.result(timeout=300)
            # Different inputs: the result level misses, but the plan
            # level serves the compiled program without recompiling.
            assert fresh_inputs.cache["result"] == "miss"
            assert fresh_inputs.cache["plan"] == "hit"
            saved = fresh_inputs.metrics.compile_seconds_saved
            print(
                f"\nplan-cache hit on new inputs: "
                f"compile_seconds_saved={saved * 1e3:.1f}ms"
            )
            assert saved > 0
            return saved
        finally:
            service.shutdown()

    run_once(benchmark, experiment)

"""Throughput ablation — the columnar exchange plane (PR 10).

Two shuffle-bound workloads run with the exchange plane ``on`` and
``off``:

* a large two-table equi-join (450k rows total, the TPC-H sf-0.5 ball
  park) whose repartition shuffle, hash build, and probe all sit on
  the exchange operators — with numpy available the columnar exchange
  must clear **2x** the row plane's wall clock on the serial ablation;
* TPC-H Q4 (semi-join + aggregation, two shuffles) in process-pool
  mode, where shuffle payloads ship as typed columnar blocks —
  ``ipc_bytes_shipped`` must drop strictly below the row exchange's.

Everything observable must agree — bit-identical output records and
identical ``simulated_seconds`` across exchange ``on``/``off`` and
``serial``/``processes``.  Without numpy (the CI runners) the speedup
gate self-disables and the run records the pure-Python fallback
numbers; correctness stays enforced.  Results are exported to
``BENCH_pr10.json`` in CI.
"""

import time

from conftest import run_once

from repro.comprehension.exprs import Const, Index, Ref
from repro.engines.columnar import HAS_NUMPY
from repro.engines.dfs import SimulatedDFS
from repro.engines.executor import JobExecutor
from repro.experiments.runner import bench_cost_model, make_engine
from repro.lowering.combinators import CBagRef, CEqJoin, ScalarFn
from repro.optimizer.columnar_select import select_columnar
from repro.optimizer.pipeline import EmmaConfig
from repro.workloads.tpch import stage_tpch, tpch_q4

NUM_LEFT = 300_000
NUM_RIGHT = 150_000
VARIANTS = (
    ("serial", "off"),
    ("serial", "on"),
    ("processes", "off"),
    ("processes", "on"),
)


def _join_plan(exchange: str):
    """A repartition equi-join on the leading int column of each side."""
    join = CEqJoin(
        kx=ScalarFn(("x",), Index(Ref("x"), Const(0))),
        ky=ScalarFn(("y",), Index(Ref("y"), Const(0))),
        left=CBagRef(name="xs"),
        right=CBagRef(name="ys"),
    )
    return select_columnar(join, exchange=exchange)


def _engine(mode: str, plane: str):
    engine = make_engine(
        "spark", SimulatedDFS(), num_workers=8, cost=bench_cost_model()
    )
    engine.configure_execution(mode, max_parallel_tasks=4)
    engine.configure_columnar_exchange(plane)
    # Small sides must still repartition: the broadcast strategy would
    # skip the very shuffle this ablation measures.
    engine.broadcast_join_threshold = 0
    return engine


def _join_loop(engine, env, plan, reps: int):
    """Execute the join ``reps`` times; return (seconds, outputs)."""
    job = engine._new_job()
    outputs = []
    started = time.perf_counter()
    for _rep in range(reps):
        # A fresh executor per rep: the per-executor DAG memo would
        # otherwise turn repeat runs into no-ops.
        result = JobExecutor(engine, env, job)._exec(plan)
        outputs.append([x for part in result.partitions for x in part])
    return time.perf_counter() - started, outputs


def _run_join_matrix():
    # Key strides coprime with the partition count, so both sides
    # spread over every bucket; two thirds of left rows find a match.
    xs = [(i, float(i)) for i in range(NUM_LEFT)]
    ys = [(i * 3, float(i) * 0.5) for i in range(NUM_RIGHT)]
    reps = 2
    stats = {
        "left": NUM_LEFT,
        "right": NUM_RIGHT,
        "reps": reps,
        "numpy": HAS_NUMPY,
    }
    outputs = {}
    for mode, plane in VARIANTS:
        engine = _engine(mode, plane)
        ex = JobExecutor(engine, {}, engine._new_job())
        env = {
            "xs": ex.parallelize_local(xs),
            "ys": ex.parallelize_local(ys),
        }
        plan = _join_plan("on" if plane == "on" else "off")
        key = f"{mode}_{plane}"
        _join_loop(engine, env, plan, reps=1)  # warm pools + kernels
        stats[f"{key}_joins"] = engine.metrics.columnar_joins
        stats[f"{key}_shuffles"] = engine.metrics.columnar_shuffles
        stats[f"{key}_blocks"] = engine.metrics.columnar_blocks_shipped
        engine.reset_metrics()
        seconds, out = _join_loop(engine, env, plan, reps=reps)
        outputs[key] = out
        moved = (NUM_LEFT + NUM_RIGHT) * reps
        stats[f"{key}_seconds"] = seconds
        stats[f"{key}_records_per_sec"] = moved / seconds
        stats[f"{key}_simulated"] = engine.metrics.simulated_seconds
        stats[f"{key}_ipc_shipped"] = engine.metrics.ipc_bytes_shipped
    base = outputs["serial_off"]
    stats["identical"] = all(out == base for out in outputs.values())
    stats["rows_out"] = len(base[0])
    return stats


def test_exchange_join_throughput(benchmark):
    stats = run_once(benchmark, _run_join_matrix)
    speedup = stats["serial_off_seconds"] / stats["serial_on_seconds"]
    print()
    for mode, plane in VARIANTS:
        key = f"{mode}_{plane}"
        print(
            f"equi-join {key:<14} {stats[f'{key}_seconds']:.3f}s "
            f"{stats[f'{key}_records_per_sec']:>12,.0f} rec/s "
            f"joins={stats[f'{key}_joins']} "
            f"shuffles={stats[f'{key}_shuffles']} "
            f"blocks={stats[f'{key}_blocks']}"
        )
    print(f"exchange speedup (serial) = {speedup:.2f}x numpy={HAS_NUMPY}")

    # Correctness is unconditional: planes and modes must agree bit
    # for bit, on results and on the simulated clock.
    assert stats["identical"], "exchange plane changed join results"
    assert stats["rows_out"] > 0
    for mode, plane in VARIANTS:
        key = f"{mode}_{plane}"
        assert (
            stats[f"{key}_simulated"] == stats["serial_off_simulated"]
        ), f"{key} moved the simulated clock"
        if plane == "on":
            assert stats[f"{key}_joins"] > 0
            assert stats[f"{key}_shuffles"] > 0
        else:
            assert stats[f"{key}_joins"] == 0
            assert stats[f"{key}_shuffles"] == 0
    # Typed blocks only ship across a process boundary.
    assert stats["processes_on_blocks"] > 0
    assert stats["serial_on_blocks"] == 0

    # The wall-clock gate holds wherever the typed-buffer fast path
    # exists; the pure-Python fallback records numbers only.
    if HAS_NUMPY:
        assert speedup >= 2.0, f"exchange speedup {speedup:.2f}x < 2x"


def _run_q4_matrix():
    dfs = SimulatedDFS()
    orders_path, lineitem_path = stage_tpch(dfs, sf=0.5)
    stats = {"sf": 0.5, "numpy": HAS_NUMPY}
    outcomes = {}
    for mode, plane in VARIANTS:
        engine = make_engine(
            "spark", dfs, num_workers=8, cost=bench_cost_model()
        )
        config = EmmaConfig(
            columnar_exchange=plane,
            execution_mode=mode,
            max_parallel_tasks=4,
        )
        key = f"{mode}_{plane}"
        started = time.perf_counter()
        result = tpch_q4.run(
            engine,
            config=config,
            orders_path=orders_path,
            lineitem_path=lineitem_path,
            date_min="1995-01-01",
            date_max="1996-07-01",
        )
        records = [repr(r) for r in result.fetch()]
        stats[f"{key}_seconds"] = time.perf_counter() - started
        stats[f"{key}_simulated"] = engine.metrics.simulated_seconds
        stats[f"{key}_ipc_shipped"] = engine.metrics.ipc_bytes_shipped
        stats[f"{key}_shuffles"] = engine.metrics.columnar_shuffles
        stats[f"{key}_blocks"] = engine.metrics.columnar_blocks_shipped
        outcomes[key] = records
    base = outcomes["serial_off"]
    stats["identical"] = all(out == base for out in outcomes.values())
    stats["groups_out"] = len(base)
    return stats


def test_exchange_q4_shuffle_bytes(benchmark):
    stats = run_once(benchmark, _run_q4_matrix)
    print()
    for mode, plane in VARIANTS:
        key = f"{mode}_{plane}"
        print(
            f"tpch-q4 {key:<14} {stats[f'{key}_seconds']:.3f}s "
            f"ipc={stats[f'{key}_ipc_shipped']:>12,} B "
            f"shuffles={stats[f'{key}_shuffles']} "
            f"blocks={stats[f'{key}_blocks']}"
        )

    assert stats["identical"], "exchange plane changed Q4 results"
    assert stats["groups_out"] > 0
    for mode, plane in VARIANTS:
        key = f"{mode}_{plane}"
        assert (
            stats[f"{key}_simulated"] == stats["serial_off_simulated"]
        ), f"{key} moved the simulated clock"
        if plane == "on":
            assert stats[f"{key}_shuffles"] > 0
        else:
            assert stats[f"{key}_shuffles"] == 0
    # The whole point of typed shuffle blocks: strictly fewer IPC
    # bytes than the row exchange ships between the same processes.
    assert stats["processes_on_blocks"] > 0
    assert (
        stats["processes_on_ipc_shipped"]
        < stats["processes_off_ipc_shipped"]
    ), "columnar shuffle blocks did not reduce shipped bytes"

"""Ablation — the Figure 3a rule order (filter pushdown first).

The lowering state machine tries Filter before EqJoin before Cross,
"ensuring that filters are pushed down as much as possible in the
constructed dataflow tree".  Disabling the pushdown state (an
``EmmaConfig`` ablation knob) leaves single-generator predicates as
residual filters *above* the join, so the join shuffles unfiltered
inputs — measurably more bytes and time on a selective query.
"""

from dataclasses import dataclass

from conftest import run_once

from repro.api import DataBag, parallelize
from repro.engines.dfs import SimulatedDFS
from repro.experiments.runner import bench_cost_model, make_engine
from repro.optimizer.pipeline import EmmaConfig


@dataclass(frozen=True)
class Fact:
    key: int
    flag: int
    payload: str


@dataclass(frozen=True)
class Dim:
    key: int
    name: str


@parallelize
def selective_join(facts: DataBag, dims: DataBag):
    matches = (
        (f.payload, d.name)
        for f in facts
        for d in dims
        if f.flag == 1
        if f.key == d.key
    )
    return matches.count()


PUSHDOWN = EmmaConfig(caching=False, partition_pulling=False)
NO_PUSHDOWN = EmmaConfig(
    caching=False, partition_pulling=False, filter_pushdown=False
)


def _run_both():
    facts = DataBag(
        Fact(key=i % 500, flag=1 if i % 20 == 0 else 0, payload="p" * 40)
        for i in range(8000)
    )
    dims = DataBag(Dim(key=i, name=f"d{i}") for i in range(500))
    outcomes = {}
    for label, config in (
        ("pushdown", PUSHDOWN),
        ("no-pushdown", NO_PUSHDOWN),
    ):
        engine = make_engine(
            "spark",
            SimulatedDFS(),
            num_workers=8,
            cost=bench_cost_model(),
            broadcast_join_threshold=0,
        )
        count = selective_join.run(
            engine, config=config, facts=facts, dims=dims
        )
        outcomes[label] = {
            "count": count,
            "shuffle_bytes": engine.metrics.shuffle_bytes,
            "seconds": engine.metrics.simulated_seconds,
        }
    return outcomes


def test_filter_pushdown_reduces_shuffle(benchmark):
    outcomes = run_once(benchmark, _run_both)
    print()
    for label, stats in outcomes.items():
        print(
            f"{label:12} count={stats['count']} "
            f"shuffle={stats['shuffle_bytes']}B "
            f"t={stats['seconds']:.4f}s"
        )
    # Same answer either way ...
    assert outcomes["pushdown"]["count"] == outcomes["no-pushdown"]["count"]
    # ... but pushdown joins 5% of the facts instead of all of them.
    assert (
        outcomes["no-pushdown"]["shuffle_bytes"]
        > 5 * outcomes["pushdown"]["shuffle_bytes"]
    )
    assert (
        outcomes["no-pushdown"]["seconds"]
        > outcomes["pushdown"]["seconds"]
    )

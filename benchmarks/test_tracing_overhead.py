"""Tracing overhead on the chaining-ablation kernel loop.

The runtime tracer is opt-in, and every emission site is guarded by a
single ``if tracer is not None`` — so the disabled mode costs one
attribute load per operator over the untraced executor.  This
benchmark bounds both modes on the chain-heavy kernel loop from
``test_ablation_chaining``:

tracing **enabled** must stay within 50% wall-clock of disabled (it is
~10% in practice — span objects on the simulated clock, no I/O), with
byte-identical results.  Cost-model neutrality (tracing observes
simulated time, never charges it) is asserted in
``tests/engines/test_tracing.py::TestTracerBasics``.

Interleaved best-of-three trials, as in the other ablations, so a
noise spike on either side cannot fake a result.
"""

from conftest import run_once
from test_ablation_chaining import _kernel_loop

from repro.engines.dfs import SimulatedDFS
from repro.engines.executor import JobExecutor
from repro.experiments.runner import bench_cost_model, make_engine
from repro.workloads import datagen
from repro.workloads.datagen import extract_features


def _run_overhead_trial():
    emails = [
        extract_features(r)
        for r in datagen.generate_emails(30000, 500, seed=11)
    ]
    engine = make_engine(
        "spark", SimulatedDFS(), num_workers=8, cost=bench_cost_model()
    )
    bag = JobExecutor(engine, {}, engine._new_job()).parallelize_local(
        emails
    )
    # Warm both paths, then interleave the trials.
    _kernel_loop(engine, bag, True, reps=1)
    engine.enable_tracing()
    _kernel_loop(engine, bag, True, reps=1)
    engine.disable_tracing()

    off_times, on_times = [], []
    off_out = on_out = None
    for _ in range(3):
        engine.disable_tracing()
        t_off, off_out = _kernel_loop(engine, bag, True)
        engine.enable_tracing()
        t_on, on_out = _kernel_loop(engine, bag, True)
        off_times.append(t_off)
        on_times.append(t_on)
    engine.disable_tracing()
    return {
        "off_seconds": min(off_times),
        "on_seconds": min(on_times),
        "identical": off_out == on_out,
    }


def test_tracing_overhead_bounded(benchmark):
    stats = run_once(benchmark, _run_overhead_trial)
    overhead = stats["on_seconds"] / stats["off_seconds"] - 1.0
    print()
    print(
        f"tracing overhead   off={stats['off_seconds']:.3f}s "
        f"on={stats['on_seconds']:.3f}s (+{overhead:.1%})"
    )
    assert stats["identical"], "tracing changed results"
    # Enabled tracing bounds the disabled-guard cost from above: the
    # off path does strictly less work per operator.
    assert overhead < 0.5, f"tracing overhead {overhead:.1%}"

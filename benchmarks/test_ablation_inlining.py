"""Ablation — inlining as the enabler of fold-group fusion.

DESIGN.md calls out the interplay the paper only hints at ("inlining
... increases the chances of discovering and applying comprehension
level rewrites"): when the programmer binds the grouped bag to a name,
fold-group fusion can only see the ``group_by`` if inlining first
splices the definition into its consumer.  Compiling k-means with
inlining disabled must therefore lose the fusion — and with it, the
shuffle reduction.
"""

from conftest import run_once

from repro.engines.dfs import SimulatedDFS
from repro.experiments.runner import bench_cost_model, make_engine
from repro.optimizer.pipeline import EmmaConfig
from repro.workloads import datagen
from repro.workloads.kmeans import initial_centroids, kmeans

WITH_INLINING = EmmaConfig(
    inlining=True, caching=False, partition_pulling=False
)
WITHOUT_INLINING = EmmaConfig(
    inlining=False, caching=False, partition_pulling=False
)


def _run_both():
    dfs = SimulatedDFS()
    points = datagen.generate_points(1500, centers=3, dim=4, seed=83)
    dfs.put("abl/points", points)
    init = initial_centroids(points, 3)
    outcomes = {}
    for label, config in (
        ("inlining", WITH_INLINING),
        ("no-inlining", WITHOUT_INLINING),
    ):
        engine = make_engine(
            "spark", dfs, num_workers=8, cost=bench_cost_model()
        )
        kmeans.run(
            engine,
            config=config,
            points_path="abl/points",
            initial=init,
            epsilon=-1.0,
            max_iterations=3,
        )
        outcomes[label] = {
            "fused_groups": kmeans.report(config).fused_groups,
            "shuffle_bytes": engine.metrics.shuffle_bytes,
            "seconds": engine.metrics.simulated_seconds,
        }
    return outcomes


def test_inlining_enables_fusion(benchmark):
    outcomes = run_once(benchmark, _run_both)
    print()
    for label, stats in outcomes.items():
        print(
            f"{label:14} fused_groups={stats['fused_groups']} "
            f"shuffle={stats['shuffle_bytes']}B "
            f"t={stats['seconds']:.3f}s"
        )
    assert outcomes["inlining"]["fused_groups"] >= 1
    assert outcomes["no-inlining"]["fused_groups"] == 0
    # Losing the fusion means shuffling raw assignments, not aggregates.
    assert (
        outcomes["no-inlining"]["shuffle_bytes"]
        > 3 * outcomes["inlining"]["shuffle_bytes"]
    )
